//! Footnote 2, live: the same protocol on a synchronous network, an
//! asynchronous network, and an asynchronous network with adversarially
//! skewed links — same matching every time.
//!
//! ```text
//! cargo run --release --example asynchrony
//! ```

use dam::congest::{AsyncNetwork, DelayModel, Network, SimConfig};
use dam::core::israeli_itai::IiNode;
use dam::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(12);
    let g = generators::gnp(100, 0.06, &mut rng);
    let seed = 4;

    println!("Israeli-Itai on G(100, 0.06), seed {seed}\n");

    // Synchronous reference.
    let sync = Network::new(&g, SimConfig::local().seed(seed))
        .run(|v, graph| IiNode::new(graph.degree(v)))?;
    let matched = sync.outputs.iter().flatten().count() / 2;
    println!(
        "synchronous        : {matched} pairs, {} rounds, {} messages",
        sync.stats.rounds, sync.stats.messages
    );

    // The same protocol, unchanged, under asynchronous delivery with an
    // α-synchronizer shim.
    for (name, delays) in [
        ("async, unit delays", DelayModel::Unit),
        ("async, delay <= 20", DelayModel::UniformRandom { max: 20 }),
        ("async, skewed links", DelayModel::LinkSkew { spread: 13 }),
    ] {
        let (outputs, stats) = AsyncNetwork::new(&g, seed)
            .run_async(|v, graph| IiNode::new(graph.degree(v)), delays)?;
        assert_eq!(outputs, sync.outputs, "footnote 2 must hold");
        println!(
            "{name:<19}: identical matching; {} payload + {} marker msgs, makespan {}",
            stats.payload_messages, stats.marker_messages, stats.makespan
        );
    }

    println!("\nevery asynchronous run produced the *identical* matching —");
    println!("the paper's \"synchrony without loss of generality\" (footnote 2),");
    println!("paid for with the synchronizer's marker messages.");
    Ok(())
}
