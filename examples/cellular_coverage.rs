//! Mobile-to-base-station assignment — the 4G application the paper
//! mentions (§1: "our matching algorithm serves as a key component in a
//! distributed procedure that finds an assignment of mobile nodes to
//! base stations", Patt-Shamir, Rawitz & Scalosub 2012).
//!
//! ```text
//! cargo run --release --example cellular_coverage
//! ```
//!
//! Mobiles and base stations are placed uniformly in the unit square;
//! a mobile can associate to a station within radio range, with utility
//! decaying with distance. Each station serves one mobile per frame
//! (matching), and the association is negotiated *distributively* — no
//! central controller — by the paper's bipartite `(1−1/k)`-MCM (coverage
//! count) and the `(½−ε)`-MWM (utility).

use dam::core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam::core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam::graph::{hopcroft_karp, hungarian, Graph, Side};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stations = 50;
    let mobiles = 80;
    let range = 0.22;
    let mut rng = StdRng::seed_from_u64(4);

    let pos = |rng: &mut StdRng| (rng.random_range(0.0..1.0f64), rng.random_range(0.0..1.0f64));
    let sp: Vec<(f64, f64)> = (0..stations).map(|_| pos(&mut rng)).collect();
    let mp: Vec<(f64, f64)> = (0..mobiles).map(|_| pos(&mut rng)).collect();

    let mut b = Graph::builder(stations + mobiles);
    let mut links = 0;
    for (s, &(sx, sy)) in sp.iter().enumerate() {
        for (m, &(mx, my)) in mp.iter().enumerate() {
            let d2 = (sx - mx).powi(2) + (sy - my).powi(2);
            if d2 <= range * range {
                // Utility: inverse-square signal strength, clamped.
                let utility = (1.0 / (d2 + 1e-3)).min(500.0);
                b.weighted_edge(s, stations + m, utility);
                links += 1;
            }
        }
    }
    b.bipartition(
        (0..stations + mobiles).map(|v| if v < stations { Side::X } else { Side::Y }).collect(),
    );
    let g = b.build()?;
    println!("{stations} stations, {mobiles} mobiles, {links} feasible links (range {range})");

    // Coverage objective: associate as many mobiles as possible.
    let cover_opt = hopcroft_karp::maximum_bipartite_matching_size(&g);
    let r = bipartite_mcm(&g, &BipartiteMcmConfig { k: 4, seed: 6, ..Default::default() })?;
    println!(
        "coverage : distributed (k=4) serves {} of {} possible ({} CONGEST rounds)",
        r.matching.size(),
        cover_opt,
        r.stats.stats.rounds
    );

    // Utility objective: maximize total signal quality.
    let util_opt = hungarian::maximum_weight_bipartite(&g);
    let w = weighted_mwm(&g, &WeightedMwmConfig { eps: 0.05, seed: 6, ..Default::default() })?;
    println!(
        "utility  : distributed (eps=0.05) achieves {:.1} of {:.1} ({:.1}%, {} rounds)",
        w.matching.weight(&g),
        util_opt,
        100.0 * w.matching.weight(&g) / util_opt,
        w.stats.stats.rounds
    );
    Ok(())
}
