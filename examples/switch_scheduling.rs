//! The paper's Figure-1 scenario: an input-queued switch whose fabric
//! realizes one matching per cell time.
//!
//! ```text
//! cargo run --release --example switch_scheduling
//! ```
//!
//! Sweeps the offered load under uniform traffic and prints the
//! throughput/delay of PIM (the Israeli–Itai descendant), iSLIP (the
//! router standard), the distributed `(1−1/k)`-MCM of the paper, and
//! the centralized maximum-matching oracle.

use dam::switch::sched::distributed::{DistAlgo, Distributed};
use dam::switch::sched::islip::Islip;
use dam::switch::sched::oracle::MaxSize;
use dam::switch::sched::pim::Pim;
use dam::switch::sched::Scheduler;
use dam::switch::sim::{simulate, SwitchSimConfig};
use dam::switch::traffic::{ArrivalProcess, TrafficPattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ports = 8;
    println!("{ports}x{ports} VOQ switch, Bernoulli uniform traffic\n");
    println!(
        "{:>6}  {:<18} {:>10} {:>12} {:>9}",
        "load", "scheduler", "throughput", "mean delay", "backlog"
    );
    for load in [0.5, 0.8, 0.95] {
        let mut schedulers: Vec<(String, Box<dyn Scheduler>)> = vec![
            ("PIM-1".into(), Box::new(Pim::new(ports, 1))),
            ("iSLIP-2".into(), Box::new(Islip::new(ports, 2))),
            ("II (distributed)".into(), Box::new(Distributed::new(DistAlgo::IsraeliItai))),
            ("LPP-MCM k=3".into(), Box::new(Distributed::new(DistAlgo::BipartiteMcm { k: 3 }))),
            ("MaxSize oracle".into(), Box::new(MaxSize)),
        ];
        for (name, sched) in &mut schedulers {
            let cfg = SwitchSimConfig {
                ports,
                cells: if name.contains("dist") || name.contains("LPP") { 400 } else { 4_000 },
                load,
                pattern: TrafficPattern::Uniform,
                process: ArrivalProcess::Bernoulli,
                seed: 9,
                warmup: 200,
                speedup: 1,
            };
            let m = simulate(&cfg, sched.as_mut())?;
            println!(
                "{load:>6.2}  {name:<18} {:>10.4} {:>12.2} {:>9}",
                m.throughput, m.mean_delay, m.final_backlog
            );
        }
        println!();
    }
    println!("note: PIM-1 saturates around 63% while the better matchings stay stable —");
    println!("the quality of the per-cell matching is exactly what the paper improves.");
    Ok(())
}
