//! Quickstart: five minutes with `dam`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random bipartite graph, computes matchings with the
//! baseline (Israeli–Itai), the paper's `(1−1/k)`-MCM (Theorem 3.10),
//! and the weighted `(½−ε)`-MWM (Theorem 4.5), comparing each against
//! the exact optimum.

use dam::core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam::core::israeli_itai::israeli_itai;
use dam::core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam::graph::weights::{randomize_weights, WeightDist};
use dam::graph::{generators, hopcroft_karp, mwm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);

    // --- An unweighted bipartite instance: 60 + 60 nodes. -------------
    let g = generators::bipartite_gnp(60, 60, 0.08, &mut rng);
    let opt = hopcroft_karp::maximum_bipartite_matching_size(&g);
    println!("bipartite G(60,60,0.08): |E| = {}, OPT = {opt}", g.edge_count());

    // The classical baseline: a maximal matching (½-MCM) in O(log n).
    let ii = israeli_itai(&g, 1)?;
    println!(
        "  Israeli-Itai     : size {:>3} (ratio {:.3}) in {:>4} rounds",
        ii.matching.size(),
        ii.matching.size() as f64 / opt as f64,
        ii.stats.stats.rounds
    );

    // The paper's algorithm: (1 - 1/k)-MCM with O(log n)-bit messages.
    for k in [2, 3, 5] {
        let r = bipartite_mcm(&g, &BipartiteMcmConfig { k, seed: 1, ..Default::default() })?;
        println!(
            "  LPP-MCM (k = {k}) : size {:>3} (ratio {:.3}) in {:>4} rounds, widest msg {} bits",
            r.matching.size(),
            r.matching.size() as f64 / opt as f64,
            r.stats.stats.rounds,
            r.stats.stats.max_message_bits,
        );
    }

    // --- A weighted instance on a general graph. -----------------------
    let base = generators::gnp(80, 0.07, &mut rng);
    let wg = randomize_weights(&base, WeightDist::Exponential { lambda: 1.0 }, &mut rng);
    let wopt = mwm::maximum_weight(&wg);
    println!("\nweighted G(80, 0.07), exponential weights: OPT = {wopt:.3}");
    for eps in [0.2, 0.05] {
        let r = weighted_mwm(&wg, &WeightedMwmConfig { eps, seed: 2, ..Default::default() })?;
        println!(
            "  Algorithm 5 (eps = {eps:.2}): weight {:.3} (ratio {:.3} >= {:.3}) in {} rounds",
            r.matching.weight(&wg),
            r.matching.weight(&wg) / wopt,
            0.5 - eps,
            r.stats.stats.rounds,
        );
    }
    Ok(())
}
