//! The paper's §1 weighted example: servers and jobs.
//!
//! ```text
//! cargo run --release --example job_assignment
//! ```
//!
//! "There is a set of different servers and a set of jobs, and for each
//! job there is some benefit to be gained if the job is executed on one
//! of a given subset of the servers. Assuming that each server can
//! execute at most one job, maximizing the total gain is equivalent to
//! computing a maximal weight matching."
//!
//! We build a random benefit structure, let the *distributed* `(½−ε)`-MWM
//! negotiate an assignment (each server/job is a network node talking
//! only to its candidates), and compare against the exact optimum and the
//! classical greedy.

use dam::core::auction::{auction_mwm, AuctionConfig};
use dam::core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam::graph::{hungarian, maximal, Graph, Side};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let servers = 40;
    let jobs = 60;
    let mut rng = StdRng::seed_from_u64(7);

    // Each job can run on 2-5 random servers with benefit 1..100.
    let mut b = Graph::builder(servers + jobs);
    for j in 0..jobs {
        let candidates = rng.random_range(2..=5);
        for _ in 0..candidates {
            let s = rng.random_range(0..servers);
            let benefit = rng.random_range(1..=100) as f64;
            b.weighted_edge(s, servers + j, benefit);
        }
    }
    b.bipartition(
        (0..servers + jobs).map(|v| if v < servers { Side::X } else { Side::Y }).collect(),
    );
    let g = b.build()?;

    let opt = hungarian::maximum_weight_bipartite(&g);
    let greedy = maximal::greedy_mwm(&g);
    println!("{jobs} jobs on {servers} servers, {} candidate pairs", g.edge_count());
    println!("  exact optimum (Hungarian)     : {opt:>8.1}");
    println!(
        "  centralized greedy (1/2-MWM)  : {:>8.1}  (ratio {:.3})",
        greedy.weight(&g),
        greedy.weight(&g) / opt
    );

    for eps in [0.25, 0.05] {
        let r = weighted_mwm(&g, &WeightedMwmConfig { eps, seed: 3, ..Default::default() })?;
        println!(
            "  distributed Alg 5 (eps={eps:.2})  : {:>8.1}  (ratio {:.3}, {} CONGEST rounds, {} assigned)",
            r.matching.weight(&g),
            r.matching.weight(&g) / opt,
            r.stats.stats.rounds,
            r.matching.size(),
        );
    }
    // The price-based alternative: near-optimal, but rounds grow with
    // the weight scale.
    let a = auction_mwm(&g, &AuctionConfig { eps: 0.5, seed: 3, ..Default::default() })?;
    println!(
        "  distributed auction (eps=0.5) : {:>8.1}  (ratio {:.3}, {} CONGEST rounds, {} assigned)",
        a.matching.weight(&g),
        a.matching.weight(&g) / opt,
        a.stats.stats.rounds,
        a.matching.size(),
    );
    Ok(())
}
