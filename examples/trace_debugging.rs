//! Tracing a distributed execution round by round.
//!
//! ```text
//! cargo run --release --example trace_debugging
//! ```
//!
//! Runs Israeli–Itai on a small ring with full tracing and prints the
//! per-round message/halt activity plus a per-node timeline — useful
//! when developing new protocols against the simulator.

use dam::congest::{Network, SimConfig, TraceEvent};
use dam::core::israeli_itai::IiNode;
use dam::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::cycle(10);
    let mut net = Network::new(&g, SimConfig::congest_for(g.node_count(), 4).seed(11));
    let (out, trace) = net.run_traced(|v, graph| IiNode::new(graph.degree(v)))?;

    println!("Israeli-Itai on C_10, seed 11");
    println!("{}", out.stats);
    println!("\nper-round activity:\n{}", trace.summary());

    println!("per-node story:");
    for v in g.nodes() {
        let sends = trace.sends_of(v).count();
        let halted = trace.halt_round(v).map_or("never".to_string(), |r| format!("round {r}"));
        let mate =
            out.outputs[v].map_or("-".to_string(), |e| format!("{}", g.other_endpoint(e, v)));
        println!("  node {v}: {sends:>2} sends, halted {halted:>8}, mate {mate}");
    }

    // A few raw events, as the debugger would see them.
    println!("\nfirst 8 events:");
    for e in trace.events().iter().take(8) {
        match e {
            TraceEvent::Send { round, from, to, bits, .. } => {
                println!("  [r{round}] {from} -> {to} ({bits} bits)");
            }
            TraceEvent::Halt { round, node } => println!("  [r{round}] {node} halts"),
            TraceEvent::Fault { round, kind, node, .. } => {
                println!("  [r{round}] fault {kind:?} at {node}");
            }
            TraceEvent::Churn { round, kind } => {
                println!("  [r{round}] churn {kind:?}");
            }
        }
    }
    Ok(())
}
