//! Differential tests: independent implementations must agree.

use dam::congest::{Network, SimConfig};
use dam::core::israeli_itai::IiNode;
use dam::core::weighted::local_max::local_max_mwm;
use dam::graph::weights::{randomize_weights, WeightDist};
use dam::graph::{blossom, brute, generators, hopcroft_karp, hungarian, maximal, mwm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All four exact solvers agree on weighted bipartite instances.
#[test]
fn exact_solvers_agree_bipartite() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..25 {
        let base = generators::bipartite_gnp(6, 7, 0.4, &mut rng);
        let g = randomize_weights(&base, WeightDist::Integer { max: 15 }, &mut rng);
        let brute_w = brute::maximum_weight(&g);
        let hung = hungarian::maximum_weight_bipartite(&g);
        let gen = mwm::maximum_weight(&g);
        assert!((brute_w - hung).abs() < 1e-9, "brute {brute_w} vs hungarian {hung}");
        assert!((brute_w - gen).abs() < 1e-9, "brute {brute_w} vs mwm {gen}");
        // Cardinality: HK vs blossom vs brute.
        assert_eq!(
            hopcroft_karp::maximum_bipartite_matching_size(&base),
            blossom::maximum_matching_size(&base)
        );
        assert_eq!(blossom::maximum_matching_size(&base), brute::maximum_matching_size(&base));
    }
}

/// The distributed local-max equals the sequential local-max (identical
/// deterministic fixpoint), which in turn is a maximal matching.
#[test]
fn distributed_local_max_equals_sequential() {
    let mut rng = StdRng::seed_from_u64(12);
    for trial in 0..10 {
        let base = generators::gnp(30, 0.15, &mut rng);
        let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.1, hi: 9.0 }, &mut rng);
        let dist = local_max_mwm(&g, trial).unwrap().matching;
        let seq = maximal::local_max_mwm(&g);
        assert_eq!(dist.to_edge_vec(), seq.to_edge_vec(), "trial {trial}");
        assert!(maximal::is_maximal(&g, &dist));
    }
}

/// The parallel engine reproduces the sequential engine on a *real*
/// protocol (Israeli–Itai), bit for bit.
#[test]
fn parallel_engine_matches_sequential_on_israeli_itai() {
    let mut rng = StdRng::seed_from_u64(13);
    for trial in 0..5u64 {
        let g = generators::gnp(60, 0.08, &mut rng);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(trial);
        let seq = Network::new(&g, cfg).run(|v, graph| IiNode::new(graph.degree(v))).unwrap();
        for threads in [2usize, 5] {
            let par = Network::new(&g, cfg)
                .run_parallel(|v, graph| IiNode::new(graph.degree(v)), threads)
                .unwrap();
            assert_eq!(seq.outputs, par.outputs, "trial {trial}, {threads} threads");
            assert_eq!(seq.stats, par.stats, "trial {trial}, {threads} threads");
        }
    }
}

/// The sequential `Aug` reference (maximal disjoint shortest paths) and
/// the distributed bipartite machinery leave matchings of the same size
/// when run phase by phase — both implement Hopcroft–Karp phases.
#[test]
fn distributed_phases_match_sequential_hk_phases() {
    use dam::core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
    use dam::graph::paths::{augment_all, maximal_disjoint_paths, shortest_augmenting_path_len};
    use dam::graph::Matching;

    let mut rng = StdRng::seed_from_u64(14);
    for seed in 0..5u64 {
        let g = generators::bipartite_gnp(20, 20, 0.12, &mut rng);
        let k = 3usize;
        // Sequential: repeat maximal-shortest-augmentation while the
        // shortest path length is <= 2k-1.
        let mut m = Matching::new(&g);
        while let Some(l) = shortest_augmenting_path_len(&g, &m).unwrap() {
            if l > 2 * k - 1 {
                break;
            }
            let ps = maximal_disjoint_paths(&g, &m, l, Some(l));
            augment_all(&g, &mut m, &ps).unwrap();
        }
        let dist = bipartite_mcm(&g, &BipartiteMcmConfig { k, seed, ..Default::default() })
            .unwrap()
            .matching;
        // Both satisfy the same postcondition, hence the same Lemma 3.3
        // floor; sizes may differ by the randomness but both must be
        // >= (1-1/k)·OPT and neither can exceed OPT.
        let opt = hopcroft_karp::maximum_bipartite_matching_size(&g);
        for (name, size) in [("sequential", m.size()), ("distributed", dist.size())] {
            assert!(
                size as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9 && size <= opt,
                "seed {seed} {name}: size {size} vs opt {opt}"
            );
        }
    }
}

/// Footnote 2 end-to-end: Israeli–Itai — a real randomized matching
/// protocol — run on the *asynchronous* executor (α-synchronizer,
/// adversarially skewed link delays) computes exactly the matching the
/// synchronous engine computes.
#[test]
fn israeli_itai_is_asynchrony_proof() {
    use dam::congest::{AsyncNetwork, DelayModel};
    let mut rng = StdRng::seed_from_u64(16);
    for trial in 0..5u64 {
        let g = generators::gnp(30, 0.15, &mut rng);
        let cfg = SimConfig::local().seed(trial);
        let sync = Network::new(&g, cfg).run(|v, graph| IiNode::new(graph.degree(v))).unwrap();
        for delays in [DelayModel::UniformRandom { max: 25 }, DelayModel::LinkSkew { spread: 11 }] {
            let (outputs, stats) = AsyncNetwork::new(&g, trial)
                .run_async(|v, graph| IiNode::new(graph.degree(v)), delays)
                .unwrap();
            assert_eq!(outputs, sync.outputs, "trial {trial}, {delays:?}");
            assert!(stats.marker_messages > 0, "the synchronizer must pay its overhead");
        }
    }
}

/// Maximal matchings from every implementation are within 2x of each
/// other (they all 2-approximate the same optimum).
#[test]
fn maximal_matchings_mutually_2_approximate() {
    let mut rng = StdRng::seed_from_u64(15);
    for trial in 0..10 {
        let g = generators::gnp(40, 0.1, &mut rng);
        let a = dam::core::israeli_itai::israeli_itai(&g, trial).unwrap().matching.size();
        let b = maximal::random_maximal_matching(&g, &mut rng).size();
        let c = maximal::greedy_mwm(&g).size();
        let lo = a.min(b).min(c).max(1);
        let hi = a.max(b).max(c);
        assert!(hi <= 2 * lo, "trial {trial}: sizes {a},{b},{c}");
    }
}
