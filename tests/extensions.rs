//! Integration tests for the extension modules: the §4-Remark
//! `(1−ε)`-MWM, distributed `b`-matching, the matching LCA, and the
//! König certificates tying them to the oracles.

use dam::core::hv::{hv_mwm, HvMwmConfig};
use dam::core::lca::MatchingLca;
use dam::core::weighted::b_local_max::b_local_max;
use dam::core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam::graph::bmatching::brute_force_b_matching;
use dam::graph::cover::certify_maximum_bipartite;
use dam::graph::weights::{randomize_weights, WeightDist};
use dam::graph::{generators, hopcroft_karp, karp_sipser, mwm};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The §4-Remark algorithm dominates the Theorem 4.5 floor and, run to
/// exhaustion on small graphs, reaches the exact optimum.
#[test]
fn hv_exceeds_half_and_exhausts_to_optimum() {
    let mut rng = StdRng::seed_from_u64(91);
    for trial in 0..4u64 {
        let base = generators::gnp(12, 0.3, &mut rng);
        let g = randomize_weights(&base, WeightDist::Integer { max: 20 }, &mut rng);
        let opt = mwm::maximum_weight(&g);
        let hv = hv_mwm(&g, &HvMwmConfig { max_len: Some(13), seed: trial, ..Default::default() })
            .unwrap();
        assert!((hv.matching.weight(&g) - opt).abs() < 1e-9, "trial {trial}");
        let a5 =
            weighted_mwm(&g, &WeightedMwmConfig { eps: 0.1, seed: trial, ..Default::default() })
                .unwrap();
        assert!(hv.matching.weight(&g) >= a5.matching.weight(&g) - 1e-9);
    }
}

/// Distributed b-matching at capacity 1 equals the plain distributed
/// matching; at higher capacities it stays ½-approximate.
#[test]
fn b_matching_integration() {
    let mut rng = StdRng::seed_from_u64(92);
    for trial in 0..5u64 {
        let base = generators::gnp(10, 0.4, &mut rng);
        let g = randomize_weights(&base, WeightDist::Integer { max: 8 }, &mut rng);
        let caps: Vec<usize> = (0..g.node_count()).map(|_| rng.random_range(1..=3)).collect();
        let dist = b_local_max(&g, &caps, trial).unwrap();
        let opt = brute_force_b_matching(&g, &caps);
        assert!(dist.b_matching.weight(&g) >= 0.5 * opt.weight(&g) - 1e-9, "trial {trial}");
    }
}

/// The LCA's implicit matching is a real maximal matching, consistent
/// across arbitrary query patterns.
#[test]
fn lca_integration() {
    let mut rng = StdRng::seed_from_u64(93);
    let g = generators::power_law(60, 2.5, 3.0, &mut rng);
    let lca = MatchingLca::new(&g, 17);
    // Scatter queries, then materialize: answers must be stable.
    let mut spot: Vec<(usize, bool)> = Vec::new();
    for _ in 0..30 {
        let e = rng.random_range(0..g.edge_count().max(1));
        spot.push((e, lca.edge_in_matching(e)));
    }
    let m = lca.materialize();
    m.validate(&g).unwrap();
    assert!(dam::graph::maximal::is_maximal(&g, &m));
    for (e, ans) in spot {
        assert_eq!(m.contains(e), ans, "query/materialize disagreement at {e}");
    }
}

/// König certificates close the oracle loop: HK's matchings carry an
/// independently verified optimality proof, and our distributed
/// bipartite matchings never exceed a certified optimum.
#[test]
fn koenig_certificates_bound_distributed_results() {
    use dam::core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
    let mut rng = StdRng::seed_from_u64(94);
    for trial in 0..5u64 {
        let g = generators::bipartite_gnp(18, 18, 0.15, &mut rng);
        let hk = hopcroft_karp::maximum_bipartite_matching(&g);
        assert!(certify_maximum_bipartite(&g, &hk), "HK certificate failed");
        let dist =
            bipartite_mcm(&g, &BipartiteMcmConfig { k: 4, seed: trial, ..Default::default() })
                .unwrap();
        assert!(dist.matching.size() <= hk.size(), "distributed exceeded a certified optimum");
        assert!(4 * dist.matching.size() >= 3 * hk.size());
    }
}

/// Karp–Sipser slots into the baseline family: maximal, near-optimal on
/// sparse inputs, and never better than the certified optimum.
#[test]
fn karp_sipser_baseline() {
    let mut rng = StdRng::seed_from_u64(95);
    let g = generators::bipartite_gnp(25, 25, 0.08, &mut rng);
    let ks = karp_sipser::karp_sipser(&g, &mut rng);
    let hk = hopcroft_karp::maximum_bipartite_matching(&g);
    assert!(ks.size() <= hk.size());
    assert!(2 * ks.size() >= hk.size());
}
