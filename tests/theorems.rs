//! End-to-end validation of the paper's four theorems, across graph
//! families and seeds, against exact oracles.

use dam::core::bipartite::{bipartite_mcm, bipartite_mcm_eps, BipartiteMcmConfig};
use dam::core::general::{general_mcm, GeneralMcmConfig};
use dam::core::generic::{generic_mcm, GenericMcmConfig};
use dam::core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam::graph::weights::{randomize_weights, WeightDist};
use dam::graph::{blossom, generators, hopcroft_karp, mwm, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 3.10: `(1−1/k)`-MCM in bipartite graphs.
#[test]
fn theorem_3_10_bipartite_ratio() {
    let mut rng = StdRng::seed_from_u64(1);
    let families: Vec<Graph> = vec![
        generators::bipartite_gnp(40, 40, 0.06, &mut rng),
        generators::bipartite_gnp(30, 50, 0.12, &mut rng),
        generators::bipartite_regular_out(36, 36, 3, &mut rng),
        generators::disjoint_paths(8, 7),
        generators::grid(6, 7),
        generators::complete_bipartite(12, 9),
    ];
    for (gi, g) in families.iter().enumerate() {
        let opt = hopcroft_karp::maximum_bipartite_matching_size(g);
        for k in [2usize, 3, 4] {
            for seed in 0..3u64 {
                let r = bipartite_mcm(g, &BipartiteMcmConfig { k, seed, ..Default::default() })
                    .unwrap();
                r.matching.validate(g).unwrap();
                assert!(
                    r.matching.size() as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9,
                    "family {gi}, k={k}, seed={seed}: {} < (1-1/{k})·{opt}",
                    r.matching.size()
                );
            }
        }
    }
}

/// Theorem 3.10 via the `ε` convenience API.
#[test]
fn theorem_3_10_eps_api() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = generators::bipartite_gnp(30, 30, 0.1, &mut rng);
    let opt = hopcroft_karp::maximum_bipartite_matching_size(&g);
    let r = bipartite_mcm_eps(&g, 0.25, 7).unwrap();
    assert!(r.matching.size() as f64 >= 0.75 * opt as f64 - 1e-9);
}

/// Theorem 3.15: `(1−1/k)`-MCM in general graphs (Algorithm 4).
#[test]
fn theorem_3_15_general_ratio() {
    let mut rng = StdRng::seed_from_u64(3);
    let families: Vec<Graph> = vec![
        generators::gnp(40, 0.1, &mut rng),
        generators::random_regular(40, 3, &mut rng),
        generators::cycle(31),
        generators::flower(4),
        generators::power_law(40, 2.5, 3.0, &mut rng),
        generators::random_tree(45, &mut rng),
    ];
    for (gi, g) in families.iter().enumerate() {
        let opt = blossom::maximum_matching_size(g);
        for k in [2usize, 3] {
            let r = general_mcm(g, &GeneralMcmConfig { k, seed: gi as u64, ..Default::default() })
                .unwrap();
            r.matching.validate(g).unwrap();
            assert!(
                r.matching.size() as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9,
                "family {gi}, k={k}: {} < (1-1/{k})·{opt}",
                r.matching.size()
            );
        }
    }
}

/// Theorem 3.7: the generic LOCAL algorithm achieves `(1−1/(k+1))` with
/// `k` phases.
#[test]
fn theorem_3_7_generic_ratio() {
    let mut rng = StdRng::seed_from_u64(4);
    for (i, g) in
        [generators::gnp(20, 0.15, &mut rng), generators::cycle(15), generators::flower(3)]
            .iter()
            .enumerate()
    {
        let opt = blossom::maximum_matching_size(g);
        let k = 2;
        let r =
            generic_mcm(g, &GenericMcmConfig { k, seed: i as u64, ..Default::default() }).unwrap();
        assert!(
            (k + 1) * r.matching.size() >= k * opt,
            "family {i}: {} < (1-1/{})·{opt}",
            r.matching.size(),
            k + 1
        );
    }
}

/// Theorem 4.5: `(½−ε)`-MWM.
#[test]
fn theorem_4_5_weighted_ratio() {
    let mut rng = StdRng::seed_from_u64(5);
    for trial in 0..4u64 {
        let base = generators::gnp(30, 0.12, &mut rng);
        for dist in [
            WeightDist::Uniform { lo: 0.1, hi: 4.0 },
            WeightDist::Integer { max: 50 },
            WeightDist::PowersOfTwo { classes: 8 },
        ] {
            let g = randomize_weights(&base, dist, &mut rng);
            let opt = mwm::maximum_weight(&g);
            for eps in [0.25, 0.05] {
                let r =
                    weighted_mwm(&g, &WeightedMwmConfig { eps, seed: trial, ..Default::default() })
                        .unwrap();
                r.matching.validate(&g).unwrap();
                assert!(
                    r.matching.weight(&g) >= (0.5 - eps) * opt - 1e-9,
                    "trial {trial}, {dist:?}, eps={eps}: {} < {}",
                    r.matching.weight(&g),
                    (0.5 - eps) * opt
                );
            }
        }
    }
}

/// Lemma 3.2 materialized: after the k-th phase no augmenting path of
/// length `≤ 2k−1` survives.
#[test]
fn post_condition_no_short_augmenting_paths() {
    let mut rng = StdRng::seed_from_u64(6);
    for seed in 0..4u64 {
        let g = generators::bipartite_gnp(25, 25, 0.1, &mut rng);
        let k = 3;
        let r = bipartite_mcm(&g, &BipartiteMcmConfig { k, seed, ..Default::default() }).unwrap();
        let paths = dam::graph::paths::enumerate_augmenting_paths(&g, &r.matching, 2 * k - 1);
        assert!(
            paths.is_empty(),
            "seed {seed}: {} augmenting paths of length <= {} survived",
            paths.len(),
            2 * k - 1
        );
    }
}

/// Larger-scale smoke: the machinery holds up at n = 2000 and the round
/// count stays logarithmic-ish (far below n).
#[test]
fn large_scale_round_sanity() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::bipartite_gnp(1000, 1000, 8.0 / 2000.0, &mut rng);
    let r = bipartite_mcm(&g, &BipartiteMcmConfig { k: 3, seed: 1, ..Default::default() }).unwrap();
    let opt = hopcroft_karp::maximum_bipartite_matching_size(&g);
    assert!(3 * r.matching.size() >= 2 * opt);
    assert!(
        r.stats.stats.rounds < 2000,
        "rounds {} should be far below n = 2000",
        r.stats.stats.rounds
    );
}
