//! Moderate-scale end-to-end runs: the simulator and algorithms at
//! thousands-of-nodes sizes (each test is tuned to finish in seconds
//! under the optimized test profile).

use dam::core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam::core::israeli_itai::israeli_itai;
use dam::core::trees::tree_mcm;
use dam::core::weighted::local_max::local_max_mwm;
use dam::graph::weights::{randomize_weights, WeightDist};
use dam::graph::{generators, hopcroft_karp};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn israeli_itai_at_50k_nodes() {
    let mut rng = StdRng::seed_from_u64(201);
    let g = generators::random_regular(50_000, 4, &mut rng);
    let r = israeli_itai(&g, 1).unwrap();
    r.matching.validate(&g).unwrap();
    assert!(dam::graph::maximal::is_maximal(&g, &r.matching));
    assert!(
        r.stats.stats.rounds < 200,
        "50k nodes should still settle in O(log n)-ish rounds: {}",
        r.stats.stats.rounds
    );
}

#[test]
fn bipartite_mcm_at_10k_nodes() {
    let mut rng = StdRng::seed_from_u64(202);
    let g = generators::bipartite_gnp(5_000, 5_000, 8.0 / 10_000.0, &mut rng);
    let r = bipartite_mcm(&g, &BipartiteMcmConfig { k: 3, seed: 1, ..Default::default() }).unwrap();
    let opt = hopcroft_karp::maximum_bipartite_matching_size(&g);
    assert!(3 * r.matching.size() >= 2 * opt);
    assert!(r.stats.stats.rounds < 1_000, "rounds: {}", r.stats.stats.rounds);
    // The widest message stays logarithmic: a few words of 14-bit ids.
    assert!(r.stats.stats.max_message_bits < 512);
}

#[test]
fn local_max_at_30k_edges() {
    let mut rng = StdRng::seed_from_u64(203);
    let base = generators::random_regular(10_000, 6, &mut rng);
    let g = randomize_weights(&base, WeightDist::Exponential { lambda: 1.0 }, &mut rng);
    let r = local_max_mwm(&g, 2).unwrap();
    r.matching.validate(&g).unwrap();
    // Identical to the sequential fixpoint even at scale.
    let seq = dam::graph::maximal::local_max_mwm(&g);
    assert_eq!(r.matching.size(), seq.size());
    assert!((r.matching.weight(&g) - seq.weight(&g)).abs() < 1e-6);
}

#[test]
fn tree_mcm_on_deep_tree() {
    // A path of 4k nodes: diameter-bound algorithms really pay it.
    let g = generators::path(4_000);
    let r = tree_mcm(&g, 3).unwrap();
    assert_eq!(r.matching.size(), 2_000);
    assert!(r.stats.stats.rounds >= 4_000, "the diameter must show up in rounds");
}

#[test]
fn parallel_engine_agrees_at_scale() {
    use dam::congest::{Network, SimConfig};
    use dam::core::israeli_itai::IiNode;
    let mut rng = StdRng::seed_from_u64(204);
    let g = generators::random_regular(20_000, 4, &mut rng);
    let cfg = SimConfig::congest_for(g.node_count(), 4).seed(5);
    let seq = Network::new(&g, cfg).run(|v, graph| IiNode::new(graph.degree(v))).unwrap();
    let par =
        Network::new(&g, cfg).run_parallel(|v, graph| IiNode::new(graph.degree(v)), 8).unwrap();
    assert_eq!(seq.outputs, par.outputs);
    assert_eq!(seq.stats, par.stats);
}
