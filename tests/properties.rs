//! Property-based tests (proptest) over random graphs, matchings and
//! weight functions.

use dam::graph::{
    blossom, brute, conflict::ConflictGraph, generators, hopcroft_karp, maximal, mwm, paths, Graph,
    Matching,
};
use proptest::prelude::*;

/// Strategy: a random simple graph on `2..=max_n` nodes given a list of
/// candidate edges chosen by index.
fn arb_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(move |n| {
        let all: Vec<(usize, usize)> =
            (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
        let m = all.len();
        proptest::collection::vec(0..m, 0..max_edges.min(m)).prop_map(move |picks| {
            let mut b = Graph::builder(n);
            let mut seen = std::collections::HashSet::new();
            for i in picks {
                if seen.insert(i) {
                    b.edge(all[i].0, all[i].1);
                }
            }
            b.build().expect("simple graphs are valid")
        })
    })
}

/// Strategy: the same with random positive weights.
fn arb_weighted_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    arb_graph(max_n, max_edges).prop_flat_map(|g| {
        let m = g.edge_count();
        proptest::collection::vec(1u32..100, m..=m).prop_map(move |ws| {
            g.with_weights(ws.iter().map(|&w| f64::from(w)).collect()).expect("positive weights")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Toggling an augmenting path twice restores the matching exactly.
    #[test]
    fn toggle_is_an_involution(g in arb_graph(10, 20)) {
        let m0 = maximal::greedy_mwm(&g);
        // Remove one edge to re-open augmenting paths.
        let mut m = m0.clone();
        if let Some(e) = m.to_edge_vec().first().copied() {
            m.remove(&g, e);
        }
        let before = m.to_edge_vec();
        for p in paths::enumerate_augmenting_paths(&g, &m, 5).into_iter().take(3) {
            let mut m2 = m.clone();
            m2.toggle(&g, p.edges()).unwrap();
            prop_assert!(m2.validate(&g).is_ok());
            prop_assert_eq!(m2.size(), m.size() + 1);
            m2.toggle(&g, p.edges()).unwrap();
            prop_assert_eq!(m2.to_edge_vec(), before.clone());
        }
    }

    /// Blossom agrees with brute force on arbitrary graphs.
    #[test]
    fn blossom_is_exact(g in arb_graph(9, 16)) {
        prop_assert_eq!(blossom::maximum_matching_size(&g), brute::maximum_matching_size(&g));
    }

    /// Exact MWM agrees with brute force on arbitrary weighted graphs.
    #[test]
    fn mwm_is_exact(g in arb_weighted_graph(8, 13)) {
        let a = mwm::maximum_weight(&g);
        let b = brute::maximum_weight(&g);
        prop_assert!((a - b).abs() < 1e-6, "mwm {} vs brute {}", a, b);
    }

    /// Every ½-baseline really achieves ½ of the exact optimum.
    #[test]
    fn half_baselines_hold(g in arb_weighted_graph(9, 14)) {
        let opt = brute::maximum_weight(&g);
        prop_assert!(maximal::greedy_mwm(&g).weight(&g) >= 0.5 * opt - 1e-9);
        prop_assert!(maximal::path_growing_mwm(&g).weight(&g) >= 0.5 * opt - 1e-9);
        prop_assert!(maximal::local_max_mwm(&g).weight(&g) >= 0.5 * opt - 1e-9);
    }

    /// Lemma 3.3 (Hopcroft–Karp): if the shortest augmenting path has
    /// length 2k-1, the matching is a (1-1/k) approximation.
    #[test]
    fn lemma_3_3_bound(g in arb_graph(10, 18)) {
        let mut m = Matching::new(&g);
        // Build some matching by augmenting along length-1 paths only.
        let ps = paths::maximal_disjoint_paths(&g, &m, 1, Some(1));
        paths::augment_all(&g, &mut m, &ps).unwrap();
        // Shortest augmenting path is now >= 3 (k = 2).
        let all1 = paths::enumerate_augmenting_paths(&g, &m, 1);
        prop_assert!(all1.is_empty(), "maximality failed");
        let opt = brute::maximum_matching_size(&g);
        prop_assert!(2 * m.size() >= opt, "Lemma 3.3 k=2 violated: {} vs {}", m.size(), opt);
    }

    /// Conflict-graph MIS selection always yields disjoint, applicable
    /// augmentations (Definition 3.1 / Algorithm 1 step 7).
    #[test]
    fn conflict_mis_augments_cleanly(g in arb_graph(9, 14)) {
        let mut m = Matching::new(&g);
        for l in [1usize, 3] {
            let c = ConflictGraph::build(&g, &m, l);
            let mis = c.greedy_mis();
            prop_assert!(c.is_maximal_independent(&mis));
            let chosen = c.select(&mis);
            let before = m.size();
            paths::augment_all(&g, &mut m, &chosen).unwrap();
            prop_assert!(m.validate(&g).is_ok());
            prop_assert_eq!(m.size(), before + chosen.len());
        }
    }

    /// matching_from_registers accepts exactly the consistent register
    /// assignments.
    #[test]
    fn registers_consistency(g in arb_graph(8, 12), corrupt in any::<bool>()) {
        let m = maximal::greedy_mwm(&g);
        let mut regs: Vec<Option<usize>> = (0..g.node_count()).map(|v| m.matched_edge(v)).collect();
        if corrupt && m.size() > 0 {
            // Point one endpoint somewhere else.
            let v = regs.iter().position(|r| r.is_some()).unwrap();
            regs[v] = None;
            let res = dam::core::report::matching_from_registers(&g, &regs);
            prop_assert!(res.is_err());
        } else {
            let rebuilt = dam::core::report::matching_from_registers(&g, &regs).unwrap();
            prop_assert_eq!(rebuilt.to_edge_vec(), m.to_edge_vec());
        }
    }

    /// Hopcroft–Karp equals blossom on bipartite instances.
    #[test]
    fn hk_equals_blossom_on_bipartite(seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::bipartite_gnp(7, 8, 0.3, &mut rng);
        prop_assert_eq!(
            hopcroft_karp::maximum_bipartite_matching_size(&g),
            blossom::maximum_matching_size(&g)
        );
    }

    /// The distributed weighted algorithm never violates its floor, for
    /// arbitrary weighted graphs (not just the generators).
    #[test]
    fn weighted_floor_on_arbitrary_graphs(g in arb_weighted_graph(8, 12), seed in 0u64..50) {
        use dam::core::weighted::{weighted_mwm, WeightedMwmConfig};
        let cfg = WeightedMwmConfig { eps: 0.1, seed, ..Default::default() };
        let r = weighted_mwm(&g, &cfg).unwrap();
        prop_assert!(r.matching.validate(&g).is_ok());
        let opt = brute::maximum_weight(&g);
        prop_assert!(r.matching.weight(&g) >= (0.5 - 0.1) * opt - 1e-9);
    }

    /// Israeli–Itai always terminates with a maximal matching, for
    /// arbitrary graphs and seeds.
    #[test]
    fn israeli_itai_always_maximal(g in arb_graph(12, 24), seed in 0u64..100) {
        let r = dam::core::israeli_itai::israeli_itai(&g, seed).unwrap();
        prop_assert!(r.matching.validate(&g).is_ok());
        prop_assert!(maximal::is_maximal(&g, &r.matching));
    }
}
