//! Failure injection: how load-bearing is the paper's fault-free
//! assumption (§2, footnote 2: "we do not consider faults")?
//!
//! These tests *measure* the failure modes rather than hide them:
//! crash-stop neighbours stall termination-by-quiescence protocols (the
//! round guard fires — that is the finding), message loss can leave the
//! two endpoints of an edge disagreeing about their match (the register
//! cross-validation catches it), while fixed-schedule protocols sail
//! through both.

use dam::congest::{Context, FaultPlan, Network, Port, Protocol, SimConfig};
use dam::core::israeli_itai::IiNode;
use dam::core::report::matching_from_registers;
use dam::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fixed-schedule protocol: broadcast for exactly `rounds` rounds,
/// then stop. Immune to crashes and loss by construction.
struct FixedGossip {
    rounds: usize,
    heard: u64,
}

impl Protocol for FixedGossip {
    type Msg = u8;
    type Output = u64;
    fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
        ctx.broadcast(1);
    }
    fn on_round(&mut self, ctx: &mut Context<'_, u8>, inbox: &[(Port, u8)]) {
        self.heard += inbox.len() as u64;
        if ctx.round() >= self.rounds {
            ctx.halt();
        } else {
            ctx.broadcast(1);
        }
    }
    fn into_output(self) -> u64 {
        self.heard
    }
}

/// Crashing a node mid-run degrades fixed-schedule protocols gracefully:
/// everyone still terminates; survivors just hear less.
#[test]
fn fixed_schedule_survives_crashes() {
    let g = generators::cycle(10);
    let mut net = Network::new(&g, SimConfig::local().seed(1));
    let clean = net.run(|_, _| FixedGossip { rounds: 8, heard: 0 }).unwrap();
    let mut net = Network::new(&g, SimConfig::local().seed(1));
    let faulty = net
        .run_faulty(|_, _| FixedGossip { rounds: 8, heard: 0 }, &FaultPlan::crashes(vec![(3, 4)]))
        .unwrap();
    // Node 3's neighbours (2 and 4) hear strictly less than in the clean
    // run; distant nodes are unaffected.
    assert!(faulty.outputs[2] < clean.outputs[2]);
    assert!(faulty.outputs[4] < clean.outputs[4]);
    assert_eq!(faulty.outputs[8], clean.outputs[8]);
}

/// Israeli–Itai relies on quiescence for termination: a crashed *free*
/// neighbour keeps its neighbours proposing forever, and the round
/// guard fires. The fault-free assumption is load-bearing.
#[test]
fn israeli_itai_stalls_on_crashed_free_neighbour() {
    // A star: if the centre crashes immediately, every leaf still sees a
    // "live" free neighbour and never halts.
    let g = generators::star(6);
    let mut net = Network::new(&g, SimConfig::congest_for(6, 4).seed(2).max_rounds(2_000));
    let result =
        net.run_faulty(|v, graph| IiNode::new(graph.degree(v)), &FaultPlan::crashes(vec![(0, 1)]));
    assert!(result.is_err(), "leaves must spin waiting for the crashed centre");
}

/// Crashing an already-matched node after it announced is harmless: the
/// rest of the matching completes and the survivor registers are
/// consistent.
#[test]
fn late_crashes_leave_consistent_survivors() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut checked = 0;
    for trial in 0..20u64 {
        let g = generators::gnp(20, 0.2, &mut rng);
        // Crash two nodes late, after the matching has mostly settled.
        let plan = FaultPlan::crashes(vec![(1, 40), (7, 45)]);
        let mut net = Network::new(&g, SimConfig::congest_for(20, 4).seed(trial).max_rounds(2_000));
        let Ok(out) = net.run_faulty(|v, graph| IiNode::new(graph.degree(v)), &plan) else {
            continue; // this seed stalled: covered by the test above
        };
        // All survivors' registers must still cross-validate.
        matching_from_registers(&g, &out.outputs).unwrap();
        checked += 1;
    }
    assert!(checked > 0, "at least some seeds must complete despite crashes");
}

/// Message loss can split an II handshake: the Accept is dropped, the
/// receiver believes it is matched, the proposer does not. The register
/// cross-validation detects the inconsistency — which is the point: the
/// algorithm is not loss-tolerant, and the harness can prove it.
#[test]
fn message_loss_breaks_handshakes_detectably() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut inconsistent = 0;
    let mut total = 0;
    for trial in 0..30u64 {
        let g = generators::gnp(24, 0.2, &mut rng);
        let mut net = Network::new(&g, SimConfig::congest_for(24, 4).seed(trial).max_rounds(3_000));
        let Ok(out) =
            net.run_faulty(|v, graph| IiNode::new(graph.degree(v)), &FaultPlan::lossy(0.15))
        else {
            continue; // stalled runs are the other failure mode
        };
        total += 1;
        if matching_from_registers(&g, &out.outputs).is_err() {
            inconsistent += 1;
        }
    }
    assert!(total > 0, "some lossy runs should still terminate");
    assert!(inconsistent > 0, "15% loss over {total} runs should break at least one handshake");
}

/// Loss-free fault plans are a no-op: run_faulty(default) == run.
#[test]
fn empty_fault_plan_is_identity() {
    let g = generators::cycle(12);
    let a = Network::new(&g, SimConfig::local().seed(9))
        .run(|v, graph| IiNode::new(graph.degree(v)))
        .unwrap();
    let b = Network::new(&g, SimConfig::local().seed(9))
        .run_faulty(|v, graph| IiNode::new(graph.degree(v)), &FaultPlan::default())
        .unwrap();
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.stats, b.stats);
}
