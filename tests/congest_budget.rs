//! Message-width guarantees: the CONGEST algorithms must fit their
//! declared budgets, and the LOCAL algorithm must visibly not.

use dam::congest::message::id_bits;
use dam::core::bipartite::{bipartite_mcm, BipartiteMcmConfig, PhaseParams};
use dam::core::general::{general_mcm, GeneralMcmConfig};
use dam::core::generic::{generic_mcm, GenericMcmConfig};
use dam::core::israeli_itai::israeli_itai;
use dam::core::luby::luby_mis;
use dam::core::weighted::local_max::local_max_mwm;
use dam::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Constant-width protocols never violate CONGEST(4 log n).
#[test]
fn constant_width_protocols_fit() {
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..5 {
        let g = generators::gnp(80, 0.08, &mut rng);
        let ii = israeli_itai(&g, 3).unwrap();
        assert_eq!(ii.stats.stats.violations, 0);
        assert!(ii.stats.stats.max_message_bits <= 2);

        let lm = local_max_mwm(&g, 3).unwrap();
        assert_eq!(lm.stats.stats.violations, 0);
        assert!(lm.stats.stats.max_message_bits <= 1);

        let mis = luby_mis(&g, 3).unwrap();
        assert_eq!(mis.stats.violations, 0);
        assert!(mis.stats.max_message_bits <= 4 * id_bits(g.node_count()));
    }
}

/// The bipartite machinery's widest message respects the analytical
/// token bound `4(log n + ⌈ℓ/2⌉ log Δ)` of §3.2.
#[test]
fn bipartite_messages_respect_token_bound() {
    let mut rng = StdRng::seed_from_u64(22);
    let g = generators::bipartite_gnp(60, 60, 0.07, &mut rng);
    let k = 3;
    let r = bipartite_mcm(&g, &BipartiteMcmConfig { k, seed: 1, ..Default::default() }).unwrap();
    let params = PhaseParams { l: 2 * k - 1, n: g.node_count(), delta: g.max_degree() };
    assert!(
        r.stats.stats.max_message_bits <= params.token_bits() as usize,
        "widest {} exceeds the ℓ = 2k−1 token bound {}",
        r.stats.stats.max_message_bits,
        params.token_bits()
    );
    // And the width is Θ(ℓ log Δ), i.e. a small multiple of log n — far
    // below the LOCAL blow-up.
    assert!(r.stats.stats.max_message_bits <= 20 * id_bits(g.node_count()));
}

/// Algorithm 4 inherits the bounded widths (its extra colouring messages
/// are 2 bits).
#[test]
fn general_mcm_messages_bounded() {
    let mut rng = StdRng::seed_from_u64(23);
    let g = generators::gnp(50, 0.1, &mut rng);
    let r = general_mcm(&g, &GeneralMcmConfig { k: 2, seed: 2, ..Default::default() }).unwrap();
    let params = PhaseParams { l: 3, n: g.node_count(), delta: g.max_degree() };
    assert!(r.stats.stats.max_message_bits <= params.token_bits() as usize);
}

/// The LOCAL generic algorithm's messages exceed any `O(log n)` budget —
/// Lemma 3.4's blow-up is real and measurable.
#[test]
fn generic_local_messages_blow_up() {
    let mut rng = StdRng::seed_from_u64(24);
    let g = generators::gnp(40, 0.25, &mut rng);
    let r = generic_mcm(&g, &GenericMcmConfig { k: 2, seed: 2, ..Default::default() }).unwrap();
    let congest_budget = 4 * id_bits(g.node_count());
    assert!(
        r.stats.stats.max_message_bits > 10 * congest_budget,
        "LOCAL widest message {} should dwarf the CONGEST budget {}",
        r.stats.stats.max_message_bits,
        congest_budget
    );
}

/// Pipelined cost accounting only ever increases charged rounds, and
/// only when messages exceed the link budget.
#[test]
fn pipelined_cost_monotonicity() {
    let mut rng = StdRng::seed_from_u64(25);
    let g = generators::bipartite_gnp(40, 40, 0.08, &mut rng);
    let unit =
        bipartite_mcm(&g, &BipartiteMcmConfig { k: 3, seed: 4, ..Default::default() }).unwrap();
    let piped = bipartite_mcm(
        &g,
        &BipartiteMcmConfig {
            k: 3,
            seed: 4,
            cost: dam::congest::CostModel::Pipelined,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(unit.stats.stats.rounds, piped.stats.stats.rounds, "same execution");
    assert!(piped.stats.stats.charged_rounds >= piped.stats.stats.rounds);
    assert_eq!(unit.stats.stats.charged_rounds, unit.stats.stats.rounds);
}
