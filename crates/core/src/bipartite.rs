//! §3.2: `(1−1/k)`-MCM in bipartite graphs with `O(log n)`-bit messages
//! (Theorem 3.10).
//!
//! The machinery has three stages per *pass*, all in one [`PhaseNode`]
//! protocol over `3ℓ+2` rounds:
//!
//! 1. **Counting** (Algorithm 3, rounds `0..=ℓ`): a BFS from all free `X`
//!    nodes counts, per node, the number of shortest half-augmenting paths
//!    arriving over each port (`c_v[i]`, `n_v` — Lemma 3.8).
//! 2. **Lottery + token walk** (rounds `ℓ..=2ℓ`): each free `Y` node that
//!    heads `n_y` paths draws the *maximum of `n_y` uniforms* in one shot —
//!    we sample the exact monotone reparametrization `key = ln(U)/n_y`
//!    (`max of n uniforms ~ U^{1/n}`) so the winner distribution matches
//!    Luby's analysis — and releases a token that walks *backwards*,
//!    choosing port `i` with probability `c_v[i]/n_v`. Colliding tokens
//!    keep the largest key (ties by leader id). Surviving tokens trace a
//!    set of vertex-disjoint augmenting paths: one Luby iteration on the
//!    conflict graph `C_M(ℓ)`, emulated in `O(ℓ)` rounds (Lemma 3.9).
//! 3. **Augmentation** (rounds `2ℓ..=3ℓ+1`): tokens that reached a free
//!    `X` node retrace their recorded path forwards, flipping matched /
//!    unmatched edges; both endpoints of every flipped edge update their
//!    output registers.
//!
//! The driver repeats passes until no augmenting path of length `ℓ`
//! remains (each pass augments at least one path — the globally largest
//! key never loses a collision — so the loop always terminates), then
//! moves to the next phase `ℓ ∈ {1, 3, …, 2k−1}`; Lemmas 3.2/3.3 give the
//! `(1−1/k)` guarantee.
//!
//! Counts and winner keys are `Θ(ℓ log Δ)`-bit quantities; messages carry
//! their **analytical** widths so the CONGEST accounting (and the
//! [`dam_congest::CostModel::Pipelined`] round charging) reflects the
//! paper's Lemma 3.9 arithmetic.

use dam_congest::message::id_bits;
use dam_congest::{BitSize, Context, Network, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph, GraphError, Matching, Side, Topology};
use rand::RngExt;

use crate::error::CoreError;
use crate::israeli_itai::IiNode;
use crate::repair::sanitize_registers_on;
use crate::report::{matching_from_registers, AlgorithmReport};
use crate::runtime::{run_mm, Algorithm, Exec, MainRun, RuntimeConfig};

/// Messages of the per-pass protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AugMsg {
    /// Algorithm 3's path count, with its analytical bit width.
    Count {
        /// Number of shortest half-augmenting paths (exact below `2^53`).
        paths: f64,
        /// `⌈log₂(paths+1)⌉` — what the count costs on the wire.
        bits: u32,
    },
    /// A lottery token walking backwards along counted edges.
    Token {
        /// `ln(U)/n_y` — monotone stand-in for the max of `n_y` uniforms.
        key: f64,
        /// Leader id (tie-break).
        leader: u64,
        /// Analytical width: `4·log₂ N`, `N ≤ n·Δ^{⌈ℓ/2⌉}`.
        bits: u32,
    },
    /// Path retrace; `matching` says whether the traversed hop becomes a
    /// matching edge.
    Augment {
        /// New state of the traversed edge.
        matching: bool,
    },
}

impl BitSize for AugMsg {
    fn bit_size(&self) -> usize {
        match *self {
            AugMsg::Count { bits, .. } | AugMsg::Token { bits, .. } => bits as usize,
            AugMsg::Augment { .. } => 2,
        }
    }
}

/// Bit width of a path-count message (value-dependent, Lemma 3.8 caps it
/// at `⌈d/2⌉ log Δ`).
fn count_bits(paths: f64) -> u32 {
    (paths.max(1.0).log2().floor() as u32) + 1
}

/// Static per-pass parameters shared by all nodes.
#[derive(Debug, Clone, Copy)]
pub struct PhaseParams {
    /// Path length `ℓ` this pass targets (odd).
    pub l: usize,
    /// Number of nodes (for the lottery range `N⁴`).
    pub n: usize,
    /// Maximum degree `Δ` (for the count/key widths).
    pub delta: usize,
}

impl PhaseParams {
    /// Analytical token width: `4 log₂ N` bits with
    /// `N = n · Δ^{⌈ℓ/2⌉}` (the conflict-graph size bound of §3.2).
    #[must_use]
    pub fn token_bits(&self) -> u32 {
        (4 * (id_bits(self.n.max(2)) + self.l.div_ceil(2) * id_bits(self.delta + 2))) as u32
    }

    /// Total rounds of one pass: counting `ℓ+1`, token walk `ℓ`,
    /// augmentation `ℓ+1`.
    #[must_use]
    pub fn pass_rounds(&self) -> usize {
        3 * self.l + 2
    }
}

/// The node's role in the (possibly induced) bipartite graph.
///
/// For plain bipartite inputs this mirrors the graph's recorded
/// bipartition; for Algorithm 4 it encodes membership in `Ĝ` (nodes
/// outside `V̂` get `None`).
pub type PhaseSide = Option<Side>;

/// Per-node output of one pass. The [`Default`] value is the halted
/// tombstone's output (free, no path, no augmentation) — what
/// [`crate::runtime::Slot::Dead`] reports for nodes outside the trusted
/// domain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseOutput {
    /// Output register after the pass.
    pub matched_edge: Option<EdgeId>,
    /// Whether this node was a leader that counted at least one path
    /// (drives the driver's termination detection).
    pub saw_path: bool,
    /// Whether this node's register changed during augmentation.
    pub augmented: bool,
    /// For leaders: the number of augmenting paths counted by
    /// Algorithm 3 (`n_y` of Lemma 3.8); 0.0 otherwise. Exposed so the
    /// counting protocol can be differential-tested against brute-force
    /// path enumeration.
    pub leader_paths: f64,
}

/// One pass of counting + lottery + augmentation at a fixed `ℓ`.
#[derive(Debug)]
pub struct PhaseNode {
    params: PhaseParams,
    side: PhaseSide,
    /// Ports belonging to the (induced) graph this pass runs on.
    live: Vec<bool>,
    /// Current matching, as a port (if the matching edge is live).
    matched_port: Option<Port>,
    /// Output register (edge id), kept in sync with `matched_port`.
    matched_edge: Option<EdgeId>,
    // --- counting state ---
    counts: Vec<f64>,
    n_v: f64,
    t_v: Option<usize>,
    // --- token state ---
    /// Port towards the leader (where the token arrived) — for the leader
    /// itself, the port it launched its token over.
    tok_in: Option<Port>,
    /// Port towards the free `X` end (where the token was forwarded).
    tok_out: Option<Port>,
    /// Whether this node is a leader that launched a token this pass.
    launched: bool,
    // --- reporting ---
    saw_path: bool,
    augmented: bool,
}

impl PhaseNode {
    /// Builds the pass state for one node.
    ///
    /// `matched_port` must be the port of the node's current matching
    /// edge (if any); `live[p]` selects the ports participating in this
    /// pass. A matched node whose matching port is not live must be given
    /// `side = None` (it is outside `V̂`).
    #[must_use]
    pub fn new(
        params: PhaseParams,
        side: PhaseSide,
        live: Vec<bool>,
        matched_port: Option<Port>,
        matched_edge: Option<EdgeId>,
    ) -> PhaseNode {
        debug_assert_eq!(matched_port.is_some(), matched_edge.is_some());
        let degree = live.len();
        PhaseNode {
            params,
            side,
            live,
            matched_port,
            matched_edge,
            counts: vec![0.0; degree],
            n_v: 0.0,
            t_v: None,
            tok_in: None,
            tok_out: None,
            launched: false,
            saw_path: false,
            augmented: false,
        }
    }

    fn is_free(&self) -> bool {
        self.matched_port.is_none()
    }

    /// Stochastic backward step: port `i` with probability `c[i]/n_v`.
    fn sample_back_port(&self, ctx: &mut Context<'_, AugMsg>) -> Port {
        debug_assert!(self.n_v > 0.0);
        let mut x: f64 = ctx.rng().random_range(0.0..self.n_v);
        for (p, &c) in self.counts.iter().enumerate() {
            if c > 0.0 {
                if x < c {
                    return p;
                }
                x -= c;
            }
        }
        // Floating-point slack: fall back to the last counted port.
        self.counts.iter().rposition(|&c| c > 0.0).expect("n_v > 0 implies a counted port")
    }

    fn handle_count(&mut self, ctx: &mut Context<'_, AugMsg>, arrivals: &[(Port, f64)]) {
        if arrivals.is_empty() || self.t_v.is_some() || self.side.is_none() {
            return; // later messages are discarded (visited node) or not a participant
        }
        let round = ctx.round();
        if round > self.params.l {
            return; // counts cannot arrive after the counting stage
        }
        for &(port, paths) in arrivals {
            self.counts[port] += paths;
        }
        self.n_v = self.counts.iter().sum();
        self.t_v = Some(round);
        match self.side {
            Some(Side::Y) => {
                if self.is_free() {
                    // A free Y node heads augmenting paths. By the phase
                    // precondition this only happens at round ℓ.
                    debug_assert_eq!(round, self.params.l, "no shorter augmenting path may exist");
                    self.saw_path = self.n_v > 0.0;
                } else if round < self.params.l {
                    let mate = self.matched_port.expect("matched");
                    ctx.send(mate, AugMsg::Count { paths: self.n_v, bits: count_bits(self.n_v) });
                }
            }
            Some(Side::X) => {
                // Necessarily matched (the count came over the matching
                // edge from the mate).
                debug_assert_eq!(Some(arrivals[0].0), self.matched_port);
                if round < self.params.l {
                    let msg = AugMsg::Count { paths: self.n_v, bits: count_bits(self.n_v) };
                    for p in 0..self.live.len() {
                        if self.live[p] && Some(p) != self.matched_port {
                            ctx.send(p, msg);
                        }
                    }
                }
            }
            None => {}
        }
    }

    /// Launches the leader's token at round ℓ.
    fn launch_token(&mut self, ctx: &mut Context<'_, AugMsg>) {
        if self.side != Some(Side::Y) || !self.is_free() || self.t_v != Some(self.params.l) {
            return;
        }
        if self.n_v <= 0.0 {
            return;
        }
        // key = ln(U)/n_y: the exact law of max{U_1..U_{n_y}} under the
        // monotone map x ↦ ln(x)/1 — comparisons across leaders are
        // distributed exactly as the paper's max-of-uniform draw.
        let u: f64 = loop {
            let u: f64 = ctx.rng().random_range(0.0..1.0);
            if u > 0.0 {
                break u;
            }
        };
        let key = u.ln() / self.n_v;
        let out = self.sample_back_port(ctx);
        self.tok_in = Some(out); // the augment retrace arrives over `out`
        self.launched = true;
        ctx.send(
            out,
            AugMsg::Token { key, leader: ctx.id() as u64, bits: self.params.token_bits() },
        );
    }

    fn handle_tokens(&mut self, ctx: &mut Context<'_, AugMsg>, tokens: &[(Port, f64, u64)]) {
        if tokens.is_empty() {
            return;
        }
        // Keep the best (key, leader) token; the rest disappear.
        let &(port, key, leader) = tokens
            .iter()
            .max_by(|a, b| (a.1, a.2).partial_cmp(&(b.1, b.2)).expect("keys are finite"))
            .expect("nonempty");
        if self.tok_in.is_some() || self.launched {
            // Already on a chosen path (cannot happen when arrival rounds
            // are unique; defensive for induced subgraph edge cases).
            return;
        }
        self.tok_in = Some(port);
        if self.side == Some(Side::X) && self.is_free() {
            // Level 0: the path is complete. Retrace it, flipping edges;
            // the first hop becomes a matching edge.
            self.set_matched(ctx, port);
            self.augmented = true;
            ctx.send(port, AugMsg::Augment { matching: true });
        } else if self.n_v > 0.0 {
            let out = self.sample_back_port(ctx);
            self.tok_out = Some(out);
            ctx.send(out, AugMsg::Token { key, leader, bits: self.params.token_bits() });
        }
    }

    fn set_matched(&mut self, ctx: &Context<'_, AugMsg>, port: Port) {
        self.matched_port = Some(port);
        self.matched_edge = Some(ctx.edge(port));
    }

    fn handle_augment(&mut self, ctx: &mut Context<'_, AugMsg>, port: Port, matching: bool) {
        self.augmented = true;
        if matching {
            self.set_matched(ctx, port);
        } else if self.matched_port == Some(port) {
            // Our old matching edge leaves the matching; the outgoing hop
            // below immediately rematches this node.
            self.matched_port = None;
            self.matched_edge = None;
        }
        if self.launched {
            // The leader is the far end of the path: the last hop is a
            // matching hop (odd path length) and nothing is forwarded.
            debug_assert!(matching, "the hop into the leader must be a matching hop");
            debug_assert_eq!(Some(port), self.tok_in, "augment must retrace the token path");
            return;
        }
        // Intermediate node: the retrace arrives over the port the token
        // left through, and continues over the port it arrived through.
        debug_assert_eq!(Some(port), self.tok_out, "augment must retrace the token path");
        let out = self.tok_in.expect("intermediate path nodes recorded the token arrival port");
        let next_matching = !matching;
        if next_matching {
            self.set_matched(ctx, out);
        }
        ctx.send(out, AugMsg::Augment { matching: next_matching });
    }
}

impl Protocol for PhaseNode {
    type Msg = AugMsg;
    type Output = PhaseOutput;

    fn on_start(&mut self, ctx: &mut Context<'_, AugMsg>) {
        if self.side == Some(Side::X) && self.is_free() {
            self.t_v = Some(0);
            let msg = AugMsg::Count { paths: 1.0, bits: 1 };
            for p in 0..self.live.len() {
                if self.live[p] {
                    ctx.send(p, msg);
                }
            }
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, AugMsg>, inbox: &[(Port, AugMsg)]) {
        let mut count_arrivals: Vec<(Port, f64)> = Vec::new();
        let mut tokens: Vec<(Port, f64, u64)> = Vec::new();
        let mut augments: Vec<(Port, bool)> = Vec::new();
        for &(port, msg) in inbox {
            match msg {
                AugMsg::Count { paths, .. } => count_arrivals.push((port, paths)),
                AugMsg::Token { key, leader, .. } => tokens.push((port, key, leader)),
                AugMsg::Augment { matching } => augments.push((port, matching)),
            }
        }
        self.handle_count(ctx, &count_arrivals);
        if ctx.round() == self.params.l {
            self.launch_token(ctx);
        }
        self.handle_tokens(ctx, &tokens);
        for (port, matching) in augments {
            self.handle_augment(ctx, port, matching);
        }
        if ctx.round() >= self.params.pass_rounds() {
            ctx.halt();
        }
    }

    fn into_output(self) -> PhaseOutput {
        PhaseOutput {
            matched_edge: self.matched_edge,
            leader_paths: if self.saw_path { self.n_v } else { 0.0 },
            saw_path: self.saw_path,
            augmented: self.augmented,
        }
    }
}

/// Runs augmentation passes at a fixed `ℓ` until no length-`ℓ` augmenting
/// path remains. Returns the number of passes.
///
/// `sides` and `live` define the (induced) bipartite graph; `registers`
/// holds the per-node output registers and is updated in place.
///
/// # Errors
/// Simulation or register-consistency failure.
pub(crate) fn exhaust_length(
    net: &mut Network<'_>,
    g: &Graph,
    sides: &[PhaseSide],
    live: &[Vec<bool>],
    registers: &mut [Option<EdgeId>],
    l: usize,
    max_passes: usize,
) -> Result<usize, CoreError> {
    let params = PhaseParams { l, n: g.node_count(), delta: g.max_degree() };
    let mut passes = 0;
    while passes < max_passes {
        let out = net.execute(|v, graph| {
            let matched_edge = registers[v];
            let matched_port = matched_edge
                .map(|e| graph.port_of_edge(v, e).expect("register points at an incident edge"));
            PhaseNode::new(params, sides[v], live[v].clone(), matched_port, matched_edge)
        })?;
        passes += 1;
        let mut any_path = false;
        for (v, o) in out.outputs.iter().enumerate() {
            registers[v] = o.matched_edge;
            any_path |= o.saw_path;
        }
        // Validate register consistency every pass (cheap, catches bugs).
        matching_from_registers(g, registers)?;
        if !any_path {
            break;
        }
    }
    Ok(passes)
}

/// The `(1−1/k)` bipartite driver as a runtime [`Algorithm`]: a ladder
/// of path-length phases `ℓ ∈ {1, 3, …, 2k−1}`, each exhausting its
/// augmenting paths through [`PhaseNode`] passes on the executor's
/// engine.
///
/// Requires a recorded bipartition on the input graph
/// ([`Graph::bipartition`]). [`Algorithm::resume`] re-runs the ladder
/// from sanitized registers on the residual graph: ports towards dead
/// nodes are excluded from every pass, so no path is counted or
/// augmented through them, and surviving matched edges are preserved
/// (augmentation only ever *grows* a bipartite matching).
#[derive(Debug, Clone, Copy)]
pub struct Bipartite {
    /// Approximation parameter: augmenting paths up to length `2k−1`
    /// are exhausted, for the `(1−1/k)` guarantee of Theorem 3.10.
    pub k: usize,
    /// Warm-start with one Israeli–Itai phase before the ladder.
    pub warm_start: bool,
    /// Safety cap on passes per phase. The driver additionally caps at
    /// `4n + 16` so a lossy run cannot spin forever; fault-free every
    /// pass with a surviving path augments at least one, so neither cap
    /// binds before termination.
    pub max_passes_per_phase: usize,
}

impl Default for Bipartite {
    fn default() -> Bipartite {
        Bipartite { k: 3, warm_start: false, max_passes_per_phase: usize::MAX }
    }
}

impl Bipartite {
    /// Side labels of the topology's bipartition (recorded on a CSR
    /// graph, structural on implicit families), or the error the legacy
    /// entry point raised.
    fn sides(g: &dyn Topology) -> Result<Vec<PhaseSide>, CoreError> {
        let sides: Vec<PhaseSide> = (0..g.node_count()).map(|v| g.side_of(v)).collect();
        if sides.iter().any(Option::is_none) {
            return Err(CoreError::Graph(GraphError::NotBipartite));
        }
        Ok(sides)
    }

    /// Runs the phase ladder from `registers`, sanitizing between
    /// passes so the register state stays total on the trusted domain
    /// (a no-op fault-free — the differential suites pin that).
    fn drive(
        &self,
        exec: &mut Exec<'_>,
        sides: &[PhaseSide],
        mut registers: Vec<Option<EdgeId>>,
    ) -> Result<MainRun, CoreError> {
        let g = exec.graph();
        let n = g.node_count();
        let delta = g.max_degree();
        let alive = exec.alive().clone();
        let live: Vec<Vec<bool>> =
            (0..n).map(|v| g.incident(v).map(|(_, u, _)| alive[u]).collect()).collect();
        let cap = self.max_passes_per_phase.min(4 * n + 16);
        let mut passes_total = 0usize;
        let mut l = 1;
        while l < 2 * self.k {
            let params = PhaseParams { l, n, delta };
            let mut passes = 0usize;
            while passes < cap {
                let out = exec.phase(|v, graph| {
                    let matched_edge = registers[v];
                    let matched_port = matched_edge.map(|e| {
                        graph.port_of_edge(v, e).expect("register points at an incident edge")
                    });
                    PhaseNode::new(params, sides[v], live[v].clone(), matched_port, matched_edge)
                })?;
                passes += 1;
                let mut any_path = false;
                for (v, o) in out.outputs.iter().enumerate() {
                    registers[v] = o.matched_edge;
                    any_path |= o.saw_path;
                }
                registers = sanitize_registers_on(g, &registers, &alive).registers;
                if !any_path {
                    break;
                }
            }
            passes_total += passes;
            l += 2;
        }
        Ok(MainRun { registers, iterations: passes_total })
    }
}

impl Algorithm for Bipartite {
    fn name(&self) -> &'static str {
        "bipartite"
    }

    fn run(&self, exec: &mut Exec<'_>) -> Result<MainRun, CoreError> {
        let g = exec.graph();
        let sides = Bipartite::sides(g)?;
        let mut registers: Vec<Option<EdgeId>> = vec![None; g.node_count()];
        if self.warm_start {
            let out = exec.phase(|v, graph| IiNode::new(graph.degree(v)))?;
            registers = sanitize_registers_on(g, &out.outputs, exec.alive()).registers;
        }
        self.drive(exec, &sides, registers)
    }

    fn resume(
        &self,
        exec: &mut Exec<'_>,
        registers: &[Option<EdgeId>],
    ) -> Result<MainRun, CoreError> {
        let sides = Bipartite::sides(exec.graph())?;
        self.drive(exec, &sides, registers.to_vec())
    }
}

/// Configuration for [`bipartite_mcm`].
#[derive(Debug, Clone, Copy)]
pub struct BipartiteMcmConfig {
    /// Approximation parameter: the result is a `(1−1/k)`-MCM.
    pub k: usize,
    /// Master seed.
    pub seed: u64,
    /// Safety cap on passes per phase (each pass augments ≥ 1 path, so
    /// `n/2` always suffices; the cap guards against bugs, not theory).
    pub max_passes_per_phase: usize,
    /// Simulator configuration words: CONGEST budget is
    /// `congest_words · log₂ n` bits.
    pub congest_words: usize,
    /// Round-cost accounting.
    pub cost: dam_congest::CostModel,
    /// Warm-start with an Israeli–Itai maximal matching before the
    /// phases (an engineering optimization: fewer ℓ = 1 passes, same
    /// guarantee).
    pub warm_start: bool,
    /// Simulator worker threads (see [`SimConfig::threads`]); every
    /// phase runs on the sharded parallel engine when `> 1`, with
    /// bit-identical results.
    pub threads: usize,
    /// Engine backend (see [`SimConfig::backend`]); every phase runs on
    /// the selected executor — including [`dam_congest::Backend::Async`],
    /// which is bit-identical under the synchronizer contract.
    pub backend: dam_congest::Backend,
}

impl Default for BipartiteMcmConfig {
    fn default() -> BipartiteMcmConfig {
        BipartiteMcmConfig {
            k: 3,
            seed: 0,
            max_passes_per_phase: usize::MAX,
            congest_words: 4,
            cost: dam_congest::CostModel::Unit,
            warm_start: false,
            threads: 1,
            backend: dam_congest::Backend::Sequential,
        }
    }
}

/// Computes a `(1−1/k)`-approximate maximum-cardinality matching of a
/// bipartite graph (Theorem 3.10).
///
/// # Errors
/// Returns [`GraphError::NotBipartite`] (wrapped) if `g` has no recorded
/// bipartition, plus simulation errors.
///
/// # Example
/// ```
/// use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
/// use dam_graph::generators;
///
/// let g = generators::complete_bipartite(6, 6);
/// let r = bipartite_mcm(&g, &BipartiteMcmConfig { k: 4, ..Default::default() }).unwrap();
/// assert!(r.matching.size() >= 5); // ≥ (1 - 1/4) · 6 rounded up
/// ```
pub fn bipartite_mcm(g: &Graph, config: &BipartiteMcmConfig) -> Result<AlgorithmReport, CoreError> {
    // Deprecated shim: the driver now lives on the runtime trait
    // ([`Bipartite`]); this entry point survives as a bit-identical
    // field mapping (pinned by `tests/algo_conformance.rs`).
    let sim = SimConfig::congest_for(g.node_count(), config.congest_words)
        .seed(config.seed)
        .cost(config.cost)
        .threads(config.threads)
        .backend(config.backend);
    let algo = Bipartite {
        k: config.k,
        warm_start: config.warm_start,
        max_passes_per_phase: config.max_passes_per_phase,
    };
    let rep = run_mm(&algo, g, &RuntimeConfig::new().sim(sim))?;
    Ok(AlgorithmReport { matching: rep.matching, stats: rep.totals, iterations: rep.iterations })
}

/// Convenience: `(1−ε)`-MCM by choosing `k = ⌈1/ε⌉`.
///
/// # Errors
/// As [`bipartite_mcm`].
pub fn bipartite_mcm_eps(g: &Graph, eps: f64, seed: u64) -> Result<AlgorithmReport, CoreError> {
    let k = (1.0 / eps).ceil().max(2.0) as usize;
    bipartite_mcm(g, &BipartiteMcmConfig { k, seed, ..Default::default() })
}

/// Assembles a [`Matching`] for tests and callers holding raw registers.
///
/// # Errors
/// As [`matching_from_registers`].
pub fn registers_to_matching(g: &Graph, regs: &[Option<EdgeId>]) -> Result<Matching, GraphError> {
    matching_from_registers(g, regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::{generators, hopcroft_karp, paths};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_ratio(g: &Graph, k: usize, seed: u64) -> (usize, usize) {
        let r = bipartite_mcm(g, &BipartiteMcmConfig { k, seed, ..Default::default() }).unwrap();
        r.matching.validate(g).unwrap();
        let opt = hopcroft_karp::maximum_bipartite_matching_size(g);
        assert!(
            r.matching.size() as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9,
            "ratio violated: {} < (1-1/{k})·{opt}",
            r.matching.size()
        );
        (r.matching.size(), opt)
    }

    #[test]
    fn single_phase_is_maximal_matching() {
        // k=1: only length-1 paths, i.e. a maximal matching.
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..10 {
            let g = generators::bipartite_gnp(15, 15, 0.2, &mut rng);
            let r =
                bipartite_mcm(&g, &BipartiteMcmConfig { k: 1, seed: trial, ..Default::default() })
                    .unwrap();
            assert!(dam_graph::maximal::is_maximal(&g, &r.matching));
        }
    }

    #[test]
    fn exhausts_short_paths() {
        // After phase ℓ the shortest augmenting path must exceed ℓ
        // (Lemma 3.2 materialized).
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..10 {
            let g = generators::bipartite_gnp(12, 12, 0.3, &mut rng);
            let k = 3;
            let r = bipartite_mcm(&g, &BipartiteMcmConfig { k, seed: trial, ..Default::default() })
                .unwrap();
            if let Some(len) = paths::shortest_augmenting_path_len(&g, &r.matching).unwrap() {
                assert!(
                    len > 2 * k - 1,
                    "path of length {len} survived phases up to {}",
                    2 * k - 1
                );
            }
        }
    }

    #[test]
    fn ratio_on_random_bipartite() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..8 {
            let g = generators::bipartite_gnp(20, 20, 0.15, &mut rng);
            for k in [2, 3, 4] {
                check_ratio(&g, k, 1000 + trial);
            }
        }
    }

    #[test]
    fn long_path_needs_high_k() {
        // disjoint_paths(c, 5): each component is a P6; a maximal matching
        // can stall at 2 of 3 edges; k=3 must reach optimal 3 per path.
        let g = generators::disjoint_paths(4, 5);
        let (size, opt) = check_ratio(&g, 3, 5);
        assert_eq!(size, opt, "k=3 exhausts all length-5 paths in P6 components");
    }

    #[test]
    fn perfect_on_complete_bipartite() {
        let g = generators::complete_bipartite(8, 8);
        let r =
            bipartite_mcm(&g, &BipartiteMcmConfig { k: 8, seed: 2, ..Default::default() }).unwrap();
        assert!(r.matching.size() >= 7);
    }

    #[test]
    fn messages_fit_congest_budget() {
        // With Δ and ℓ small the analytic widths stay within a few log n
        // words; all counts/keys must respect the declared widths.
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::bipartite_gnp(30, 30, 0.1, &mut rng);
        let r =
            bipartite_mcm(&g, &BipartiteMcmConfig { k: 2, seed: 7, ..Default::default() }).unwrap();
        // Widths are analytic: token bits = 4(log n + log Δ) can exceed
        // 4·log n for ℓ ≥ 3 — that is exactly what the pipelined cost
        // model is for. Here we only check the accounting is populated.
        assert!(r.stats.stats.max_message_bits > 0);
        assert!(r.stats.stats.messages > 0);
    }

    #[test]
    fn rejects_non_bipartite() {
        let g = generators::cycle(5);
        assert!(bipartite_mcm(&g, &BipartiteMcmConfig::default()).is_err());
    }

    #[test]
    fn empty_and_tiny() {
        let g = dam_graph::Graph::builder(0).build().unwrap();
        let mut g = g;
        g.compute_bipartition();
        let r = bipartite_mcm(&g, &BipartiteMcmConfig::default()).unwrap();
        assert_eq!(r.matching.size(), 0);

        let g = generators::path(2);
        let r = bipartite_mcm(&g, &BipartiteMcmConfig::default()).unwrap();
        assert_eq!(r.matching.size(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(51);
        let g = generators::bipartite_gnp(15, 15, 0.25, &mut rng);
        let cfg = BipartiteMcmConfig { k: 3, seed: 99, ..Default::default() };
        let a = bipartite_mcm(&g, &cfg).unwrap();
        let b = bipartite_mcm(&g, &cfg).unwrap();
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
        assert_eq!(a.stats.stats.rounds, b.stats.stats.rounds);
    }

    #[test]
    fn warm_start_preserves_guarantee_and_saves_passes() {
        let mut rng = StdRng::seed_from_u64(71);
        let mut cold_passes = 0usize;
        let mut warm_passes = 0usize;
        for seed in 0..5u64 {
            let g = generators::bipartite_gnp(25, 25, 0.12, &mut rng);
            let opt = dam_graph::hopcroft_karp::maximum_bipartite_matching_size(&g);
            let cold = bipartite_mcm(&g, &BipartiteMcmConfig { k: 3, seed, ..Default::default() })
                .unwrap();
            let warm = bipartite_mcm(
                &g,
                &BipartiteMcmConfig { k: 3, seed, warm_start: true, ..Default::default() },
            )
            .unwrap();
            for r in [&cold, &warm] {
                assert!(3 * r.matching.size() >= 2 * opt);
            }
            cold_passes += cold.iterations;
            warm_passes += warm.iterations;
        }
        assert!(
            warm_passes <= cold_passes,
            "warm start should not need more passes: {warm_passes} vs {cold_passes}"
        );
    }

    /// Lemma 3.8, differentially: each leader's `n_y` must equal the
    /// brute-force count of augmenting paths of length exactly `l`
    /// ending at that leader.
    #[test]
    fn lemma_3_8_counts_match_enumeration() {
        let mut rng = StdRng::seed_from_u64(61);
        for trial in 0..8u64 {
            let g = generators::bipartite_gnp(10, 10, 0.3, &mut rng);
            let sides_raw = g.bipartition().unwrap().to_vec();
            let sides: Vec<PhaseSide> = sides_raw.iter().map(|&s| Some(s)).collect();
            let live: Vec<Vec<bool>> = g.nodes().map(|v| vec![true; g.degree(v)]).collect();
            let mut net = Network::new(&g, SimConfig::congest_for(g.node_count(), 4).seed(trial));
            let mut registers: Vec<Option<EdgeId>> = vec![None; g.node_count()];
            let mut l = 1usize;
            while l <= 5 {
                // Probe one pass at l and compare the leaders' counts to
                // the oracle (precondition: lengths < l were exhausted).
                let m_before = registers_to_matching(&g, &registers).unwrap();
                let params = PhaseParams { l, n: g.node_count(), delta: g.max_degree() };
                let out = net
                    .run(|v, graph| {
                        let me = registers[v];
                        let mp = me.map(|e| graph.port_of_edge(v, e).unwrap());
                        PhaseNode::new(params, sides[v], live[v].clone(), mp, me)
                    })
                    .unwrap();
                let all_l = dam_graph::paths::enumerate_augmenting_paths(&g, &m_before, l);
                for (v, o) in out.outputs.iter().enumerate() {
                    if sides_raw[v] == Side::Y && m_before.is_free(v) {
                        let expected = all_l
                            .iter()
                            .filter(|p| {
                                let (a, b) = p.endpoints();
                                p.len() == l && (a == v || b == v)
                            })
                            .count() as f64;
                        assert!(
                            (o.leader_paths - expected).abs() < 1e-9,
                            "trial {trial}, l={l}, node {v}: counted {} vs enumerated {expected}",
                            o.leader_paths
                        );
                    }
                }
                // Fold the probe's augmentations in, then exhaust l.
                for (v, o) in out.outputs.iter().enumerate() {
                    registers[v] = o.matched_edge;
                }
                exhaust_length(&mut net, &g, &sides, &live, &mut registers, l, usize::MAX).unwrap();
                l += 2;
            }
        }
    }
}
