//! The locally-heaviest-edge `½`-MWM — the `δ`-MWM black box.
//!
//! The paper's Algorithm 5 consumes *any* constant-factor `δ`-MWM
//! computable in `O(log n)` CONGEST rounds (it cites the PODC'07 /
//! SICOMP'09 `1/5`-MWM, Lemma 4.4). We substitute the classic
//! locally-heaviest rule (Preis; randomized round analysis by Birn et
//! al. 2013): in each iteration every live node points at its heaviest
//! incident candidate edge (ties by edge id); an edge chosen from *both*
//! sides joins the matching and its endpoints leave. Every iteration
//! matches at least the globally heaviest live edge, the result is
//! exactly the greedy matching of the `(weight, id)` order — a `½`-MWM —
//! and the iteration count is `O(log n)` w.h.p. on random weights.
//!
//! The protocol runs on **caller-provided per-port weights**, so the same
//! state machine serves both the standalone `½`-MWM (true edge weights)
//! and Algorithm 5's inner call (the gain weights `w_M`).

use dam_congest::{BitSize, Context, Network, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph};

use crate::error::CoreError;
use crate::report::{matching_from_registers, AlgorithmReport};

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickMsg {
    /// "You are my heaviest candidate."
    Pick,
    /// "I matched — remove me (and my edges) from the candidate graph."
    Dead,
}

impl BitSize for PickMsg {
    fn bit_size(&self) -> usize {
        1
    }
}

/// Per-node state of the locally-heaviest-edge protocol.
#[derive(Debug)]
pub struct LocalMaxNode {
    /// Candidate weight per port (`None` = not a candidate edge).
    weights: Vec<Option<f64>>,
    /// Ports whose far node is still live.
    alive: Vec<bool>,
    /// My pick this iteration.
    picked: Option<Port>,
    /// The chosen edge, once matched.
    chosen: Option<EdgeId>,
    announced: bool,
}

impl LocalMaxNode {
    /// Fresh state over the given candidate weights.
    #[must_use]
    pub fn new(weights: Vec<Option<f64>>) -> LocalMaxNode {
        let degree = weights.len();
        LocalMaxNode {
            weights,
            alive: vec![true; degree],
            picked: None,
            chosen: None,
            announced: false,
        }
    }

    /// The heaviest live candidate port under the `(weight, edge id)`
    /// order (larger id wins ties — the same order as
    /// `dam_graph::maximal::local_max_mwm`).
    fn best_port(&self, ctx: &Context<'_, PickMsg>) -> Option<Port> {
        let mut best: Option<(f64, EdgeId, Port)> = None;
        for (p, w) in self.weights.iter().enumerate() {
            if !self.alive[p] {
                continue;
            }
            if let Some(w) = *w {
                let e = ctx.edge(p);
                if best.is_none_or(|(bw, be, _)| (w, e) > (bw, be)) {
                    best = Some((w, e, p));
                }
            }
        }
        best.map(|(_, _, p)| p)
    }

    fn step(&mut self, ctx: &mut Context<'_, PickMsg>, inbox: &[(Port, PickMsg)]) {
        let mut picks: Vec<Port> = Vec::new();
        for &(port, msg) in inbox {
            match msg {
                PickMsg::Dead => self.alive[port] = false,
                PickMsg::Pick => picks.push(port),
            }
        }
        if ctx.round() % 2 == 0 {
            // Announce / pick.
            if self.chosen.is_some() {
                if !self.announced {
                    self.announced = true;
                    ctx.broadcast(PickMsg::Dead);
                }
                ctx.halt();
                return;
            }
            match self.best_port(ctx) {
                None => ctx.halt(),
                Some(p) => {
                    self.picked = Some(p);
                    ctx.send(p, PickMsg::Pick);
                }
            }
        } else {
            // Resolve: mutual picks match.
            if let Some(p) = self.picked.take() {
                if picks.contains(&p) {
                    self.chosen = Some(ctx.edge(p));
                    self.announced = false;
                }
            }
        }
    }
}

impl Protocol for LocalMaxNode {
    type Msg = PickMsg;
    /// The edge this node matched, if any.
    type Output = Option<EdgeId>;

    fn on_start(&mut self, ctx: &mut Context<'_, PickMsg>) {
        self.step(ctx, &[]);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, PickMsg>, inbox: &[(Port, PickMsg)]) {
        self.step(ctx, inbox);
    }

    fn on_peer_down(&mut self, _ctx: &mut Context<'_, PickMsg>, port: Port) {
        // A crashed or quarantined peer will never resolve a pick;
        // treating it like a `Dead` announcement keeps the pick loop
        // terminating (it halts once no live candidate remains).
        self.alive[port] = false;
    }

    fn into_output(self) -> Option<EdgeId> {
        self.chosen
    }
}

/// Runs the standalone distributed `½`-MWM on `g`'s own edge weights.
///
/// # Errors
/// Simulation or register-consistency failure.
///
/// # Example
/// ```
/// use dam_core::weighted::local_max::local_max_mwm;
/// use dam_graph::generators;
///
/// let g = generators::greedy_trap(2, 0.25);
/// let r = local_max_mwm(&g, 3).unwrap();
/// // Locally heaviest = greedy: takes the two middle edges, weight 2.5,
/// // which is within 1/2 of the optimum 4.
/// assert!((r.matching.weight(&g) - 2.5).abs() < 1e-9);
/// ```
pub fn local_max_mwm(g: &Graph, seed: u64) -> Result<AlgorithmReport, CoreError> {
    let mut net = Network::new(g, SimConfig::congest_for(g.node_count(), 4).seed(seed));
    let out = net.run(|v, graph| {
        let weights = graph.incident(v).map(|(_, _, e)| Some(graph.weight(e))).collect();
        LocalMaxNode::new(weights)
    })?;
    let matching = matching_from_registers(g, &out.outputs)?;
    let iterations = usize::try_from(out.stats.rounds.div_ceil(2)).unwrap_or(usize::MAX);
    Ok(AlgorithmReport { matching, stats: net.totals(), iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::weights::{randomize_weights, WeightDist};
    use dam_graph::{brute, generators, maximal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_sequential_local_max_exactly() {
        // Same total order ⇒ the distributed fixpoint is the identical
        // greedy matching.
        let mut rng = StdRng::seed_from_u64(91);
        for trial in 0..15 {
            let base = generators::gnp(20, 0.2, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.1, hi: 4.0 }, &mut rng);
            let dist = local_max_mwm(&g, trial).unwrap();
            let seq = maximal::local_max_mwm(&g);
            assert_eq!(dist.matching.to_edge_vec(), seq.to_edge_vec(), "trial {trial}");
        }
    }

    #[test]
    fn half_approximation() {
        let mut rng = StdRng::seed_from_u64(92);
        for trial in 0..15 {
            let base = generators::gnp(11, 0.3, &mut rng);
            let g = randomize_weights(&base, WeightDist::Exponential { lambda: 1.0 }, &mut rng);
            let r = local_max_mwm(&g, trial).unwrap();
            r.matching.validate(&g).unwrap();
            assert!(r.matching.weight(&g) >= 0.5 * brute::maximum_weight(&g) - 1e-9);
        }
    }

    #[test]
    fn logarithmic_rounds() {
        let mut rng = StdRng::seed_from_u64(93);
        let small = randomize_weights(
            &generators::random_regular(64, 4, &mut rng),
            WeightDist::Uniform { lo: 0.0_1, hi: 1.0 },
            &mut rng,
        );
        let large = randomize_weights(
            &generators::random_regular(2048, 4, &mut rng),
            WeightDist::Uniform { lo: 0.0_1, hi: 1.0 },
            &mut rng,
        );
        let r_small = local_max_mwm(&small, 1).unwrap().stats.stats.rounds;
        let r_large = local_max_mwm(&large, 1).unwrap().stats.stats.rounds;
        assert!(r_large < r_small * 8, "rounds: {r_small} -> {r_large}");
    }

    #[test]
    fn messages_are_single_bits() {
        let g = generators::complete(8);
        let r = local_max_mwm(&g, 5).unwrap();
        assert_eq!(r.stats.stats.max_message_bits, 1);
        assert_eq!(r.stats.stats.violations, 0);
    }

    #[test]
    fn respects_candidate_mask() {
        // Only edge 1 is a candidate; nothing else may match.
        let g = dam_graph::Graph::builder(4)
            .weighted_edge(0, 1, 9.0)
            .weighted_edge(1, 2, 1.0)
            .weighted_edge(2, 3, 9.0)
            .build()
            .unwrap();
        let mut net = Network::new(&g, SimConfig::local().seed(1));
        let out = net
            .run(|v, graph| {
                let weights =
                    graph.incident(v).map(|(_, _, e)| (e == 1).then(|| graph.weight(e))).collect();
                LocalMaxNode::new(weights)
            })
            .unwrap();
        let m = matching_from_registers(&g, &out.outputs).unwrap();
        assert_eq!(m.to_edge_vec(), vec![1]);
    }
}
