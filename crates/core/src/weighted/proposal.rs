//! A weight-greedy proposal heuristic — the *second* `δ`-MWM black box.
//!
//! An Israeli–Itai-style propose/accept scheme biased towards heavy
//! edges: senders propose over their heaviest live candidate port,
//! receivers accept their heaviest incoming proposal. It runs a **fixed**
//! number of iterations, so it carries no worst-case approximation
//! guarantee — it exists as the ablation point for experiment E10
//! (Algorithm 5 is supposed to work with *any* reasonable `δ`-MWM box,
//! and this one is deliberately weaker than
//! [`crate::weighted::local_max`]).

use dam_congest::{BitSize, Context, Network, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph};
use rand::RngExt;

use crate::error::CoreError;
use crate::report::{matching_from_registers, AlgorithmReport};

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposalMsg {
    /// A sender proposes its heaviest candidate edge.
    Propose,
    /// A receiver accepts its heaviest proposal.
    Accept,
    /// "I am matched" — drop me from the candidate graph.
    Dead,
}

impl BitSize for ProposalMsg {
    fn bit_size(&self) -> usize {
        2
    }
}

/// Per-node state of the proposal heuristic.
#[derive(Debug)]
pub struct ProposalNode {
    weights: Vec<Option<f64>>,
    alive: Vec<bool>,
    iterations: usize,
    proposed: Option<Port>,
    chosen: Option<EdgeId>,
    announced: bool,
}

impl ProposalNode {
    /// Fresh state over candidate weights, running `iterations`
    /// propose/accept cycles (3 rounds each).
    #[must_use]
    pub fn new(weights: Vec<Option<f64>>, iterations: usize) -> ProposalNode {
        let degree = weights.len();
        ProposalNode {
            weights,
            alive: vec![true; degree],
            iterations,
            proposed: None,
            chosen: None,
            announced: false,
        }
    }

    fn best_port(&self, ctx: &Context<'_, ProposalMsg>, among: Option<&[Port]>) -> Option<Port> {
        let mut best: Option<(f64, EdgeId, Port)> = None;
        let consider = |p: Port| -> bool { among.is_none_or(|s| s.contains(&p)) };
        for (p, w) in self.weights.iter().enumerate() {
            if !self.alive[p] || !consider(p) {
                continue;
            }
            if let Some(w) = *w {
                let e = ctx.edge(p);
                if best.is_none_or(|(bw, be, _)| (w, e) > (bw, be)) {
                    best = Some((w, e, p));
                }
            }
        }
        best.map(|(_, _, p)| p)
    }

    fn step(&mut self, ctx: &mut Context<'_, ProposalMsg>, inbox: &[(Port, ProposalMsg)]) {
        let mut proposals: Vec<Port> = Vec::new();
        for &(port, msg) in inbox {
            match msg {
                ProposalMsg::Dead => self.alive[port] = false,
                ProposalMsg::Propose => proposals.push(port),
                ProposalMsg::Accept => {
                    debug_assert_eq!(Some(port), self.proposed);
                    self.chosen = Some(ctx.edge(port));
                    self.announced = false;
                }
            }
        }
        let round = ctx.round();
        let iteration = round / 3;
        match round % 3 {
            0 => {
                self.proposed = None;
                if self.chosen.is_some() {
                    if !self.announced {
                        self.announced = true;
                        ctx.broadcast(ProposalMsg::Dead);
                    }
                    ctx.halt();
                    return;
                }
                if iteration >= self.iterations || self.best_port(ctx, None).is_none() {
                    ctx.halt();
                    return;
                }
                if ctx.rng().random_bool(0.5) {
                    if let Some(p) = self.best_port(ctx, None) {
                        self.proposed = Some(p);
                        ctx.send(p, ProposalMsg::Propose);
                    }
                }
            }
            1 if self.chosen.is_none() && self.proposed.is_none() && !proposals.is_empty() => {
                if let Some(p) = self.best_port(ctx, Some(&proposals)) {
                    self.chosen = Some(ctx.edge(p));
                    self.announced = false;
                    ctx.send(p, ProposalMsg::Accept);
                }
            }
            _ => {}
        }
    }
}

impl Protocol for ProposalNode {
    type Msg = ProposalMsg;
    /// The edge this node matched, if any.
    type Output = Option<EdgeId>;

    fn on_start(&mut self, ctx: &mut Context<'_, ProposalMsg>) {
        self.step(ctx, &[]);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, ProposalMsg>, inbox: &[(Port, ProposalMsg)]) {
        self.step(ctx, inbox);
    }

    fn into_output(self) -> Option<EdgeId> {
        self.chosen
    }
}

/// Runs the standalone proposal heuristic on `g`'s own weights with
/// `3⌈log₂(n+1)⌉` iterations.
///
/// # Errors
/// Simulation or register-consistency failure.
pub fn proposal_mwm(g: &Graph, seed: u64) -> Result<AlgorithmReport, CoreError> {
    let iterations = 3 * (usize::BITS - g.node_count().leading_zeros()) as usize;
    let mut net = Network::new(g, SimConfig::congest_for(g.node_count(), 4).seed(seed));
    let out = net.run(|v, graph| {
        let weights = graph.incident(v).map(|(_, _, e)| Some(graph.weight(e))).collect();
        ProposalNode::new(weights, iterations.max(4))
    })?;
    let matching = matching_from_registers(g, &out.outputs)?;
    Ok(AlgorithmReport { matching, stats: net.totals(), iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::weights::{randomize_weights, WeightDist};
    use dam_graph::{brute, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_valid_matchings() {
        let mut rng = StdRng::seed_from_u64(95);
        for trial in 0..15 {
            let base = generators::gnp(20, 0.2, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.5, hi: 3.0 }, &mut rng);
            let r = proposal_mwm(&g, trial).unwrap();
            r.matching.validate(&g).unwrap();
        }
    }

    #[test]
    fn decent_weight_in_practice() {
        // No worst-case guarantee, but on random inputs it should land
        // well above 1/4 of optimal.
        let mut rng = StdRng::seed_from_u64(96);
        let mut total = 0.0;
        let mut opt_total = 0.0;
        for trial in 0..10 {
            let base = generators::gnp(12, 0.3, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 10 }, &mut rng);
            let r = proposal_mwm(&g, trial).unwrap();
            total += r.matching.weight(&g);
            opt_total += brute::maximum_weight(&g);
        }
        assert!(total >= 0.5 * opt_total, "aggregate ratio {}", total / opt_total);
    }

    #[test]
    fn terminates_within_fixed_budget() {
        let g = generators::complete(16);
        let r = proposal_mwm(&g, 3).unwrap();
        let iters = 3 * (usize::BITS - 16usize.leading_zeros()) as usize;
        assert!(r.stats.stats.rounds <= 3 * (iters as u64 + 2));
    }
}
