//! Distributed `½`-approximate maximum-weight **b-matching** — the
//! capacitated generalization (§1's "c-matching" pointer,
//! Koufogiannakis & Young 2011 give a `½` in `O(log n)`; this module
//! reaches the same guarantee with the locally-heaviest-edge rule).
//!
//! Extends [`crate::weighted::local_max`]: a node with remaining
//! capacity points at its heaviest live candidate edge; mutually picked
//! edges join the `b`-matching and *consume one capacity unit at each
//! endpoint*; a node announces saturation when its capacity hits zero,
//! killing its remaining edges. The fixpoint is the greedy `b`-matching
//! of the `(weight, id)` order, hence a `½`-approximation (greedy over a
//! 2-extendible system), matching the sequential
//! [`dam_graph::bmatching::greedy_b_matching`] exactly — which is how
//! the tests check it.

use dam_congest::{BitSize, Context, Network, Port, Protocol, SimConfig};
use dam_graph::bmatching::BMatching;
use dam_graph::{EdgeId, Graph};

use crate::error::CoreError;

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BPickMsg {
    /// "You are my heaviest remaining candidate."
    Pick,
    /// "My capacity is exhausted — drop our edges."
    Saturated,
}

impl BitSize for BPickMsg {
    fn bit_size(&self) -> usize {
        1
    }
}

/// Per-node state of the capacitated local-max protocol.
#[derive(Debug)]
pub struct BLocalMaxNode {
    weights: Vec<Option<f64>>,
    capacity: usize,
    alive: Vec<bool>,
    picked: Option<Port>,
    chosen: Vec<EdgeId>,
    announced_saturation: bool,
}

impl BLocalMaxNode {
    /// Fresh state over candidate weights with the given capacity.
    #[must_use]
    pub fn new(weights: Vec<Option<f64>>, capacity: usize) -> BLocalMaxNode {
        let degree = weights.len();
        BLocalMaxNode {
            weights,
            capacity,
            alive: vec![true; degree],
            picked: None,
            chosen: Vec::new(),
            announced_saturation: false,
        }
    }

    fn saturated(&self) -> bool {
        self.chosen.len() >= self.capacity
    }

    fn best_port(&self, ctx: &Context<'_, BPickMsg>) -> Option<Port> {
        let mut best: Option<(f64, EdgeId, Port)> = None;
        for (p, w) in self.weights.iter().enumerate() {
            if !self.alive[p] {
                continue;
            }
            if let Some(w) = *w {
                let e = ctx.edge(p);
                if best.is_none_or(|(bw, be, _)| (w, e) > (bw, be)) {
                    best = Some((w, e, p));
                }
            }
        }
        best.map(|(_, _, p)| p)
    }

    fn step(&mut self, ctx: &mut Context<'_, BPickMsg>, inbox: &[(Port, BPickMsg)]) {
        let mut picks: Vec<Port> = Vec::new();
        for &(port, msg) in inbox {
            match msg {
                BPickMsg::Saturated => self.alive[port] = false,
                BPickMsg::Pick => picks.push(port),
            }
        }
        if ctx.round() % 2 == 0 {
            if self.saturated() {
                if !self.announced_saturation {
                    self.announced_saturation = true;
                    for p in 0..self.alive.len() {
                        if self.alive[p] {
                            ctx.send(p, BPickMsg::Saturated);
                        }
                    }
                }
                ctx.halt();
                return;
            }
            match self.best_port(ctx) {
                None => ctx.halt(),
                Some(p) => {
                    self.picked = Some(p);
                    ctx.send(p, BPickMsg::Pick);
                }
            }
        } else if let Some(p) = self.picked.take() {
            if picks.contains(&p) {
                // Mutual pick: the edge joins; it leaves the candidate
                // set at both endpoints (each saw the pick).
                self.chosen.push(ctx.edge(p));
                self.alive[p] = false;
            }
        }
    }
}

impl Protocol for BLocalMaxNode {
    type Msg = BPickMsg;
    /// The edges this node selected (its side of the `b`-matching).
    type Output = Vec<EdgeId>;

    fn on_start(&mut self, ctx: &mut Context<'_, BPickMsg>) {
        self.step(ctx, &[]);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, BPickMsg>, inbox: &[(Port, BPickMsg)]) {
        self.step(ctx, inbox);
    }

    fn into_output(self) -> Vec<EdgeId> {
        self.chosen
    }
}

/// The result of a distributed `b`-matching run.
#[derive(Debug, Clone)]
pub struct BMatchingReport {
    /// The computed (validated) `b`-matching.
    pub b_matching: BMatching,
    /// Cost accounting.
    pub stats: dam_congest::RunStats,
}

/// Runs the distributed `½`-approximate maximum-weight `b`-matching.
///
/// # Errors
/// Simulation failure, endpoint disagreement, or capacity violation.
///
/// # Panics
/// Panics if `capacities.len() != g.node_count()`.
///
/// # Example
/// ```
/// use dam_core::weighted::b_local_max::b_local_max;
/// use dam_graph::generators;
///
/// let g = generators::star(5); // centre 0 with 4 leaves
/// let caps = vec![2, 1, 1, 1, 1];
/// let r = b_local_max(&g, &caps, 1).unwrap();
/// assert_eq!(r.b_matching.size(), 2); // centre serves two leaves
/// ```
pub fn b_local_max(
    g: &Graph,
    capacities: &[usize],
    seed: u64,
) -> Result<BMatchingReport, CoreError> {
    assert_eq!(capacities.len(), g.node_count(), "one capacity per node");
    let mut net = Network::new(g, SimConfig::congest_for(g.node_count(), 4).seed(seed));
    let out = net.run(|v, graph| {
        let weights = graph.incident(v).map(|(_, _, e)| Some(graph.weight(e))).collect();
        BLocalMaxNode::new(weights, capacities[v])
    })?;
    // Cross-validate: each chosen edge must be chosen by both endpoints.
    let mut bm = BMatching::new(g, capacities.to_vec());
    for (v, chosen) in out.outputs.iter().enumerate() {
        for &e in chosen {
            let u = g.other_endpoint(e, v);
            if !out.outputs[u].contains(&e) {
                return Err(CoreError::Graph(dam_graph::GraphError::InconsistentMatching {
                    node: u,
                }));
            }
            if v < u {
                bm.add(g, e).map_err(CoreError::Graph)?;
            }
        }
    }
    bm.validate(g).map_err(CoreError::Graph)?;
    Ok(BMatchingReport { b_matching: bm, stats: out.stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::bmatching::{brute_force_b_matching, greedy_b_matching, is_b_maximal};
    use dam_graph::generators;
    use dam_graph::weights::{randomize_weights, WeightDist};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn matches_sequential_greedy_exactly() {
        let mut rng = StdRng::seed_from_u64(61);
        for trial in 0..10 {
            let base = generators::gnp(18, 0.25, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.1, hi: 6.0 }, &mut rng);
            let caps: Vec<usize> = (0..g.node_count()).map(|_| rng.random_range(1..=3)).collect();
            let dist = b_local_max(&g, &caps, trial).unwrap();
            let seq = greedy_b_matching(&g, &caps);
            assert_eq!(
                dist.b_matching.edges().collect::<Vec<_>>(),
                seq.edges().collect::<Vec<_>>(),
                "trial {trial}"
            );
            assert!(is_b_maximal(&g, &dist.b_matching));
        }
    }

    #[test]
    fn half_approximation_vs_brute_force() {
        let mut rng = StdRng::seed_from_u64(62);
        for trial in 0..12 {
            let base = generators::gnp(8, 0.45, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 10 }, &mut rng);
            let caps: Vec<usize> = (0..g.node_count()).map(|_| rng.random_range(1..=2)).collect();
            let dist = b_local_max(&g, &caps, trial).unwrap();
            let opt = brute_force_b_matching(&g, &caps);
            assert!(
                dist.b_matching.weight(&g) >= 0.5 * opt.weight(&g) - 1e-9,
                "trial {trial}: {} vs {}",
                dist.b_matching.weight(&g),
                opt.weight(&g)
            );
        }
    }

    #[test]
    fn capacity_one_reduces_to_matching() {
        let mut rng = StdRng::seed_from_u64(63);
        let base = generators::gnp(16, 0.3, &mut rng);
        let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.5, hi: 3.0 }, &mut rng);
        let caps = vec![1usize; g.node_count()];
        let bm = b_local_max(&g, &caps, 5).unwrap();
        let plain = crate::weighted::local_max::local_max_mwm(&g, 5).unwrap();
        assert_eq!(bm.b_matching.edges().collect::<Vec<_>>(), plain.matching.to_edge_vec());
    }

    #[test]
    fn zero_capacity_nodes_select_nothing() {
        let g = generators::complete(5);
        let caps = vec![0usize; 5];
        let r = b_local_max(&g, &caps, 1).unwrap();
        assert_eq!(r.b_matching.size(), 0);
    }

    #[test]
    fn messages_fit_congest() {
        let g = generators::complete(10);
        let r = b_local_max(&g, &[3; 10], 2).unwrap();
        assert_eq!(r.stats.violations, 0);
        assert_eq!(r.stats.max_message_bits, 1);
    }
}
