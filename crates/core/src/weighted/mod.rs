//! §4: `(½−ε)`-approximate maximum **weight** matching (Algorithm 5,
//! Theorem 4.5).
//!
//! The reduction: given a matching `M`, re-weight every non-matching edge
//! `(u,v)` by its *gain* `w_M(u,v) = g(wrap(u,v))` — the change in
//! `w(M)` if `(u,v)` enters the matching and the matched edges at `u` and
//! `v` leave (the length-≤3 augmentation `wrap(u,v)`). Run a black-box
//! `δ`-MWM on the gain graph, apply all the wraps at once (Lemma 4.1
//! shows the result is a matching and gains add up), and repeat
//! `⌈(3/2δ)·ln(2/ε)⌉` times (Lemma 4.3).
//!
//! The black box is [`local_max`] (`δ = ½`, our stand-in for the paper's
//! Lemma 4.4 — see `DESIGN.md`, *Substitutions*), with [`proposal`] as an
//! ablation alternative.
//!
//! Each iteration costs three protocol runs: a 2-round gain exchange, the
//! black box (`O(log n)` w.h.p.), and a 2-round wrap/reconcile pass.

pub mod b_local_max;
pub mod local_max;
pub mod proposal;

use dam_congest::{BitSize, Context, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph};

use crate::error::CoreError;
use crate::repair::sanitize_registers_on;
use crate::report::AlgorithmReport;
use crate::runtime::{run_mm, Algorithm, Exec, MainRun, RuntimeConfig};

use self::local_max::LocalMaxNode;
use self::proposal::ProposalNode;

/// Which `δ`-MWM black box Algorithm 5 invokes each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlackBox {
    /// Locally-heaviest-edge matching: `δ = ½`, the default.
    LocalMax,
    /// Weight-greedy propose/accept heuristic (no worst-case `δ`); the
    /// payload is its iteration count.
    Proposal {
        /// Propose/accept cycles per invocation.
        iterations: usize,
    },
}

/// Configuration for [`weighted_mwm`].
#[derive(Debug, Clone, Copy)]
pub struct WeightedMwmConfig {
    /// Target slack: the result is a `(½−ε)`-MWM.
    pub eps: f64,
    /// Master seed.
    pub seed: u64,
    /// The inner `δ`-MWM.
    pub black_box: BlackBox,
    /// `δ` assumed in the iteration count `⌈(3/2δ)·ln(2/ε)⌉`.
    pub delta: f64,
    /// CONGEST budget: `congest_words · log₂ n` bits per message (gain
    /// messages are 64-bit floats, so keep this ≥ `64/log₂ n`).
    pub congest_words: usize,
    /// Round-cost accounting.
    pub cost: dam_congest::CostModel,
    /// Simulator worker threads (see [`SimConfig::threads`]); every
    /// phase runs on the sharded parallel engine when `> 1`, with
    /// bit-identical results.
    pub threads: usize,
    /// Engine backend (see [`SimConfig::backend`]); every phase runs on
    /// the selected executor — including [`dam_congest::Backend::Async`],
    /// which is bit-identical under the synchronizer contract.
    pub backend: dam_congest::Backend,
}

impl Default for WeightedMwmConfig {
    fn default() -> WeightedMwmConfig {
        WeightedMwmConfig {
            eps: 0.1,
            seed: 0,
            black_box: BlackBox::LocalMax,
            delta: 0.5,
            congest_words: 8,
            cost: dam_congest::CostModel::Unit,
            threads: 1,
            backend: dam_congest::Backend::Sequential,
        }
    }
}

impl WeightedMwmConfig {
    /// The iteration count of Algorithm 5, line 2.
    #[must_use]
    pub fn iterations(&self) -> usize {
        algorithm5_iterations(self.eps, self.delta)
    }
}

/// Messages of the gain-exchange and wrap passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WrapMsg {
    /// "The weight of my current matching edge is `w`" (0 if free).
    MatchedWeight {
        /// Weight of the sender's matched edge.
        w: f64,
    },
    /// "I re-matched in `M'`; our old matching edge is gone."
    Rewed,
}

impl BitSize for WrapMsg {
    fn bit_size(&self) -> usize {
        match self {
            WrapMsg::MatchedWeight { .. } => 64,
            WrapMsg::Rewed => 1,
        }
    }
}

/// 2-round protocol computing per-port gains `w_M` (the paper's
/// re-weighting). `pub(crate)` for the conformance harness's legacy
/// golden replica.
#[derive(Debug)]
pub(crate) struct GainExchange {
    matched_port: Option<Port>,
    my_weight: f64,
    gains: Vec<Option<f64>>,
}

impl GainExchange {
    pub(crate) fn new(degree: usize, matched_port: Option<Port>, my_weight: f64) -> GainExchange {
        GainExchange { matched_port, my_weight, gains: vec![None; degree] }
    }
}

impl Protocol for GainExchange {
    type Msg = WrapMsg;
    /// Candidate gains per port (`None` for matching edges and
    /// non-positive gains).
    type Output = Vec<Option<f64>>;

    fn on_start(&mut self, ctx: &mut Context<'_, WrapMsg>) {
        ctx.broadcast(WrapMsg::MatchedWeight { w: self.my_weight });
    }

    fn on_round(&mut self, ctx: &mut Context<'_, WrapMsg>, inbox: &[(Port, WrapMsg)]) {
        for &(port, msg) in inbox {
            if let WrapMsg::MatchedWeight { w } = msg {
                if Some(port) == self.matched_port {
                    continue; // edges of M get w_M = 0 and never re-enter
                }
                let gain = ctx.edge_weight(port) - self.my_weight - w;
                if gain > 0.0 {
                    self.gains[port] = Some(gain);
                }
            }
        }
        ctx.halt();
    }

    fn into_output(self) -> Vec<Option<f64>> {
        self.gains
    }
}

/// 2-round wrap pass: `M ← M ⊕ ⋃_{e∈M'} wrap(e)`, reconciling output
/// registers (old mates of re-matched nodes become free). `pub(crate)`
/// for the conformance harness's legacy golden replica.
#[derive(Debug)]
pub(crate) struct WrapApply {
    pub(crate) matched_port: Option<Port>,
    pub(crate) register: Option<EdgeId>,
    pub(crate) m_prime: Option<EdgeId>,
}

impl Protocol for WrapApply {
    type Msg = WrapMsg;
    /// The node's new output register.
    type Output = Option<EdgeId>;

    fn on_start(&mut self, ctx: &mut Context<'_, WrapMsg>) {
        if let Some(e) = self.m_prime {
            if let Some(p) = self.matched_port {
                ctx.send(p, WrapMsg::Rewed);
            }
            self.register = Some(e);
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, WrapMsg>, inbox: &[(Port, WrapMsg)]) {
        for &(port, msg) in inbox {
            if msg == WrapMsg::Rewed && Some(port) == self.matched_port && self.m_prime.is_none() {
                self.register = None;
            }
        }
        ctx.halt();
    }

    fn into_output(self) -> Option<EdgeId> {
        self.register
    }
}

/// The iteration count of Algorithm 5, line 2: `⌈(3/2δ)·ln(2/ε)⌉`.
fn algorithm5_iterations(eps: f64, delta: f64) -> usize {
    ((3.0 / (2.0 * delta)) * (2.0 / eps).ln()).ceil().max(1.0) as usize
}

/// The weighted driver as a runtime [`Algorithm`]: Algorithm 5's
/// gain-exchange / black-box / wrap-apply loop, three phases per
/// iteration on the executor's engine.
///
/// [`Algorithm::resume`] re-runs the loop from sanitized registers on
/// the residual graph. Dead neighbours send no weights, so no gain (and
/// hence no wrap) is ever computed across a dead port; surviving
/// matched edges are kept unless a strictly-positive-gain wrap
/// re-matches an endpoint, so the matching *weight* is monotone across
/// a resume (the cardinality may shrink — two light edges can trade for
/// one heavy one).
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    /// Target slack: the result is a `(½−ε)`-MWM. Must be in `(0, 1]`.
    pub eps: f64,
    /// `δ` assumed in the iteration count. Must be in `(0, 1]`.
    pub delta: f64,
    /// The inner `δ`-MWM invoked each iteration.
    pub black_box: BlackBox,
}

impl Default for Weighted {
    fn default() -> Weighted {
        Weighted { eps: 0.1, delta: 0.5, black_box: BlackBox::LocalMax }
    }
}

impl Weighted {
    /// Runs the iteration loop from `registers`, sanitizing the black
    /// box's `M'` and the wrapped registers each iteration so the state
    /// stays total on the trusted domain (a no-op fault-free).
    fn drive(
        &self,
        exec: &mut Exec<'_>,
        mut registers: Vec<Option<EdgeId>>,
    ) -> Result<MainRun, CoreError> {
        assert!(self.eps > 0.0 && self.eps <= 1.0, "eps must be in (0, 1]");
        assert!(self.delta > 0.0 && self.delta <= 1.0, "delta must be in (0, 1]");
        let g = exec.graph();
        let alive = exec.alive().clone();
        let iterations = algorithm5_iterations(self.eps, self.delta);
        for _ in 0..iterations {
            // Step 1: gains.
            let mut gains = exec
                .phase(|v, graph| {
                    let matched_port = registers[v].map(|e| {
                        graph.port_of_edge(v, e).expect("register points at incident edge")
                    });
                    let my_weight = registers[v].map_or(0.0, |e| graph.weight(e));
                    GainExchange::new(graph.degree(v), matched_port, my_weight)
                })?
                .outputs;
            // Mask gains on ports into the untrusted domain: a neighbour
            // that broadcast its weight and then crashed (or churned
            // out) is a tombstone in the black-box phase, and a gain
            // pointing at it would make `LocalMaxNode` pick it forever.
            // A no-op fault-free. (Same precondition as the bipartite
            // driver's `live` mask and the resume constructors'
            // `dead_ports`.)
            for (v, row) in gains.iter_mut().enumerate() {
                if !alive[v] {
                    // A tombstone's output row is `Default` (possibly
                    // empty) and is never fed to a live black box.
                    continue;
                }
                for (p, u, _) in g.incident(v) {
                    if !alive[u] {
                        row[p] = None;
                    }
                }
            }
            // Step 2: δ-MWM on the gain graph.
            let m_prime: Vec<Option<EdgeId>> = match self.black_box {
                BlackBox::LocalMax => {
                    exec.phase(|v, _| LocalMaxNode::new(gains[v].clone()))?.outputs
                }
                BlackBox::Proposal { iterations } => {
                    exec.phase(|v, _| ProposalNode::new(gains[v].clone(), iterations))?.outputs
                }
            };
            let m_prime = sanitize_registers_on(g, &m_prime, &alive).registers;
            // Step 3: apply all wraps.
            let out = exec.phase(|v, graph| {
                let matched_port = registers[v]
                    .map(|e| graph.port_of_edge(v, e).expect("register points at incident edge"));
                WrapApply { matched_port, register: registers[v], m_prime: m_prime[v] }
            })?;
            registers = sanitize_registers_on(g, &out.outputs, &alive).registers;
        }
        Ok(MainRun { registers, iterations })
    }
}

impl Algorithm for Weighted {
    fn name(&self) -> &'static str {
        "weighted"
    }

    fn run(&self, exec: &mut Exec<'_>) -> Result<MainRun, CoreError> {
        let registers = vec![None; exec.graph().node_count()];
        self.drive(exec, registers)
    }

    fn resume(
        &self,
        exec: &mut Exec<'_>,
        registers: &[Option<EdgeId>],
    ) -> Result<MainRun, CoreError> {
        self.drive(exec, registers.to_vec())
    }
}

/// Computes a `(½−ε)`-approximate maximum-weight matching (Theorem 4.5).
///
/// # Errors
/// Simulation or register-consistency failure.
///
/// # Panics
/// Panics if `eps` or `delta` are outside `(0, 1]`.
///
/// # Example
/// ```
/// use dam_core::weighted::{weighted_mwm, WeightedMwmConfig};
/// use dam_graph::generators;
///
/// let g = generators::greedy_trap(3, 0.2);
/// let r = weighted_mwm(&g, &WeightedMwmConfig { eps: 0.05, seed: 1, ..Default::default() }).unwrap();
/// // Optimum is 6.0 (all outer edges); (1/2 - ε) of that is ≈ 2.7.
/// assert!(r.matching.weight(&g) >= 2.7);
/// ```
pub fn weighted_mwm(g: &Graph, config: &WeightedMwmConfig) -> Result<AlgorithmReport, CoreError> {
    // Deprecated shim: the driver now lives on the runtime trait
    // ([`Weighted`]); this entry point survives as a bit-identical
    // field mapping (pinned by `tests/algo_conformance.rs`).
    let sim = SimConfig::congest_for(g.node_count(), config.congest_words)
        .seed(config.seed)
        .cost(config.cost)
        .threads(config.threads)
        .backend(config.backend);
    let algo = Weighted { eps: config.eps, delta: config.delta, black_box: config.black_box };
    let rep = run_mm(&algo, g, &RuntimeConfig::new().sim(sim))?;
    Ok(AlgorithmReport { matching: rep.matching, stats: rep.totals, iterations: rep.iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::weights::{randomize_weights, WeightDist};
    use dam_graph::{brute, generators, mwm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ratio(g: &Graph, cfg: &WeightedMwmConfig) -> f64 {
        let r = weighted_mwm(g, cfg).unwrap();
        r.matching.validate(g).unwrap();
        let opt = brute::maximum_weight(g);
        if opt == 0.0 {
            1.0
        } else {
            r.matching.weight(g) / opt
        }
    }

    #[test]
    fn iteration_count_formula() {
        let c = WeightedMwmConfig { eps: 0.1, delta: 0.5, ..Default::default() };
        assert_eq!(c.iterations(), 9); // ⌈3·ln 20⌉ = ⌈8.987⌉
        let c = WeightedMwmConfig { eps: 0.5, delta: 0.5, ..Default::default() };
        assert_eq!(c.iterations(), 5); // ⌈3·ln 4⌉ = ⌈4.159⌉
    }

    #[test]
    fn achieves_half_minus_eps_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(101);
        for trial in 0..12 {
            let base = generators::gnp(11, 0.3, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.2, hi: 5.0 }, &mut rng);
            let cfg = WeightedMwmConfig { eps: 0.05, seed: trial, ..Default::default() };
            let r = ratio(&g, &cfg);
            assert!(r >= 0.45 - 1e-9, "trial {trial}: ratio {r} < 1/2 - ε");
        }
    }

    #[test]
    fn trap_stalls_at_the_half_barrier_as_predicted() {
        // On the greedy trap (1, 1+δ, 1 per component) the first
        // iteration matches every middle edge; afterwards every single
        // wrap gain is 1 − (1+δ) < 0, so Algorithm 5 — whose wraps touch
        // one unmatched edge at a time — legitimately stalls at ratio
        // (1+δ)/2. This is the §4 observation that the reduction cannot
        // beat ½ in general.
        let g = generators::greedy_trap(4, 0.2);
        let cfg = WeightedMwmConfig { eps: 0.02, seed: 3, ..Default::default() };
        let r = weighted_mwm(&g, &cfg).unwrap();
        let opt = brute::maximum_weight(&g); // 8.0
        let w = r.matching.weight(&g);
        assert!(w >= (0.5 - 0.02) * opt - 1e-9, "Theorem 4.5 floor violated: {w}");
        assert!((w - 4.0 * 1.2).abs() < 1e-9, "expected the stalled middle-edge matching, got {w}");
    }

    #[test]
    fn weight_is_monotone_across_iterations() {
        // Lemma 4.1: every iteration's wrap application cannot decrease
        // the weight. Track it by running with increasing iteration
        // budgets.
        let mut rng = StdRng::seed_from_u64(103);
        let base = generators::gnp(14, 0.25, &mut rng);
        let g = randomize_weights(&base, WeightDist::Integer { max: 9 }, &mut rng);
        let mut last = 0.0;
        for eps in [1.0, 0.6, 0.3, 0.1, 0.03] {
            let cfg = WeightedMwmConfig { eps, seed: 5, ..Default::default() };
            let r = weighted_mwm(&g, &cfg).unwrap();
            let w = r.matching.weight(&g);
            assert!(w + 1e-9 >= last, "weight decreased: {last} -> {w}");
            last = w;
        }
    }

    #[test]
    fn series_barrier_is_respected() {
        // The paper's tight example: from the middle edge, all gains are
        // 0, so no improvement past 1/2 is possible — but our run starts
        // from the empty matching and local-max takes one of the ends, so
        // it escapes. Verify only that the ratio lands in [1/2-ε, 1].
        let g = generators::three_edge_series();
        let cfg = WeightedMwmConfig { eps: 0.1, seed: 1, ..Default::default() };
        let r = ratio(&g, &cfg);
        assert!(r >= 0.5 - 0.1 - 1e-9);
    }

    #[test]
    fn proposal_black_box_also_works() {
        let mut rng = StdRng::seed_from_u64(104);
        let base = generators::gnp(12, 0.3, &mut rng);
        let g = randomize_weights(&base, WeightDist::Integer { max: 7 }, &mut rng);
        let cfg = WeightedMwmConfig {
            eps: 0.05,
            seed: 2,
            black_box: BlackBox::Proposal { iterations: 12 },
            ..Default::default()
        };
        let r = weighted_mwm(&g, &cfg).unwrap();
        r.matching.validate(&g).unwrap();
        assert!(r.matching.weight(&g) > 0.0);
    }

    #[test]
    fn large_exact_comparison() {
        // Against the O(n³) exact solver on a bigger instance.
        let mut rng = StdRng::seed_from_u64(105);
        let base = generators::gnp(60, 0.1, &mut rng);
        let g = randomize_weights(&base, WeightDist::Exponential { lambda: 0.5 }, &mut rng);
        let cfg = WeightedMwmConfig { eps: 0.05, seed: 8, ..Default::default() };
        let r = weighted_mwm(&g, &cfg).unwrap();
        let opt = mwm::maximum_weight(&g);
        assert!(r.matching.weight(&g) >= (0.5 - 0.05) * opt - 1e-9);
    }

    #[test]
    fn unweighted_graphs_work_too() {
        let g = generators::cycle(12);
        let cfg = WeightedMwmConfig { eps: 0.1, seed: 4, ..Default::default() };
        let r = weighted_mwm(&g, &cfg).unwrap();
        assert!(r.matching.size() >= 4); // ≥ (1/2 − ε) · 6 edges
    }
}
