//! Luby's randomized maximal independent set.
//!
//! Luby (1986) / Alon, Babai & Itai (1986): in each iteration every live
//! node draws a random value; strict local maxima (ties broken by id)
//! join the MIS, and they and their neighbours leave the graph. After
//! `O(log n)` iterations the surviving choices form an MIS w.h.p.
//!
//! The paper invokes this algorithm on the *conflict graph* `C_M(ℓ)`
//! (Corollary 3.6); the bipartite token lottery of §3.2 emulates exactly
//! one such iteration per counting pass. Here it runs on the
//! communication graph itself — both as a reusable primitive and as the
//! reference the emulation is tested against.

use dam_congest::{BitSize, Context, Port, Protocol, SimConfig};
use dam_graph::Graph;
use rand::RngExt;

use crate::error::CoreError;

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LubyMsg {
    /// This iteration's lottery value.
    Value {
        /// The draw.
        v: u64,
        /// Analytical width: the analysis draws from `[1, N⁴]`, i.e.
        /// `4 log₂ n` bits.
        bits: u32,
    },
    /// "I joined the MIS" — neighbours must leave the graph.
    InMis,
    /// "I left the graph" (dominated) — stop waiting for me.
    Gone,
}

impl BitSize for LubyMsg {
    fn bit_size(&self) -> usize {
        match *self {
            LubyMsg::Value { bits, .. } => bits as usize,
            LubyMsg::InMis | LubyMsg::Gone => 2,
        }
    }
}

/// Per-node state: iterations of draw → compare → resolve (3 rounds).
#[derive(Debug)]
pub struct LubyNode {
    in_mis: bool,
    decided: bool,
    live: Vec<bool>,
    my_value: u64,
    best_neighbor: Option<(u64, usize)>,
}

impl LubyNode {
    /// Fresh state for a node of the given degree.
    #[must_use]
    pub fn new(degree: usize) -> LubyNode {
        LubyNode {
            in_mis: false,
            decided: false,
            live: vec![true; degree],
            my_value: 0,
            best_neighbor: None,
        }
    }

    fn has_live(&self) -> bool {
        self.live.iter().any(|&l| l)
    }

    fn step(&mut self, ctx: &mut Context<'_, LubyMsg>, inbox: &[(Port, LubyMsg)]) {
        // Process incoming messages first, regardless of sub-phase.
        for &(port, msg) in inbox {
            match msg {
                LubyMsg::Value { v, .. } => {
                    let nb = ctx.neighbor(port);
                    let cand = (v, nb);
                    if self.best_neighbor.is_none_or(|b| cand > b) {
                        self.best_neighbor = Some(cand);
                    }
                }
                LubyMsg::InMis => {
                    // A neighbour won: I am dominated.
                    if !self.decided {
                        self.decided = true;
                        self.in_mis = false;
                    }
                    self.live[port] = false;
                }
                LubyMsg::Gone => self.live[port] = false,
            }
        }
        match ctx.round() % 3 {
            0 => {
                if self.decided {
                    // Announce departure (dominated nodes) and leave.
                    if !self.in_mis {
                        for p in ctx.ports() {
                            if self.live[p] {
                                ctx.send(p, LubyMsg::Gone);
                            }
                        }
                    }
                    ctx.halt();
                    return;
                }
                if !self.has_live() {
                    // No live neighbours: vacuous local maximum.
                    self.in_mis = true;
                    self.decided = true;
                    ctx.halt();
                    return;
                }
                self.best_neighbor = None;
                self.my_value = ctx.rng().random();
                let bits = 4 * dam_congest::message::id_bits(ctx.network_size()) as u32;
                for p in ctx.ports() {
                    if self.live[p] {
                        ctx.send(p, LubyMsg::Value { v: self.my_value, bits });
                    }
                }
            }
            1
                // Values (sent in sub 0) arrived above. Strict local
                // maximum by (value, id) joins the MIS.
                if !self.decided => {
                    let me = (self.my_value, ctx.id());
                    if self.best_neighbor.is_none_or(|b| me > b) {
                        self.in_mis = true;
                        self.decided = true;
                        for p in ctx.ports() {
                            if self.live[p] {
                                ctx.send(p, LubyMsg::InMis);
                            }
                        }
                        ctx.halt();
                    }
                }
            _ => {
                // sub 2: InMis messages processed above; dominated nodes
                // announce Gone at the next sub 0.
            }
        }
    }
}

impl Protocol for LubyNode {
    type Msg = LubyMsg;
    /// Whether this node is in the independent set.
    type Output = bool;

    fn on_start(&mut self, ctx: &mut Context<'_, LubyMsg>) {
        self.step(ctx, &[]);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, LubyMsg>, inbox: &[(Port, LubyMsg)]) {
        self.step(ctx, inbox);
    }

    fn into_output(self) -> bool {
        self.in_mis
    }
}

/// The result of a distributed MIS computation.
#[derive(Debug, Clone)]
pub struct MisReport {
    /// Per-node membership flags.
    pub in_mis: Vec<bool>,
    /// Round/message accounting.
    pub stats: dam_congest::RunStats,
}

/// Runs Luby's MIS over `g`.
///
/// # Errors
/// Propagates simulator errors.
///
/// # Example
/// ```
/// use dam_core::luby::luby_mis;
/// use dam_graph::generators;
///
/// let g = generators::cycle(9);
/// let mis = luby_mis(&g, 3).unwrap();
/// let size = mis.in_mis.iter().filter(|&&b| b).count();
/// assert!(size >= 3 && size <= 4); // MIS of C_9 has 3 or 4 nodes
/// ```
pub fn luby_mis(g: &Graph, seed: u64) -> Result<MisReport, CoreError> {
    luby_mis_with(g, SimConfig::congest_for(g.node_count(), 4).seed(seed))
}

/// Runs Luby's MIS under an explicit simulator configuration. Honors
/// [`SimConfig::threads`]: with `threads > 1` the rounds execute on the
/// sharded parallel engine, bit-identically.
///
/// This is a seed-only convenience over the unified runtime's engine
/// entry ([`crate::runtime::execute_program`]) — MIS membership is not a
/// match register, so none of the register middleware applies.
///
/// # Errors
/// As [`luby_mis`].
pub fn luby_mis_with(g: &Graph, config: SimConfig) -> Result<MisReport, CoreError> {
    let out = crate::runtime::execute_program(
        g,
        &crate::runtime::RuntimeConfig::new().sim(config),
        |v, graph| LubyNode::new(graph.degree(v)),
    )?;
    Ok(MisReport { in_mis: out.outputs, stats: out.stats })
}

/// Checks that `set` is a maximal independent set of `g`.
#[must_use]
pub fn is_mis(g: &Graph, set: &[bool]) -> bool {
    // Independent: no edge inside the set.
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        if set[u] && set[v] {
            return false;
        }
    }
    // Maximal: every outside node is dominated.
    g.nodes().all(|v| set[v] || g.neighbors(v).any(|u| set[u]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mis_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(6);
        for trial in 0..20 {
            let g = generators::gnp(40, 0.12, &mut rng);
            let mis = luby_mis(&g, trial).unwrap();
            assert!(is_mis(&g, &mis.in_mis), "trial {trial} produced a non-MIS");
            assert_eq!(mis.stats.violations, 0);
        }
    }

    #[test]
    fn mis_on_structures() {
        for g in [generators::complete(10), generators::star(12), generators::path(9)] {
            let mis = luby_mis(&g, 5).unwrap();
            assert!(is_mis(&g, &mis.in_mis));
        }
        // In K_n the MIS is a single node.
        let mis = luby_mis(&generators::complete(10), 5).unwrap();
        assert_eq!(mis.in_mis.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn isolated_nodes_always_join() {
        let g = dam_graph::Graph::builder(4).edge(0, 1).build().unwrap();
        let mis = luby_mis(&g, 1).unwrap();
        assert!(mis.in_mis[2] && mis.in_mis[3]);
        assert!(is_mis(&g, &mis.in_mis));
    }

    /// The paper's core trick in miniature: running MIS on the *line
    /// graph* yields a maximal matching of the base graph (Definition
    /// 3.1's conflict graph at `ℓ = 1`, `M = ∅`, is the line graph).
    #[test]
    fn mis_on_line_graph_is_maximal_matching() {
        use dam_graph::line_graph::line_graph;
        use dam_graph::{maximal, Matching};
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..10 {
            let g = generators::gnp(20, 0.2, &mut rng);
            let lg = line_graph(&g);
            let mis = luby_mis(&lg, trial).unwrap();
            let edges: Vec<usize> =
                mis.in_mis.iter().enumerate().filter_map(|(e, &b)| b.then_some(e)).collect();
            let m = Matching::from_edges(&g, edges).expect("independent set of L(G) is a matching");
            assert!(maximal::is_maximal(&g, &m), "MIS maximality must carry over, trial {trial}");
        }
    }

    #[test]
    fn rounds_scale_logarithmically() {
        let mut rng = StdRng::seed_from_u64(8);
        let small = generators::random_regular(64, 4, &mut rng);
        let large = generators::random_regular(4096, 4, &mut rng);
        let r_small = luby_mis(&small, 2).unwrap().stats.rounds;
        let r_large = luby_mis(&large, 2).unwrap().stats.rounds;
        assert!(r_large < r_small * 8, "rounds: {r_small} -> {r_large}");
    }
}
