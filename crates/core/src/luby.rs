//! Luby's randomized maximal independent set.
//!
//! Luby (1986) / Alon, Babai & Itai (1986): in each iteration every live
//! node draws a random value; strict local maxima (ties broken by id)
//! join the MIS, and they and their neighbours leave the graph. After
//! `O(log n)` iterations the surviving choices form an MIS w.h.p.
//!
//! The paper invokes this algorithm on the *conflict graph* `C_M(ℓ)`
//! (Corollary 3.6); the bipartite token lottery of §3.2 emulates exactly
//! one such iteration per counting pass. Here it runs on the
//! communication graph itself — both as a reusable primitive and as the
//! reference the emulation is tested against.

use dam_congest::{BitSize, Context, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph};
use rand::RngExt;

use crate::error::CoreError;
use crate::runtime::{Algorithm, Exec, MainRun};

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LubyMsg {
    /// This iteration's lottery value.
    Value {
        /// The draw.
        v: u64,
        /// Analytical width: the analysis draws from `[1, N⁴]`, i.e.
        /// `4 log₂ n` bits.
        bits: u32,
    },
    /// "I joined the MIS" — neighbours must leave the graph.
    InMis,
    /// "I left the graph" (dominated) — stop waiting for me.
    Gone,
}

impl BitSize for LubyMsg {
    fn bit_size(&self) -> usize {
        match *self {
            LubyMsg::Value { bits, .. } => bits as usize,
            LubyMsg::InMis | LubyMsg::Gone => 2,
        }
    }
}

/// Per-node state: iterations of draw → compare → resolve (3 rounds).
#[derive(Debug)]
pub struct LubyNode {
    in_mis: bool,
    decided: bool,
    live: Vec<bool>,
    my_value: u64,
    best_neighbor: Option<(u64, usize)>,
}

impl LubyNode {
    /// Fresh state for a node of the given degree.
    #[must_use]
    pub fn new(degree: usize) -> LubyNode {
        LubyNode {
            in_mis: false,
            decided: false,
            live: vec![true; degree],
            my_value: 0,
            best_neighbor: None,
        }
    }

    fn has_live(&self) -> bool {
        self.live.iter().any(|&l| l)
    }

    fn step(&mut self, ctx: &mut Context<'_, LubyMsg>, inbox: &[(Port, LubyMsg)]) {
        // Process incoming messages first, regardless of sub-phase.
        for &(port, msg) in inbox {
            match msg {
                LubyMsg::Value { v, .. } => {
                    let nb = ctx.neighbor(port);
                    let cand = (v, nb);
                    if self.best_neighbor.is_none_or(|b| cand > b) {
                        self.best_neighbor = Some(cand);
                    }
                }
                LubyMsg::InMis => {
                    // A neighbour won: I am dominated.
                    if !self.decided {
                        self.decided = true;
                        self.in_mis = false;
                    }
                    self.live[port] = false;
                }
                LubyMsg::Gone => self.live[port] = false,
            }
        }
        match ctx.round() % 3 {
            0 => {
                if self.decided {
                    // Announce departure (dominated nodes) and leave.
                    if !self.in_mis {
                        for p in ctx.ports() {
                            if self.live[p] {
                                ctx.send(p, LubyMsg::Gone);
                            }
                        }
                    }
                    ctx.halt();
                    return;
                }
                if !self.has_live() {
                    // No live neighbours: vacuous local maximum.
                    self.in_mis = true;
                    self.decided = true;
                    ctx.halt();
                    return;
                }
                self.best_neighbor = None;
                self.my_value = ctx.rng().random();
                let bits = 4 * dam_congest::message::id_bits(ctx.network_size()) as u32;
                for p in ctx.ports() {
                    if self.live[p] {
                        ctx.send(p, LubyMsg::Value { v: self.my_value, bits });
                    }
                }
            }
            1
                // Values (sent in sub 0) arrived above. Strict local
                // maximum by (value, id) joins the MIS.
                if !self.decided => {
                    let me = (self.my_value, ctx.id());
                    if self.best_neighbor.is_none_or(|b| me > b) {
                        self.in_mis = true;
                        self.decided = true;
                        for p in ctx.ports() {
                            if self.live[p] {
                                ctx.send(p, LubyMsg::InMis);
                            }
                        }
                        ctx.halt();
                    }
                }
            _ => {
                // sub 2: InMis messages processed above; dominated nodes
                // announce Gone at the next sub 0.
            }
        }
    }
}

impl Protocol for LubyNode {
    type Msg = LubyMsg;
    /// Whether this node is in the independent set.
    type Output = bool;

    fn on_start(&mut self, ctx: &mut Context<'_, LubyMsg>) {
        self.step(ctx, &[]);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, LubyMsg>, inbox: &[(Port, LubyMsg)]) {
        self.step(ctx, inbox);
    }

    fn into_output(self) -> bool {
        self.in_mis
    }
}

/// The result of a distributed MIS computation.
#[derive(Debug, Clone)]
pub struct MisReport {
    /// Per-node membership flags.
    pub in_mis: Vec<bool>,
    /// Round/message accounting.
    pub stats: dam_congest::RunStats,
}

/// Runs Luby's MIS over `g`.
///
/// # Errors
/// Propagates simulator errors.
///
/// # Example
/// ```
/// use dam_core::luby::luby_mis;
/// use dam_graph::generators;
///
/// let g = generators::cycle(9);
/// let mis = luby_mis(&g, 3).unwrap();
/// let size = mis.in_mis.iter().filter(|&&b| b).count();
/// assert!(size >= 3 && size <= 4); // MIS of C_9 has 3 or 4 nodes
/// ```
pub fn luby_mis(g: &Graph, seed: u64) -> Result<MisReport, CoreError> {
    luby_mis_with(g, SimConfig::congest_for(g.node_count(), 4).seed(seed))
}

/// Runs Luby's MIS under an explicit simulator configuration. Honors
/// [`SimConfig::threads`]: with `threads > 1` the rounds execute on the
/// sharded parallel engine, bit-identically.
///
/// This is a seed-only convenience over the unified runtime's engine
/// entry ([`crate::runtime::execute_program`]) — MIS membership is not a
/// match register, so none of the register middleware applies.
///
/// # Errors
/// As [`luby_mis`].
pub fn luby_mis_with(g: &Graph, config: SimConfig) -> Result<MisReport, CoreError> {
    let out = crate::runtime::execute_program(
        g,
        &crate::runtime::RuntimeConfig::new().sim(config),
        |v, graph| LubyNode::new(graph.degree(v)),
    )?;
    Ok(MisReport { in_mis: out.outputs, stats: out.stats })
}

/// Messages of the line-graph matching protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LubyMatchMsg {
    /// This iteration's lottery value of the edge the sender owns.
    Value {
        /// The draw.
        v: u64,
        /// Analytical width: the line graph has `N ≤ n·Δ/2` vertices
        /// and the analysis draws from `[1, N⁴]`; we charge `4 log₂ n`
        /// like [`LubyMsg::Value`] (a `Θ(log n)` quantity either way).
        bits: u32,
    },
    /// "Our shared edge is my local maximum" — a nomination; a mutual
    /// nomination is a line-graph local maximum and joins the matching.
    Winner,
    /// "Our shared edge left the line graph" (the sender matched
    /// elsewhere or halted) — stop considering it.
    Gone,
}

impl BitSize for LubyMatchMsg {
    fn bit_size(&self) -> usize {
        match *self {
            LubyMatchMsg::Value { bits, .. } => bits as usize,
            LubyMatchMsg::Winner | LubyMatchMsg::Gone => 2,
        }
    }
}

/// Per-node state of Luby's MIS run on the *implicit* line graph: each
/// node simulates its incident edges as line-graph vertices, the lower
/// endpoint owning each edge's lottery draw. One iteration is three
/// subrounds — draw/share values, nominate the local best edge, resolve
/// mutual nominations into matches — exactly one Luby iteration on the
/// conflict graph `C_∅(1)` (Definition 3.1), without materializing it.
#[derive(Debug)]
pub struct LubyMatchingNode {
    live: Vec<bool>,
    matched_port: Option<Port>,
    matched_edge: Option<EdgeId>,
    /// Per-port candidate `(value, edge id)` of this iteration.
    values: Vec<Option<(u64, EdgeId)>>,
    nominated: Option<Port>,
}

impl LubyMatchingNode {
    /// Fresh state for a node of the given degree.
    #[must_use]
    pub fn new(degree: usize) -> LubyMatchingNode {
        LubyMatchingNode {
            live: vec![true; degree],
            matched_port: None,
            matched_edge: None,
            values: vec![None; degree],
            nominated: None,
        }
    }

    /// Resume state: a node holding a committed register (`matched_*`,
    /// both `Some` or both `None`) with `dead_ports` leading outside the
    /// trusted domain. A matched node re-announces [`LubyMatchMsg::Gone`]
    /// and halts; a free node rejoins the lottery on its live ports.
    #[must_use]
    pub fn with_state(
        degree: usize,
        matched_port: Option<Port>,
        matched_edge: Option<EdgeId>,
        dead_ports: &[Port],
    ) -> LubyMatchingNode {
        debug_assert_eq!(matched_port.is_some(), matched_edge.is_some());
        let mut node = LubyMatchingNode::new(degree);
        node.matched_port = matched_port;
        node.matched_edge = matched_edge;
        for &p in dead_ports {
            node.live[p] = false;
        }
        node
    }

    fn has_live(&self) -> bool {
        self.live.iter().any(|&l| l)
    }

    /// Announces departure on every live port except `keep` and halts.
    fn depart(&mut self, ctx: &mut Context<'_, LubyMatchMsg>, keep: Option<Port>) {
        for p in ctx.ports() {
            if self.live[p] && Some(p) != keep {
                ctx.send(p, LubyMatchMsg::Gone);
            }
        }
        ctx.halt();
    }

    fn step(&mut self, ctx: &mut Context<'_, LubyMatchMsg>, inbox: &[(Port, LubyMatchMsg)]) {
        let mut winners: Vec<Port> = Vec::new();
        for &(port, msg) in inbox {
            match msg {
                LubyMatchMsg::Value { v, .. } => {
                    self.values[port] = Some((v, ctx.edge(port)));
                }
                LubyMatchMsg::Winner => winners.push(port),
                LubyMatchMsg::Gone => {
                    self.live[port] = false;
                    self.values[port] = None;
                }
            }
        }
        match ctx.round() % 3 {
            0 => {
                if self.matched_port.is_some() {
                    // Only reachable on resume: re-announce the match.
                    self.depart(ctx, self.matched_port);
                    return;
                }
                if !self.has_live() {
                    ctx.halt(); // exhausted: free with no live edges
                    return;
                }
                self.values = vec![None; self.live.len()];
                self.nominated = None;
                let bits = 4 * dam_congest::message::id_bits(ctx.network_size()) as u32;
                for p in ctx.ports() {
                    // The lower endpoint owns the edge's draw.
                    if self.live[p] && ctx.id() < ctx.neighbor(p) {
                        let v: u64 = ctx.rng().random();
                        self.values[p] = Some((v, ctx.edge(p)));
                        ctx.send(p, LubyMatchMsg::Value { v, bits });
                    }
                }
            }
            1 => {
                // All values of live incident edges are in (owned draws
                // plus sub-0 arrivals): nominate the local maximum.
                let best = (0..self.live.len())
                    .filter(|&p| self.live[p])
                    .filter_map(|p| self.values[p].map(|val| (val, p)))
                    .max();
                if let Some((_, p)) = best {
                    self.nominated = Some(p);
                    ctx.send(p, LubyMatchMsg::Winner);
                }
            }
            _ => {
                // A mutual nomination is a strict local maximum of the
                // line graph (unique values + edge-id tie-break): match.
                if let Some(p) = self.nominated {
                    if winners.contains(&p) {
                        self.matched_port = Some(p);
                        self.matched_edge = Some(ctx.edge(p));
                        self.depart(ctx, Some(p));
                    }
                }
            }
        }
    }
}

impl Protocol for LubyMatchingNode {
    type Msg = LubyMatchMsg;
    /// The node's output register (the matched edge, if any).
    type Output = Option<EdgeId>;

    fn on_start(&mut self, ctx: &mut Context<'_, LubyMatchMsg>) {
        self.step(ctx, &[]);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, LubyMatchMsg>, inbox: &[(Port, LubyMatchMsg)]) {
        self.step(ctx, inbox);
    }

    fn on_peer_down(&mut self, _ctx: &mut Context<'_, LubyMatchMsg>, port: Port) {
        self.live[port] = false;
        self.values[port] = None;
    }

    fn on_peer_up(&mut self, _ctx: &mut Context<'_, LubyMatchMsg>, port: Port) {
        // Revive the edge only while still free: a matched node has
        // halted (or is about to) and must not re-enter the lottery.
        if self.matched_port.is_none() {
            self.live[port] = true;
        }
    }

    fn into_output(self) -> Option<EdgeId> {
        self.matched_edge
    }
}

/// Luby's MIS on the implicit line graph as a runtime [`Algorithm`]:
/// the §3 conflict-graph trick run directly on the communication graph,
/// producing a maximal matching in `O(log n)` rounds w.h.p. — the
/// portfolio's second maximal-matching driver, useful as an independent
/// cross-check of [`crate::runtime::IsraeliItai`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LubyMatching;

impl Algorithm for LubyMatching {
    fn name(&self) -> &'static str {
        "luby-matching"
    }

    fn run(&self, exec: &mut Exec<'_>) -> Result<MainRun, CoreError> {
        let out = exec.phase(|v, g| LubyMatchingNode::new(g.degree(v)))?;
        // One Luby iteration is a 3-subround cycle.
        let iterations = usize::try_from(out.stats.rounds.div_ceil(3)).unwrap_or(usize::MAX);
        Ok(MainRun { registers: out.outputs, iterations })
    }

    fn resume(
        &self,
        exec: &mut Exec<'_>,
        registers: &[Option<EdgeId>],
    ) -> Result<MainRun, CoreError> {
        let dead = exec.dead_ports();
        let regs = registers.to_vec();
        let out = exec.phase(move |v, g| {
            let port =
                regs[v].map(|e| g.port_of_edge(v, e).expect("register points at an incident edge"));
            LubyMatchingNode::with_state(g.degree(v), port, regs[v], &dead[v])
        })?;
        let iterations = usize::try_from(out.stats.rounds.div_ceil(3)).unwrap_or(usize::MAX);
        Ok(MainRun { registers: out.outputs, iterations })
    }
}

/// Checks that `set` is a maximal independent set of `g`.
#[must_use]
pub fn is_mis(g: &Graph, set: &[bool]) -> bool {
    // Independent: no edge inside the set.
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        if set[u] && set[v] {
            return false;
        }
    }
    // Maximal: every outside node is dominated.
    g.nodes().all(|v| set[v] || g.neighbors(v).any(|u| set[u]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mis_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(6);
        for trial in 0..20 {
            let g = generators::gnp(40, 0.12, &mut rng);
            let mis = luby_mis(&g, trial).unwrap();
            assert!(is_mis(&g, &mis.in_mis), "trial {trial} produced a non-MIS");
            assert_eq!(mis.stats.violations, 0);
        }
    }

    #[test]
    fn mis_on_structures() {
        for g in [generators::complete(10), generators::star(12), generators::path(9)] {
            let mis = luby_mis(&g, 5).unwrap();
            assert!(is_mis(&g, &mis.in_mis));
        }
        // In K_n the MIS is a single node.
        let mis = luby_mis(&generators::complete(10), 5).unwrap();
        assert_eq!(mis.in_mis.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn isolated_nodes_always_join() {
        let g = dam_graph::Graph::builder(4).edge(0, 1).build().unwrap();
        let mis = luby_mis(&g, 1).unwrap();
        assert!(mis.in_mis[2] && mis.in_mis[3]);
        assert!(is_mis(&g, &mis.in_mis));
    }

    /// The paper's core trick in miniature: running MIS on the *line
    /// graph* yields a maximal matching of the base graph (Definition
    /// 3.1's conflict graph at `ℓ = 1`, `M = ∅`, is the line graph).
    #[test]
    fn mis_on_line_graph_is_maximal_matching() {
        use dam_graph::line_graph::line_graph;
        use dam_graph::{maximal, Matching};
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..10 {
            let g = generators::gnp(20, 0.2, &mut rng);
            let lg = line_graph(&g);
            let mis = luby_mis(&lg, trial).unwrap();
            let edges: Vec<usize> =
                mis.in_mis.iter().enumerate().filter_map(|(e, &b)| b.then_some(e)).collect();
            let m = Matching::from_edges(&g, edges).expect("independent set of L(G) is a matching");
            assert!(maximal::is_maximal(&g, &m), "MIS maximality must carry over, trial {trial}");
        }
    }

    #[test]
    fn rounds_scale_logarithmically() {
        let mut rng = StdRng::seed_from_u64(8);
        let small = generators::random_regular(64, 4, &mut rng);
        let large = generators::random_regular(4096, 4, &mut rng);
        let r_small = luby_mis(&small, 2).unwrap().stats.rounds;
        let r_large = luby_mis(&large, 2).unwrap().stats.rounds;
        assert!(r_large < r_small * 8, "rounds: {r_small} -> {r_large}");
    }
}
