#![warn(missing_docs)]

//! Distributed approximate matching in the CONGEST model.
//!
//! This crate implements the algorithms of *“Improved Distributed
//! Approximate Matching”* (Lotker, Patt-Shamir & Pettie; SPAA 2008 /
//! J. ACM 2015) on top of the [`dam_congest`] network simulator:
//!
//! | Module | Paper artifact | Guarantee |
//! |---|---|---|
//! | [`israeli_itai`] | Israeli & Itai (1986) baseline | maximal (`½`-MCM), `O(log n)` rounds w.h.p. |
//! | [`luby`] | Luby (1986) MIS (building block) | MIS, `O(log n)` rounds w.h.p. |
//! | [`generic`] | §3.1, Algorithms 1–2 (LOCAL model) | `(1−1/(k+1))`-MCM, large messages |
//! | [`bipartite`] | §3.2, Algorithm 3 + token lottery | `(1−1/k)`-MCM, CONGEST, `O(k³ log Δ + k² log n)` rounds |
//! | [`general`] | §3.3, Algorithm 4 | `(1−1/k)`-MCM w.h.p., CONGEST |
//! | [`weighted`] | §4, Algorithm 5 | `(½−ε)`-MWM, CONGEST, `O(log ε⁻¹ log n)` rounds |
//! | [`weighted::local_max`] | the `δ`-MWM black box (Lemma 4.4 stand-in) | `½`-MWM, `O(log n)` rounds w.h.p. |
//! | [`hv`] | §4 Remark (Hougardy–Vinkemeier adaptation) | `(1−ε)`-MWM, LOCAL model; exact at exhaustion |
//! | [`auction`] | §1 job/server example (Bertsekas) | bipartite assignment within `n·ε` of optimal |
//! | [`trees`] | related work on trees | exact MCM on forests, `O(diameter)` rounds |
//! | [`lca`] | §1 LCA pointer | query-access maximal matching, sublinear probes/query |
//! | [`weighted::b_local_max`] | §1 c-matching pointer | `½`-MWM `b`-matching with node capacities |
//! | [`repair`] | self-healing extension (not in the paper) | valid matching ⊇ surviving consistent matching after crashes |
//! | [`maintain`] | churn-maintenance extension (not in the paper) | valid + maximal on the present graph after every event batch; O(neighbourhood) repair locality |
//! | [`certify`] | self-verification extension (not in the paper) | O(1)-round proof-labeling certificate; detect → repair → re-verify pipeline ends valid + certified-maximal on the trusted domain |
//! | [`runtime`] | unified protocol runtime (not in the paper) | one composable middleware pipeline ([`runtime::run_mm`]) behind every hardened driver |
//!
//! [`paper_map`] is a rustdoc-only chapter mapping every section of the
//! paper to the code that implements it.
//!
//! Every algorithm returns a [`report::AlgorithmReport`] carrying the
//! computed [`dam_graph::Matching`] (already validated) plus the full
//! round/message/bit accounting of the run.
//!
//! # Example
//!
//! ```
//! use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
//! use dam_graph::{generators, hopcroft_karp};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generators::bipartite_gnp(40, 40, 0.2, &mut rng);
//! let report = bipartite_mcm(&g, &BipartiteMcmConfig { k: 3, seed: 1, ..Default::default() }).unwrap();
//! let opt = hopcroft_karp::maximum_bipartite_matching_size(&g);
//! // Theorem 3.10: at least a (1 - 1/3)-approximation.
//! assert!(3 * report.matching.size() >= 2 * opt);
//! ```

pub mod auction;
pub mod bipartite;
pub mod certify;
pub mod checkpoint;
pub mod error;
pub mod general;
pub mod generic;
pub mod hv;
pub mod israeli_itai;
pub mod lca;
pub mod luby;
pub mod maintain;
pub mod paper_map;
pub mod repair;
pub mod report;
pub mod runtime;
pub mod trees;
pub mod weighted;

pub use bipartite::Bipartite;
pub use checkpoint::{
    CheckpointCfg, CheckpointStore, Damage, RestoreError, RestoreOutcome, Snapshot, SnapshotError,
    Stage,
};
pub use error::CoreError;
pub use luby::LubyMatching;
pub use report::{AlgorithmReport, IterationPolicy};
pub use runtime::{
    run_configured, run_mm, AlgoSpec, Algorithm, IsraeliItai, MainRun, RunReport, RuntimeConfig,
};
pub use weighted::Weighted;
