//! The Israeli–Itai randomized maximal matching — the classical baseline.
//!
//! Israeli & Itai (1986) gave the first `O(log n)`-round CONGEST
//! algorithm computing a *maximal* matching, hence a `½`-MCM. It is the
//! algorithm the paper improves on (and the ancestor of the PIM/iSLIP
//! switch schedulers of §1). We implement the classic propose/accept
//! formulation:
//!
//! Each iteration takes three rounds. Every still-free node flips a coin:
//! *senders* propose over a uniformly random live port; *receivers*
//! accept one incoming proposal uniformly at random. An accepted proposal
//! matches the pair; matched nodes announce themselves dead so neighbours
//! stop counting them. A node halts when it is matched or all its
//! neighbours are; at that point no edge has two free endpoints, i.e. the
//! matching is maximal.
//!
//! Messages are 2 bits — far below any CONGEST budget.

use dam_congest::{BitSize, Context, CorruptKind, Port, Protocol, SimConfig, TotalStats};
use dam_graph::{EdgeId, Graph};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::error::CoreError;
use crate::report::AlgorithmReport;

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IiMsg {
    /// A sender proposes the shared edge.
    Propose,
    /// A receiver accepts one proposal.
    Accept,
    /// "I am matched" — remove me from your free-neighbour set.
    Dead,
}

impl BitSize for IiMsg {
    fn bit_size(&self) -> usize {
        2
    }

    /// Semantic transit damage for the 2-bit codeword. Codes: `00`
    /// Propose, `01` Accept, `10` Dead; `11` is unused, so damage
    /// landing there is undecodable and the message is lost in
    /// transit (`None`).
    fn corrupted(&self, kind: CorruptKind, rng: &mut StdRng) -> Option<Self> {
        let decode = |code: u8| match code {
            0b00 => Some(IiMsg::Propose),
            0b01 => Some(IiMsg::Accept),
            0b10 => Some(IiMsg::Dead),
            _ => None,
        };
        let code = match self {
            IiMsg::Propose => 0b00u8,
            IiMsg::Accept => 0b01,
            IiMsg::Dead => 0b10,
        };
        match kind {
            CorruptKind::BitFlip => decode(code ^ (1 << rng.random_range(0..2u32))),
            // A 2-bit message has no payload to shorten: truncation
            // destroys it.
            CorruptKind::Truncate => None,
            CorruptKind::Garbage => decode(rng.random_range(0..4u8)),
            CorruptKind::Replay => Some(*self),
            // The most damaging forgery for a matching protocol: a fake
            // acceptance desynchronizes the endpoints' registers —
            // exactly the damage certification exists to catch.
            CorruptKind::Forge => Some(IiMsg::Accept),
        }
    }
}

/// Per-node state machine. See the module docs for the 3-round iteration
/// structure.
#[derive(Debug)]
pub struct IiNode {
    matched_edge: Option<EdgeId>,
    announced: bool,
    live: Vec<bool>,
    proposed: Option<Port>,
}

impl IiNode {
    /// Fresh state for a node of the given degree.
    #[must_use]
    pub fn new(degree: usize) -> IiNode {
        IiNode { matched_edge: None, announced: false, live: vec![true; degree], proposed: None }
    }

    /// State for a node that resumes from a prior (partially computed)
    /// matching: it keeps `matched_edge` as its committed match and
    /// ignores `dead_ports` from the outset. Used by the
    /// [`crate::repair`] pass, where survivors re-run Israeli–Itai on
    /// the residual graph: already-matched nodes only re-announce their
    /// match and halt, free nodes compete for the remaining edges.
    ///
    /// # Panics
    /// Panics if a dead port is out of range.
    #[must_use]
    pub fn with_state(degree: usize, matched_edge: Option<EdgeId>, dead_ports: &[Port]) -> IiNode {
        let mut live = vec![true; degree];
        for &p in dead_ports {
            live[p] = false;
        }
        IiNode { matched_edge, announced: false, live, proposed: None }
    }

    fn live_ports(&self) -> Vec<Port> {
        self.live.iter().enumerate().filter_map(|(p, &l)| l.then_some(p)).collect()
    }

    fn step(&mut self, ctx: &mut Context<'_, IiMsg>, inbox: &[(Port, IiMsg)]) {
        let sub = ctx.round() % 3;
        let mut proposals: Vec<Port> = Vec::new();
        for &(port, msg) in inbox {
            match msg {
                IiMsg::Dead => self.live[port] = false,
                IiMsg::Propose => proposals.push(port),
                IiMsg::Accept => {
                    // Defensive decode: under reliable channels an
                    // accept always answers this node's outstanding
                    // proposal (this used to be a debug assertion), but
                    // a corrupted or forged message can deliver one
                    // unsolicited — or to a node that is already
                    // matched. Honouring it would silently
                    // desynchronize the endpoints' registers, so it is
                    // dropped; damage that slips through end-to-end is
                    // the certifier's job to catch.
                    if Some(port) == self.proposed && self.matched_edge.is_none() {
                        self.matched_edge = Some(ctx.edge(port));
                        self.announced = false;
                    }
                }
            }
        }
        if sub == 0 {
            self.proposed = None;
            if self.matched_edge.is_some() {
                if !self.announced {
                    self.announced = true;
                    ctx.broadcast(IiMsg::Dead);
                }
                ctx.halt();
                return;
            }
            let live = self.live_ports();
            if live.is_empty() {
                ctx.halt();
                return;
            }
            if ctx.rng().random_bool(0.5) {
                let pick = live[ctx.rng().random_range(0..live.len())];
                self.proposed = Some(pick);
                ctx.send(pick, IiMsg::Propose);
            }
        }
        // Receivers (nodes that did not propose) accept a random
        // proposal, if still free. Acceptance is deliberately *not*
        // gated on `sub == 1`: in an aligned run a proposal can only
        // arrive there (sent at sub 0, delivered one round later), but
        // under the resilient transport a freshly joined or rebooted
        // neighbour restarts its round counter at 0 while we are
        // mid-run, so its proposals land at a fixed phase offset.
        // Gating on the phase would make such an edge permanently
        // sterile — two free nodes proposing to each other forever
        // without ever answering, which livelocks the whole run.
        // A proposer is still protected against matching twice: its own
        // `Accept` always arrives before `proposed` is cleared at its
        // next sub 0, and while `proposed` is set it accepts nobody.
        if self.matched_edge.is_none() && self.proposed.is_none() && !proposals.is_empty() {
            let pick = proposals[ctx.rng().random_range(0..proposals.len())];
            self.matched_edge = Some(ctx.edge(pick));
            self.announced = false;
            ctx.send(pick, IiMsg::Accept);
        }
    }
}

impl Protocol for IiNode {
    type Msg = IiMsg;
    /// The node's output register: its matched edge, if any (§2).
    type Output = Option<EdgeId>;

    fn on_start(&mut self, ctx: &mut Context<'_, IiMsg>) {
        self.step(ctx, &[]);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, IiMsg>, inbox: &[(Port, IiMsg)]) {
        self.step(ctx, inbox);
    }

    /// A suspected-crashed neighbour is treated exactly like a matched
    /// one: removed from the free-neighbour set so it can neither be
    /// proposed to nor block the local maximality condition. Delivered
    /// by the [`dam_congest::transport::Resilient`] wrapper.
    fn on_peer_down(&mut self, _: &mut Context<'_, IiMsg>, port: Port) {
        self.live[port] = false;
    }

    /// A recovered neighbour rejoins the free-neighbour set — but only
    /// while this node is still free. A matched node's view is frozen
    /// (it has already announced and halted, or is about to); the
    /// maintenance pass, not this handler, re-matches survivors.
    fn on_peer_up(&mut self, _: &mut Context<'_, IiMsg>, port: Port) {
        if self.matched_edge.is_none() {
            self.live[port] = true;
        }
    }

    fn into_output(self) -> Option<EdgeId> {
        self.matched_edge
    }
}

/// Runs Israeli–Itai maximal matching over `g` with a default
/// CONGEST(`4 log n`) configuration.
///
/// # Errors
/// Propagates simulator errors (e.g. the round guard on pathological
/// seeds) and matching-assembly errors.
///
/// # Example
/// ```
/// use dam_core::israeli_itai::israeli_itai;
/// use dam_graph::{generators, maximal};
///
/// let g = generators::cycle(16);
/// let report = israeli_itai(&g, 42).unwrap();
/// assert!(maximal::is_maximal(&g, &report.matching));
/// ```
pub fn israeli_itai(g: &Graph, seed: u64) -> Result<AlgorithmReport, CoreError> {
    israeli_itai_with(g, SimConfig::congest_for(g.node_count(), 4).seed(seed))
}

/// Runs Israeli–Itai under an explicit simulator configuration.
/// Honors [`SimConfig::threads`]: with `threads > 1` the rounds execute
/// on the sharded parallel engine, bit-identically.
///
/// This is a seed-only convenience over the unified runtime — the bare
/// [`crate::runtime::run_mm`] pipeline with every middleware layer off.
///
/// # Errors
/// As [`israeli_itai`].
pub fn israeli_itai_with(g: &Graph, config: SimConfig) -> Result<AlgorithmReport, CoreError> {
    let rep = crate::runtime::run_mm(
        &crate::runtime::IsraeliItai,
        g,
        &crate::runtime::RuntimeConfig::new().sim(config),
    )?;
    let mut stats = TotalStats::default();
    stats.record(&rep.phase1);
    let iterations = usize::try_from(rep.phase1.rounds.div_ceil(3)).unwrap_or(usize::MAX);
    Ok(AlgorithmReport { matching: rep.matching, stats, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::{brute, generators, maximal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_maximal_matchings() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..20 {
            let g = generators::gnp(30, 0.15, &mut rng);
            let report = israeli_itai(&g, trial).unwrap();
            report.matching.validate(&g).unwrap();
            assert!(maximal::is_maximal(&g, &report.matching), "not maximal on trial {trial}");
            assert_eq!(report.stats.stats.violations, 0, "messages must fit CONGEST");
        }
    }

    #[test]
    fn half_approximation_guarantee() {
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..20 {
            let g = generators::gnp(12, 0.3, &mut rng);
            let report = israeli_itai(&g, 100 + trial).unwrap();
            let opt = brute::maximum_matching_size(&g);
            assert!(2 * report.matching.size() >= opt);
        }
    }

    #[test]
    fn logarithmic_round_scaling() {
        // Rounds grow slowly with n: for n = 4096 vs n = 64, the round
        // count should grow far less than the 64x size factor.
        let mut rng = StdRng::seed_from_u64(3);
        let small = generators::random_regular(64, 4, &mut rng);
        let large = generators::random_regular(4096, 4, &mut rng);
        let r_small = israeli_itai(&small, 5).unwrap().stats.stats.rounds;
        let r_large = israeli_itai(&large, 5).unwrap().stats.stats.rounds;
        assert!(
            r_large < r_small * 8,
            "rounds should scale logarithmically: {r_small} -> {r_large}"
        );
    }

    #[test]
    fn handles_edge_cases() {
        let empty = dam_graph::Graph::builder(5).build().unwrap();
        let r = israeli_itai(&empty, 0).unwrap();
        assert_eq!(r.matching.size(), 0);

        let single = dam_graph::Graph::builder(2).edge(0, 1).build().unwrap();
        let r = israeli_itai(&single, 0).unwrap();
        assert_eq!(r.matching.size(), 1);

        // Complete graph: perfect matching is not guaranteed, but
        // maximality is, and K4's maximal matchings have size 2.
        let r = israeli_itai(&generators::complete(4), 9).unwrap();
        assert_eq!(r.matching.size(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp(25, 0.2, &mut rng);
        let a = israeli_itai(&g, 77).unwrap();
        let b = israeli_itai(&g, 77).unwrap();
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
    }
}
