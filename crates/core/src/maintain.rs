//! Incremental matching maintenance under continuous topology churn.
//!
//! [`crate::repair`] heals a matching once, after a burst of crashes.
//! Real deployments (the paper's §1 switch-fabric and job/server
//! motivations) face *continuous* churn: links flap, nodes join and
//! leave while the matching is in use. Re-running the algorithm per
//! event would cost `O(log n)` rounds and graph-wide traffic each time;
//! the locality line of work (Even–Medina–Ron, PAPERS.md) says an event
//! should cost work proportional to a *constant-size neighbourhood*.
//!
//! This module provides that maintenance loop:
//!
//! * [`Maintainer`] holds a matching over the *present* subgraph of a
//!   fixed universe graph (presence masks over nodes and edges, matching
//!   the engine's [`ChurnPlan`] model). [`Maintainer::apply`] processes
//!   one batch of [`ChurnKind`] events: it sanitizes **only the
//!   registers incident to an event** (a leave frees its partner, a
//!   deleted matched edge frees both endpoints), then re-matches freed
//!   endpoints by running Israeli–Itai **restricted to the affected
//!   neighbourhood** — the candidate edges that could violate maximality.
//!
//! * The locality argument makes the restriction sound: at a quiescent
//!   point no present edge joins two free present nodes, so after a
//!   batch any such edge must be incident to a node the batch touched
//!   (newly freed, newly joined) or be newly present itself. Repairing
//!   on exactly those candidate edges restores maximality, and the
//!   number of nodes involved is bounded by the event's neighbourhood —
//!   independent of `n`. [`BatchReport::locality`] reports the measured
//!   nodes-touched-per-event.
//!
//! * Maintenance traffic is billed as [`dam_congest::MsgClass::Maintenance`]
//!   (via [`AsMaintenance`]), so steady-state upkeep never pollutes the
//!   round/message counts of the algorithm proper.
//!
//! * [`churn_tolerant_mm`] is the distributed pipeline: Israeli–Itai over
//!   the resilient transport while the engine replays a [`ChurnPlan`]
//!   (and optionally a [`FaultPlan`]), then a final sanitize + repair on
//!   the surviving topology. The returned matching is valid and maximal
//!   on the final graph.
//!
//! **Invariant** (checked in debug builds after every batch, and exposed
//! as [`is_valid_on_present`] / [`is_maximal_on_present`]): at every
//! quiescent point the maintained matching is a valid matching of the
//! present subgraph and maximal on it.

use dam_congest::transport::TransportCfg;
use dam_congest::{
    rng, AsMaintenance, ChurnKind, ChurnPlan, FaultPlan, Network, RunStats, SimConfig,
};
use dam_graph::{EdgeId, Graph, Matching, NodeId};

use crate::error::CoreError;
use crate::israeli_itai::IiNode;
use crate::repair::{sanitize_registers, Sanitized};

/// Domain-separation key (`"MAIN"`) deriving the maintenance-repair seed
/// from the run seed in the maintenance layer of
/// [`crate::runtime::run_mm`], chained through [`rng::splitmix64`].
pub(crate) const MAINTAIN_DOMAIN: u64 = 0x4D41_494E;

/// Tuning for the maintenance loop and the distributed churn pipeline.
#[derive(Debug, Clone)]
pub struct MaintainConfig {
    /// Master seed; each maintenance batch derives its own sub-seed.
    pub seed: u64,
    /// Transport tuning for [`churn_tolerant_mm`]'s distributed run.
    pub transport: TransportCfg,
    /// Round guard for every internal run.
    pub max_rounds: usize,
}

impl Default for MaintainConfig {
    fn default() -> MaintainConfig {
        MaintainConfig { seed: 0, transport: TransportCfg::default(), max_rounds: 500_000 }
    }
}

/// What one [`Maintainer::apply`] batch did.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Events in the batch.
    pub events: usize,
    /// Matched edges dissolved by event-incident sanitation.
    pub freed: usize,
    /// Edges added back by the localized repair.
    pub added: usize,
    /// Nodes that participated in the repair run (incident to a
    /// candidate edge). 0 when no repair was needed.
    pub touched: usize,
    /// Cost of the repair run; all protocol frames are billed as
    /// [`dam_congest::MsgClass::Maintenance`].
    pub stats: RunStats,
}

impl BatchReport {
    /// Nodes touched per event — the repair-locality metric. The
    /// locality claim (module docs) is that this stays bounded by a
    /// constant as `n` grows.
    #[must_use]
    pub fn locality(&self) -> f64 {
        if self.events == 0 {
            self.touched as f64
        } else {
            self.touched as f64 / self.events as f64
        }
    }
}

/// A long-lived maintained matching over the present subgraph of a
/// universe graph. See the module docs for the model and guarantees.
#[derive(Debug)]
pub struct Maintainer<'g> {
    g: &'g Graph,
    seed: u64,
    batches: u64,
    max_rounds: usize,
    node_present: Vec<bool>,
    edge_present: Vec<bool>,
    registers: Vec<Option<EdgeId>>,
    total: RunStats,
}

impl<'g> Maintainer<'g> {
    /// Starts maintenance on the full graph: runs Israeli–Itai (billed
    /// as maintenance — bootstrap is upkeep of an initially empty
    /// matching) to reach the first quiescent point.
    ///
    /// # Errors
    /// Propagates simulator errors from the bootstrap run.
    pub fn bootstrap(g: &'g Graph, cfg: &MaintainConfig) -> Result<Maintainer<'g>, CoreError> {
        Maintainer::with_presence(g, vec![true; g.node_count()], vec![true; g.edge_count()], cfg)
    }

    /// Starts maintenance on a masked subgraph (e.g. the initial
    /// presence of a [`ChurnPlan`]): runs Israeli–Itai on the present
    /// edges to reach the first quiescent point.
    ///
    /// # Errors
    /// Propagates simulator errors from the bootstrap run.
    ///
    /// # Panics
    /// Panics if a mask has the wrong length.
    pub fn with_presence(
        g: &'g Graph,
        node_present: Vec<bool>,
        edge_present: Vec<bool>,
        cfg: &MaintainConfig,
    ) -> Result<Maintainer<'g>, CoreError> {
        let mut mt =
            Maintainer::adopt(g, vec![None; g.node_count()], node_present, edge_present, cfg);
        mt.repair_full()?;
        Ok(mt)
    }

    /// Adopts existing output registers (sanitized against the given
    /// presence first) without running anything. The matching may not be
    /// maximal yet; call [`Maintainer::repair_full`] to restore the
    /// invariant.
    ///
    /// # Panics
    /// Panics if a mask or the register vector has the wrong length.
    #[must_use]
    pub fn adopt(
        g: &'g Graph,
        registers: Vec<Option<EdgeId>>,
        node_present: Vec<bool>,
        edge_present: Vec<bool>,
        cfg: &MaintainConfig,
    ) -> Maintainer<'g> {
        assert_eq!(node_present.len(), g.node_count(), "one presence flag per node");
        assert_eq!(edge_present.len(), g.edge_count(), "one presence flag per edge");
        let sane = sanitize_present(g, &registers, &node_present, &edge_present);
        Maintainer {
            g,
            seed: cfg.seed,
            batches: 0,
            max_rounds: cfg.max_rounds,
            node_present,
            edge_present,
            registers: sane.registers,
            total: RunStats::default(),
        }
    }

    /// The universe graph.
    #[must_use]
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Current node-presence mask.
    #[must_use]
    pub fn node_present(&self) -> &[bool] {
        &self.node_present
    }

    /// Current edge-presence mask.
    #[must_use]
    pub fn edge_present(&self) -> &[bool] {
        &self.edge_present
    }

    /// Current output registers (symmetric by construction).
    #[must_use]
    pub fn registers(&self) -> &[Option<EdgeId>] {
        &self.registers
    }

    /// Accumulated cost of every maintenance run so far.
    #[must_use]
    pub fn total_stats(&self) -> &RunStats {
        &self.total
    }

    /// The maintained matching, assembled from the registers.
    ///
    /// # Panics
    /// Never panics for a consistent maintainer (registers are kept
    /// symmetric and presence-valid by construction).
    #[must_use]
    pub fn matching(&self) -> Matching {
        let edges = (0..self.g.node_count()).filter_map(|v| {
            let e = self.registers[v]?;
            (v < self.g.other_endpoint(e, v)).then_some(e)
        });
        Matching::from_edges(self.g, edges).expect("maintained registers form a matching")
    }

    /// Checks the quiescent-point invariant: the registers form a valid
    /// matching of the present subgraph and no present edge joins two
    /// free present nodes.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        let m = self.matching();
        is_valid_on_present(self.g, &m, &self.node_present, &self.edge_present)
            && is_maximal_on_present(self.g, &m, &self.node_present, &self.edge_present)
    }

    /// Applies one batch of topology events and repairs the matching.
    ///
    /// Events are applied in order against the current presence masks;
    /// an event that contradicts them (deleting an absent edge, a
    /// present node joining, ...) panics — feed events through
    /// [`ChurnPlan::validate`] or drive this from an engine trace if the
    /// stream is untrusted. After the call the invariant holds again:
    /// the matching is valid and maximal on the new present subgraph.
    ///
    /// # Errors
    /// Propagates simulator errors from the localized repair run.
    ///
    /// # Panics
    /// Panics on an event inconsistent with the current presence.
    pub fn apply(&mut self, events: &[ChurnKind]) -> Result<BatchReport, CoreError> {
        let mut dirty = vec![false; self.g.node_count()];
        let mut new_edge = vec![false; self.g.edge_count()];
        let mut freed = 0usize;
        let free_at = |regs: &mut Vec<Option<EdgeId>>, v: NodeId, dirty: &mut Vec<bool>| {
            regs[v] = None;
            dirty[v] = true;
        };
        for &ev in events {
            match ev {
                ChurnKind::EdgeUp { edge } => {
                    assert!(!self.edge_present[edge], "EdgeUp on a present edge");
                    self.edge_present[edge] = true;
                    new_edge[edge] = true;
                }
                ChurnKind::EdgeDown { edge } => {
                    assert!(self.edge_present[edge], "EdgeDown on an absent edge");
                    self.edge_present[edge] = false;
                    new_edge[edge] = false;
                    let (a, b) = self.g.endpoints(edge);
                    if self.registers[a] == Some(edge) {
                        free_at(&mut self.registers, a, &mut dirty);
                        free_at(&mut self.registers, b, &mut dirty);
                        freed += 1;
                    }
                }
                ChurnKind::Join { node } => {
                    assert!(!self.node_present[node], "Join of a present node");
                    self.node_present[node] = true;
                    // A joiner boots with an empty register and competes
                    // for every present incident edge.
                    free_at(&mut self.registers, node, &mut dirty);
                }
                ChurnKind::Leave { node } => {
                    assert!(self.node_present[node], "Leave of an absent node");
                    self.node_present[node] = false;
                    if let Some(e) = self.registers[node] {
                        let partner = self.g.other_endpoint(e, node);
                        free_at(&mut self.registers, partner, &mut dirty);
                        self.registers[node] = None;
                        freed += 1;
                    }
                    dirty[node] = false; // absent: never repairs
                }
            }
        }
        let report = self.repair(events.len(), freed, |g, regs, e| {
            let (a, b) = g.endpoints(e);
            new_edge[e] || (dirty[a] && regs[a].is_none()) || (dirty[b] && regs[b].is_none())
        })?;
        debug_assert!(self.is_quiescent(), "maintenance batch broke the invariant");
        Ok(report)
    }

    /// Repairs with the *full* candidate set (every present edge between
    /// two free present nodes) — used after [`Maintainer::adopt`], where
    /// no locality argument is available.
    ///
    /// # Errors
    /// Propagates simulator errors from the repair run.
    pub fn repair_full(&mut self) -> Result<BatchReport, CoreError> {
        let report = self.repair(0, 0, |_, _, _| true)?;
        debug_assert!(self.is_quiescent(), "full repair broke the invariant");
        Ok(report)
    }

    /// Runs localized Israeli–Itai on the candidate edges selected by
    /// `keep_extra` (on top of the always-required "present, both
    /// endpoints present and free" filter) and merges the new matches
    /// into the registers.
    fn repair(
        &mut self,
        events: usize,
        freed: usize,
        keep_extra: impl Fn(&Graph, &[Option<EdgeId>], EdgeId) -> bool,
    ) -> Result<BatchReport, CoreError> {
        let keep: Vec<bool> = self
            .g
            .edge_ids()
            .map(|e| {
                let (a, b) = self.g.endpoints(e);
                self.edge_present[e]
                    && self.node_present[a]
                    && self.node_present[b]
                    && self.registers[a].is_none()
                    && self.registers[b].is_none()
                    && keep_extra(self.g, &self.registers, e)
            })
            .collect();
        if !keep.iter().any(|&k| k) {
            return Ok(BatchReport {
                events,
                freed,
                added: 0,
                touched: 0,
                stats: RunStats::default(),
            });
        }
        // Node and edge ids survive `edge_subgraph`, so the repair's
        // output registers translate back to the universe graph as-is.
        let sub = self.g.edge_subgraph(&keep);
        let touched = (0..sub.node_count()).filter(|&v| sub.degree(v) > 0).count();
        let batch_seed = rng::splitmix64(self.seed ^ self.batches.wrapping_mul(0x9E37_79B9));
        self.batches += 1;
        let mut net =
            Network::new(&sub, SimConfig::local().seed(batch_seed).max_rounds(self.max_rounds));
        let out = net.run(|v, graph| AsMaintenance::new(IiNode::new(graph.degree(v))))?;
        let mut added = 0usize;
        for v in 0..self.g.node_count() {
            if let Some(e) = out.outputs[v] {
                debug_assert!(self.registers[v].is_none(), "repair re-matched a matched node");
                self.registers[v] = Some(e);
                if v < self.g.other_endpoint(e, v) {
                    added += 1;
                }
            }
        }
        self.total.absorb(&out.stats);
        Ok(BatchReport { events, freed, added, touched, stats: out.stats })
    }
}

/// Cross-validates output registers against presence masks: a claim
/// `registers[v] = Some(e)` survives iff `e` is a present edge incident
/// to `v`, both endpoints are present, and the partner agrees.
/// Generalizes [`crate::repair::sanitize_registers`] (which this
/// function reduces to when every edge is present).
///
/// # Panics
/// Panics if `registers` or a mask has the wrong length.
#[must_use]
pub fn sanitize_present(
    g: &Graph,
    registers: &[Option<EdgeId>],
    node_present: &[bool],
    edge_present: &[bool],
) -> Sanitized {
    assert_eq!(edge_present.len(), g.edge_count(), "one presence flag per edge");
    let masked: Vec<Option<EdgeId>> =
        registers.iter().map(|r| r.filter(|&e| e < g.edge_count() && edge_present[e])).collect();
    let mut sane = sanitize_registers(g, &masked, node_present);
    // Claims cleared by the edge mask count as dissolved too.
    sane.dissolved += registers
        .iter()
        .zip(&masked)
        .filter(|(orig, kept)| orig.is_some() && kept.is_none())
        .count();
    sane
}

/// Checks that `m` is a valid matching *of the present subgraph*: every
/// matched edge is present and joins two present nodes.
#[must_use]
pub fn is_valid_on_present(
    g: &Graph,
    m: &Matching,
    node_present: &[bool],
    edge_present: &[bool],
) -> bool {
    m.edges().all(|e| {
        let (a, b) = g.endpoints(e);
        edge_present[e] && node_present[a] && node_present[b]
    })
}

/// Checks that `m` is maximal on the present subgraph: no present edge
/// joins two present free nodes. Generalizes
/// [`crate::repair::is_maximal_on_residual`] from a node-liveness vector
/// to full node+edge presence masks.
#[must_use]
pub fn is_maximal_on_present(
    g: &Graph,
    m: &Matching,
    node_present: &[bool],
    edge_present: &[bool],
) -> bool {
    g.edge_ids().all(|e| {
        let (a, b) = g.endpoints(e);
        !(edge_present[e] && node_present[a] && node_present[b] && m.is_free(a) && m.is_free(b))
    })
}

/// The result of the distributed churn pipeline ([`churn_tolerant_mm`]).
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// The final matching: valid and maximal on the final topology.
    pub matching: Matching,
    /// Edges of the distributed run's matching that survived the final
    /// presence cross-validation.
    pub surviving: usize,
    /// Claims dissolved by the final sanitation.
    pub dissolved: usize,
    /// Edges added by the final maintenance repair.
    pub added: usize,
    /// Cost of the churned distributed run (protocol + transport
    /// traffic, plus the engine's churn counters).
    pub run: RunStats,
    /// Cost of the final repair (maintenance-billed).
    pub repair: RunStats,
}

/// Distributed churn pipeline: runs Israeli–Itai over the resilient
/// transport while the engine replays `churn` (and `faults`), then
/// sanitizes the survivors' registers against the final topology and
/// restores maximality with a maintenance repair.
///
/// **Deprecated in favor of [`crate::runtime::run_mm`]** — this is now a
/// thin shim over the unified runtime (a
/// [`crate::runtime::RuntimeConfig`] with the `maintain` layer on), kept
/// for source compatibility and bit-identical to the pre-runtime
/// implementation (`tests/runtime_equiv.rs`). New code should build a
/// `RuntimeConfig` directly.
///
/// Nodes crashed by `faults` and never recovered are treated as absent
/// in the final topology (alongside nodes the churn plan removed), so
/// the returned matching is valid and maximal on the graph that is
/// actually still running.
///
/// # Errors
/// Propagates simulator errors, including plan validation failures.
pub fn churn_tolerant_mm(
    g: &Graph,
    faults: &FaultPlan,
    churn: &ChurnPlan,
    cfg: &MaintainConfig,
) -> Result<ChurnReport, CoreError> {
    let rep = crate::runtime::run_mm(
        &crate::runtime::IsraeliItai,
        g,
        &crate::runtime::RuntimeConfig::new()
            .sim(SimConfig::local().seed(cfg.seed).max_rounds(cfg.max_rounds))
            .transport(cfg.transport)
            .faults(faults.clone())
            .churn(churn.clone())
            .maintain(true),
    )?;
    Ok(ChurnReport {
        matching: rep.matching,
        surviving: rep.surviving,
        dissolved: rep.dissolved,
        added: rep.added,
        run: rep.phase1,
        repair: rep.maintain.expect("churn pipeline always runs the maintenance phase"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::{generators, maximal};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn assert_quiescent(mt: &Maintainer<'_>) {
        assert!(mt.is_quiescent(), "matching not valid+maximal on the present graph");
    }

    #[test]
    fn bootstrap_reaches_a_maximal_matching() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp(40, 0.12, &mut rng);
        let mt = Maintainer::bootstrap(&g, &MaintainConfig::default()).unwrap();
        let m = mt.matching();
        m.validate(&g).unwrap();
        assert!(maximal::is_maximal(&g, &m));
        // Bootstrap traffic is upkeep: billed as maintenance.
        assert_eq!(mt.total_stats().messages, 0);
        assert!(mt.total_stats().maintenance > 0);
    }

    #[test]
    fn single_events_keep_the_invariant() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp(30, 0.2, &mut rng);
        let mut mt = Maintainer::bootstrap(&g, &MaintainConfig::default()).unwrap();
        // Delete a matched edge: both endpoints must be re-matchable.
        let e = mt.matching().edges().next().unwrap();
        let rep = mt.apply(&[ChurnKind::EdgeDown { edge: e }]).unwrap();
        assert_eq!(rep.freed, 1);
        assert_quiescent(&mt);
        // A leave dissolves its match and frees the partner.
        let (v, _) = (0..g.node_count())
            .find_map(|v| mt.registers()[v].map(|e| (v, e)))
            .expect("someone is matched");
        mt.apply(&[ChurnKind::Leave { node: v }]).unwrap();
        assert!(mt.matching().is_free(v));
        assert_quiescent(&mt);
        // The edge comes back: maximality may force a new match on it.
        mt.apply(&[ChurnKind::EdgeUp { edge: e }]).unwrap();
        assert_quiescent(&mt);
        // The node rejoins with an empty register.
        mt.apply(&[ChurnKind::Join { node: v }]).unwrap();
        assert_quiescent(&mt);
    }

    #[test]
    fn long_event_stream_stays_quiescent_and_local() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp(64, 0.1, &mut rng);
        let mut mt = Maintainer::bootstrap(&g, &MaintainConfig::default()).unwrap();
        let mut down: Vec<EdgeId> = Vec::new();
        let mut gone: Vec<usize> = Vec::new();
        let mut localities: Vec<f64> = Vec::new();
        for _ in 0..200 {
            // Pick a random applicable event.
            let ev = loop {
                match rng.random_range(0..4u32) {
                    0 if !down.is_empty() => break ChurnKind::EdgeUp { edge: down.swap_remove(0) },
                    1 => {
                        let live: Vec<EdgeId> =
                            g.edge_ids().filter(|&e| mt.edge_present()[e]).collect();
                        if live.is_empty() {
                            continue;
                        }
                        let e = live[rng.random_range(0..live.len())];
                        down.push(e);
                        break ChurnKind::EdgeDown { edge: e };
                    }
                    2 if !gone.is_empty() => break ChurnKind::Join { node: gone.swap_remove(0) },
                    3 => {
                        let here: Vec<usize> =
                            (0..g.node_count()).filter(|&v| mt.node_present()[v]).collect();
                        if here.len() <= 2 {
                            continue;
                        }
                        let v = here[rng.random_range(0..here.len())];
                        gone.push(v);
                        break ChurnKind::Leave { node: v };
                    }
                    _ => continue,
                }
            };
            let rep = mt.apply(&[ev]).unwrap();
            localities.push(rep.locality());
            assert_quiescent(&mt);
        }
        // Locality: most events touch a small neighbourhood, far below n.
        let mean = localities.iter().sum::<f64>() / localities.len() as f64;
        assert!(mean < 16.0, "mean repair locality {mean} is not local");
    }

    #[test]
    fn batches_match_one_shot_presence() {
        // Applying a batch must land on the same present subgraph as
        // starting fresh from the final presence (matchings may differ —
        // the invariant is what both guarantee).
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp(24, 0.25, &mut rng);
        let mut mt = Maintainer::bootstrap(&g, &MaintainConfig::default()).unwrap();
        let evs = [
            ChurnKind::Leave { node: 3 },
            ChurnKind::EdgeDown { edge: 0 },
            ChurnKind::Leave { node: 10 },
        ];
        mt.apply(&evs).unwrap();
        assert_quiescent(&mt);
        let fresh = Maintainer::with_presence(
            &g,
            mt.node_present().to_vec(),
            mt.edge_present().to_vec(),
            &MaintainConfig::default(),
        )
        .unwrap();
        assert_quiescent(&fresh);
        assert_eq!(mt.node_present(), fresh.node_present());
        assert_eq!(mt.edge_present(), fresh.edge_present());
    }

    #[test]
    fn sanitize_present_drops_absent_edges_and_nodes() {
        let g = generators::path(4); // edges 0:(0,1) 1:(1,2) 2:(2,3)
        let regs = vec![Some(0), Some(0), Some(2), Some(2)];
        let mut edge_present = vec![true; 3];
        edge_present[0] = false;
        let sane = sanitize_present(&g, &regs, &[true; 4], &edge_present);
        assert_eq!(sane.registers, vec![None, None, Some(2), Some(2)]);
        assert_eq!(sane.surviving, 1);
        assert_eq!(sane.dissolved, 2, "both endpoints' claims on the absent edge dissolve");
        let sane = sanitize_present(&g, &regs, &[true, true, true, false], &[true; 3]);
        assert_eq!(sane.registers, vec![Some(0), Some(0), None, None]);
    }

    #[test]
    fn churn_tolerant_mm_is_maximal_on_the_final_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnp(32, 0.15, &mut rng);
        let churn = ChurnPlan::default()
            .with_absent_nodes(vec![31])
            .with_event(6, ChurnKind::Leave { node: 4 })
            .with_event(9, ChurnKind::EdgeDown { edge: 2 })
            .with_event(12, ChurnKind::Join { node: 31 })
            .with_event(15, ChurnKind::EdgeUp { edge: 2 });
        let cfg = MaintainConfig { seed: 9, ..MaintainConfig::default() };
        let report = churn_tolerant_mm(&g, &FaultPlan::default(), &churn, &cfg).unwrap();
        report.matching.validate(&g).unwrap();
        let (mut np, ep) = churn.final_presence(&g);
        assert!(!np[4] && np[31]);
        np[4] = false;
        assert!(is_valid_on_present(&g, &report.matching, &np, &ep));
        assert!(is_maximal_on_present(&g, &report.matching, &np, &ep));
        assert_eq!(report.matching.size(), report.surviving + report.added);
        assert!(report.run.churn_events == 4);
    }

    #[test]
    fn churn_tolerant_mm_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::gnp(24, 0.2, &mut rng);
        let churn = ChurnPlan::default()
            .with_event(5, ChurnKind::Leave { node: 1 })
            .with_event(8, ChurnKind::EdgeDown { edge: 0 });
        let faults = FaultPlan::lossy(0.05);
        let cfg = MaintainConfig { seed: 77, ..MaintainConfig::default() };
        let a = churn_tolerant_mm(&g, &faults, &churn, &cfg).unwrap();
        let b = churn_tolerant_mm(&g, &faults, &churn, &cfg).unwrap();
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
        assert_eq!((a.run, a.repair), (b.run, b.repair));
    }
}
