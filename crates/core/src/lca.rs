//! A local computation algorithm (LCA) for maximal matching.
//!
//! §1 of the paper ("More Related Work") points at LCAs: *"an algorithm
//! which consistently answers queries as to whether a given edge belongs
//! to some (fixed, unknown) approximate matching"*, with sublinear work
//! per query, noting that "distributed algorithms can be transformed into
//! sublinear-time algorithms" (Parnas & Ron 2007) and that the matching
//! LCAs of Mansour–Vardi and Even–Medina–Ron build in part on this
//! paper's algorithm.
//!
//! This module implements the classical *random-ranking* matching LCA
//! (Nguyen–Onak style): draw an implicit uniformly random rank for every
//! edge (a seeded hash, so no state is ever materialized globally); the
//! fixed unknown matching is the greedy matching of the rank order —
//! maximal, hence a `½`-MCM. A query
//! [`MatchingLca::edge_in_matching`] recurses only on *lower-ranked
//! adjacent* edges, so on bounded-degree graphs the expected number of
//! probed edges per query is constant-ish (exponential-decay tail along
//! rank-decreasing paths).
//!
//! Consistency is structural: every query reads the same implicit
//! ranking, so answers across queries (in any order, even across
//! separate [`MatchingLca`] values with the same seed) agree with one
//! global matching — the module's tests check this against the
//! sequential greedy over the same ranks.

use std::cell::RefCell;
use std::collections::HashMap;

use dam_graph::{EdgeId, Graph, Matching, NodeId};

/// Query-access oracle for a fixed (implicit) maximal matching.
#[derive(Debug)]
pub struct MatchingLca<'g> {
    graph: &'g Graph,
    seed: u64,
    /// Memoized answers.
    cache: RefCell<HashMap<EdgeId, bool>>,
    /// Edges probed since construction (the LCA cost measure).
    probes: RefCell<u64>,
}

impl<'g> MatchingLca<'g> {
    /// Creates an oracle over `g`; `seed` fixes the implicit matching.
    #[must_use]
    pub fn new(graph: &'g Graph, seed: u64) -> MatchingLca<'g> {
        MatchingLca { graph, seed, cache: RefCell::new(HashMap::new()), probes: RefCell::new(0) }
    }

    /// The implicit rank of edge `e`: a deterministic pseudo-random
    /// 64-bit value (ties broken by id, so the order is total).
    #[must_use]
    pub fn rank(&self, e: EdgeId) -> (u64, EdgeId) {
        (
            dam_congest::rng::splitmix64(
                self.seed ^ (e as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            e,
        )
    }

    /// Whether edge `e` belongs to the implicit maximal matching.
    ///
    /// Recursive rule: `e ∈ M` iff no adjacent edge of smaller rank is
    /// in `M` — exactly the greedy matching of the ascending rank order.
    #[must_use]
    pub fn edge_in_matching(&self, e: EdgeId) -> bool {
        if let Some(&hit) = self.cache.borrow().get(&e) {
            return hit;
        }
        *self.probes.borrow_mut() += 1;
        let my_rank = self.rank(e);
        let (u, v) = self.graph.endpoints(e);
        let mut lower: Vec<(u64, EdgeId)> = Vec::new();
        for x in [u, v] {
            for (_, _, f) in self.graph.incident(x) {
                if f != e {
                    let r = self.rank(f);
                    if r < my_rank {
                        lower.push(r);
                    }
                }
            }
        }
        // Probe in ascending rank order: the cheapest refutation first.
        lower.sort_unstable();
        lower.dedup();
        let mut answer = true;
        for (_, f) in lower {
            if self.edge_in_matching(f) {
                answer = false;
                break;
            }
        }
        self.cache.borrow_mut().insert(e, answer);
        answer
    }

    /// The mate of `v` under the implicit matching, if any.
    #[must_use]
    pub fn mate(&self, v: NodeId) -> Option<NodeId> {
        // Probe incident edges in ascending rank: the first matched one
        // is the mate (at most one can be in a matching).
        let mut inc: Vec<((u64, EdgeId), NodeId)> =
            self.graph.incident(v).map(|(_, u, e)| (self.rank(e), u)).collect();
        inc.sort_unstable();
        inc.into_iter().find(|&((_, e), _)| self.edge_in_matching(e)).map(|(_, u)| u)
    }

    /// Edges probed since construction.
    #[must_use]
    pub fn probes(&self) -> u64 {
        *self.probes.borrow()
    }

    /// Materializes the full implicit matching by querying every edge
    /// (for testing — defeats the purpose of an LCA, of course).
    ///
    /// # Panics
    /// Panics if the implicit answers are inconsistent (they cannot be).
    #[must_use]
    pub fn materialize(&self) -> Matching {
        let edges: Vec<EdgeId> =
            self.graph.edge_ids().filter(|&e| self.edge_in_matching(e)).collect();
        Matching::from_edges(self.graph, edges).expect("LCA answers form a matching")
    }

    /// The sequential greedy matching over the same rank order (the
    /// ground truth the LCA must agree with).
    #[must_use]
    pub fn greedy_reference(&self) -> Matching {
        let mut order: Vec<EdgeId> = self.graph.edge_ids().collect();
        order.sort_unstable_by_key(|&e| self.rank(e));
        let mut m = Matching::new(self.graph);
        for e in order {
            let (u, v) = self.graph.endpoints(e);
            if m.is_free(u) && m.is_free(v) {
                m.add(self.graph, e).expect("both endpoints free");
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::{brute, generators, maximal};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn agrees_with_greedy_reference() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..10 {
            let g = generators::gnp(25, 0.2, &mut rng);
            let lca = MatchingLca::new(&g, trial);
            let materialized = lca.materialize();
            let reference = lca.greedy_reference();
            assert_eq!(materialized.to_edge_vec(), reference.to_edge_vec(), "trial {trial}");
            assert!(maximal::is_maximal(&g, &materialized));
        }
    }

    #[test]
    fn half_approximation() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let g = generators::gnp(12, 0.3, &mut rng);
            let lca = MatchingLca::new(&g, trial);
            let m = lca.materialize();
            assert!(2 * m.size() >= brute::maximum_matching_size(&g));
        }
    }

    #[test]
    fn consistent_across_query_orders_and_instances() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = generators::gnp(30, 0.15, &mut rng);
        let a = MatchingLca::new(&g, 7);
        let b = MatchingLca::new(&g, 7);
        // Query b in a scrambled order; answers must match a's.
        let mut order: Vec<usize> = g.edge_ids().collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        for e in order {
            assert_eq!(a.edge_in_matching(e), b.edge_in_matching(e), "edge {e}");
        }
        // A different seed gives a (generally) different matching.
        let c = MatchingLca::new(&g, 8);
        let differs = g.edge_ids().any(|e| a.edge_in_matching(e) != c.edge_in_matching(e));
        assert!(differs || g.edge_count() < 3, "seeds should decorrelate");
    }

    #[test]
    fn mate_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(44);
        let g = generators::gnp(20, 0.25, &mut rng);
        let lca = MatchingLca::new(&g, 3);
        for v in g.nodes() {
            if let Some(u) = lca.mate(v) {
                assert_eq!(lca.mate(u), Some(v), "mate({v}) = {u} must be mutual");
            }
        }
    }

    #[test]
    fn per_query_cost_is_sublinear_on_bounded_degree() {
        // On a 4-regular graph with 4096 nodes (8192 edges), a single
        // query should probe only a tiny fraction of the graph.
        let mut rng = StdRng::seed_from_u64(45);
        let g = generators::random_regular(4096, 4, &mut rng);
        let mut worst = 0u64;
        for q in 0..50 {
            let lca = MatchingLca::new(&g, 99);
            let e = rng.random_range(0..g.edge_count());
            let _ = lca.edge_in_matching(e);
            worst = worst.max(lca.probes());
            let _ = q;
        }
        assert!(
            worst < g.edge_count() as u64 / 20,
            "worst single-query probe count {worst} is not sublinear"
        );
    }

    #[test]
    fn cache_amortizes_repeated_queries() {
        let mut rng = StdRng::seed_from_u64(46);
        let g = generators::random_regular(256, 4, &mut rng);
        let lca = MatchingLca::new(&g, 5);
        let _ = lca.edge_in_matching(0);
        let after_first = lca.probes();
        let _ = lca.edge_in_matching(0);
        assert_eq!(lca.probes(), after_first, "second identical query must be free");
    }
}
