//! Error type for algorithm drivers.

use std::error::Error;
use std::fmt;

use dam_congest::SimError;
use dam_graph::GraphError;

use crate::checkpoint::RestoreError;

/// Errors produced by a distributed-algorithm driver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The simulation failed (round limit, duplicate send, ...).
    Sim(SimError),
    /// The algorithm produced an invalid matching or the input was
    /// malformed (e.g. a bipartite algorithm on a non-bipartite graph).
    Graph(GraphError),
    /// A checkpoint restore could not proceed at all: nothing to
    /// restore, a foreign snapshot (graph/algorithm/seed fingerprint
    /// mismatch), or checkpoint I/O failure. Recoverable damage never
    /// takes this path — the degradation ladder absorbs it.
    Checkpoint(RestoreError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Checkpoint(e) => write!(f, "restore failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            CoreError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> CoreError {
        CoreError::Sim(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> CoreError {
        CoreError::Graph(e)
    }
}

impl From<RestoreError> for CoreError {
    fn from(e: RestoreError) -> CoreError {
        CoreError::Checkpoint(e)
    }
}
