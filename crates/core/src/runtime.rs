//! The unified protocol runtime: one composable pipeline for every
//! matching driver.
//!
//! Every cross-cutting feature this crate grew — the resilient
//! transport, churn maintenance, localized repair, proof-labeling
//! certification — used to be hand-threaded through bespoke end-to-end
//! pipelines (`self_healing_mm`, `churn_tolerant_mm`, `certified_mm`),
//! each re-wiring the same phases in its own function body. This module
//! replaces that wiring with a single stack of middleware layers around
//! any node program:
//!
//! ```text
//!   RuntimeConfig                run_mm(algo, g, cfg)
//!   ┌───────────────┐            ┌──────────────────────────────────┐
//!   │ sim: SimConfig│            │ certification   (certify toggle) │
//!   │ transport     │            ├──────────────────────────────────┤
//!   │ faults, churn │            │ repair          (repair toggle)  │
//!   │ certify       │   drives   ├──────────────────────────────────┤
//!   │ repair        │ ─────────► │ maintenance     (maintain toggle)│
//!   │ maintain      │            ├──────────────────────────────────┤
//!   │ repair_faults │            │ resilient transport (transport)  │
//!   │ algo          │            ├──────────────────────────────────┤
//!   └───────────────┘            │ Algorithm phases on execute_plan │
//!                                │ (faults + churn + threads in one │
//!                                │  engine entry point)             │
//!                                └──────────────────────────────────┘
//! ```
//!
//! * An [`Algorithm`] is a *driver*: it owns the phase structure of a
//!   matching algorithm and runs each phase through an [`Exec`], the
//!   runtime's phase executor. The executor owns one engine
//!   ([`Network`]) for the whole run — so successive phases draw
//!   distinct randomness exactly like the legacy multi-phase drivers —
//!   and applies the transport/fault/churn wrapping uniformly, so a
//!   driver never sees those layers. The portfolio ships four
//!   implementors: [`IsraeliItai`] (maximal, Algorithm 1/2),
//!   [`crate::bipartite::Bipartite`] (`(1−1/k)`-MCM, Algorithm 3/4),
//!   [`crate::weighted::Weighted`] (`(1/2−ε)`-MWM, Algorithm 5) and
//!   [`crate::luby::LubyMatching`] (Luby's MIS on the implicit line
//!   graph).
//! * Every implementor also has *resume* semantics
//!   ([`Algorithm::resume`]): re-run from sanitized per-node match
//!   registers on the residual graph. That is the contract the repair
//!   layer composes with, for any driver.
//! * [`RuntimeConfig`] is the one knob surface. Every knob is reachable
//!   from a `dam-cli run` flag; [`RuntimeConfig::KNOBS`] is the
//!   machine-checkable map that keeps CLI and config from drifting.
//!   [`AlgoSpec`] is the portfolio selector knob; [`run_configured`]
//!   dispatches it.
//! * [`run_mm`] executes the stack. With every toggle off it degenerates
//!   to the plain driver (`israeli_itai_with`); with `repair` on it is
//!   the self-healing pipeline; with `maintain` on the churn-tolerant
//!   pipeline; with `certify` (+`repair`) on the certified pipeline.
//!   The legacy entry points survive as thin shims and are bit-identical
//!   to their pre-runtime implementations (`tests/runtime_equiv.rs` and
//!   `tests/algo_conformance.rs` are the differential proofs).
//! * [`execute_program`] is the escape hatch for node programs whose
//!   output is not a match register (e.g. Luby's plain MIS membership
//!   flags): same engine entry, same transport wrapping, no register
//!   middleware.
//!
//! Seed discipline: every derived stream is domain-separated from
//! `sim.seed` through [`rng::splitmix64`] (the certification layer's
//! check/recheck keys, the maintenance layer's batch seeds, the lie
//! stream), so a `RuntimeConfig` replays bit-identically — including
//! across thread counts, which only change the execution schedule.
//! The repair and maintenance streams are additionally keyed by
//! [`Algorithm::name`] (see [`algo_domain`]), so two different
//! algorithms on the same master seed draw independent randomness.
//!
//! Phase semantics under faults: the *first* phase of a main run
//! executes under the full fault and churn plans (for a single-phase
//! driver this is exactly the legacy behaviour). Later phases re-use
//! the link-level fault channels only — crashed nodes stay dead as
//! engine-level tombstones ([`Slot::Dead`]) and scripted churn is not
//! replayed again (its final topology is reconciled by the maintenance
//! layer, which re-validates registers against final presence).

use std::path::{Path, PathBuf};

use dam_congest::transport::TransportCfg;
use dam_congest::{
    rng, AdaptivePolicy, Backend, ChurnPlan, Context, DelayModel, FaultPlan, Network, Port,
    Protocol, Resilient, RunOutcome, RunStats, SessionState, SimConfig, SinkHandle, TotalStats,
};
use dam_graph::{materialize, BitSet, EdgeId, Graph, Matching, NodeId, Topology};

use crate::certify::{apply_lies, certify_on, Certificate, CHECK_DOMAIN, RECHECK_DOMAIN};
use crate::checkpoint::{
    CheckpointCfg, CheckpointStore, CheckpointWriter, RestoreOutcome, Snapshot, Stage,
    CHECKPOINT_DOMAIN,
};
use crate::error::CoreError;
use crate::israeli_itai::IiNode;
use crate::maintain::{sanitize_present, MaintainConfig, Maintainer, MAINTAIN_DOMAIN};
use crate::repair::{sanitize_registers_on, RepairReport};
use crate::report::matching_from_registers;

pub mod conformance;

/// A distributed matching algorithm the runtime can drive.
///
/// An implementor is a *driver*, not a single node program: it owns the
/// algorithm's phase structure (one phase for Israeli–Itai, `k` path
/// phases for the bipartite driver, a gain/resolve/apply loop for the
/// weighted driver) and executes each phase through the [`Exec`] it is
/// handed. The executor supplies the engine, the transport wrapping and
/// the fault/churn plans, so the same driver composes unchanged with
/// every middleware layer and backend.
///
/// The trait is object-safe: [`AlgoSpec::build`] hands out
/// `Box<dyn Algorithm>`, and [`run_mm`] accepts unsized implementors.
///
/// `Sync` is required because the parallel engine shares node factories
/// across worker threads.
pub trait Algorithm: Sync {
    /// Short stable name for reports and CLI output. Also keys the
    /// repair/maintenance seed domains ([`algo_domain`]), so it must be
    /// unique across implementors.
    fn name(&self) -> &'static str;

    /// Runs the algorithm from scratch, phase by phase, on `exec`.
    /// Returns the final per-node match registers (§2's output
    /// convention).
    ///
    /// # Errors
    /// Propagates simulator errors from any phase.
    fn run(&self, exec: &mut Exec<'_>) -> Result<MainRun, CoreError>;

    /// Re-runs the algorithm from a prior (sanitized) register state on
    /// the residual graph: `registers[v]` is node `v`'s committed match
    /// and [`Exec::alive`] marks the trusted domain. The repair layer
    /// drives this to heal a damaged matching without restarting from
    /// nothing; the surviving matched edges must be preserved.
    ///
    /// # Errors
    /// Propagates simulator errors from any phase.
    fn resume(
        &self,
        exec: &mut Exec<'_>,
        registers: &[Option<EdgeId>],
    ) -> Result<MainRun, CoreError>;

    /// Serializes this driver's register state for a durable snapshot
    /// ([`crate::checkpoint`]). The default covers every driver whose
    /// registers are plain `Option<EdgeId>` per node — which is all of
    /// them today; a driver with richer per-node state overrides both
    /// codec hooks together.
    fn encode_registers(&self, registers: &[Option<EdgeId>]) -> Vec<u8> {
        crate::checkpoint::encode_registers(registers)
    }

    /// Inverse of [`Algorithm::encode_registers`]; `n` is the node
    /// count the registers must cover. Must be total: corrupted bytes
    /// return an error, never panic — the snapshot degradation ladder
    /// depends on it.
    ///
    /// # Errors
    /// The first structural violation found in `bytes`.
    fn decode_registers(
        &self,
        bytes: &[u8],
        n: usize,
    ) -> Result<Vec<Option<EdgeId>>, crate::checkpoint::SnapshotError> {
        crate::checkpoint::decode_registers(bytes, n)
    }
}

/// The result of an [`Algorithm`] driver run: the register state plus
/// the driver's own iteration accounting.
#[derive(Debug, Clone)]
pub struct MainRun {
    /// Final per-node output registers.
    pub registers: Vec<Option<EdgeId>>,
    /// Driver-level iteration count (algorithm-defined: proposal
    /// iterations for Israeli–Itai and Luby, augmentation passes for
    /// the bipartite driver, gain/apply iterations for the weighted
    /// driver).
    pub iterations: usize,
}

/// The phase executor handed to an [`Algorithm`] driver.
///
/// One `Exec` wraps one engine for the whole run, so every
/// [`Exec::phase`] call draws a fresh randomness stream (the engine's
/// run counter separates them) while stats accumulate across phases.
/// The executor also owns the middleware facts a driver must respect
/// but should not re-implement: the transport wrapping, the fault and
/// churn plans, and the trusted domain (dead nodes become engine-level
/// tombstones in every phase after the first, and in every phase of a
/// resume run).
pub struct Exec<'g> {
    g: &'g dyn Topology,
    net: Network<'g>,
    transport: Option<TransportCfg>,
    adaptive: Option<AdaptivePolicy>,
    first_faults: FaultPlan,
    later_faults: FaultPlan,
    churn: ChurnPlan,
    alive: BitSet,
    resume: bool,
    phases: usize,
    stats: Option<RunStats>,
    sessions: Vec<Option<SessionState>>,
}

impl<'g> Exec<'g> {
    /// Executor for a main [`run_mm`] pipeline run: the first phase
    /// runs under the full fault and churn plans (bit-identical to the
    /// legacy single-phase pipelines), later phases under the
    /// link-level channels with dead/churned-out nodes tombstoned.
    pub(crate) fn main_run(g: &'g dyn Topology, cfg: &RuntimeConfig, alive: &BitSet) -> Exec<'g> {
        let mut net = Network::new(g, cfg.sim);
        // Telemetry covers the main run: repair/maintenance spin up
        // fresh engines whose run ids restart at zero and would collide
        // in the sample stream; they report aggregate stats instead.
        net.set_stats_sink(cfg.stats_sink.clone());
        let (node_present, _) = cfg.churn.final_presence_on(g);
        let mask = BitSet::from_fn(g.node_count(), |v| alive[v] && node_present[v]);
        Exec {
            g,
            net,
            transport: cfg.transport,
            adaptive: cfg.adaptive,
            first_faults: cfg.faults.clone(),
            later_faults: link_channels(&cfg.faults),
            churn: cfg.churn.clone(),
            alive: mask,
            resume: false,
            phases: 0,
            stats: None,
            sessions: Vec::new(),
        }
    }

    /// Executor for a resume (repair) run: every phase is crash-free
    /// with the dead given by `alive`, and no churn is replayed.
    pub(crate) fn resume_run(
        g: &'g dyn Topology,
        sim: SimConfig,
        faults: &FaultPlan,
        transport: Option<TransportCfg>,
        adaptive: Option<AdaptivePolicy>,
        alive: BitSet,
    ) -> Exec<'g> {
        Exec {
            g,
            net: Network::new(g, sim),
            transport,
            adaptive,
            first_faults: faults.clone(),
            later_faults: faults.clone(),
            churn: ChurnPlan::default(),
            alive,
            resume: true,
            phases: 0,
            stats: None,
            sessions: Vec::new(),
        }
    }

    /// The topology every phase runs on — the CSR [`Graph`] or an
    /// implicit family member; drivers address it uniformly through the
    /// [`Topology`] trait.
    #[must_use]
    pub fn graph(&self) -> &'g dyn Topology {
        self.g
    }

    /// The trusted domain: `false` marks nodes that are dead (crashed,
    /// quarantined, or churned out of the final topology) and will be
    /// tombstoned in tombstone-wrapped phases.
    #[must_use]
    pub fn alive(&self) -> &BitSet {
        &self.alive
    }

    /// Per-node ports leading to nodes outside the trusted domain —
    /// the `dead_ports` argument resume constructors expect.
    #[must_use]
    pub fn dead_ports(&self) -> Vec<Vec<Port>> {
        (0..self.g.node_count())
            .map(|v| {
                self.g.incident(v).filter_map(|(p, u, _)| (!self.alive[u]).then_some(p)).collect()
            })
            .collect()
    }

    /// Number of phases executed so far.
    #[must_use]
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// Runs one phase of the driver's node program `make` under the
    /// executor's wrapping rules and returns the engine outcome.
    ///
    /// The first phase of a main run executes `make` bare (under the
    /// full fault + churn plans); every other phase wraps it in a
    /// [`Slot`] so untrusted nodes are halted tombstones with a
    /// [`Default`] output, and `make` is never called for them. When a
    /// transport or adaptive policy is configured, the program is
    /// additionally wrapped in [`Resilient`].
    ///
    /// # Errors
    /// Propagates simulator errors from the engine.
    pub fn phase<P, F>(&mut self, make: F) -> Result<RunOutcome<P::Output>, CoreError>
    where
        P: Protocol + Send,
        P::Output: Default,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        let first = self.phases == 0;
        self.phases += 1;
        let wrap = self.resume || !first;
        let faults = if first { self.first_faults.clone() } else { self.later_faults.clone() };
        let churn = if first && !self.resume { self.churn.clone() } else { ChurnPlan::default() };
        let alive = &self.alive;
        let out = if !wrap {
            if let Some(p) = self.adaptive {
                self.net.execute_plan(
                    |v, graph| Resilient::with_policy(make(v, graph), p),
                    &faults,
                    &churn,
                )?
            } else if let Some(t) = self.transport {
                self.net.execute_plan(
                    |v, graph| Resilient::new(make(v, graph), t),
                    &faults,
                    &churn,
                )?
            } else {
                self.net.execute_plan(make, &faults, &churn)?
            }
        } else if let Some(p) = self.adaptive {
            self.net.execute_plan(
                |v, graph| {
                    if !alive[v] {
                        return Slot::Dead;
                    }
                    Slot::Live(Box::new(Resilient::with_policy(make(v, graph), p)))
                },
                &faults,
                &churn,
            )?
        } else if let Some(t) = self.transport {
            self.net.execute_plan(
                |v, graph| {
                    if !alive[v] {
                        return Slot::Dead;
                    }
                    Slot::Live(Box::new(Resilient::new(make(v, graph), t)))
                },
                &faults,
                &churn,
            )?
        } else {
            self.net.execute_plan(
                |v, graph| {
                    if !alive[v] {
                        return Slot::Dead;
                    }
                    Slot::Live(Box::new(make(v, graph)))
                },
                &faults,
                &churn,
            )?
        };
        match &mut self.stats {
            None => self.stats = Some(out.stats),
            Some(s) => s.absorb(&out.stats),
        }
        // The checkpoint layer snapshots the *last* phase's session
        // exports (the quiescent boundary is after the final phase);
        // cloning the summaries perturbs nothing the engine observes.
        self.sessions.clone_from(&out.sessions);
        Ok(out)
    }

    /// Consumes the executor: per-phase stats absorbed into one
    /// [`RunStats`] (exactly the single phase's stats for single-phase
    /// drivers), the engine's run totals, and the final phase's
    /// transport-session exports (all-`None` for bare programs).
    pub(crate) fn into_stats(self) -> (RunStats, TotalStats, Vec<Option<SessionState>>) {
        (self.stats.unwrap_or_default(), self.net.totals(), self.sessions)
    }
}

/// The link-level fault channels of `f`: loss, duplication, reordering,
/// corruption and per-link overrides, with crashes, recoveries and
/// Byzantine roles stripped.
fn link_channels(f: &FaultPlan) -> FaultPlan {
    FaultPlan {
        loss: f.loss,
        dup: f.dup,
        reorder: f.reorder,
        corrupt: f.corrupt,
        links: f.links.clone(),
        ..FaultPlan::default()
    }
}

/// Seed-domain key of an algorithm, derived from [`Algorithm::name`]:
/// XORed into the repair and maintenance seeds so two different
/// algorithms on the same master seed draw independent fault and phase
/// randomness (satellite fix: these domains used to be hardwired to
/// Israeli–Itai for every driver).
///
/// Pinned to `0` for `"israeli-itai"` so every pre-portfolio golden
/// replica (PR 5's differential suite) stays bit-identical.
#[must_use]
pub fn algo_domain(name: &str) -> u64 {
    if name == "israeli-itai" {
        return 0;
    }
    // FNV-1a over the name, whitened through splitmix64.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rng::splitmix64(h)
}

/// Israeli–Itai maximal matching as a runtime [`Algorithm`] — the
/// substrate every hardened pipeline in this crate runs on.
#[derive(Debug, Clone, Copy, Default)]
pub struct IsraeliItai;

impl Algorithm for IsraeliItai {
    fn name(&self) -> &'static str {
        "israeli-itai"
    }

    fn run(&self, exec: &mut Exec<'_>) -> Result<MainRun, CoreError> {
        let out = exec.phase(|v, g| IiNode::new(g.degree(v)))?;
        // One Israeli–Itai iteration is a 3-round exchange.
        let iterations = usize::try_from(out.stats.rounds.div_ceil(3)).unwrap_or(usize::MAX);
        Ok(MainRun { registers: out.outputs, iterations })
    }

    fn resume(
        &self,
        exec: &mut Exec<'_>,
        registers: &[Option<EdgeId>],
    ) -> Result<MainRun, CoreError> {
        let dead = exec.dead_ports();
        let regs = registers.to_vec();
        let out = exec.phase(move |v, g| IiNode::with_state(g.degree(v), regs[v], &dead[v]))?;
        let iterations = usize::try_from(out.stats.rounds.div_ceil(3)).unwrap_or(usize::MAX);
        Ok(MainRun { registers: out.outputs, iterations })
    }
}

/// Portfolio selector: which [`Algorithm`] implementor a
/// [`RuntimeConfig`] drives. The CLI spelling is `--algo
/// ii|bipartite[:K]|weighted|luby`; [`AlgoSpec::build`] constructs the
/// implementor with its default tuning.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AlgoSpec {
    /// Israeli–Itai maximal matching (Algorithm 1/2) — the default.
    #[default]
    IsraeliItai,
    /// Bipartite `(1−1/k)`-approximate maximum cardinality matching
    /// (Algorithm 3/4); requires a bipartition on the input graph.
    Bipartite {
        /// Approximation parameter: augmenting paths up to length
        /// `2k−1` are exhausted.
        k: usize,
    },
    /// Weighted `(1/2−ε)`-approximate maximum weight matching
    /// (Algorithm 5).
    Weighted {
        /// Approximation slack of the gain/resolve/apply loop.
        eps: f64,
    },
    /// Luby's MIS on the implicit line graph, read as a maximal
    /// matching.
    LubyMatching,
}

impl AlgoSpec {
    /// Parses a CLI algorithm spec: `ii` (or `israeli-itai`),
    /// `bipartite` (k = 3) or `bipartite:K`, `weighted` (ε = 0.1),
    /// `luby` (or `luby-matching`).
    ///
    /// # Errors
    /// A human-readable message naming the unknown or malformed spec
    /// (the CLI maps it to a usage error, exit 2).
    pub fn parse(s: &str) -> Result<AlgoSpec, String> {
        if let Some(k) = s.strip_prefix("bipartite:") {
            let k: usize =
                k.parse().map_err(|_| format!("bad phase count in '--algo {s}' (want K >= 2)"))?;
            if k < 2 {
                return Err(format!("bad phase count in '--algo {s}' (want K >= 2)"));
            }
            return Ok(AlgoSpec::Bipartite { k });
        }
        match s {
            "ii" | "israeli-itai" => Ok(AlgoSpec::IsraeliItai),
            "bipartite" => Ok(AlgoSpec::Bipartite { k: 3 }),
            "weighted" => Ok(AlgoSpec::Weighted { eps: 0.1 }),
            "luby" | "luby-matching" => Ok(AlgoSpec::LubyMatching),
            other => Err(format!("unknown algorithm '{other}' (ii|bipartite[:K]|weighted|luby)")),
        }
    }

    /// Constructs the selected implementor with its default tuning.
    #[must_use]
    pub fn build(self) -> Box<dyn Algorithm> {
        match self {
            AlgoSpec::IsraeliItai => Box::new(IsraeliItai),
            AlgoSpec::Bipartite { k } => Box::new(crate::bipartite::Bipartite {
                k,
                ..crate::bipartite::Bipartite::default()
            }),
            AlgoSpec::Weighted { eps } => {
                Box::new(crate::weighted::Weighted { eps, ..crate::weighted::Weighted::default() })
            }
            AlgoSpec::LubyMatching => Box::new(crate::luby::LubyMatching),
        }
    }
}

/// The one knob surface of the runtime. Build with [`RuntimeConfig::new`]
/// and the chainable setters; consume with [`run_mm`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeConfig {
    /// Engine configuration of the main run: model, seed, round guard,
    /// worker threads ([`SimConfig::threads`] is honored by every layer).
    pub sim: SimConfig,
    /// Wrap the node program in the resilient transport
    /// ([`Resilient`]); `None` runs it bare.
    pub transport: Option<TransportCfg>,
    /// Adversarial fault plan of the main run (crashes, loss, duplication,
    /// reordering, corruption, Byzantine roles, partitions).
    pub faults: FaultPlan,
    /// Topology churn replayed by the engine during the main run.
    pub churn: ChurnPlan,
    /// Certification layer: apply register lies, run the O(1)-round
    /// proof-labeling checker, and re-verify after any repair. Also
    /// quarantines equivocators out of the trusted domain (≙ crashed).
    pub certify: bool,
    /// Repair layer: sanitize registers and re-run the algorithm on the
    /// residual graph. Unconditional when `certify` is off; on detection
    /// only when both are on.
    pub repair: bool,
    /// Maintenance layer: cross-validate against the final topology and
    /// restore maximality with a maintenance-billed repair
    /// ([`Maintainer`]).
    pub maintain: bool,
    /// Explicit fault plan for the repair phase; `None` derives the
    /// link-level channels of `faults` (see
    /// [`RuntimeConfig::effective_repair_faults`]).
    pub repair_faults: Option<FaultPlan>,
    /// Closed-loop adaptive transport: when set, the node program is
    /// wrapped in [`Resilient::with_policy`] — timers start at the
    /// policy's floor and re-derive from observed
    /// retransmissions/suspicions/rejections at epoch boundaries.
    /// Takes precedence over the static `transport` configuration;
    /// runs stay a deterministic function of `(seed, plans, policy)`.
    pub adaptive: Option<AdaptivePolicy>,
    /// Telemetry middleware: when set, the main run streams one
    /// cumulative [`dam_congest::RoundSample`] per engine round into
    /// the sink (any backend). Observation only — attaching a sink
    /// never changes outputs, statistics, or traces.
    pub stats_sink: Option<SinkHandle>,
    /// Portfolio selector consumed by [`run_configured`] (and the CLI's
    /// `--algo`). [`run_mm`] takes the implementor as an explicit
    /// argument, which wins over this field.
    pub algo: AlgoSpec,
    /// Durable checkpointing: when set, [`run_mm`] writes a
    /// [`Snapshot`] at every quiescent stage boundary (post-main,
    /// post-repair, post-maintenance), paced by
    /// [`CheckpointCfg::every`]. Observation only — enabling it never
    /// changes outputs, statistics, or traces.
    pub checkpoint: Option<CheckpointCfg>,
    /// Process-restart recovery: when set, [`run_mm`] resumes from the
    /// newest intact snapshot in this directory (degradation ladder:
    /// clean → previous generation → cold start) instead of running the
    /// main phase, then re-joins the pipeline at the snapshot's stage.
    pub restore: Option<PathBuf>,
}

impl RuntimeConfig {
    /// Every runtime knob and the `dam-cli run` flag that reaches it.
    ///
    /// The config-drift guard tests assert two directions: every
    /// `RuntimeConfig` field appears here (a unit test exhaustively
    /// destructures the struct), and every flag named here appears in
    /// the CLI usage text (`cli_exit_codes.rs`). Adding a knob without
    /// CLI plumbing fails the build or the suite.
    pub const KNOBS: &'static [(&'static str, &'static str)] = &[
        ("sim.seed", "--seed"),
        ("sim.max_rounds", "--max-rounds"),
        ("sim.threads", "--parallel"),
        ("sim.backend", "--backend"),
        ("sim.delay", "--delay"),
        ("sim.patience", "--patience"),
        ("transport", "--no-transport"),
        ("faults.loss", "--loss"),
        ("faults.dup", "--dup"),
        ("faults.reorder", "--reorder"),
        ("faults.corrupt", "--corrupt"),
        ("faults.crashes", "--crash"),
        ("faults.recoveries", "--recover"),
        ("faults.liars", "--liars"),
        ("faults.equivocators", "--equivocators"),
        ("churn", "--churn"),
        ("certify", "--certify"),
        ("repair", "--repair"),
        ("maintain", "--maintain"),
        ("repair_faults", "--isolated-repair"),
        ("adaptive", "--adaptive"),
        ("stats_sink", "--stats-out"),
        ("algo", "--algo"),
        ("checkpoint.dir", "--checkpoint-out"),
        ("checkpoint.every", "--checkpoint-every"),
        ("restore", "--restore"),
    ];

    /// A bare configuration: LOCAL model, no transport, no plans, every
    /// middleware layer off.
    #[must_use]
    pub fn new() -> RuntimeConfig {
        RuntimeConfig::default()
    }

    /// Sets the engine configuration of the main run.
    #[must_use]
    pub fn sim(mut self, sim: SimConfig) -> RuntimeConfig {
        self.sim = sim;
        self
    }

    /// Sets the master seed (shorthand for rebuilding `sim`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> RuntimeConfig {
        self.sim = self.sim.seed(seed);
        self
    }

    /// Sets the round guard of every phase.
    #[must_use]
    pub fn max_rounds(mut self, rounds: usize) -> RuntimeConfig {
        self.sim = self.sim.max_rounds(rounds);
        self
    }

    /// Sets the worker-thread count of every phase.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> RuntimeConfig {
        self.sim = self.sim.threads(threads);
        self
    }

    /// Selects the engine backend of every phase (shorthand for
    /// rebuilding `sim`).
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> RuntimeConfig {
        self.sim = self.sim.backend(backend);
        self
    }

    /// Sets the adversarial timing model of the asynchronous backend
    /// (shorthand for rebuilding `sim`; inert on synchronous backends).
    #[must_use]
    pub fn delay_model(mut self, delay: DelayModel) -> RuntimeConfig {
        self.sim = self.sim.delay(delay);
        self
    }

    /// Sets the per-round patience budget of the asynchronous backend
    /// (shorthand for rebuilding `sim`; inert on synchronous backends).
    #[must_use]
    pub fn patience(mut self, units: u64) -> RuntimeConfig {
        self.sim = self.sim.patience(units);
        self
    }

    /// Graceful degradation under adversarial timing: switches to the
    /// asynchronous backend and derives every timing-sensitive knob from
    /// the declared worst-case per-hop delay ([`DelayModel::bound`]) —
    /// `patience = 2·bound` (empirically drop-free for every shipped
    /// delay model; see `DESIGN.md`) and the transport's silence timers
    /// via [`TransportCfg::for_delay_bound`], so slow-but-correct nodes
    /// are never suspected, quarantined, or retransmitted into
    /// congestion collapse. Call *after* [`RuntimeConfig::delay_model`].
    #[must_use]
    pub fn tuned_for_async(mut self) -> RuntimeConfig {
        let bound = self.sim.delay.bound();
        self.sim = self.sim.backend(Backend::Async).patience(2 * bound);
        self.transport = Some(TransportCfg::for_delay_bound(bound));
        self
    }

    /// Hardens the node program with the resilient transport.
    #[must_use]
    pub fn transport(mut self, cfg: TransportCfg) -> RuntimeConfig {
        self.transport = Some(cfg);
        self
    }

    /// Sets the adversarial fault plan of the main run.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> RuntimeConfig {
        self.faults = faults;
        self
    }

    /// Sets the churn plan replayed during the main run.
    #[must_use]
    pub fn churn(mut self, churn: ChurnPlan) -> RuntimeConfig {
        self.churn = churn;
        self
    }

    /// Toggles the certification layer.
    #[must_use]
    pub fn certify(mut self, on: bool) -> RuntimeConfig {
        self.certify = on;
        self
    }

    /// Toggles the repair layer.
    #[must_use]
    pub fn repair(mut self, on: bool) -> RuntimeConfig {
        self.repair = on;
        self
    }

    /// Toggles the maintenance layer.
    #[must_use]
    pub fn maintain(mut self, on: bool) -> RuntimeConfig {
        self.maintain = on;
        self
    }

    /// Overrides the fault plan of the repair phase.
    #[must_use]
    pub fn repair_faults(mut self, faults: FaultPlan) -> RuntimeConfig {
        self.repair_faults = Some(faults);
        self
    }

    /// Hardens the node program with the *adaptive* resilient transport
    /// (see [`RuntimeConfig::adaptive`]).
    #[must_use]
    pub fn adaptive(mut self, policy: AdaptivePolicy) -> RuntimeConfig {
        self.adaptive = Some(policy);
        self
    }

    /// Streams per-round telemetry from the main run into `sink`.
    #[must_use]
    pub fn stats_sink(mut self, sink: SinkHandle) -> RuntimeConfig {
        self.stats_sink = Some(sink);
        self
    }

    /// Selects the portfolio algorithm [`run_configured`] drives.
    #[must_use]
    pub fn algo(mut self, spec: AlgoSpec) -> RuntimeConfig {
        self.algo = spec;
        self
    }

    /// Enables durable checkpointing (see [`RuntimeConfig::checkpoint`]).
    #[must_use]
    pub fn checkpoint(mut self, cfg: CheckpointCfg) -> RuntimeConfig {
        self.checkpoint = Some(cfg);
        self
    }

    /// Resumes from a checkpoint directory (see
    /// [`RuntimeConfig::restore`]).
    #[must_use]
    pub fn restore(mut self, dir: &Path) -> RuntimeConfig {
        self.restore = Some(dir.to_path_buf());
        self
    }

    /// Validates the knobs that carry internal invariants (currently
    /// the transport timer configurations — static and adaptive floor).
    /// Called by [`run_mm`]/[`execute_program`] before any phase runs.
    ///
    /// # Errors
    /// [`dam_congest::SimError::InvalidTransportCfg`] (as a
    /// [`CoreError::Sim`]) naming the violated constraint.
    pub fn validate(&self) -> Result<(), CoreError> {
        if let Some(t) = &self.transport {
            t.validate().map_err(CoreError::Sim)?;
        }
        if let Some(p) = &self.adaptive {
            p.floor.validate().map_err(CoreError::Sim)?;
        }
        Ok(())
    }

    /// The fault plan the repair phase runs under: the explicit override
    /// when set, otherwise the link-level channels of `faults` (loss,
    /// duplication, reordering, corruption, per-link overrides) with
    /// crashes, recoveries and Byzantine roles stripped — the damage
    /// being repaired is already in hand, and the repair engine asserts
    /// its plan is crash-free.
    #[must_use]
    pub fn effective_repair_faults(&self) -> FaultPlan {
        self.repair_faults.clone().unwrap_or_else(|| link_channels(&self.faults))
    }
}

/// The result of one [`run_mm`] pipeline execution — a superset of the
/// legacy per-pipeline reports, so the deprecated shims are pure field
/// mappings.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// [`Algorithm::name`] of the program that ran.
    pub algorithm: &'static str,
    /// The final matching. Always valid on the trusted domain; maximal
    /// on it whenever a repair or maintenance layer ran (or the
    /// certificate attests it).
    pub matching: Matching,
    /// Final per-node output registers (symmetric wherever the matching
    /// is defined).
    pub registers: Vec<Option<EdgeId>>,
    /// Nodes outside the trusted domain: crashed-and-never-recovered,
    /// plus Byzantine equivocators when `certify` is on.
    pub excluded: Vec<NodeId>,
    /// Final node presence: churn's final topology minus excluded nodes.
    pub node_present: Vec<bool>,
    /// Final edge presence (churn's final topology).
    pub edge_present: Vec<bool>,
    /// Edges of the surviving consistent matching kept by the last
    /// sanitation pass (the full matching size on the bare path).
    pub surviving: usize,
    /// Claims dissolved by the last sanitation pass.
    pub dissolved: usize,
    /// Edges added by repair and/or maintenance.
    pub added: usize,
    /// Trusted nodes whose register changed across the repair phase
    /// (0 when no repair ran).
    pub repair_touched: usize,
    /// The certification layer's first verification pass (`None` when
    /// `certify` is off).
    pub initial: Option<Certificate>,
    /// The post-repair/post-maintenance re-verification (`None` when no
    /// follow-up phase ran or `certify` is off).
    pub recheck: Option<Certificate>,
    /// Cost of the main run, every driver phase absorbed (protocol +
    /// transport traffic, churn counters).
    pub phase1: RunStats,
    /// Engine run totals of the main run: one recorded run per driver
    /// phase. Legacy multi-phase drivers reported exactly this, so
    /// their shims are field mappings.
    pub totals: TotalStats,
    /// Driver-level iteration count of the main run (see
    /// [`MainRun::iterations`]).
    pub iterations: usize,
    /// Cost of the repair phase, when one ran.
    pub repair: Option<RunStats>,
    /// Cost of the maintenance phase, when one ran.
    pub maintain: Option<RunStats>,
    /// How a checkpoint restore resolved (`None` when the run was not
    /// restored). A degraded or cold-start outcome maps to the CLI's
    /// damaged-but-recovered exit (3), like a detection.
    pub restore: Option<RestoreOutcome>,
}

impl RunReport {
    /// Whether the certification layer detected any fault on its first
    /// pass. Always `false` when `certify` was off.
    #[must_use]
    pub fn detected(&self) -> bool {
        self.initial.as_ref().is_some_and(|c| !c.ok())
    }

    /// Whether the *final* registers carry a certificate (initially, or
    /// after repair). `false` when `certify` was off — an uncertified
    /// run attests nothing.
    #[must_use]
    pub fn certified(&self) -> bool {
        match (&self.recheck, &self.initial) {
            (Some(re), _) => re.ok(),
            (None, Some(init)) => init.ok(),
            (None, None) => false,
        }
    }
}

/// Runs a non-matching node program through the runtime's engine entry:
/// same transport wrapping, fault/churn plans and thread dispatch as
/// [`run_mm`], but the output is the program's own (e.g. Luby's MIS
/// membership flags), so no register middleware (certify/repair/
/// maintain) applies — those toggles and the `algo` selector are
/// ignored.
///
/// # Errors
/// Propagates simulator errors, including plan validation failures.
pub fn execute_program<P, F>(
    g: &dyn Topology,
    cfg: &RuntimeConfig,
    make: F,
) -> Result<RunOutcome<P::Output>, CoreError>
where
    P: Protocol + Send,
    F: Fn(NodeId, &dyn Topology) -> P + Sync,
{
    cfg.validate()?;
    let mut net = Network::new(g, cfg.sim);
    net.set_stats_sink(cfg.stats_sink.clone());
    let out = if let Some(p) = cfg.adaptive {
        net.execute_plan(
            move |v, graph| Resilient::with_policy(make(v, graph), p),
            &cfg.faults,
            &cfg.churn,
        )?
    } else if let Some(t) = cfg.transport {
        net.execute_plan(
            move |v, graph| Resilient::new(make(v, graph), t),
            &cfg.faults,
            &cfg.churn,
        )?
    } else {
        net.execute_plan(make, &cfg.faults, &cfg.churn)?
    };
    Ok(out)
}

/// Per-node protocol of a tombstone-wrapped phase: nodes outside the
/// trusted domain are tombstones (silent, halted from round 0 — exactly
/// how the engine models a crashed processor), live nodes run the
/// wrapped program.
pub enum Slot<P> {
    /// A node outside the trusted domain: [`Default`] output register.
    Dead,
    /// A trusted node running the wrapped program.
    Live(Box<P>),
}

impl<P> Protocol for Slot<P>
where
    P: Protocol,
    P::Output: Default,
{
    type Msg = P::Msg;
    type Output = P::Output;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            Slot::Dead => ctx.halt(),
            Slot::Live(p) => p.on_start(ctx),
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: &[(Port, Self::Msg)]) {
        match self {
            Slot::Dead => ctx.halt(),
            Slot::Live(p) => p.on_round(ctx, inbox),
        }
    }

    fn on_peer_down(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        if let Slot::Live(p) = self {
            p.on_peer_down(ctx, port);
        }
    }

    fn on_peer_up(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        if let Slot::Live(p) = self {
            p.on_peer_up(ctx, port);
        }
    }

    fn into_output(self) -> P::Output {
        match self {
            Slot::Dead => P::Output::default(),
            Slot::Live(p) => p.into_output(),
        }
    }

    fn session(&self) -> Option<SessionState> {
        match self {
            Slot::Dead => None,
            Slot::Live(p) => p.session(),
        }
    }
}

/// The runtime's repair phase, usable standalone: sanitizes damaged
/// registers against `alive` and re-runs `algo` (via
/// [`Algorithm::resume`]) on the residual graph, optionally over the
/// resilient transport. This is the engine behind both
/// [`crate::repair::repair_matching`] and [`run_mm`]'s repair layer.
///
/// `faults` applies to the repair run itself and must not contain
/// crashes — the dead are given by `alive`. The simulator seed is
/// keyed by [`algo_domain`] so different algorithms draw independent
/// repair randomness from the same master seed.
///
/// # Errors
/// Propagates simulator errors; the final register assembly cannot fail
/// for crash-free repair plans (survivors finish with symmetric
/// registers).
///
/// # Panics
/// Panics if `registers`/`alive` are not one entry per node or if
/// `faults` contains crashes.
#[allow(clippy::too_many_arguments)]
pub fn repair_registers<A: Algorithm + ?Sized>(
    algo: &A,
    g: &dyn Topology,
    registers: &[Option<EdgeId>],
    alive: &BitSet,
    faults: &FaultPlan,
    transport: Option<TransportCfg>,
    adaptive: Option<AdaptivePolicy>,
    sim: SimConfig,
) -> Result<RepairReport, CoreError> {
    assert!(
        faults.crashes.is_empty() && faults.recoveries.is_empty(),
        "repair-phase faults must not crash nodes; deaths are given by `alive`"
    );
    let sim = sim.seed(sim.seed ^ algo_domain(algo.name()));
    let sane = sanitize_registers_on(g, registers, alive);
    let mut exec = Exec::resume_run(g, sim, faults, transport, adaptive, alive.clone());
    let out = algo.resume(&mut exec, &sane.registers)?;
    let (stats, _, _) = exec.into_stats();
    // A second sanitize pass makes assembly total even under exotic
    // fault plans; for crash-free plans it is a no-op on the survivors'
    // symmetric registers.
    let final_regs = sanitize_registers_on(g, &out.registers, alive);
    let matching = matching_from_registers(g, &final_regs.registers)?;
    Ok(RepairReport {
        // `saturating_sub`: a weighted resume may trade two light edges
        // for one heavy one, shrinking the cardinality below the
        // surviving count.
        added: matching.size().saturating_sub(sane.surviving),
        matching,
        surviving: sane.surviving,
        dissolved: sane.dissolved,
        stats,
    })
}

/// Runs the [`RuntimeConfig::algo`]-selected portfolio algorithm
/// through [`run_mm`] — the dynamic-dispatch entry the CLI's `--algo`
/// flag uses.
///
/// # Errors
/// As for [`run_mm`].
pub fn run_configured(g: &dyn Topology, cfg: &RuntimeConfig) -> Result<RunReport, CoreError> {
    run_mm(&*cfg.algo.build(), g, cfg)
}

/// Executes the full middleware pipeline around `algo` (see the module
/// docs for the layering): the main run under faults and churn
/// (transport-hardened when configured), then — per the toggles —
/// register lies + proof-labeling verification, localized repair,
/// maintenance against the final topology, and re-verification.
///
/// With every toggle off this is the plain driver: registers are
/// assembled directly and an inconsistent run surfaces as an error,
/// exactly like the pre-runtime `israeli_itai_with`.
///
/// # Errors
/// Propagates simulator errors from any phase, plan validation errors
/// from the engine, and register-assembly errors on the bare path.
pub fn run_mm<A: Algorithm + ?Sized>(
    algo: &A,
    g: &dyn Topology,
    cfg: &RuntimeConfig,
) -> Result<RunReport, CoreError> {
    cfg.validate()?;
    if let Some(dir) = &cfg.restore {
        return restore_mm(algo, g, cfg, dir);
    }
    run_mm_fresh(algo, g, cfg, None)
}

/// The pipeline state entering the tail (everything after the main
/// run): the registers and masks plus the stats/counter ledger, and the
/// stage the tail starts from — [`Stage::Main`] for fresh runs, the
/// snapshot's stage for restored ones.
struct TailState {
    from: Stage,
    excluded: Vec<NodeId>,
    alive: BitSet,
    node_present: BitSet,
    edge_present: BitSet,
    regs: Vec<Option<EdgeId>>,
    phase1: RunStats,
    totals: TotalStats,
    iterations: usize,
    surviving: usize,
    dissolved: usize,
    added: usize,
    repair_touched: usize,
    repair_stats: Option<RunStats>,
    maintain_stats: Option<RunStats>,
    detected: bool,
    restore: Option<RestoreOutcome>,
    sessions: Vec<Option<SessionState>>,
}

/// Builds the durable image of the current tail state at `stage`.
/// Session exports ride only on the main boundary — the later
/// boundaries' phase transports are already torn down.
fn snapshot_of<A: Algorithm + ?Sized>(
    algo: &A,
    g: &dyn Topology,
    cfg: &RuntimeConfig,
    stage: Stage,
    st: &TailState,
) -> Snapshot {
    Snapshot {
        generation: 0, // stamped by the writer
        seed: cfg.sim.seed,
        stage,
        algorithm: algo.name().to_string(),
        graph_nodes: g.node_count() as u64,
        graph_edges: g.edge_count() as u64,
        graph_sum: Snapshot::graph_fingerprint(g),
        detected: st.detected,
        registers: st.regs.clone(),
        alive: st.alive.clone(),
        node_present: st.node_present.clone(),
        edge_present: st.edge_present.clone(),
        phase1: st.phase1,
        totals: st.totals,
        repair: st.repair_stats,
        maintain: st.maintain_stats,
        iterations: st.iterations as u64,
        counters: [
            st.surviving as u64,
            st.dissolved as u64,
            st.added as u64,
            st.repair_touched as u64,
        ],
        sessions: if stage == Stage::Main {
            st.sessions.clone()
        } else {
            vec![None; g.node_count()]
        },
    }
}

/// The boundary writer of a run, when checkpointing is configured.
/// Generation numbering continues past whatever the directory already
/// holds, so a restored-and-still-checkpointing run never reuses a
/// generation.
fn make_writer(cfg: &RuntimeConfig) -> Result<Option<CheckpointWriter>, CoreError> {
    let Some(ck) = &cfg.checkpoint else { return Ok(None) };
    let store = CheckpointStore::create(&ck.dir)?;
    let next = store.generations()?.iter().copied().max().unwrap_or(0) + 1;
    Ok(Some(CheckpointWriter::new(store, ck.every, next)))
}

/// The trusted domain and final topology derived from the
/// configuration: `(alive, excluded, node_present, edge_present)`.
#[allow(clippy::type_complexity)]
fn masks_of(g: &dyn Topology, cfg: &RuntimeConfig) -> (BitSet, Vec<NodeId>, BitSet, BitSet) {
    let n = g.node_count();
    // Trusted domain: crashed-and-never-recovered nodes are out; under
    // certification, Byzantine equivocators are quarantined exactly as
    // if they had crashed (the classical channel-Byzantine-to-crash
    // reduction — see `crate::certify`).
    let mut alive = BitSet::filled(n, true);
    for &(v, _) in &cfg.faults.crashes {
        if !cfg.faults.recoveries.iter().any(|&(u, _)| u == v) {
            alive.set(v, false);
        }
    }
    if cfg.certify {
        for &v in &cfg.faults.equivocators {
            alive.set(v, false);
        }
    }
    let excluded: Vec<NodeId> = (0..n).filter(|&v| !alive[v]).collect();

    // Final topology: churn's final presence minus the excluded nodes.
    let (mut node_present, edge_present) = cfg.churn.final_presence_on(g);
    for v in 0..n {
        if !alive[v] {
            node_present.set(v, false);
        }
    }
    (alive, excluded, node_present, edge_present)
}

/// A fresh pipeline run: main phase, then the tail. `restored` is the
/// cold-start marker when this run recomputes a damaged checkpoint
/// directory from scratch.
fn run_mm_fresh<A: Algorithm + ?Sized>(
    algo: &A,
    g: &dyn Topology,
    cfg: &RuntimeConfig,
    restored: Option<RestoreOutcome>,
) -> Result<RunReport, CoreError> {
    let (alive, excluded, node_present, edge_present) = masks_of(g, cfg);

    // Layers 1+2: the driver's phases, optionally transport-hardened,
    // under the fault and churn plans — one engine executor consumes
    // `sim.threads` and both plans.
    let mut exec = Exec::main_run(g, cfg, &alive);
    let main = algo.run(&mut exec)?;
    let (mut phase1_stats, totals, sessions) = exec.into_stats();
    if let Some(out) = &restored {
        phase1_stats.restores = phase1_stats.restores.saturating_add(1);
        if out.degraded() {
            phase1_stats.restores_degraded = phase1_stats.restores_degraded.saturating_add(1);
        }
    }

    let st = TailState {
        from: Stage::Main,
        excluded,
        alive,
        node_present,
        edge_present,
        regs: main.registers,
        phase1: phase1_stats,
        totals,
        iterations: main.iterations,
        surviving: 0,
        dissolved: 0,
        added: 0,
        repair_touched: 0,
        repair_stats: None,
        maintain_stats: None,
        detected: false,
        restore: restored,
        sessions,
    };
    let mut writer = make_writer(cfg)?;
    // Main boundary: snapshotted *before* register lies apply, so a
    // restore re-applies them under the same seed and the replayed tail
    // is bit-identical to the uninterrupted run.
    if let Some(w) = writer.as_mut() {
        let mut snap = snapshot_of(algo, g, cfg, Stage::Main, &st);
        w.boundary(&mut snap, algo, st.phase1.rounds)?;
    }
    pipeline_tail(algo, g, cfg, st, writer)
}

/// Process-restart recovery: loads the degradation ladder, refuses
/// foreign snapshots, heals what must be healed, and re-joins the
/// pipeline tail at the snapshot's stage.
fn restore_mm<A: Algorithm + ?Sized>(
    algo: &A,
    g: &dyn Topology,
    cfg: &RuntimeConfig,
    dir: &Path,
) -> Result<RunReport, CoreError> {
    let store = CheckpointStore::open(dir);
    let rec = store.load(algo).map_err(CoreError::Checkpoint)?;
    let Some(snap) = rec.snapshot else {
        // Evidence of checkpointing but nothing intact: recompute from
        // scratch. Still a successful recovery — reported degraded.
        return run_mm_fresh(algo, g, cfg, Some(RestoreOutcome::ColdStart));
    };
    // Never silently resume the wrong state: a snapshot of a different
    // graph, driver, or master seed is a hard error, not a degradation.
    snap.matches(g, algo.name(), cfg.sim.seed).map_err(CoreError::Checkpoint)?;
    let mut outcome = rec.outcome;

    // Masks follow the *configuration* (identical to the snapshot's
    // copies for a faithful restart; a restart under drifted plans must
    // follow its own plans — the sanitize/heal passes absorb the diff).
    let (alive, excluded, node_present, edge_present) = masks_of(g, cfg);

    let mut phase1 = snap.phase1;
    phase1.restores = phase1.restores.saturating_add(1);

    let mut regs = snap.registers.clone();
    let mut added_by_heal = 0usize;
    // Heal pass: the runtime only snapshots quiescent boundaries, so an
    // undrained session export means the bytes were tampered with or
    // handcrafted mid-flight. Sanitize and re-run the driver under the
    // checkpoint seed domain before rejoining the pipeline — the
    // domain separation keeps the ordinary repair/maintenance streams
    // untouched, so healing never perturbs what an uninterrupted run
    // would have drawn.
    if !snap.drained() {
        outcome = match outcome {
            RestoreOutcome::Clean { generation } => RestoreOutcome::Degraded { generation },
            other => other,
        };
        let heal_sim = cfg.sim.seed(cfg.sim.seed ^ CHECKPOINT_DOMAIN);
        let rep = repair_registers(
            algo,
            g,
            &regs,
            &alive,
            &cfg.effective_repair_faults(),
            cfg.transport,
            cfg.adaptive,
            heal_sim,
        )?;
        let mut healed = vec![None; g.node_count()];
        for e in rep.matching.to_edge_vec() {
            let (a, b) = g.endpoints(e);
            healed[a] = Some(e);
            healed[b] = Some(e);
        }
        regs = healed;
        added_by_heal = rep.added;
    }
    if outcome.degraded() {
        phase1.restores_degraded = phase1.restores_degraded.saturating_add(1);
    }

    let st = TailState {
        from: snap.stage,
        excluded,
        alive,
        node_present,
        edge_present,
        regs,
        phase1,
        totals: snap.totals,
        iterations: usize::try_from(snap.iterations).unwrap_or(usize::MAX),
        surviving: snap.counters[0] as usize,
        dissolved: snap.counters[1] as usize,
        added: (snap.counters[2] as usize).saturating_add(added_by_heal),
        repair_touched: snap.counters[3] as usize,
        repair_stats: snap.repair,
        maintain_stats: snap.maintain,
        detected: snap.detected,
        restore: Some(outcome),
        sessions: snap.sessions,
    };
    let writer = make_writer(cfg)?;
    pipeline_tail(algo, g, cfg, st, writer)
}

/// The pipeline tail: certification, repair, maintenance and recheck —
/// entered at [`Stage::Main`] by fresh runs and at the snapshot's stage
/// by restored ones, writing boundary snapshots along the way when a
/// writer is supplied.
fn pipeline_tail<A: Algorithm + ?Sized>(
    algo: &A,
    g: &dyn Topology,
    cfg: &RuntimeConfig,
    mut st: TailState,
    mut writer: Option<CheckpointWriter>,
) -> Result<RunReport, CoreError> {
    let n = g.node_count();

    // Bare path: every middleware layer off. Assemble directly so error
    // behaviour matches the plain drivers.
    if st.from == Stage::Main && !cfg.certify && !cfg.repair && !cfg.maintain {
        let matching = matching_from_registers(g, &st.regs)?;
        let surviving = matching.size();
        return Ok(RunReport {
            algorithm: algo.name(),
            matching,
            registers: st.regs,
            excluded: st.excluded,
            node_present: st.node_present.to_bools(),
            edge_present: st.edge_present.to_bools(),
            surviving,
            dissolved: 0,
            added: 0,
            repair_touched: 0,
            initial: None,
            recheck: None,
            phase1: st.phase1,
            totals: st.totals,
            iterations: st.iterations,
            repair: None,
            maintain: None,
            restore: st.restore,
        });
    }

    let check_seed = rng::splitmix64(cfg.sim.seed ^ CHECK_DOMAIN);
    let mut initial: Option<Certificate> = None;
    let mut matching: Option<Matching> = None;

    if st.from == Stage::Main {
        // Byzantine liars corrupt their *reported* register (the lie
        // model belongs to the certification layer; without a checker
        // nobody reads the reports).
        if cfg.certify {
            apply_lies(&mut st.regs, &cfg.faults.liars, cfg.sim.seed, g.edge_count());
        }

        // Layer 3a: O(1)-round proof-labeling verification.
        initial = if cfg.certify {
            Some(certify_on(g, &st.regs, &st.node_present, check_seed)?)
        } else {
            None
        };
        st.detected = initial.as_ref().is_some_and(|c| !c.ok());

        // Layer 4: localized repair — unconditional when certification
        // is off; on detection only when both are on (a certificate
        // already attests maximality, so repairing a certified run
        // would only burn randomness).
        if cfg.repair && (!cfg.certify || st.detected) {
            let mut cleared = st.regs;
            if let Some(cert) = &initial {
                for &v in &cert.flagged {
                    cleared[v] = None;
                }
            }
            let pre = sanitize_registers_on(g, &cleared, &st.alive);
            let rep = repair_registers(
                algo,
                g,
                &cleared,
                &st.alive,
                &cfg.effective_repair_faults(),
                cfg.transport,
                cfg.adaptive,
                cfg.sim,
            )?;
            let mut final_regs = vec![None; n];
            for e in rep.matching.to_edge_vec() {
                let (a, b) = g.endpoints(e);
                final_regs[a] = Some(e);
                final_regs[b] = Some(e);
            }
            st.repair_touched =
                (0..n).filter(|&v| st.alive[v] && final_regs[v] != pre.registers[v]).count();
            st.regs = final_regs;
            st.surviving = rep.surviving;
            st.dissolved = rep.dissolved;
            st.added = rep.added;
            st.repair_stats = Some(rep.stats);
            matching = Some(rep.matching);
        } else if cfg.certify {
            // Certified first try (or repair layer off): sanitation only
            // masks claims outside the trusted domain; on it the
            // certificate guarantees a no-op.
            let sane = sanitize_registers_on(g, &st.regs, &st.alive);
            st.regs = sane.registers;
            st.surviving = sane.surviving;
            st.dissolved = sane.dissolved;
            matching = Some(matching_from_registers(g, &st.regs)?);
        }

        // Repaired boundary: the certification/repair layer has settled
        // the registers.
        if let Some(w) = writer.as_mut() {
            let rounds =
                st.phase1.rounds.saturating_add(st.repair_stats.as_ref().map_or(0, |s| s.rounds));
            let mut snap = snapshot_of(algo, g, cfg, Stage::Repaired, &st);
            w.boundary(&mut snap, algo, rounds)?;
        }
    } else {
        // Resumed past the repair layer: the ledger was carried by the
        // snapshot. A boundary written by a certify-off, repair-off
        // pipeline holds the driver's raw registers, where a crash plan
        // can leave a survivor claiming a handshake its dead partner
        // never completed — assemble through the alive-sanitize pass
        // (a no-op on boundaries the repair layer settled) instead of
        // trusting symmetry. `st.regs` stays raw so a maintenance layer
        // downstream sees exactly what the uninterrupted tail saw.
        let sane = sanitize_registers_on(g, &st.regs, &st.alive);
        matching = Some(matching_from_registers(g, &sane.registers)?);
    }

    // Layer 5: maintenance against the final topology. The maintainer
    // walks explicit edge subsets (residual subgraph extraction), so it
    // runs on the CSR graph — the topology's own when it is one,
    // otherwise a one-off materialization (identical by the canonical
    // edge-id enumeration, so results match the CSR twin bit for bit).
    if cfg.maintain && st.from != Stage::Maintained {
        let owned_csr;
        let gm: &Graph = match g.as_graph() {
            Some(gr) => gr,
            None => {
                owned_csr = materialize(g).map_err(CoreError::Graph)?;
                &owned_csr
            }
        };
        let node_present = st.node_present.to_bools();
        let edge_present = st.edge_present.to_bools();
        let sane = sanitize_present(gm, &st.regs, &node_present, &edge_present);
        let mut mt = Maintainer::adopt(
            gm,
            sane.registers,
            node_present,
            edge_present,
            &MaintainConfig {
                seed: rng::splitmix64((cfg.sim.seed ^ algo_domain(algo.name())) ^ MAINTAIN_DOMAIN),
                // Maintenance keeps static timers; an adaptive run
                // falls back to its policy floor.
                transport: cfg
                    .transport
                    .or_else(|| cfg.adaptive.map(|p| p.floor))
                    .unwrap_or_default(),
                max_rounds: cfg.sim.max_rounds,
            },
        );
        let rep = mt.repair_full()?;
        st.surviving = sane.surviving;
        st.dissolved = sane.dissolved;
        st.added += rep.added;
        st.maintain_stats = Some(rep.stats);
        st.regs = mt.registers().to_vec();
        matching = Some(mt.matching());

        // Maintained boundary.
        if let Some(w) = writer.as_mut() {
            let rounds = st
                .phase1
                .rounds
                .saturating_add(st.repair_stats.as_ref().map_or(0, |s| s.rounds))
                .saturating_add(st.maintain_stats.as_ref().map_or(0, |s| s.rounds));
            let mut snap = snapshot_of(algo, g, cfg, Stage::Maintained, &st);
            w.boundary(&mut snap, algo, rounds)?;
        }
    }

    // Layer 3b: re-verify whenever a follow-up phase rewrote registers
    // — and always after a restore (the post-restore verification the
    // recovery contract promises).
    let resumed = st.from != Stage::Main;
    let recheck =
        if cfg.certify && (st.repair_stats.is_some() || st.maintain_stats.is_some() || resumed) {
            Some(certify_on(
                g,
                &st.regs,
                &st.node_present,
                rng::splitmix64(check_seed ^ RECHECK_DOMAIN),
            )?)
        } else {
            None
        };

    Ok(RunReport {
        algorithm: algo.name(),
        matching: matching.expect("some middleware layer assembled the matching"),
        registers: st.regs,
        excluded: st.excluded,
        node_present: st.node_present.to_bools(),
        edge_present: st.edge_present.to_bools(),
        surviving: st.surviving,
        dissolved: st.dissolved,
        added: st.added,
        repair_touched: st.repair_touched,
        initial,
        recheck,
        phase1: st.phase1,
        totals: st.totals,
        iterations: st.iterations,
        repair: st.repair_stats,
        maintain: st.maintain_stats,
        restore: st.restore,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn knobs_cover_every_config_field() {
        // Exhaustive destructuring: adding a RuntimeConfig field breaks
        // this test at compile time until KNOBS (and the CLI) learn it.
        let RuntimeConfig {
            sim: _,
            transport: _,
            faults: _,
            churn: _,
            certify: _,
            repair: _,
            maintain: _,
            repair_faults: _,
            adaptive: _,
            stats_sink: _,
            algo: _,
            checkpoint: _,
            restore: _,
        } = RuntimeConfig::new();
        let fields = [
            "sim",
            "transport",
            "faults",
            "churn",
            "certify",
            "repair",
            "maintain",
            "repair_faults",
            "adaptive",
            "stats_sink",
            "algo",
            "checkpoint",
            "restore",
        ];
        for field in fields {
            assert!(
                RuntimeConfig::KNOBS
                    .iter()
                    .any(|(k, _)| *k == field || k.starts_with(&format!("{field}."))),
                "RuntimeConfig field `{field}` has no KNOBS entry (CLI drift)"
            );
        }
        // Every knob names a flag.
        for (knob, flag) in RuntimeConfig::KNOBS {
            assert!(flag.starts_with("--"), "knob {knob} maps to a non-flag {flag}");
        }
    }

    #[test]
    fn algo_domains_are_distinct_and_ii_is_pinned() {
        // The Israeli–Itai domain is the XOR identity: every golden
        // replica recorded before the portfolio existed must replay.
        assert_eq!(algo_domain("israeli-itai"), 0);
        let names = ["israeli-itai", "bipartite", "weighted", "luby-matching"];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(algo_domain(a), algo_domain(b), "colliding domains: {a} vs {b}");
            }
        }
        for name in &names[1..] {
            assert_ne!(algo_domain(name), 0, "{name} must not share the pinned II domain");
        }
    }

    #[test]
    fn algo_spec_parses_the_cli_surface() {
        assert_eq!(AlgoSpec::parse("ii").unwrap(), AlgoSpec::IsraeliItai);
        assert_eq!(AlgoSpec::parse("israeli-itai").unwrap(), AlgoSpec::IsraeliItai);
        assert_eq!(AlgoSpec::parse("bipartite").unwrap(), AlgoSpec::Bipartite { k: 3 });
        assert_eq!(AlgoSpec::parse("bipartite:2").unwrap(), AlgoSpec::Bipartite { k: 2 });
        assert_eq!(AlgoSpec::parse("weighted").unwrap(), AlgoSpec::Weighted { eps: 0.1 });
        assert_eq!(AlgoSpec::parse("luby").unwrap(), AlgoSpec::LubyMatching);
        assert!(AlgoSpec::parse("warp").is_err());
        assert!(AlgoSpec::parse("bipartite:zero").is_err());
        assert!(AlgoSpec::parse("bipartite:1").is_err(), "k = 1 exhausts nothing");
    }

    #[test]
    fn run_configured_dispatches_the_selector() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = generators::gnp(20, 0.2, &mut rng);
        let cfg = RuntimeConfig::new().seed(4).algo(AlgoSpec::IsraeliItai);
        let via_spec = run_configured(&g, &cfg).unwrap();
        let direct = run_mm(&IsraeliItai, &g, &cfg).unwrap();
        assert_eq!(via_spec.registers, direct.registers);
        assert_eq!(via_spec.algorithm, "israeli-itai");
        let luby = run_configured(&g, &cfg.clone().algo(AlgoSpec::LubyMatching)).unwrap();
        assert_eq!(luby.algorithm, "luby-matching");
        luby.matching.validate(&g).unwrap();
    }

    #[test]
    fn repair_seed_domains_separate_algorithms() {
        // Same master seed, different algorithm name ⇒ the repair
        // phase's simulator seed differs, so fault/phase randomness is
        // drawn from independent streams (the satellite-2 regression).
        let seed = 0xDEAD_BEEF_u64;
        let ii = seed ^ algo_domain("israeli-itai");
        let luby = seed ^ algo_domain("luby-matching");
        let weighted = seed ^ algo_domain("weighted");
        assert_eq!(ii, seed, "II keeps the raw seed (golden-replica pin)");
        assert_ne!(luby, seed);
        assert_ne!(weighted, seed);
        assert_ne!(luby, weighted);
    }

    #[test]
    fn bare_path_is_the_plain_driver() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp(30, 0.15, &mut rng);
        let cfg = RuntimeConfig::new().sim(SimConfig::congest_for(30, 4).seed(7));
        let rep = run_mm(&IsraeliItai, &g, &cfg).unwrap();
        rep.matching.validate(&g).unwrap();
        let direct =
            crate::israeli_itai::israeli_itai_with(&g, SimConfig::congest_for(30, 4).seed(7))
                .unwrap();
        assert_eq!(rep.matching.to_edge_vec(), direct.matching.to_edge_vec());
        assert_eq!(rep.totals, direct.stats, "engine totals surface unchanged");
        assert_eq!(rep.iterations, direct.iterations);
        assert!(rep.initial.is_none() && rep.recheck.is_none());
        assert!(!rep.certified(), "an uncertified run attests nothing");
    }

    #[test]
    fn layers_compose_repair_and_certify() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp(30, 0.15, &mut rng);
        let cfg = RuntimeConfig::new()
            .transport(TransportCfg::default())
            .faults(FaultPlan::lossy(0.05).with_liars(vec![1, 2]))
            .certify(true)
            .repair(true)
            .seed(11);
        let rep = run_mm(&IsraeliItai, &g, &cfg).unwrap();
        assert!(rep.detected(), "lies must be detected");
        assert!(rep.certified(), "repair must re-certify");
        assert!(rep.repair.is_some() && rep.recheck.is_some());
        rep.matching.validate(&g).unwrap();
    }

    #[test]
    fn async_backend_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp(40, 0.12, &mut rng);
        let base = RuntimeConfig::new()
            .transport(TransportCfg::default())
            .faults(FaultPlan::lossy(0.08))
            .repair(true)
            .seed(5);
        let seq = run_mm(&IsraeliItai, &g, &base.clone()).unwrap();
        let asy = run_mm(
            &IsraeliItai,
            &g,
            &base.backend(Backend::Async).delay_model(DelayModel::LinkSkew { spread: 5 }),
        )
        .unwrap();
        assert_eq!(seq.matching.to_edge_vec(), asy.matching.to_edge_vec());
        assert_eq!(seq.registers, asy.registers);
        // Identical modulo the synchronizer's marker accounting, which
        // only the asynchronous engine emits.
        let mut p1 = asy.phase1;
        assert!(p1.markers > 0, "async phase must account synchronizer markers");
        p1.markers = 0;
        assert_eq!(seq.phase1, p1);
        let (sr, mut ar) = (seq.repair.unwrap(), asy.repair.unwrap());
        ar.markers = 0;
        assert_eq!(sr, ar);
    }

    #[test]
    fn tuned_for_async_derives_every_timing_knob() {
        let cfg = RuntimeConfig::new()
            .delay_model(DelayModel::UniformRandom { max: 6 })
            .tuned_for_async();
        assert_eq!(cfg.sim.backend, Backend::Async);
        assert_eq!(cfg.sim.patience, Some(12), "patience = 2·bound");
        assert_eq!(cfg.transport, Some(TransportCfg::for_delay_bound(6)));
    }

    #[test]
    fn invalid_transport_is_rejected_at_the_runtime_boundary() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::gnp(12, 0.3, &mut rng);
        let bad = TransportCfg { window: 0, ..TransportCfg::default() };
        let err = run_mm(&IsraeliItai, &g, &RuntimeConfig::new().transport(bad)).unwrap_err();
        assert!(
            matches!(&err, CoreError::Sim(dam_congest::SimError::InvalidTransportCfg { .. })),
            "expected a transport validation error, got {err}"
        );
        // An adaptive policy whose floor is degenerate is caught the
        // same way, before any phase runs.
        let bad_floor = AdaptivePolicy::for_floor(TransportCfg {
            backoff_max: 1,
            backoff_base: 3,
            ..TransportCfg::default()
        });
        let err = run_mm(&IsraeliItai, &g, &RuntimeConfig::new().adaptive(bad_floor)).unwrap_err();
        assert!(matches!(&err, CoreError::Sim(dam_congest::SimError::InvalidTransportCfg { .. })));
    }

    #[test]
    fn adaptive_run_with_sink_matches_static_floor_fault_free() {
        // Fault-free there are no retransmissions, suspicions, or
        // rejections, so the controller never leaves level 1 and the
        // run is bit-identical to its static floor; attaching the
        // telemetry sink must not perturb either.
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp(30, 0.15, &mut rng);
        let base = RuntimeConfig::new().seed(21);
        let stat =
            run_mm(&IsraeliItai, &g, &base.clone().transport(TransportCfg::default())).unwrap();
        let sink = std::sync::Arc::new(dam_congest::RecordingSink::new());
        let cfg = base
            .adaptive(AdaptivePolicy::for_floor(TransportCfg::default()))
            .stats_sink(dam_congest::SinkHandle::new(sink.clone()));
        let adap = run_mm(&IsraeliItai, &g, &cfg).unwrap();
        assert_eq!(stat.matching.to_edge_vec(), adap.matching.to_edge_vec());
        assert_eq!(stat.registers, adap.registers);
        assert_eq!(stat.phase1, adap.phase1);
        let samples = sink.samples();
        assert_eq!(samples.len() as u64, adap.phase1.rounds, "one sample per engine round");
        assert_eq!(samples.last().unwrap().messages, adap.phase1.messages);
    }

    #[test]
    fn adaptive_run_is_deterministic_under_faults() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::gnp(30, 0.15, &mut rng);
        let cfg = RuntimeConfig::new()
            .adaptive(AdaptivePolicy::for_floor(TransportCfg::default()))
            .faults(FaultPlan::lossy(0.15))
            .repair(true)
            .seed(33);
        let a = run_mm(&IsraeliItai, &g, &cfg).unwrap();
        let b = run_mm(&IsraeliItai, &g, &cfg).unwrap();
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
        assert_eq!(a.registers, b.registers);
        assert_eq!(a.phase1, b.phase1);
        assert_eq!(a.repair, b.repair);
        a.matching.validate(&g).unwrap();
    }

    #[test]
    fn threads_do_not_change_results() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp(40, 0.12, &mut rng);
        let base = RuntimeConfig::new()
            .transport(TransportCfg::default())
            .faults(FaultPlan::lossy(0.08))
            .repair(true)
            .seed(5);
        let seq = run_mm(&IsraeliItai, &g, &base.clone().threads(1)).unwrap();
        let par = run_mm(&IsraeliItai, &g, &base.threads(4)).unwrap();
        assert_eq!(seq.matching.to_edge_vec(), par.matching.to_edge_vec());
        assert_eq!(seq.phase1, par.phase1);
        assert_eq!(seq.repair, par.repair);
    }
}
