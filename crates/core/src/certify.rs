//! Self-verifying certified matchings: proof-labeling local checking,
//! Byzantine register lies, and a detect → repair → re-verify pipeline.
//!
//! The paper assumes honest processors and a faithful network (§2); this
//! module drops that assumption for the *output*. After a run every node
//! holds a match register, and we compute a **certificate** that the
//! registers encode a valid matching, maximal on the trusted domain —
//! distributedly, in the style of proof-labeling schemes (Korman, Kutten
//! & Peleg): each invariant is locally checkable, so every violation is
//! witnessed by at least one node that can see it from its own register
//! and one broadcast per neighbour.
//!
//! The locally checkable invariants, and who flags a violation:
//!
//! 1. **register validity** — a claimed edge exists and is incident to
//!    the claimant ([`CertFault::InvalidRegister`], flagged by the
//!    claimant);
//! 2. **symmetry** — the partner across the claimed edge is present
//!    ([`CertFault::PartnerAbsent`]) and claims the same edge
//!    ([`CertFault::Asymmetric`]); flagged by whichever endpoint sees
//!    the mismatch;
//! 3. **maximality, i.e. the ½-approximation witness** — no edge joins
//!    two free present nodes ([`CertFault::Uncovered`], flagged by both
//!    endpoints). When this holds the matched vertices form a vertex
//!    cover of size `2|M|`, the classical witness that
//!    `|M| ≥ ½·MCM` on the trusted graph.
//!
//! Verification costs **two rounds regardless of `n`** — one broadcast,
//! one local check — which is the constant detection latency experiment
//! E17 measures. A certificate accepts a *predicate*, not a history: if
//! Byzantine lies happen to manufacture registers that still satisfy all
//! three invariants (e.g. two adjacent free liars both claiming their
//! shared edge), the outcome is genuinely a valid maximal matching and
//! is rightly certified.
//!
//! [`certified_mm`] packages the full pipeline: run Israeli–Itai over
//! the resilient transport under an adversarial [`FaultPlan`], apply the
//! plan's register lies, certify, and — on detection — clear every
//! flagged register, sanitize, re-run localized repair
//! ([`crate::repair`]) under the plan's link-level faults, and certify
//! again. Equivocators are excluded from the trusted domain exactly as
//! if they had crashed: their traffic fails transport integrity
//! validation until neighbours quarantine them, the classical reduction
//! of channel-level Byzantine faults to crash faults. Liars stay in the
//! domain — a lie corrupts the *report*, not the node — so repair
//! re-matches them honestly.

use dam_congest::{rng, BitSize, Context, FaultPlan, Network, Port, Protocol, RunStats, SimConfig};
use dam_graph::{BitSet, EdgeId, Graph, Matching, NodeId, Topology};

use crate::error::CoreError;
use crate::repair::RepairConfig;

/// Domain-separation key for the deterministic lie stream
/// ([`apply_lies`]), chained through [`rng::splitmix64`].
const LIE_DOMAIN: u64 = 0x11AB_5BAD_4E61_57E4;
/// Domain-separation key deriving the checker seed from the run seed in
/// the certification layer of [`crate::runtime::run_mm`].
pub(crate) const CHECK_DOMAIN: u64 = 0xCE47_1F1E_D5EE_D001;
/// Domain-separation key for the post-repair re-verification.
pub(crate) const RECHECK_DOMAIN: u64 = 0x2ECE_27F1_CA7E_0001;

/// The verification broadcast: either "I am absent" (crashed or
/// quarantined — in the simulation the harness supplies presence; in a
/// deployment the transport's failure detector does) or the sender's
/// claimed match register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMsg {
    /// The sender is outside the trusted domain.
    Absent,
    /// The sender's claimed register (its matched edge, if any).
    Reg(Option<EdgeId>),
}

impl BitSize for CheckMsg {
    /// Two tag bits, plus an edge id for matched claims — `O(log n)`,
    /// so certification is CONGEST-compatible even though the checker
    /// runs under LOCAL for simplicity.
    fn bit_size(&self) -> usize {
        match self {
            CheckMsg::Absent | CheckMsg::Reg(None) => 2,
            CheckMsg::Reg(Some(_)) => 2 + 64,
        }
    }
}

/// A certification fault detected by the local checker at some node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertFault {
    /// The node claims an edge that does not exist or is not incident
    /// to it.
    InvalidRegister,
    /// The partner across the claimed edge is present but claims a
    /// different register.
    Asymmetric,
    /// The partner across the claimed edge is absent (crashed or
    /// quarantined), leaving the claim dangling.
    PartnerAbsent,
    /// The node and a present neighbour are both free: their shared
    /// edge is uncovered, so the matching is not maximal and the
    /// vertex-cover witness fails.
    Uncovered,
}

/// Per-node state of the distributed checker. Incidence of the claimed
/// edge is resolved against the topology at construction (a node knows
/// its own ports); everything else needs exactly one broadcast round.
struct CheckerNode {
    present: bool,
    claim: Option<EdgeId>,
    /// Port towards the claimed partner; `None` when free or when the
    /// claim is invalid.
    partner_port: Option<Port>,
    invalid: bool,
    verdict: Option<CertFault>,
}

impl CheckerNode {
    fn new(v: NodeId, g: &dyn Topology, claim: Option<EdgeId>, present: bool) -> CheckerNode {
        let mut partner_port = None;
        let mut invalid = false;
        if present {
            if let Some(e) = claim {
                partner_port = g.incident(v).find(|&(_, _, e2)| e2 == e).map(|(p, _, _)| p);
                invalid = partner_port.is_none();
            }
        }
        CheckerNode { present, claim, partner_port, invalid, verdict: None }
    }
}

impl Protocol for CheckerNode {
    type Msg = CheckMsg;
    type Output = Option<CertFault>;

    fn on_start(&mut self, ctx: &mut Context<'_, CheckMsg>) {
        ctx.broadcast(if self.present { CheckMsg::Reg(self.claim) } else { CheckMsg::Absent });
    }

    fn on_round(&mut self, ctx: &mut Context<'_, CheckMsg>, inbox: &[(Port, CheckMsg)]) {
        if self.present {
            self.verdict = if self.invalid {
                Some(CertFault::InvalidRegister)
            } else if let Some(p) = self.partner_port {
                match inbox.iter().find(|&&(q, _)| q == p).map(|&(_, m)| m) {
                    Some(CheckMsg::Reg(r)) if r == self.claim => None,
                    Some(CheckMsg::Reg(_)) => Some(CertFault::Asymmetric),
                    // An absent partner — or no broadcast at all, which
                    // a fault-free verification round cannot produce but
                    // is treated identically for defence in depth.
                    _ => Some(CertFault::PartnerAbsent),
                }
            } else if inbox.iter().any(|&(_, m)| m == CheckMsg::Reg(None)) {
                // `partner_port` is None and the claim is not invalid,
                // so this node is free; a `Reg(None)` neighbour is a
                // free present node across an uncovered edge.
                Some(CertFault::Uncovered)
            } else {
                None
            };
        }
        ctx.halt();
    }

    fn into_output(self) -> Option<CertFault> {
        self.verdict
    }
}

/// The outcome of one distributed verification pass.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Per-node verdicts (`None` = the node attests its local view).
    pub verdicts: Vec<Option<CertFault>>,
    /// Nodes that flagged a fault, ascending.
    pub flagged: Vec<NodeId>,
    /// Present (trusted) nodes that participated in the check.
    pub checked: usize,
    /// Matched edges attested symmetric by two unflagged endpoints.
    pub matched: usize,
    /// Rounds the verification took — constant (2) by construction,
    /// independent of `n`; recorded so experiments can assert it.
    pub detection_rounds: u64,
    /// Cost accounting of the verification run.
    pub stats: RunStats,
}

impl Certificate {
    /// Whether the registers were certified: no node flagged a fault.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.flagged.is_empty()
    }
}

/// Runs the distributed proof-labeling checker over `registers`.
///
/// Every node (absent ones included — they broadcast [`CheckMsg::Absent`],
/// standing in for the failure detector) participates in one broadcast
/// round and one check round under a fault-free LOCAL configuration; the
/// per-node verdicts are aggregated into a [`Certificate`].
///
/// Convenience wrapper over [`certify_on`] for slice masks and CSR
/// graphs; the runtime pipeline calls the bitset entry directly.
///
/// # Errors
/// Propagates simulator errors (none are expected from a two-round
/// fault-free run, but the checker refuses to unwrap).
///
/// # Panics
/// Panics if `registers` or `present` is not one entry per node.
pub fn certify(
    g: &Graph,
    registers: &[Option<EdgeId>],
    present: &[bool],
    seed: u64,
) -> Result<Certificate, CoreError> {
    certify_on(g, registers, &BitSet::from_bools(present), seed)
}

/// The canonical entry of [`certify`]: runs the distributed checker on
/// any [`Topology`] (implicit families included) with the presence mask
/// as a word-packed [`BitSet`] — the representation the runtime's
/// pipeline carries end to end.
///
/// # Errors
/// Propagates simulator errors (none are expected from a two-round
/// fault-free run, but the checker refuses to unwrap).
///
/// # Panics
/// Panics if `registers` or `present` is not one entry per node.
pub fn certify_on(
    g: &dyn Topology,
    registers: &[Option<EdgeId>],
    present: &BitSet,
    seed: u64,
) -> Result<Certificate, CoreError> {
    let n = g.node_count();
    assert_eq!(registers.len(), n, "one register per node");
    assert_eq!(present.len(), n, "one presence flag per node");
    let mut net = Network::new(g, SimConfig::local().seed(seed));
    let out = net.run(|v, graph| CheckerNode::new(v, graph, registers[v], present[v]))?;
    let verdicts = out.outputs;
    let flagged: Vec<NodeId> =
        verdicts.iter().enumerate().filter_map(|(v, f)| f.map(|_| v)).collect();
    let mut matched = 0;
    for v in 0..n {
        if !present[v] || verdicts[v].is_some() {
            continue;
        }
        // An unflagged claim is valid and incident, so the lookup is total.
        if let Some(e) = registers[v] {
            let u = g.other_endpoint(e, v);
            if v < u && present[u] && verdicts[u].is_none() && registers[u] == Some(e) {
                matched += 1;
            }
        }
    }
    Ok(Certificate {
        verdicts,
        flagged,
        checked: present.count_ones(),
        matched,
        detection_rounds: out.stats.rounds,
        stats: out.stats,
    })
}

/// The centralized twin of [`certify`]: same verdicts, no simulator.
///
/// Exists to cross-validate the distributed checker (the tests assert
/// both produce identical verdict vectors on arbitrary damage) and for
/// callers that want an oracle without paying for a run.
///
/// # Panics
/// Panics if `registers` or `present` is not one entry per node.
#[must_use]
pub fn check_registers(
    g: &Graph,
    registers: &[Option<EdgeId>],
    present: &[bool],
) -> Vec<Option<CertFault>> {
    let n = g.node_count();
    assert_eq!(registers.len(), n, "one register per node");
    assert_eq!(present.len(), n, "one presence flag per node");
    let mut verdicts = vec![None; n];
    for v in 0..n {
        if !present[v] {
            continue;
        }
        verdicts[v] = match registers[v] {
            Some(e) => {
                if e >= g.edge_count() || {
                    let (a, b) = g.endpoints(e);
                    v != a && v != b
                } {
                    Some(CertFault::InvalidRegister)
                } else {
                    let u = g.other_endpoint(e, v);
                    if !present[u] {
                        Some(CertFault::PartnerAbsent)
                    } else if registers[u] != Some(e) {
                        Some(CertFault::Asymmetric)
                    } else {
                        None
                    }
                }
            }
            None => g
                .neighbors(v)
                .any(|u| present[u] && registers[u].is_none())
                .then_some(CertFault::Uncovered),
        };
    }
    verdicts
}

/// Applies the deterministic register lies of [`FaultPlan::liars`].
///
/// Each liar's corrupted report is derived from `(seed, node)` through
/// [`rng::splitmix64`] under a dedicated domain key, so lies are
/// engine-agnostic and bit-identically replayable. A lie is one of:
/// deny the match (`None`), claim an arbitrary in-range edge (possibly
/// non-incident), or claim an out-of-range edge. A lie always *changes*
/// the register — when the drawn lie happens to equal the honest value
/// it falls back to an out-of-range claim, which no honest register can
/// hold.
pub fn apply_lies(
    registers: &mut [Option<EdgeId>],
    liars: &[NodeId],
    seed: u64,
    edge_count: usize,
) {
    for &v in liars {
        let h = rng::splitmix64(rng::splitmix64(seed ^ LIE_DOMAIN) ^ v as u64);
        let pick = rng::splitmix64(h);
        let lie = match h % 3 {
            0 => None,
            1 => Some((pick % edge_count.max(1) as u64) as EdgeId),
            _ => Some(edge_count + (pick % 7) as usize),
        };
        registers[v] =
            if lie == registers[v] { Some(edge_count + 7 + (pick % 7) as usize) } else { lie };
    }
}

/// The result of the certified matching pipeline ([`certified_mm`]).
#[derive(Debug, Clone)]
pub struct CertifiedReport {
    /// The final matching over the trusted domain — always valid; when
    /// [`CertifiedReport::certified`] holds, also attested maximal.
    pub matching: Matching,
    /// The first verification pass, over the (possibly lied-about)
    /// phase-1 registers.
    pub initial: Certificate,
    /// The post-repair verification; `None` when the initial pass
    /// already certified and no repair ran.
    pub recheck: Option<Certificate>,
    /// Nodes outside the trusted domain: crashed-and-never-recovered,
    /// plus Byzantine equivocators (quarantined ≙ crashed).
    pub excluded: Vec<NodeId>,
    /// Edges of the surviving consistent matching kept by sanitation.
    pub surviving: usize,
    /// Claimed edges dissolved by sanitation.
    pub dissolved: usize,
    /// Edges added by the repair phase (0 when no repair ran).
    pub added: usize,
    /// Trusted nodes whose register changed between the sanitized
    /// post-detection state and the repaired state — the numerator of
    /// [`CertifiedReport::repair_locality`].
    pub repair_touched: usize,
    /// Cost of phase 1 (faulty Israeli–Itai over the transport).
    pub phase1: RunStats,
    /// Cost of the repair phase, when one ran.
    pub repair: Option<RunStats>,
}

impl CertifiedReport {
    /// Whether the initial verification detected any fault.
    #[must_use]
    pub fn detected(&self) -> bool {
        !self.initial.ok()
    }

    /// Whether the *final* registers were certified (initially, or after
    /// repair).
    #[must_use]
    pub fn certified(&self) -> bool {
        self.recheck.as_ref().map_or_else(|| self.initial.ok(), Certificate::ok)
    }

    /// Rounds from registers-in-hand to verdict — constant by
    /// construction (proof-labeling detection latency).
    #[must_use]
    pub fn detection_rounds(&self) -> u64 {
        self.initial.detection_rounds
    }

    /// Fraction of trusted nodes the repair phase touched (0 when the
    /// initial pass certified). Small values mean damage was contained:
    /// repair re-matched around the flagged region instead of redoing
    /// the whole graph.
    #[must_use]
    pub fn repair_locality(&self) -> f64 {
        self.repair_touched as f64 / self.initial.checked.max(1) as f64
    }
}

/// Runs the full certified pipeline: Israeli–Itai over the resilient
/// transport under `plan`, register lies applied, distributed
/// verification, and — on detection — flagged-register clearing,
/// sanitation, localized repair under the plan's link-level faults, and
/// re-verification.
///
/// **Deprecated in favor of [`crate::runtime::run_mm`]** — this is now a
/// thin shim over the unified runtime (a
/// [`crate::runtime::RuntimeConfig`] with the `certify` and `repair`
/// layers on), kept for source compatibility and bit-identical to the
/// pre-runtime implementation (`tests/runtime_equiv.rs`). New code
/// should build a `RuntimeConfig` directly.
///
/// The trusted domain excludes crashed-and-never-recovered nodes and
/// every equivocator (see the module docs for the quarantine-as-crash
/// reduction). The returned matching is always valid on the trusted
/// domain; [`CertifiedReport::certified`] reports whether the final
/// registers also carry a maximality certificate.
///
/// # Errors
/// Propagates simulator errors from any phase and plan validation
/// errors from the engine.
pub fn certified_mm(
    g: &Graph,
    plan: &FaultPlan,
    cfg: &RepairConfig,
) -> Result<CertifiedReport, CoreError> {
    let rep = crate::runtime::run_mm(
        &crate::runtime::IsraeliItai,
        g,
        &crate::runtime::RuntimeConfig::new()
            .sim(SimConfig::local().seed(cfg.seed).max_rounds(cfg.max_rounds))
            .transport(cfg.transport)
            .faults(plan.clone())
            .certify(true)
            .repair(true),
    )?;
    Ok(CertifiedReport {
        matching: rep.matching,
        initial: rep.initial.expect("certified pipeline always runs verification"),
        recheck: rep.recheck,
        excluded: rep.excluded,
        surviving: rep.surviving,
        dissolved: rep.dissolved,
        added: rep.added,
        repair_touched: rep.repair_touched,
        phase1: rep.phase1,
        repair: rep.repair,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::israeli_itai::israeli_itai;
    use crate::repair::is_maximal_on_residual;
    use dam_graph::generators;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn regs_of(g: &Graph, m: &Matching) -> Vec<Option<EdgeId>> {
        let mut regs = vec![None; g.node_count()];
        for e in m.to_edge_vec() {
            let (a, b) = g.endpoints(e);
            regs[a] = Some(e);
            regs[b] = Some(e);
        }
        regs
    }

    #[test]
    fn fault_free_outputs_certify() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..10 {
            let g = generators::gnp(30, 0.15, &mut rng);
            let report = israeli_itai(&g, trial).unwrap();
            let regs = regs_of(&g, &report.matching);
            let cert = certify(&g, &regs, &[true; 30], trial).unwrap();
            assert!(cert.ok(), "fault-free registers must certify (trial {trial})");
            assert_eq!(cert.checked, 30);
            assert_eq!(cert.matched, report.matching.size());
        }
    }

    #[test]
    fn flags_each_fault_kind() {
        let g = generators::path(6); // edges i: (i, i+1)
        let all = vec![true; 6];

        // Out-of-range claim.
        let regs = vec![Some(9), None, Some(2), Some(2), None, None];
        let cert = certify(&g, &regs, &all, 0).unwrap();
        assert_eq!(cert.verdicts[0], Some(CertFault::InvalidRegister));

        // Non-incident claim: node 0 claims edge 3 = (3, 4).
        let regs = vec![Some(3), None, Some(2), Some(2), None, None];
        let cert = certify(&g, &regs, &all, 0).unwrap();
        assert_eq!(cert.verdicts[0], Some(CertFault::InvalidRegister));

        // Asymmetry: node 0 claims edge 0 but node 1 claims edge 1.
        let regs = vec![Some(0), Some(1), Some(1), None, Some(4), Some(4)];
        let cert = certify(&g, &regs, &all, 0).unwrap();
        assert_eq!(cert.verdicts[0], Some(CertFault::Asymmetric));
        assert_eq!(cert.verdicts[1], None, "nodes 1-2 agree on edge 1");
        assert_eq!(cert.matched, 2);

        // Dangling claim: node 1 is absent, its partner 0 must notice.
        let mut present = all.clone();
        present[1] = false;
        let regs = vec![Some(0), Some(0), Some(2), Some(2), Some(4), Some(4)];
        let cert = certify(&g, &regs, &present, 0).unwrap();
        assert_eq!(cert.verdicts[0], Some(CertFault::PartnerAbsent));
        assert_eq!(cert.checked, 5);

        // Uncovered edge: everyone free — every node has a free neighbour.
        let regs = vec![None; 6];
        let cert = certify(&g, &regs, &all, 0).unwrap();
        assert!(cert.verdicts.iter().all(|&f| f == Some(CertFault::Uncovered)));
    }

    #[test]
    fn distributed_matches_centralized_on_arbitrary_damage() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let g = generators::gnp(25, 0.2, &mut rng);
            let report = israeli_itai(&g, trial).unwrap();
            let mut regs = regs_of(&g, &report.matching);
            let mut present = vec![true; 25];
            for _ in 0..6 {
                let v = rng.random_range(0..25usize);
                regs[v] = match rng.random_range(0..3u8) {
                    0 => None,
                    1 => Some(rng.random_range(0..g.edge_count().max(1))),
                    _ => Some(g.edge_count() + rng.random_range(0..5usize)),
                };
            }
            for _ in 0..3 {
                present[rng.random_range(0..25usize)] = false;
            }
            let cert = certify(&g, &regs, &present, trial).unwrap();
            assert_eq!(
                cert.verdicts,
                check_registers(&g, &regs, &present),
                "distributed and centralized checkers disagree (trial {trial})"
            );
        }
    }

    #[test]
    fn detection_latency_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let small = generators::gnp(16, 0.3, &mut rng);
        let large = generators::gnp(256, 0.05, &mut rng);
        let c_small = certify(&small, &vec![None; 16], &[true; 16], 0).unwrap();
        let c_large = certify(&large, &vec![None; 256], &[true; 256], 0).unwrap();
        assert_eq!(c_small.detection_rounds, c_large.detection_rounds);
        assert!(c_small.detection_rounds <= 2, "verification is one broadcast + one check");
    }

    #[test]
    fn lies_are_deterministic_and_always_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..10 {
            let g = generators::gnp(30, 0.2, &mut rng);
            let report = israeli_itai(&g, trial).unwrap();
            let honest = regs_of(&g, &report.matching);
            let liars = [0, 7, 19];
            let mut a = honest.clone();
            apply_lies(&mut a, &liars, 42 + trial, g.edge_count());
            let mut b = honest.clone();
            apply_lies(&mut b, &liars, 42 + trial, g.edge_count());
            assert_eq!(a, b, "lies must be replayable");
            for &v in &liars {
                assert_ne!(a[v], honest[v], "a lie must change node {v}'s register");
            }
            let cert = certify(&g, &a, &[true; 30], trial).unwrap();
            assert!(!cert.ok(), "an effective lie flags at least one node (trial {trial})");
        }
    }

    #[test]
    fn certified_mm_clean_run_skips_repair() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::gnp(30, 0.15, &mut rng);
        let report = certified_mm(
            &g,
            &FaultPlan::default(),
            &RepairConfig { seed: 9, ..Default::default() },
        )
        .unwrap();
        assert!(!report.detected());
        assert!(report.certified());
        assert!(report.recheck.is_none());
        assert_eq!(report.repair_touched, 0);
        report.matching.validate(&g).unwrap();
        assert!(is_maximal_on_residual(&g, &report.matching, &[true; 30]));
    }

    #[test]
    fn certified_mm_detects_and_repairs_lies() {
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..5 {
            let g = generators::gnp(30, 0.15, &mut rng);
            let plan = FaultPlan::lossy(0.05).with_liars(vec![1, 2, 3]);
            let cfg = RepairConfig { seed: 100 + trial, ..Default::default() };
            let report = certified_mm(&g, &plan, &cfg).unwrap();
            assert!(report.detected(), "lies must be detected (trial {trial})");
            assert!(report.certified(), "repair must re-certify (trial {trial})");
            report.matching.validate(&g).unwrap();
            assert!(is_maximal_on_residual(&g, &report.matching, &[true; 30]));
            assert!(report.repair.is_some());
            assert!(
                report.repair_locality() <= 1.0 && report.repair_locality() >= 0.0,
                "locality is a fraction"
            );
        }
    }

    #[test]
    fn certified_mm_excludes_crashed_and_equivocators() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = generators::gnp(30, 0.2, &mut rng);
        let plan = FaultPlan::crashes(vec![(3, 2)]).with_equivocators(vec![7]);
        let cfg = RepairConfig { seed: 21, ..Default::default() };
        let report = certified_mm(&g, &plan, &cfg).unwrap();
        assert_eq!(report.excluded, vec![3, 7]);
        assert!(report.certified());
        report.matching.validate(&g).unwrap();
        let mut alive = vec![true; 30];
        alive[3] = false;
        alive[7] = false;
        for e in report.matching.to_edge_vec() {
            let (a, b) = g.endpoints(e);
            assert!(alive[a] && alive[b], "no matched edge may touch an excluded node");
        }
        assert!(is_maximal_on_residual(&g, &report.matching, &alive));
    }

    #[test]
    fn certified_mm_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(19);
        let g = generators::gnp(25, 0.2, &mut rng);
        let plan = FaultPlan::lossy(0.05).with_corrupt(0.02).with_liars(vec![4]);
        let cfg = RepairConfig { seed: 5, ..Default::default() };
        let a = certified_mm(&g, &plan, &cfg).unwrap();
        let b = certified_mm(&g, &plan, &cfg).unwrap();
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
        assert_eq!(a.initial.flagged, b.initial.flagged);
        assert_eq!(a.repair_touched, b.repair_touched);
    }
}
