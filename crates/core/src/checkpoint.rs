//! Crash-consistent checkpoint/restore: durable snapshots of the
//! runtime pipeline and process-restart recovery.
//!
//! A long-running deployment of the matching runtime cannot assume the
//! *process* survives the run the way every in-run hardening layer
//! (transport, repair, maintenance, certification) does. This module
//! adds the missing axis: at every **quiescent stage boundary** of
//! [`crate::runtime::run_mm`] — after the main driver run, after the
//! repair layer, after maintenance — the full pipeline state is written
//! to a durable [`Snapshot`], and a fresh process can resume the
//! pipeline mid-plan from the newest intact generation.
//!
//! The design leans on two properties the paper's register discipline
//! already gives us:
//!
//! * **State is small and self-describing.** A node's entire output is
//!   one match register (`Option<EdgeId>`); presence, trust and
//!   statistics are per-node scalars. A snapshot is a few bytes per
//!   node, so writing one at a stage boundary is cheap enough to never
//!   warrant mid-round (non-quiescent) persistence.
//! * **State is repairable after partial loss.** [`Algorithm::resume`]
//!   re-runs any driver from sanitized registers, so a *stale* snapshot
//!   is not a wrong answer — it is a valid earlier state the normal
//!   pipeline tail (certify → repair → maintain) heals forward.
//!
//! # Atomicity protocol
//!
//! Each generation is one file, written with the classic sequence:
//! write to `ckpt-G.snap.tmp`, `fsync` the file, `rename` into place,
//! `fsync` the directory, then update the `HEAD` pointer the same way.
//! A crash at any point leaves either the old state, the new state, or
//! detectable debris (`*.tmp` files are ignored; a renamed snapshot
//! newer than `HEAD` is trusted *with the damage flagged*, because the
//! rename is the commit point and only the `HEAD` update was lost).
//!
//! # Wire format
//!
//! Length-prefixed checksummed sections behind an 8-byte magic:
//!
//! ```text
//! "DAMCKPT1" | version u16 | section count u32
//!   then per section: tag u8 | len u32 | payload | checksum u64
//! ```
//!
//! Checksums are FNV-1a whitened through
//! [`splitmix64`](dam_congest::rng::splitmix64) — the repo's seed
//! discipline, no external CRC dependency. [`Snapshot::decode`] is
//! total: arbitrary or corrupted bytes produce a typed
//! [`SnapshotError`], never a panic and never an absurd allocation
//! (every decoded element consumes at least one input byte, so element
//! counts are bounded by the section length).
//!
//! # Degradation ladder
//!
//! Restore never trusts blindly. [`CheckpointStore::load`] walks the
//! generations newest-first and classifies the outcome:
//!
//! 1. **Clean** — the newest generation decodes, its embedded
//!    generation matches its filename, and `HEAD` agrees: resume
//!    verbatim.
//! 2. **Degraded** — something was damaged (truncation, bit flip, a
//!    stale `HEAD` after a torn rename or a rollback) but an intact
//!    generation exists: resume from it, with the damage *reported*
//!    (exit code 3 at the CLI, [`dam_congest::RunStats::restores_degraded`]).
//! 3. **Cold start** — a checkpoint directory exists but no generation
//!    decodes: re-run from scratch. Still a successful recovery, still
//!    reported as degraded.
//! 4. **Unrecoverable** — the directory holds nothing to restore, or
//!    the newest intact snapshot belongs to a *different* input
//!    (graph fingerprint, algorithm, or master seed mismatch). Resuming
//!    would silently compute the wrong run, so this is a hard error
//!    ([`RestoreError`], exit code 1).
//!
//! Restart recovery composes with the transport's incarnation story:
//! sessions are recorded for validation and forensics but **never
//! imported** — a restored process draws fresh boot nonces, so
//! surviving peers treat the restart exactly like the
//! reboot-as-new-incarnation the resilient transport already supports.
//!
//! Restore-path randomness is domain-separated through
//! [`CHECKPOINT_DOMAIN`] (the same discipline as
//! [`crate::runtime::algo_domain`]): the heal pass draws from its own
//! stream, so a restored run and an uninterrupted run draw *identical*
//! repair/maintenance randomness and a clean restore is bit-identical
//! to never having crashed.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use dam_congest::{rng, PortSession, RunStats, SessionState, TotalStats};
use dam_graph::{BitSet, EdgeId, Topology};

use crate::runtime::Algorithm;

/// Seed domain of the restore path's own randomness (the post-restore
/// heal pass): XORed into `seed ^ algo_domain` and whitened, so healing
/// a damaged snapshot never shifts the certify/repair/maintenance
/// streams an uninterrupted run draws — the satellite contract that a
/// clean restore replays bit-identically.
pub const CHECKPOINT_DOMAIN: u64 = 0xC4EC_9017_5EED_D00D;

const MAGIC: &[u8; 8] = b"DAMCKPT1";
// v2: presence masks are word-packed, self-checksummed bitset frames
// ([`BitSet::encode_into`]) instead of byte-per-bool vectors.
const VERSION: u16 = 2;
const HEAD_MAGIC: &str = "DAMHEAD1";

const SEC_META: u8 = 1;
const SEC_REGS: u8 = 2;
const SEC_PRESENCE: u8 = 3;
const SEC_STATS: u8 = 4;
const SEC_SESSION: u8 = 5;

/// Which quiescent boundary of the [`crate::runtime::run_mm`] pipeline
/// a snapshot was taken at — the plan cursor a restore resumes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// After the main driver run (registers computed, hardening layers
    /// pending). Restoring here replays the entire pipeline tail.
    Main,
    /// After the certification/repair layer (registers sanitized or
    /// repaired). Restoring here resumes at maintenance.
    Repaired,
    /// After the maintenance layer. Restoring here only re-verifies and
    /// assembles the report.
    Maintained,
}

impl Stage {
    fn code(self) -> u8 {
        match self {
            Stage::Main => 0,
            Stage::Repaired => 1,
            Stage::Maintained => 2,
        }
    }

    fn from_code(c: u8) -> Option<Stage> {
        match c {
            0 => Some(Stage::Main),
            1 => Some(Stage::Repaired),
            2 => Some(Stage::Maintained),
            _ => None,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Main => write!(f, "main"),
            Stage::Repaired => write!(f, "repaired"),
            Stage::Maintained => write!(f, "maintained"),
        }
    }
}

/// One durable image of the pipeline state at a quiescent stage
/// boundary. Everything a fresh process needs to resume mid-plan — and
/// everything a skeptical one needs to refuse to (fingerprints).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Monotone generation counter; also embedded in the filename, and
    /// the two must agree or the file is treated as damaged.
    pub generation: u64,
    /// Master seed of the run (`sim.seed`); a restore under a different
    /// seed would resume the wrong randomness and is refused.
    pub seed: u64,
    /// The boundary this snapshot was taken at.
    pub stage: Stage,
    /// [`Algorithm::name`] of the driver; a restore under a different
    /// driver is refused.
    pub algorithm: String,
    /// Node count of the input graph (fingerprint component).
    pub graph_nodes: u64,
    /// Edge count of the input graph (fingerprint component).
    pub graph_edges: u64,
    /// Structural checksum of the input graph
    /// ([`Snapshot::graph_fingerprint`]).
    pub graph_sum: u64,
    /// Whether the certification layer had detected corruption before
    /// this boundary (report continuity across the restart).
    pub detected: bool,
    /// Per-node match registers at the boundary, encoded through the
    /// driver's register codec ([`Algorithm::encode_registers`]).
    pub registers: Vec<Option<EdgeId>>,
    /// The trusted domain at the boundary (crashed / quarantined nodes
    /// are `false`).
    pub alive: BitSet,
    /// Final node presence (churn's final topology minus excluded).
    pub node_present: BitSet,
    /// Final edge presence (churn's final topology).
    pub edge_present: BitSet,
    /// Main-run cost at the boundary.
    pub phase1: RunStats,
    /// Engine run totals at the boundary.
    pub totals: TotalStats,
    /// Cost of the repair phase, when one ran before the boundary
    /// (restores the [`crate::runtime::RunReport::repair`] ledger when
    /// resuming past the repair layer).
    pub repair: Option<RunStats>,
    /// Cost of the maintenance phase, when one ran before the boundary.
    pub maintain: Option<RunStats>,
    /// Driver-level iteration count of the main run.
    pub iterations: u64,
    /// Sanitation/repair counters accumulated before the boundary:
    /// `[surviving, dissolved, added, repair_touched]`.
    pub counters: [u64; 4],
    /// Per-node transport-session exports at the boundary — boot
    /// nonces, adaptive escalation levels, and outstanding retransmit
    /// queues. Recorded for quiescence validation and forensics only;
    /// a restored process **never** imports them (fresh boot nonces
    /// make the restart an ordinary incarnation change). Empty
    /// (all-`None`) at boundaries whose phase transport was already
    /// torn down.
    pub sessions: Vec<Option<SessionState>>,
}

impl Snapshot {
    /// Structural checksum of a graph: FNV-1a over node count, edge
    /// count, endpoints and weight bits, whitened through splitmix64.
    /// Two graphs with the same fingerprint are — for restore purposes
    /// — the same input.
    #[must_use]
    pub fn graph_fingerprint(g: &dyn Topology) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(g.node_count() as u64);
        eat(g.edge_count() as u64);
        for e in 0..g.edge_count() {
            let (a, b) = g.endpoints(e);
            eat(a as u64);
            eat(b as u64);
            eat(g.weight(e).to_bits());
        }
        rng::splitmix64(h)
    }

    /// Whether this snapshot belongs to `(g, algo, seed)`. A mismatch
    /// means resuming would silently compute a different run — the one
    /// thing restore must never do.
    ///
    /// # Errors
    /// The specific fingerprint that diverged.
    pub fn matches(&self, g: &dyn Topology, algo: &str, seed: u64) -> Result<(), RestoreError> {
        if self.graph_nodes != g.node_count() as u64
            || self.graph_edges != g.edge_count() as u64
            || self.graph_sum != Snapshot::graph_fingerprint(g)
        {
            return Err(RestoreError::WrongGraph);
        }
        if self.algorithm != algo {
            return Err(RestoreError::WrongAlgorithm {
                expected: algo.to_string(),
                found: self.algorithm.clone(),
            });
        }
        if self.seed != seed {
            return Err(RestoreError::WrongSeed { expected: seed, found: self.seed });
        }
        Ok(())
    }

    /// Whether every recorded live session is drained: no outstanding
    /// retransmit slots toward live peers. True for every snapshot the
    /// runtime writes (boundaries are quiescent by construction); false
    /// means the bytes were tampered with or handcrafted, and the
    /// restore path responds by running the heal repair instead of
    /// trusting the registers verbatim.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.sessions.iter().flatten().all(|s| s.ports.iter().all(|p| p.dead || p.outstanding == 0))
    }

    /// Encodes the snapshot with the driver's register codec.
    #[must_use]
    pub fn encode_with<A: Algorithm + ?Sized>(&self, algo: &A) -> Vec<u8> {
        self.encode_sections(algo.encode_registers(&self.registers))
    }

    /// Encodes the snapshot with the default (uniform) register codec.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.encode_sections(encode_registers(&self.registers))
    }

    fn encode_sections(&self, reg_bytes: Vec<u8>) -> Vec<u8> {
        let mut meta = Enc::new();
        meta.u64(self.generation);
        meta.u64(self.seed);
        meta.u8(self.stage.code());
        meta.u8(u8::from(self.detected));
        let name = self.algorithm.as_bytes();
        meta.u16(name.len() as u16);
        meta.bytes(name);
        meta.u64(self.graph_nodes);
        meta.u64(self.graph_edges);
        meta.u64(self.graph_sum);
        meta.u64(self.iterations);
        for c in self.counters {
            meta.u64(c);
        }

        let mut presence = Enc::new();
        self.alive.encode_into(&mut presence.0);
        self.node_present.encode_into(&mut presence.0);
        self.edge_present.encode_into(&mut presence.0);

        let mut stats = Enc::new();
        stats.stats(&self.phase1);
        stats.u64(self.totals.runs as u64);
        stats.stats(&self.totals.stats);
        for opt in [&self.repair, &self.maintain] {
            match opt {
                None => stats.u8(0),
                Some(s) => {
                    stats.u8(1);
                    stats.stats(s);
                }
            }
        }

        let mut sess = Enc::new();
        sess.u32(self.sessions.len() as u32);
        for s in &self.sessions {
            match s {
                None => sess.u8(0),
                Some(s) => {
                    sess.u8(1);
                    sess.u16(s.boot);
                    sess.u64(s.level);
                    sess.u32(s.ports.len() as u32);
                    for p in &s.ports {
                        match p.peer_boot {
                            None => sess.u8(0),
                            Some(b) => {
                                sess.u8(1);
                                sess.u16(b);
                            }
                        }
                        sess.u32(p.outstanding);
                        sess.u32(p.acked_out);
                        sess.u32(p.recv_ack);
                        sess.u8(u8::from(p.done));
                        sess.u8(u8::from(p.dead));
                    }
                }
            }
        }

        let sections: [(u8, Vec<u8>); 5] = [
            (SEC_META, meta.0),
            (SEC_REGS, reg_bytes),
            (SEC_PRESENCE, presence.0),
            (SEC_STATS, stats.0),
            (SEC_SESSION, sess.0),
        ];
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for (tag, payload) in sections {
            out.push(tag);
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            let sum = checksum(&payload);
            out.extend_from_slice(&payload);
            out.extend_from_slice(&sum.to_le_bytes());
        }
        out
    }

    /// Decodes a snapshot with the driver's register codec. Total:
    /// arbitrary bytes produce an error, never a panic.
    ///
    /// # Errors
    /// The first structural violation found ([`SnapshotError`]).
    pub fn decode_with<A: Algorithm + ?Sized>(
        bytes: &[u8],
        algo: &A,
    ) -> Result<Snapshot, SnapshotError> {
        Snapshot::decode_sections(bytes, &|b, n| algo.decode_registers(b, n))
    }

    /// Decodes a snapshot with the default (uniform) register codec.
    ///
    /// # Errors
    /// The first structural violation found ([`SnapshotError`]).
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        Snapshot::decode_sections(bytes, &decode_registers)
    }

    #[allow(clippy::type_complexity)]
    fn decode_sections(
        bytes: &[u8],
        decode_regs: &dyn Fn(&[u8], usize) -> Result<Vec<Option<EdgeId>>, SnapshotError>,
    ) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() + 6 {
            return Err(SnapshotError::TooShort);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut d = Dec { b: bytes, i: MAGIC.len() };
        let version = d.u16()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let count = d.u32()?;
        let mut meta = None;
        let mut regs = None;
        let mut presence = None;
        let mut stats = None;
        let mut session = None;
        for _ in 0..count {
            let tag = d.u8()?;
            let len = d.u32()? as usize;
            let payload = d.take(len)?;
            let sum = d.u64()?;
            if checksum(payload) != sum {
                return Err(SnapshotError::BadChecksum { section: tag });
            }
            match tag {
                SEC_META => meta = Some(payload),
                SEC_REGS => regs = Some(payload),
                SEC_PRESENCE => presence = Some(payload),
                SEC_STATS => stats = Some(payload),
                SEC_SESSION => session = Some(payload),
                // Unknown sections are checksummed and skipped — a
                // newer writer may append sections this reader can
                // safely ignore.
                _ => {}
            }
        }

        let mut m = Dec::over(meta.ok_or(SnapshotError::MissingSection(SEC_META))?);
        let generation = m.u64()?;
        let seed = m.u64()?;
        let stage =
            Stage::from_code(m.u8()?).ok_or(SnapshotError::Malformed("unknown stage code"))?;
        let detected = m.bool()?;
        let name_len = m.u16()? as usize;
        let name = m.take(name_len)?;
        let algorithm = std::str::from_utf8(name)
            .map_err(|_| SnapshotError::Malformed("algorithm name is not UTF-8"))?
            .to_string();
        let graph_nodes = m.u64()?;
        let graph_edges = m.u64()?;
        let graph_sum = m.u64()?;
        let iterations = m.u64()?;
        let mut counters = [0u64; 4];
        for c in &mut counters {
            *c = m.u64()?;
        }
        let n = usize::try_from(graph_nodes)
            .map_err(|_| SnapshotError::Malformed("node count overflows usize"))?;
        let e = usize::try_from(graph_edges)
            .map_err(|_| SnapshotError::Malformed("edge count overflows usize"))?;

        let registers = decode_regs(regs.ok_or(SnapshotError::MissingSection(SEC_REGS))?, n)?;

        let pb = presence.ok_or(SnapshotError::MissingSection(SEC_PRESENCE))?;
        let mut off = 0usize;
        let mut mask = |expected: usize| -> Result<BitSet, SnapshotError> {
            let (bs, used) = BitSet::decode(&pb[off..]).map_err(SnapshotError::Malformed)?;
            off += used;
            if bs.len() != expected {
                return Err(SnapshotError::Malformed("presence mask length mismatch"));
            }
            Ok(bs)
        };
        let alive = mask(n)?;
        let node_present = mask(n)?;
        let edge_present = mask(e)?;

        let mut s = Dec::over(stats.ok_or(SnapshotError::MissingSection(SEC_STATS))?);
        let phase1 = s.stats()?;
        let runs = usize::try_from(s.u64()?)
            .map_err(|_| SnapshotError::Malformed("run count overflows usize"))?;
        let totals = TotalStats { runs, stats: s.stats()? };
        let repair = if s.bool()? { Some(s.stats()?) } else { None };
        let maintain = if s.bool()? { Some(s.stats()?) } else { None };

        let mut d = Dec::over(session.ok_or(SnapshotError::MissingSection(SEC_SESSION))?);
        let sess_count = d.u32()? as usize;
        if sess_count != n {
            return Err(SnapshotError::Malformed("session count != node count"));
        }
        let mut sessions = Vec::new();
        for _ in 0..sess_count {
            if d.bool()? {
                let boot = d.u16()?;
                let level = d.u64()?;
                let port_count = d.u32()? as usize;
                let mut ports = Vec::new();
                for _ in 0..port_count {
                    let peer_boot = if d.bool()? { Some(d.u16()?) } else { None };
                    ports.push(PortSession {
                        peer_boot,
                        outstanding: d.u32()?,
                        acked_out: d.u32()?,
                        recv_ack: d.u32()?,
                        done: d.bool()?,
                        dead: d.bool()?,
                    });
                }
                sessions.push(Some(SessionState { boot, level, ports }));
            } else {
                sessions.push(None);
            }
        }

        Ok(Snapshot {
            generation,
            seed,
            stage,
            algorithm,
            graph_nodes,
            graph_edges,
            graph_sum,
            detected,
            registers,
            alive,
            node_present,
            edge_present,
            phase1,
            totals,
            repair,
            maintain,
            iterations,
            counters,
            sessions,
        })
    }
}

/// The default register codec: one tag byte (`0` = unmatched) plus the
/// little-endian edge id per node. Every portfolio driver's registers
/// are plain `Option<EdgeId>`, so the [`Algorithm`] codec hooks default
/// to this encoding.
#[must_use]
pub fn encode_registers(regs: &[Option<EdgeId>]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(regs.len() as u32);
    for r in regs {
        match r {
            None => e.u8(0),
            Some(id) => {
                e.u8(1);
                e.u64(*id as u64);
            }
        }
    }
    e.0
}

/// Inverse of [`encode_registers`]; `n` is the expected register count
/// (one per node). Total on arbitrary bytes.
///
/// # Errors
/// The first structural violation found.
pub fn decode_registers(bytes: &[u8], n: usize) -> Result<Vec<Option<EdgeId>>, SnapshotError> {
    let mut d = Dec::over(bytes);
    let count = d.u32()? as usize;
    if count != n {
        return Err(SnapshotError::Malformed("register count != node count"));
    }
    let mut regs = Vec::new();
    for _ in 0..count {
        if d.bool()? {
            let id = usize::try_from(d.u64()?)
                .map_err(|_| SnapshotError::Malformed("edge id overflows usize"))?;
            regs.push(Some(id));
        } else {
            regs.push(None);
        }
    }
    Ok(regs)
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rng::splitmix64(h)
}

struct Enc(Vec<u8>);

impl Enc {
    fn new() -> Enc {
        Enc(Vec::new())
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.0.extend_from_slice(v);
    }
    fn stats(&mut self, s: &RunStats) {
        for v in [
            s.rounds,
            s.charged_rounds,
            s.messages,
            s.retransmissions,
            s.heartbeats,
            s.maintenance,
            s.markers,
            s.churn_events,
            s.churn_drops,
            s.total_bits,
            s.max_message_bits as u64,
            s.violations,
            s.corruptions,
            s.equivocations,
            s.rejected,
            s.quarantined,
            s.suspected,
            s.restores,
            s.restores_degraded,
        ] {
            self.u64(v);
        }
    }
}

struct Dec<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Dec<'a> {
    fn over(b: &'a [u8]) -> Dec<'a> {
        Dec { b, i: 0 }
    }
    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.i.checked_add(len).ok_or(SnapshotError::TooShort)?;
        if end > self.b.len() {
            return Err(SnapshotError::TooShort);
        }
        let s = &self.b[self.i..end];
        self.i = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("boolean byte is not 0 or 1")),
        }
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }
    fn stats(&mut self) -> Result<RunStats, SnapshotError> {
        let mut f = [0u64; 19];
        for v in &mut f {
            *v = self.u64()?;
        }
        Ok(RunStats {
            rounds: f[0],
            charged_rounds: f[1],
            messages: f[2],
            retransmissions: f[3],
            heartbeats: f[4],
            maintenance: f[5],
            markers: f[6],
            churn_events: f[7],
            churn_drops: f[8],
            total_bits: f[9],
            max_message_bits: usize::try_from(f[10])
                .map_err(|_| SnapshotError::Malformed("message width overflows usize"))?,
            violations: f[11],
            corruptions: f[12],
            equivocations: f[13],
            rejected: f[14],
            quarantined: f[15],
            suspected: f[16],
            restores: f[17],
            restores_degraded: f[18],
        })
    }
}

/// Structural violations found while decoding snapshot bytes. Every
/// variant is a *detection*: the contract is that damage degrades
/// (previous generation, cold start) and never panics or silently
/// resumes wrong state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes end before a declared length.
    TooShort,
    /// The leading magic is not `DAMCKPT1`.
    BadMagic,
    /// An unknown format version.
    BadVersion(u16),
    /// A section's checksum does not match its payload.
    BadChecksum {
        /// The section's tag byte.
        section: u8,
    },
    /// A required section is absent.
    MissingSection(u8),
    /// A payload field violates its invariant.
    Malformed(&'static str),
    /// The generation embedded in the metadata disagrees with the
    /// filename it was stored under (a rolled-back or transplanted
    /// file).
    GenerationMismatch {
        /// Generation in the filename.
        file: u64,
        /// Generation in the decoded metadata.
        meta: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unknown snapshot version {v}"),
            SnapshotError::BadChecksum { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            SnapshotError::MissingSection(tag) => write!(f, "missing section {tag}"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::GenerationMismatch { file, meta } => {
                write!(f, "generation mismatch: filename says {file}, metadata says {meta}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Unrecoverable restore failures — the cases where degrading would
/// mean silently resuming the wrong state, so the run refuses instead
/// (CLI exit 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The checkpoint directory does not exist or holds no snapshot
    /// and no `HEAD` — there is nothing to restore from.
    NothingToRestore(PathBuf),
    /// The newest intact snapshot fingerprints a different input graph.
    WrongGraph,
    /// The newest intact snapshot belongs to a different driver.
    WrongAlgorithm {
        /// The driver this run was asked to resume.
        expected: String,
        /// The driver the snapshot belongs to.
        found: String,
    },
    /// The newest intact snapshot was taken under a different master
    /// seed.
    WrongSeed {
        /// The seed this run was configured with.
        expected: u64,
        /// The seed the snapshot was taken under.
        found: u64,
    },
    /// A filesystem operation failed (message carries the OS error).
    Io(String),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::NothingToRestore(dir) => {
                write!(f, "nothing to restore from {}", dir.display())
            }
            RestoreError::WrongGraph => {
                write!(f, "snapshot fingerprints a different input graph; refusing to resume")
            }
            RestoreError::WrongAlgorithm { expected, found } => {
                write!(f, "snapshot belongs to algorithm '{found}', not '{expected}'")
            }
            RestoreError::WrongSeed { expected, found } => {
                write!(f, "snapshot was taken under seed {found}, not {expected}")
            }
            RestoreError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<std::io::Error> for RestoreError {
    fn from(e: std::io::Error) -> RestoreError {
        RestoreError::Io(e.to_string())
    }
}

/// How a restore resolved — surfaced on
/// [`crate::runtime::RunReport::restore`] and mapped to the CLI exit
/// contract (clean → 0, degraded/cold → 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// The newest generation was intact and trusted verbatim.
    Clean {
        /// The generation resumed from.
        generation: u64,
    },
    /// Damage was detected; an older intact generation was resumed.
    Degraded {
        /// The generation resumed from.
        generation: u64,
    },
    /// Damage was detected and no generation was intact; the run was
    /// recomputed from scratch (cold-start repair).
    ColdStart,
}

impl RestoreOutcome {
    /// Whether the restore had to degrade (older generation or cold
    /// start) — the "damaged but recovered" leg of the exit contract.
    #[must_use]
    pub fn degraded(&self) -> bool {
        !matches!(self, RestoreOutcome::Clean { .. })
    }
}

impl fmt::Display for RestoreOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreOutcome::Clean { generation } => {
                write!(f, "clean restore from generation {generation}")
            }
            RestoreOutcome::Degraded { generation } => {
                write!(f, "degraded restore from generation {generation}")
            }
            RestoreOutcome::ColdStart => write!(f, "cold-start recovery"),
        }
    }
}

/// What [`CheckpointStore::load`] recovered: the outcome class plus the
/// snapshot itself (absent on a cold start).
#[derive(Debug, Clone)]
pub struct Recovered {
    /// How the ladder resolved.
    pub outcome: RestoreOutcome,
    /// The intact snapshot, when one exists.
    pub snapshot: Option<Snapshot>,
}

/// A checkpoint directory: generation files `ckpt-<G>.snap` plus a
/// `HEAD` pointer, both updated with the write-to-temp + fsync + rename
/// protocol (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens `dir` as a checkpoint store, creating it (and parents) if
    /// needed.
    ///
    /// # Errors
    /// Filesystem errors creating the directory.
    pub fn create(dir: &Path) -> Result<CheckpointStore, RestoreError> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointStore { dir: dir.to_path_buf() })
    }

    /// Opens `dir` without creating it (the restore side: a missing
    /// directory is [`RestoreError::NothingToRestore`], detected at
    /// [`CheckpointStore::load`]).
    #[must_use]
    pub fn open(dir: &Path) -> CheckpointStore {
        CheckpointStore { dir: dir.to_path_buf() }
    }

    /// The directory this store reads and writes.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snap_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:08}.snap"))
    }

    fn head_path(&self) -> PathBuf {
        self.dir.join("HEAD")
    }

    /// Durably writes one file: temp + fsync + rename + directory
    /// fsync. A crash at any point leaves the old content or the new,
    /// never a half-written visible file.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), RestoreError> {
        let tmp = path.with_extension("snap.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // Persist the rename itself: fsync the directory entry.
        fs::File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// Writes `snap` as its generation's file (atomically), advances
    /// `HEAD`, and prunes all but the two newest generations (the
    /// degradation ladder needs exactly one fallback).
    ///
    /// # Errors
    /// Filesystem errors from any step.
    pub fn write<A: Algorithm + ?Sized>(
        &self,
        snap: &Snapshot,
        algo: &A,
    ) -> Result<(), RestoreError> {
        let bytes = snap.encode_with(algo);
        self.write_atomic(&self.snap_path(snap.generation), &bytes)?;
        let head = format!("{HEAD_MAGIC} {}\n", snap.generation);
        self.write_atomic(&self.head_path(), head.as_bytes())?;
        // Prune: keep the newest two generations.
        let mut gens = self.generations()?;
        gens.sort_unstable_by(|a, b| b.cmp(a));
        for &old in gens.iter().skip(2) {
            let _ = fs::remove_file(self.snap_path(old));
        }
        Ok(())
    }

    /// Every generation with a (fully renamed) snapshot file on disk,
    /// unsorted. `*.tmp` debris is ignored — that is the point of the
    /// rename protocol.
    ///
    /// # Errors
    /// Filesystem errors reading the directory.
    pub fn generations(&self) -> Result<Vec<u64>, RestoreError> {
        let mut gens = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return Ok(gens),
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(g) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".snap")) {
                if let Ok(g) = g.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
        Ok(gens)
    }

    /// The generation `HEAD` points at, if a well-formed `HEAD` exists.
    #[must_use]
    pub fn head(&self) -> Option<u64> {
        let body = fs::read_to_string(self.head_path()).ok()?;
        let rest = body.strip_prefix(HEAD_MAGIC)?;
        rest.trim().parse::<u64>().ok()
    }

    /// Walks the degradation ladder: newest generation first, falling
    /// back one generation on any damage, to cold start when nothing
    /// decodes. See the [module docs](self) for the full contract.
    ///
    /// # Errors
    /// Only the unrecoverable cases ([`RestoreError`]): nothing to
    /// restore at all. Fingerprint checks against the *input* are the
    /// caller's job ([`Snapshot::matches`]) — the store cannot know
    /// what you meant to resume.
    pub fn load<A: Algorithm + ?Sized>(&self, algo: &A) -> Result<Recovered, RestoreError> {
        let mut gens = self.generations()?;
        gens.sort_unstable_by(|a, b| b.cmp(a));
        let head = self.head();
        if gens.is_empty() && head.is_none() {
            return Err(RestoreError::NothingToRestore(self.dir.clone()));
        }
        let mut damaged = false;
        for &g in &gens {
            let bytes = match fs::read(self.snap_path(g)) {
                Ok(b) => b,
                Err(_) => {
                    damaged = true;
                    continue;
                }
            };
            let snap = match Snapshot::decode_with(&bytes, algo) {
                Ok(s) => s,
                Err(_) => {
                    damaged = true;
                    continue;
                }
            };
            if snap.generation != g {
                // A transplanted or rolled-back file: its metadata
                // disagrees with the name it sits under.
                damaged = true;
                continue;
            }
            // A HEAD that does not point at the newest intact
            // generation is stale — a torn rename (commit happened,
            // pointer update lost) or a rollback (pointer reverted).
            // Either way the damage is reported, and the newest intact
            // generation wins: the rename is the commit point.
            let clean = !damaged && head == Some(g);
            let outcome = if clean {
                RestoreOutcome::Clean { generation: g }
            } else {
                RestoreOutcome::Degraded { generation: g }
            };
            return Ok(Recovered { outcome, snapshot: Some(snap) });
        }
        // Evidence of checkpointing, but nothing intact: cold start.
        Ok(Recovered { outcome: RestoreOutcome::ColdStart, snapshot: None })
    }
}

/// The snapshot-corruption injector: the four damage classes the
/// degradation ladder must survive. Used by the adversarial test
/// suites and the `chaos --crash-restart` arm; damage is applied to a
/// real checkpoint directory, exactly as a failing disk or a crashed
/// writer would leave it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Damage {
    /// Truncate the newest snapshot to `keep` bytes (torn write).
    Truncate {
        /// Bytes to keep from the front.
        keep: usize,
    },
    /// Flip one bit of the newest snapshot (silent media corruption).
    BitFlip {
        /// Which bit, modulo the file length in bits.
        bit: u64,
    },
    /// Rewrite `HEAD` to point below every on-disk generation (a
    /// rolled-back pointer: restore must detect the stale `HEAD`, not
    /// silently resume the older state as if it were newest).
    Rollback,
    /// Simulate a crash mid-commit of generation `G+1`: a truncated
    /// file already renamed into place, plus `*.tmp` debris, with
    /// `HEAD` still on `G`.
    TornRename,
}

/// Applies `damage` to the checkpoint directory at `dir`.
///
/// # Errors
/// Filesystem errors; also when the directory holds no snapshot to
/// damage.
pub fn inject(dir: &Path, damage: Damage) -> Result<(), RestoreError> {
    let store = CheckpointStore::open(dir);
    let mut gens = store.generations()?;
    gens.sort_unstable();
    let &newest = gens.last().ok_or_else(|| RestoreError::NothingToRestore(dir.to_path_buf()))?;
    let newest_path = store.snap_path(newest);
    match damage {
        Damage::Truncate { keep } => {
            let bytes = fs::read(&newest_path)?;
            let keep = keep.min(bytes.len().saturating_sub(1));
            fs::write(&newest_path, &bytes[..keep])?;
        }
        Damage::BitFlip { bit } => {
            let mut bytes = fs::read(&newest_path)?;
            if bytes.is_empty() {
                return Err(RestoreError::Io("cannot flip a bit of an empty file".to_string()));
            }
            let pos = usize::try_from(bit % (bytes.len() as u64 * 8)).unwrap_or(0);
            bytes[pos / 8] ^= 1 << (pos % 8);
            fs::write(&newest_path, &bytes)?;
        }
        Damage::Rollback => {
            let stale = gens.first().copied().unwrap_or(0).saturating_sub(1);
            fs::write(store.head_path(), format!("{HEAD_MAGIC} {stale}\n"))?;
        }
        Damage::TornRename => {
            let bytes = fs::read(&newest_path)?;
            let half = bytes.len() / 2;
            let torn = newest + 1;
            fs::write(store.snap_path(torn), &bytes[..half])?;
            fs::write(store.snap_path(torn + 1).with_extension("snap.tmp"), &bytes)?;
        }
    }
    Ok(())
}

/// Runtime-facing checkpoint knobs
/// ([`crate::runtime::RuntimeConfig::checkpoint`]): where snapshots go
/// and how often the boundary writer is allowed to write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointCfg {
    /// Directory of the checkpoint store (created if absent).
    pub dir: PathBuf,
    /// Minimum engine rounds between snapshots; `0` writes at every
    /// quiescent boundary (the default, and what the tests pin).
    pub every: u64,
}

impl CheckpointCfg {
    /// Checkpointing into `dir` at every quiescent boundary.
    #[must_use]
    pub fn new(dir: &Path) -> CheckpointCfg {
        CheckpointCfg { dir: dir.to_path_buf(), every: 0 }
    }

    /// Sets the round pacing (`--checkpoint-every`).
    #[must_use]
    pub fn every(mut self, rounds: u64) -> CheckpointCfg {
        self.every = rounds;
        self
    }
}

/// The boundary writer [`crate::runtime::run_mm`] drives: owns the
/// store, the generation counter, and the `--checkpoint-every` pacing
/// (a boundary is skipped when fewer than `every` engine rounds have
/// elapsed since the last written snapshot; the first boundary is
/// always written).
#[derive(Debug)]
pub struct CheckpointWriter {
    store: CheckpointStore,
    every: u64,
    next_generation: u64,
    rounds_at_last: Option<u64>,
}

impl CheckpointWriter {
    /// A writer over a fresh (or resumed) store. `next_generation`
    /// continues a resumed run's numbering; pass 1 for a fresh run.
    #[must_use]
    pub fn new(store: CheckpointStore, every: u64, next_generation: u64) -> CheckpointWriter {
        CheckpointWriter { store, every, next_generation, rounds_at_last: None }
    }

    /// Writes `snap` (stamping the generation) if the pacing allows:
    /// first boundary always, later boundaries when at least `every`
    /// engine rounds elapsed since the last write. `rounds_so_far` is
    /// the run's cumulative engine-round count at this boundary.
    ///
    /// # Errors
    /// Filesystem errors from the atomic write.
    pub fn boundary<A: Algorithm + ?Sized>(
        &mut self,
        snap: &mut Snapshot,
        algo: &A,
        rounds_so_far: u64,
    ) -> Result<bool, RestoreError> {
        let due = match self.rounds_at_last {
            None => true,
            Some(last) => rounds_so_far.saturating_sub(last) >= self.every,
        };
        if !due {
            return Ok(false);
        }
        snap.generation = self.next_generation;
        self.store.write(snap, algo)?;
        self.next_generation += 1;
        self.rounds_at_last = Some(rounds_so_far);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::IsraeliItai;
    use dam_graph::{generators, Graph};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dam-ckpt-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_snapshot(g: &Graph) -> Snapshot {
        let n = g.node_count();
        Snapshot {
            generation: 1,
            seed: 42,
            stage: Stage::Main,
            algorithm: "israeli-itai".to_string(),
            graph_nodes: n as u64,
            graph_edges: g.edge_count() as u64,
            graph_sum: Snapshot::graph_fingerprint(g),
            detected: false,
            registers: (0..n)
                .map(|v| if v % 2 == 0 { Some(v % g.edge_count()) } else { None })
                .collect(),
            alive: BitSet::filled(n, true),
            node_present: BitSet::filled(n, true),
            edge_present: BitSet::filled(g.edge_count(), true),
            phase1: RunStats { rounds: 9, messages: 33, ..RunStats::default() },
            totals: TotalStats {
                runs: 1,
                stats: RunStats { rounds: 9, messages: 33, ..RunStats::default() },
            },
            repair: Some(RunStats { rounds: 6, maintenance: 2, ..RunStats::default() }),
            maintain: None,
            iterations: 3,
            counters: [4, 1, 2, 3],
            sessions: (0..n)
                .map(|v| {
                    (v % 3 != 0).then(|| SessionState {
                        boot: v as u16,
                        level: 1 + (v as u64 % 2),
                        ports: (0..g.degree(v))
                            .map(|p| PortSession {
                                peer_boot: (p % 2 == 0).then_some(p as u16),
                                outstanding: 0,
                                acked_out: 5,
                                recv_ack: 5,
                                done: true,
                                dead: false,
                            })
                            .collect(),
                    })
                })
                .collect(),
        }
    }

    #[test]
    fn encode_decode_is_identity() {
        let g = generators::cycle(8);
        let snap = sample_snapshot(&g);
        let bytes = snap.encode();
        assert_eq!(Snapshot::decode(&bytes).unwrap(), snap);
        // The driver codec hooks default to the same wire format.
        let via_algo = snap.encode_with(&IsraeliItai);
        assert_eq!(via_algo, bytes);
        assert_eq!(Snapshot::decode_with(&bytes, &IsraeliItai).unwrap(), snap);
    }

    #[test]
    fn every_truncation_is_detected() {
        let g = generators::cycle(6);
        let bytes = sample_snapshot(&g).encode();
        for keep in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..keep]).is_err(),
                "a snapshot truncated to {keep}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn store_roundtrips_and_prunes() {
        let g = generators::cycle(6);
        let dir = tmpdir("store");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut snap = sample_snapshot(&g);
        for generation in 1..=4 {
            snap.generation = generation;
            store.write(&snap, &IsraeliItai).unwrap();
        }
        let mut gens = store.generations().unwrap();
        gens.sort_unstable();
        assert_eq!(gens, vec![3, 4], "prune keeps the newest two generations");
        assert_eq!(store.head(), Some(4));
        let rec = store.load(&IsraeliItai).unwrap();
        assert_eq!(rec.outcome, RestoreOutcome::Clean { generation: 4 });
        assert_eq!(rec.snapshot.unwrap().generation, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ladder_degrades_and_cold_starts() {
        let g = generators::cycle(6);
        let dir = tmpdir("ladder");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut snap = sample_snapshot(&g);
        store.write(&snap, &IsraeliItai).unwrap();
        snap.generation = 2;
        store.write(&snap, &IsraeliItai).unwrap();
        // Truncate the newest: ladder falls back to generation 1.
        inject(&dir, Damage::Truncate { keep: 10 }).unwrap();
        let rec = store.load(&IsraeliItai).unwrap();
        assert_eq!(rec.outcome, RestoreOutcome::Degraded { generation: 1 });
        // Now damage the fallback too: cold start.
        let p = store.snap_path(1);
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..12]).unwrap();
        let rec = store.load(&IsraeliItai).unwrap();
        assert_eq!(rec.outcome, RestoreOutcome::ColdStart);
        assert!(rec.snapshot.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_and_torn_rename_are_detected() {
        let g = generators::cycle(6);
        let dir = tmpdir("rollback");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut snap = sample_snapshot(&g);
        store.write(&snap, &IsraeliItai).unwrap();
        snap.generation = 2;
        store.write(&snap, &IsraeliItai).unwrap();
        inject(&dir, Damage::Rollback).unwrap();
        let rec = store.load(&IsraeliItai).unwrap();
        assert_eq!(
            rec.outcome,
            RestoreOutcome::Degraded { generation: 2 },
            "a stale HEAD must be detected, and the newest intact generation wins"
        );
        // Torn rename: a truncated gen-3 file and tmp debris appear;
        // the intact generation 2 is recovered, damage flagged.
        inject(&dir, Damage::TornRename).unwrap();
        let rec = store.load(&IsraeliItai).unwrap();
        assert_eq!(rec.outcome, RestoreOutcome::Degraded { generation: 2 });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_unrecoverable() {
        let dir = tmpdir("empty");
        let err = CheckpointStore::open(&dir).load(&IsraeliItai).unwrap_err();
        assert!(matches!(err, RestoreError::NothingToRestore(_)));
        let missing = dir.join("no-such-subdir");
        let err = CheckpointStore::open(&missing).load(&IsraeliItai).unwrap_err();
        assert!(matches!(err, RestoreError::NothingToRestore(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_refuse_foreign_snapshots() {
        let g = generators::cycle(8);
        let other = generators::path(8);
        let snap = sample_snapshot(&g);
        snap.matches(&g, "israeli-itai", 42).unwrap();
        assert!(matches!(snap.matches(&other, "israeli-itai", 42), Err(RestoreError::WrongGraph)));
        assert!(matches!(
            snap.matches(&g, "luby-matching", 42),
            Err(RestoreError::WrongAlgorithm { .. })
        ));
        assert!(matches!(snap.matches(&g, "israeli-itai", 7), Err(RestoreError::WrongSeed { .. })));
    }

    #[test]
    fn drained_flags_outstanding_slots() {
        let g = generators::cycle(6);
        let mut snap = sample_snapshot(&g);
        assert!(snap.drained());
        if let Some(Some(s)) = snap.sessions.iter_mut().find(|s| s.is_some()) {
            s.ports[0].outstanding = 3;
        }
        assert!(!snap.drained(), "outstanding slots toward a live peer break drainage");
        if let Some(Some(s)) = snap.sessions.iter_mut().find(|s| s.is_some()) {
            s.ports[0].dead = true;
        }
        assert!(snap.drained(), "a dead peer's queue is legitimately stuck");
    }

    #[test]
    fn writer_paces_by_rounds() {
        let g = generators::cycle(6);
        let dir = tmpdir("pacing");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut w = CheckpointWriter::new(store.clone(), 10, 1);
        let mut snap = sample_snapshot(&g);
        assert!(w.boundary(&mut snap, &IsraeliItai, 4).unwrap(), "first boundary always writes");
        assert!(!w.boundary(&mut snap, &IsraeliItai, 9).unwrap(), "5 rounds < every = 10");
        assert!(w.boundary(&mut snap, &IsraeliItai, 14).unwrap(), "10 rounds elapsed");
        assert_eq!(snap.generation, 2);
        assert_eq!(store.head(), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }
}
