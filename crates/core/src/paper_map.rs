//! # Paper-to-code map
//!
//! A reading guide: where every artifact of *“Improved Distributed
//! Approximate Matching”* (Lotker, Patt-Shamir & Pettie; J. ACM 62(5),
//! 2015; preliminary SPAA 2008) lives in this workspace. This module
//! contains no code — it exists so `cargo doc` carries the map.
//!
//! ## Section 1 — Introduction
//!
//! | Paper artifact | Code |
//! |---|---|
//! | Switch fabric motivation (Figure 1) | `dam_switch` (VOQ crossbar, PIM, iSLIP, oracles) |
//! | Job/server weighted example | `examples/job_assignment.rs`, [`crate::auction`] |
//! | Israeli–Itai (1986) `½`-MCM baseline | [`crate::israeli_itai`] |
//! | PIM (Anderson et al.) / iSLIP (McKeown) | `dam_switch::sched::{pim, islip}` |
//! | c-matching pointer (Koufogiannakis–Young) | [`crate::weighted::b_local_max`], `dam_graph::bmatching` |
//! | 4G cell association (Patt-Shamir–Rawitz–Scalosub) | `examples/cellular_coverage.rs` |
//! | LCA pointer (Rubinfeld et al.; Mansour–Vardi; Parnas–Ron) | [`crate::lca`] |
//! | Trees (Hoepman–Kutten–Lotker) | [`crate::trees`] (exact, `O(diameter)`) |
//!
//! ## Section 2 — Preliminaries
//!
//! | Paper artifact | Code |
//! |---|---|
//! | Synchronous network, CONGEST(log n) / LOCAL | `dam_congest::{Network, Model, SimConfig}` |
//! | Message bit accounting | `dam_congest::BitSize`, `dam_congest::RunStats` |
//! | Output registers ("points to an incident edge or NULL") | `Protocol::Output = Option<EdgeId>`, [`crate::report::matching_from_registers`] |
//! | Footnote 1 (`C_{2n}` needs `Ω(n)` for exactness) | experiment E9 (`dam-bench`), `dam_graph::generators::cycle` |
//! | Footnote 2 (α-synchronizer, synchrony WLOG) | `dam_congest::asynchrony` (equivalence property-tested) |
//! | `M ⊕ P` notation | `dam_graph::Matching::toggle`, `dam_graph::paths` |
//!
//! ## Section 3 — Unweighted matchings
//!
//! | Paper artifact | Code |
//! |---|---|
//! | Algorithm 1 (abstract phases over `C_M(ℓ)`) | [`crate::generic::generic_mcm`] (driver) |
//! | Definition 3.1 (conflict graph) | `dam_graph::conflict::ConflictGraph` (sequential), [`crate::generic`] (distributed emulation) |
//! | Lemmas 3.2/3.3 (Hopcroft–Karp) | `dam_graph::paths` (+ `lemma_3_2`/`lemma_3_3` tests) |
//! | Algorithm 2 (neighbourhood flooding, leader rule) | [`crate::generic::GenericNode`] gather stage |
//! | Lemma 3.4 (LOCAL message width) | measured by experiment E5 |
//! | Lemma 3.5 / Corollary 3.6 (MIS emulation) | [`crate::generic`] bid/win floods; [`crate::luby`] standalone |
//! | Theorem 3.7 | `theorem_3_7_generic_ratio` integration test |
//! | §3.2 BFS counting (Algorithm 3, Figure 2, Lemma 3.8) | [`crate::bipartite::PhaseNode`] counting stage (+ `lemma_3_8_counts_match_enumeration` differential test) |
//! | §3.2 winner lottery (`max of n_y uniforms`) | [`crate::bipartite::PhaseNode`]'s lottery (`ln U / n_y` reparametrization) |
//! | §3.2 token walk + collision + trace-back | [`crate::bipartite::PhaseNode`] token/augment stages |
//! | Lemma 3.9 (pipelined `O(ℓ log N)` emulation) | `dam_congest::CostModel::Pipelined` + analytic token widths |
//! | Theorem 3.10 | [`crate::bipartite::bipartite_mcm`]; experiments E1, E2 |
//! | Algorithm 4 (red/blue sampling, `Ĝ`) | [`crate::general::ColorNode`], [`crate::general::general_mcm`] |
//! | Observations 3.11/3.12, Lemmas 3.13/3.14 | behaviour checked by E3's ratio floors |
//! | `2^{2k+1}(k+1)·ln k` iterations | [`crate::general::paper_iteration_bound`] |
//! | Theorem 3.15 | [`crate::general::general_mcm`]; experiment E3 |
//!
//! ## Section 4 — Weighted matchings
//!
//! | Paper artifact | Code |
//! |---|---|
//! | `wrap(e)`, gain `g(P)`, re-weighting `w_M` | [`crate::weighted`] `GainExchange` |
//! | Algorithm 5 | [`crate::weighted::weighted_mwm`] |
//! | Lemma 4.1 (`w(M″) ≥ w(M) + w_M(M′)`) | `lemma_4_1_gain_inequality` property test |
//! | Lemma 4.2 (Pettie–Sanders) | `dam_graph::pettie_sanders` implements its source algorithm (`(2/3−ε)`-MWM); measured via E4 |
//! | Lemma 4.4 (`δ`-MWM black box, PODC'07) | [`crate::weighted::local_max`] (substitution, see `DESIGN.md`) |
//! | Theorem 4.5 | experiment E4; `theorem_4_5_weighted_ratio` test |
//! | `½` barrier example (three unit edges) | `dam_graph::generators::three_edge_series`; E7 |
//! | §4 Remark (`(1−ε)`-MWM, Hougardy–Vinkemeier) | [`crate::hv::hv_mwm`] |
//!
//! ## Section 5 — Open problems
//!
//! The deterministic `O(log n)` maximal matching question is still open;
//! nothing here claims otherwise.
