//! §3.1: the generic LOCAL-model `(1−ε)`-MCM (Algorithms 1 and 2,
//! Theorem 3.7).
//!
//! This is the algorithm with **large messages**: nodes flood their
//! neighbourhoods (Algorithm 2), leaders — the smaller-id endpoint of
//! each augmenting path — enumerate every augmenting path of length
//! `≤ ℓ` in their view, and a Luby MIS over the conflict graph `C_M(ℓ)`
//! (Definition 3.1) is *emulated* on the physical graph: each MIS
//! iteration floods path bids to distance `2ℓ` (two conflicting paths'
//! leaders are at most `2ℓ` apart), winners announce themselves, and
//! conflicting paths die (Lemma 3.5's `O(t·ℓ)` emulation).
//!
//! The messages carry subgraph descriptions and path bids whose size
//! grows with the graph — exactly the `O((|V|+|E|) log n)` width of
//! Lemma 3.4. Experiment E5 contrasts this against the `O(log n)`-bit
//! machinery of §3.2.
//!
//! Per phase `ℓ ∈ {1, 3, …, 2k−1}` the driver repeats passes
//! (gather → `T` MIS iterations → augment winners) until no augmenting
//! path of length `≤ ℓ` remains; every pass augments at least one path
//! (the globally largest bid always wins), so the loop terminates and
//! the phase postcondition of Lemma 3.2 holds exactly.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use dam_congest::{BitSize, Context, Network, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph, NodeId, Topology};
use rand::RngExt;

use crate::error::CoreError;
use crate::report::{matching_from_registers, AlgorithmReport};

/// A fact in a node's knowledge base, flooded during the gather stage
/// and the MIS emulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fact {
    /// Node `id` exists; its matched edge (or `None` = free).
    Node {
        /// Node id.
        id: u32,
        /// Its output register.
        matched: Option<u32>,
    },
    /// Edge `id` connects `u` and `v`.
    Edge {
        /// Edge id.
        id: u32,
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// A leader's lottery bid for one of its paths in MIS iteration
    /// `iter`. The path is identified by its canonical node list.
    Bid {
        /// MIS iteration number.
        iter: u32,
        /// Lottery value.
        value: u64,
        /// Canonical node list of the path.
        key: Vec<u32>,
    },
    /// The path `key` won iteration `iter` and joined the MIS.
    Won {
        /// MIS iteration number.
        iter: u32,
        /// Canonical node list of the winner.
        key: Vec<u32>,
    },
}

impl BitSize for Fact {
    fn bit_size(&self) -> usize {
        match self {
            Fact::Node { .. } => 2 * 32 + 1,
            Fact::Edge { .. } => 3 * 32,
            Fact::Bid { key, .. } => 32 + 64 + 32 * key.len(),
            Fact::Won { key, .. } => 32 + 32 * key.len(),
        }
    }
}

/// Messages: knowledge floods and the final path-flip walk.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalMsg {
    /// Newly learned facts (delta flooding).
    Flood(Vec<Fact>),
    /// Augmentation walk along a winner path: node and edge lists.
    Flip {
        /// Path nodes in order.
        nodes: Vec<u32>,
        /// Path edges in order (`edges[i]` connects `nodes[i]`,
        /// `nodes[i+1]`).
        edges: Vec<u32>,
    },
}

impl BitSize for LocalMsg {
    fn bit_size(&self) -> usize {
        match self {
            LocalMsg::Flood(facts) => facts.iter().map(BitSize::bit_size).sum(),
            LocalMsg::Flip { nodes, edges } => 32 * (nodes.len() + edges.len()),
        }
    }
}

/// An augmenting path a leader is responsible for.
#[derive(Debug, Clone)]
struct OwnPath {
    nodes: Vec<u32>,
    edges: Vec<u32>,
    alive: bool,
}

impl OwnPath {
    fn key(&self) -> Vec<u32> {
        canonical(&self.nodes)
    }
}

fn canonical(nodes: &[u32]) -> Vec<u32> {
    if nodes.last() < nodes.first() {
        nodes.iter().rev().copied().collect()
    } else {
        nodes.to_vec()
    }
}

fn intersects(a: &[u32], b: &[u32]) -> bool {
    a.iter().any(|x| b.contains(x))
}

/// Static parameters of one pass.
#[derive(Debug, Clone, Copy)]
pub struct GenericParams {
    /// Maximum path length `ℓ` (odd).
    pub l: usize,
    /// MIS iterations `T` emulated per pass.
    pub mis_iterations: usize,
}

impl GenericParams {
    fn gather_rounds(&self) -> usize {
        self.l + 2
    }
    fn flood_rounds(&self) -> usize {
        2 * self.l + 1
    }
    fn iter_rounds(&self) -> usize {
        2 * self.flood_rounds()
    }
    fn total_rounds(&self) -> usize {
        self.gather_rounds() + self.mis_iterations * self.iter_rounds() + self.l + 2
    }
}

/// Per-node state of one generic-algorithm pass.
#[derive(Debug)]
pub struct GenericNode {
    params: GenericParams,
    register: Option<EdgeId>,
    known: BTreeSet<Fact>,
    fresh: Vec<Fact>,
    paths: Vec<OwnPath>,
    enumerated: bool,
    saw_path: bool,
    augmented: bool,
}

impl GenericNode {
    /// Builds the pass state for node `v` of `g` with register `matched`.
    #[must_use]
    pub fn new(
        params: GenericParams,
        g: &dyn Topology,
        v: NodeId,
        matched: Option<EdgeId>,
    ) -> GenericNode {
        let mut known = BTreeSet::new();
        known.insert(Fact::Node { id: v as u32, matched: matched.map(|e| e as u32) });
        for (_, u, e) in g.incident(v) {
            let (a, b) = g.endpoints(e);
            let _ = u;
            known.insert(Fact::Edge { id: e as u32, u: a as u32, v: b as u32 });
        }
        let fresh = known.iter().cloned().collect();
        GenericNode {
            params,
            register: matched,
            known,
            fresh,
            paths: Vec::new(),
            enumerated: false,
            saw_path: false,
            augmented: false,
        }
    }

    fn absorb(&mut self, facts: Vec<Fact>) {
        for f in facts {
            if self.known.insert(f.clone()) {
                self.fresh.push(f);
            }
        }
    }

    fn flood(&mut self, ctx: &mut Context<'_, LocalMsg>) {
        if self.fresh.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.fresh);
        ctx.broadcast(LocalMsg::Flood(batch));
    }

    /// Enumerates the augmenting paths of length ≤ ℓ led by this node
    /// (smaller-id endpoint, Algorithm 2 step 3) from the knowledge base.
    fn enumerate(&mut self, me: u32) {
        let mut matched_of: BTreeMap<u32, Option<u32>> = BTreeMap::new();
        let mut adj: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        for f in &self.known {
            match f {
                Fact::Node { id, matched } => {
                    matched_of.insert(*id, *matched);
                }
                Fact::Edge { id, u, v } => {
                    adj.entry(*u).or_default().push((*v, *id));
                    adj.entry(*v).or_default().push((*u, *id));
                }
                _ => {}
            }
        }
        // Only enumerate if my own free-ness allows leading paths.
        if matched_of.get(&me) != Some(&None) {
            return; // I am matched (or unknown): I lead nothing.
        }
        let is_free = |v: u32| matched_of.get(&v) == Some(&None);
        let known_node = |v: u32| matched_of.contains_key(&v);
        let edge_matched = |v: u32, e: u32| matched_of.get(&v) == Some(&Some(e));

        let mut nodes = vec![me];
        let mut edges: Vec<u32> = Vec::new();
        let mut out: Vec<OwnPath> = Vec::new();
        // The argument list mirrors the recursion state of the path
        // enumeration; bundling it into a struct would only rename it.
        #[allow(clippy::too_many_arguments)]
        fn dfs(
            v: u32,
            l: usize,
            nodes: &mut Vec<u32>,
            edges: &mut Vec<u32>,
            adj: &BTreeMap<u32, Vec<(u32, u32)>>,
            known_node: &dyn Fn(u32) -> bool,
            is_free: &dyn Fn(u32) -> bool,
            edge_matched: &dyn Fn(u32, u32) -> bool,
            me: u32,
            out: &mut Vec<OwnPath>,
        ) {
            if edges.len() >= l {
                return;
            }
            let need_matched = edges.len() % 2 == 1;
            if let Some(arcs) = adj.get(&v) {
                for &(u, e) in arcs {
                    if nodes.contains(&u) || !known_node(u) {
                        continue;
                    }
                    // The alternation status of edge e at v: matched iff
                    // it is v's (equivalently u's) matched edge.
                    let m = edge_matched(v, e) || edge_matched(u, e);
                    if m != need_matched {
                        continue;
                    }
                    nodes.push(u);
                    edges.push(e);
                    if edges.len() % 2 == 1 && is_free(u) && me < u {
                        out.push(OwnPath {
                            nodes: nodes.clone(),
                            edges: edges.clone(),
                            alive: true,
                        });
                    }
                    dfs(u, l, nodes, edges, adj, known_node, is_free, edge_matched, me, out);
                    nodes.pop();
                    edges.pop();
                }
            }
        }
        dfs(
            me,
            self.params.l,
            &mut nodes,
            &mut edges,
            &adj,
            &known_node,
            &is_free,
            &edge_matched,
            me,
            &mut out,
        );
        self.saw_path = !out.is_empty();
        self.paths = out;
        self.enumerated = true;
    }

    /// Facts relevant to MIS iteration `iter`.
    fn bids_for(&self, iter: u32) -> Vec<(u64, Vec<u32>)> {
        self.known
            .iter()
            .filter_map(|f| match f {
                Fact::Bid { iter: i, value, key } if *i == iter => Some((*value, key.clone())),
                _ => None,
            })
            .collect()
    }

    fn winners_for(&self, iter: u32) -> Vec<Vec<u32>> {
        self.known
            .iter()
            .filter_map(|f| match f {
                Fact::Won { iter: i, key } if *i == iter => Some(key.clone()),
                _ => None,
            })
            .collect()
    }

    fn flip_from(&mut self, ctx: &mut Context<'_, LocalMsg>, nodes: &[u32], edges: &[u32]) {
        let me = ctx.id() as u32;
        let idx = nodes.iter().position(|&x| x == me).expect("I am on the path");
        // Pairing (0,1), (2,3), ...: node at even index matches forward.
        let my_edge = if idx % 2 == 0 { edges[idx] } else { edges[idx - 1] };
        self.register = Some(my_edge as EdgeId);
        self.augmented = true;
        if idx + 1 < nodes.len() {
            // Forward along the connecting edge.
            let next_edge = edges[idx];
            let port = (0..ctx.degree())
                .find(|&p| ctx.edge(p) == next_edge as EdgeId)
                .expect("path edge is incident");
            ctx.send(port, LocalMsg::Flip { nodes: nodes.to_vec(), edges: edges.to_vec() });
        }
    }
}

impl Protocol for GenericNode {
    type Msg = LocalMsg;
    type Output = crate::bipartite::PhaseOutput;

    fn on_start(&mut self, ctx: &mut Context<'_, LocalMsg>) {
        self.flood(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, LocalMsg>, inbox: &[(Port, LocalMsg)]) {
        let mut flips: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
        for (_, msg) in inbox {
            match msg {
                LocalMsg::Flood(facts) => self.absorb(facts.clone()),
                LocalMsg::Flip { nodes, edges } => flips.push((nodes.clone(), edges.clone())),
            }
        }
        let round = ctx.round();
        let p = self.params;
        let gather_end = p.gather_rounds();
        let mis_end = gather_end + p.mis_iterations * p.iter_rounds();

        if round < gather_end {
            self.flood(ctx);
        } else if round < mis_end {
            let within = round - gather_end;
            let iter = (within / p.iter_rounds()) as u32;
            let phase_round = within % p.iter_rounds();
            if phase_round == 0 {
                // Start of iteration: enumerate once, then bid for every
                // living path.
                if !self.enumerated {
                    self.enumerate(ctx.id() as u32);
                }
                // Discard stale flood residue from previous sub-stages.
                self.fresh.clear();
                for path in &self.paths {
                    if path.alive {
                        let value: u64 = ctx.rng().random();
                        let f = Fact::Bid { iter, value, key: path.key() };
                        if self.known.insert(f.clone()) {
                            self.fresh.push(f);
                        }
                    }
                }
                self.flood(ctx);
            } else if phase_round < p.flood_rounds() {
                self.flood(ctx);
            } else if phase_round == p.flood_rounds() {
                // Bid flood complete: decide winners among my paths.
                let bids = self.bids_for(iter);
                let mut new_won: Vec<Fact> = Vec::new();
                for path in &mut self.paths {
                    if !path.alive {
                        continue;
                    }
                    let key = path.key();
                    let mine = bids
                        .iter()
                        .find(|(_, k)| *k == key)
                        .map(|(v, k)| (*v, k.clone()))
                        .expect("my own bid is known");
                    let beaten = bids.iter().any(|(v, k)| {
                        *k != key && intersects(k, &path.nodes) && (*v, k) > (mine.0, &mine.1)
                    });
                    if !beaten {
                        path.alive = false; // decided: in the MIS
                        new_won.push(Fact::Won { iter, key: key.clone() });
                        // Remember for the augment stage.
                        path.nodes.shrink_to_fit();
                    }
                }
                // Mark winners distinctly: collect them in `winners`.
                for f in new_won {
                    if self.known.insert(f.clone()) {
                        self.fresh.push(f);
                    }
                }
                self.flood(ctx);
            } else {
                // Won flood rounds; at the last one, kill conflicting
                // paths.
                self.flood(ctx);
                if phase_round == p.iter_rounds() - 1 {
                    let winners = self.winners_for(iter);
                    for path in &mut self.paths {
                        if path.alive
                            && winners
                                .iter()
                                .any(|w| *w != path.key() && intersects(w, &path.nodes))
                        {
                            path.alive = false;
                        }
                    }
                }
            }
        } else {
            // Augment stage: winner leaders start the flip walks; nodes
            // forward them.
            if round == mis_end {
                let me = ctx.id() as u32;
                let winner_keys: HashSet<Vec<u32>> = self
                    .known
                    .iter()
                    .filter_map(|f| match f {
                        Fact::Won { key, .. } => Some(key.clone()),
                        _ => None,
                    })
                    .collect();
                let my_winners: Vec<OwnPath> = self
                    .paths
                    .iter()
                    .filter(|p| winner_keys.contains(&p.key()) && p.nodes[0] == me)
                    .cloned()
                    .collect();
                debug_assert!(my_winners.len() <= 1, "winner paths are disjoint, sharing me");
                for w in my_winners {
                    self.flip_from(ctx, &w.nodes, &w.edges);
                }
            }
            for (nodes, edges) in flips {
                self.flip_from(ctx, &nodes, &edges);
            }
            if round >= p.total_rounds() {
                ctx.halt();
            }
        }
    }

    fn into_output(self) -> crate::bipartite::PhaseOutput {
        crate::bipartite::PhaseOutput {
            matched_edge: self.register,
            saw_path: self.saw_path,
            augmented: self.augmented,
            leader_paths: self.paths.len() as f64,
        }
    }
}

/// Configuration for [`generic_mcm`].
#[derive(Debug, Clone, Copy)]
pub struct GenericMcmConfig {
    /// Approximation parameter: phases run `ℓ = 1, 3, …, 2k−1`, giving a
    /// `(1−1/(k+1))`-MCM (Algorithm 1's guarantee with `k` phases).
    pub k: usize,
    /// Master seed.
    pub seed: u64,
    /// Luby iterations emulated per pass (`None` = `2⌈log₂(n+1)⌉ + 2`).
    pub mis_iterations: Option<usize>,
    /// Safety cap on passes per phase.
    pub max_passes_per_phase: usize,
}

impl Default for GenericMcmConfig {
    fn default() -> GenericMcmConfig {
        GenericMcmConfig { k: 3, seed: 0, mis_iterations: None, max_passes_per_phase: usize::MAX }
    }
}

/// Runs the LOCAL-model generic algorithm (Theorem 3.7) on an arbitrary
/// graph.
///
/// # Errors
/// Simulation or register-consistency failure.
///
/// # Example
/// ```
/// use dam_core::generic::{generic_mcm, GenericMcmConfig};
/// use dam_graph::{blossom, generators};
///
/// let g = generators::cycle(12);
/// let r = generic_mcm(&g, &GenericMcmConfig { k: 2, seed: 3, ..Default::default() }).unwrap();
/// assert!(3 * r.matching.size() >= 2 * blossom::maximum_matching_size(&g));
/// ```
pub fn generic_mcm(g: &Graph, config: &GenericMcmConfig) -> Result<AlgorithmReport, CoreError> {
    let n = g.node_count();
    let mis_iterations = config
        .mis_iterations
        .unwrap_or_else(|| 2 * (usize::BITS - n.max(1).leading_zeros()) as usize + 2);
    let mut net = Network::new(g, SimConfig::local().seed(config.seed));
    let mut registers: Vec<Option<EdgeId>> = vec![None; n];
    let mut passes = 0usize;
    let mut l = 1usize;
    while l < 2 * config.k {
        let params = GenericParams { l, mis_iterations };
        let mut phase_passes = 0usize;
        loop {
            let out = net.run(|v, graph| GenericNode::new(params, graph, v, registers[v]))?;
            passes += 1;
            phase_passes += 1;
            let mut any = false;
            for (v, o) in out.outputs.iter().enumerate() {
                registers[v] = o.matched_edge;
                any |= o.saw_path;
            }
            matching_from_registers(g, &registers)?;
            if !any || phase_passes >= config.max_passes_per_phase {
                break;
            }
        }
        l += 2;
    }
    let matching = matching_from_registers(g, &registers)?;
    Ok(AlgorithmReport { matching, stats: net.totals(), iterations: passes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::{blossom, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_ratio(g: &Graph, k: usize, seed: u64) {
        let r = generic_mcm(g, &GenericMcmConfig { k, seed, ..Default::default() }).unwrap();
        r.matching.validate(g).unwrap();
        let opt = blossom::maximum_matching_size(g);
        // k phases exhaust paths up to 2k−1 ⇒ (1 − 1/(k+1)) by Lemma 3.3.
        assert!(
            (k + 1) * r.matching.size() >= k * opt,
            "{} < (1-1/{})·{opt}",
            r.matching.size(),
            k + 1
        );
    }

    #[test]
    fn works_on_general_graphs() {
        // The generic algorithm handles odd cycles and blossomy
        // structures without any bipartite reduction.
        assert_ratio(&generators::cycle(9), 2, 1);
        assert_ratio(&generators::flower(2), 2, 2);
        assert_ratio(&generators::complete(7), 2, 3);
    }

    #[test]
    fn ratio_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(111);
        for trial in 0..5 {
            let g = generators::gnp(16, 0.2, &mut rng);
            assert_ratio(&g, 2, trial);
        }
    }

    #[test]
    fn exhausts_single_edges_like_maximal_matching() {
        let mut rng = StdRng::seed_from_u64(112);
        let g = generators::gnp(18, 0.2, &mut rng);
        let r = generic_mcm(&g, &GenericMcmConfig { k: 1, seed: 0, ..Default::default() }).unwrap();
        assert!(dam_graph::maximal::is_maximal(&g, &r.matching));
    }

    #[test]
    fn long_paths_resolved_exactly() {
        // P6 components: k = 3 reaches the optimum.
        let g = generators::disjoint_paths(3, 5);
        let r = generic_mcm(&g, &GenericMcmConfig { k: 3, seed: 4, ..Default::default() }).unwrap();
        assert_eq!(r.matching.size(), blossom::maximum_matching_size(&g));
    }

    #[test]
    fn message_sizes_blow_up_with_density() {
        // Lemma 3.4: LOCAL gather messages carry subgraphs. On denser
        // graphs the maximum message is much wider.
        let mut rng = StdRng::seed_from_u64(113);
        let sparse = generators::gnp(24, 0.08, &mut rng);
        let dense = generators::gnp(24, 0.5, &mut rng);
        let cfg = GenericMcmConfig { k: 2, seed: 1, ..Default::default() };
        let r_sparse = generic_mcm(&sparse, &cfg).unwrap();
        let r_dense = generic_mcm(&dense, &cfg).unwrap();
        assert!(
            r_dense.stats.stats.max_message_bits > 2 * r_sparse.stats.stats.max_message_bits,
            "dense {} vs sparse {}",
            r_dense.stats.stats.max_message_bits,
            r_sparse.stats.stats.max_message_bits
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(114);
        let g = generators::gnp(14, 0.25, &mut rng);
        let cfg = GenericMcmConfig { k: 2, seed: 21, ..Default::default() };
        let a = generic_mcm(&g, &cfg).unwrap();
        let b = generic_mcm(&g, &cfg).unwrap();
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
    }
}
