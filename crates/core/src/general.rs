//! §3.3: `(1−1/k)`-MCM in **general** graphs (Algorithm 4,
//! Theorem 3.15).
//!
//! Each iteration every node colours itself red or blue with probability
//! ½. The bichromatic subgraph `Ĝ` — free nodes plus nodes whose matching
//! edge is bichromatic, connected by bichromatic edges — is bipartite
//! (red = `X`, blue = `Y`), so the §3.2 machinery finds a maximal set of
//! disjoint augmenting paths of length ≤ `2k−1` inside it
//! (`Aug(Ĝ, M, 2k−1)`). Any augmenting path w.r.t. `M∩Ê` in `Ĝ` is an
//! augmenting path w.r.t. `M` in `G` (Observation 3.11), and a length-`ℓ`
//! path survives the colouring with probability `2^{−ℓ}`
//! (Observation 3.12), so `2^{2k+1}(k+1)·ln k` iterations reach a
//! `(1−1/k)`-MCM w.h.p. (Lemma 3.14).
//!
//! The fixed iteration count is available via [`paper_iteration_bound`];
//! the default [`IterationPolicy::Adaptive`] stops early once iterations
//! stop making progress (convergence detection a deployment would
//! implement with an `O(Diameter)` converge-cast — every experiment
//! labels which policy produced its numbers).

use dam_congest::{BitSize, Context, Network, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph, Side};
use rand::RngExt;

use crate::bipartite::{exhaust_length, PhaseSide};
use crate::error::CoreError;
use crate::report::{matching_from_registers, AlgorithmReport, IterationPolicy};

/// Messages of the two-round colouring exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMsg {
    /// "My coin is red."
    Color {
        /// Red (`X`) or blue (`Y`).
        red: bool,
    },
    /// "I belong to `V̂`" (free, or matched over a bichromatic edge).
    InVhat {
        /// Membership flag.
        member: bool,
    },
}

impl BitSize for ColorMsg {
    fn bit_size(&self) -> usize {
        2
    }
}

/// Output of the colouring exchange, per node.
#[derive(Debug, Clone)]
pub struct ColorOutput {
    /// `Some(X)` for red `V̂` members, `Some(Y)` for blue ones, `None`
    /// outside `V̂`.
    pub side: PhaseSide,
    /// Port mask of `Ê` (bichromatic edges between `V̂` members).
    pub live: Vec<bool>,
}

/// The 2-round colouring protocol (lines 3–4 of Algorithm 4).
#[derive(Debug)]
pub struct ColorNode {
    matched_port: Option<Port>,
    red: bool,
    neighbor_red: Vec<bool>,
    neighbor_vhat: Vec<bool>,
    in_vhat: bool,
}

impl ColorNode {
    /// Fresh state; `matched_port` is the node's current matching port.
    #[must_use]
    pub fn new(degree: usize, matched_port: Option<Port>) -> ColorNode {
        ColorNode {
            matched_port,
            red: false,
            neighbor_red: vec![false; degree],
            neighbor_vhat: vec![false; degree],
            in_vhat: false,
        }
    }
}

impl Protocol for ColorNode {
    type Msg = ColorMsg;
    type Output = ColorOutput;

    fn on_start(&mut self, ctx: &mut Context<'_, ColorMsg>) {
        self.red = ctx.rng().random_bool(0.5);
        ctx.broadcast(ColorMsg::Color { red: self.red });
    }

    fn on_round(&mut self, ctx: &mut Context<'_, ColorMsg>, inbox: &[(Port, ColorMsg)]) {
        match ctx.round() {
            1 => {
                for &(port, msg) in inbox {
                    if let ColorMsg::Color { red } = msg {
                        self.neighbor_red[port] = red;
                    }
                }
                self.in_vhat = match self.matched_port {
                    None => true,
                    Some(p) => self.neighbor_red[p] != self.red,
                };
                ctx.broadcast(ColorMsg::InVhat { member: self.in_vhat });
            }
            _ => {
                for &(port, msg) in inbox {
                    if let ColorMsg::InVhat { member } = msg {
                        self.neighbor_vhat[port] = member;
                    }
                }
                ctx.halt();
            }
        }
    }

    fn into_output(self) -> ColorOutput {
        let live = if self.in_vhat {
            (0..self.neighbor_red.len())
                .map(|p| self.neighbor_vhat[p] && self.neighbor_red[p] != self.red)
                .collect()
        } else {
            vec![false; self.neighbor_red.len()]
        };
        let side = self.in_vhat.then_some(if self.red { Side::X } else { Side::Y });
        ColorOutput { side, live }
    }
}

/// The paper's worst-case iteration count `⌈2^{2k+1}(k+1)·ln k⌉`
/// (Algorithm 4, line 2). Grows very fast: 67 for `k = 2`, 563 for
/// `k = 3`, 3550 for `k = 4`.
#[must_use]
pub fn paper_iteration_bound(k: usize) -> usize {
    assert!(k >= 2, "Algorithm 4 needs k >= 2");
    let k_f = k as f64;
    (2f64.powi(2 * k as i32 + 1) * (k_f + 1.0) * k_f.ln()).ceil().max(1.0) as usize
}

/// Configuration for [`general_mcm`].
#[derive(Debug, Clone, Copy)]
pub struct GeneralMcmConfig {
    /// Approximation parameter: the result is a `(1−1/k)`-MCM w.h.p.
    pub k: usize,
    /// Master seed.
    pub seed: u64,
    /// Outer-iteration policy (line 2 of Algorithm 4).
    pub policy: IterationPolicy,
    /// CONGEST budget: `congest_words · log₂ n` bits per message.
    pub congest_words: usize,
    /// Round-cost accounting.
    pub cost: dam_congest::CostModel,
}

impl Default for GeneralMcmConfig {
    fn default() -> GeneralMcmConfig {
        GeneralMcmConfig {
            k: 3,
            seed: 0,
            policy: IterationPolicy::Adaptive { patience: 12, cap: 100_000 },
            congest_words: 4,
            cost: dam_congest::CostModel::Unit,
        }
    }
}

impl GeneralMcmConfig {
    /// The faithful configuration: the paper's fixed iteration count.
    #[must_use]
    pub fn faithful(k: usize, seed: u64) -> GeneralMcmConfig {
        GeneralMcmConfig {
            k,
            seed,
            policy: IterationPolicy::Fixed(paper_iteration_bound(k)),
            ..GeneralMcmConfig::default()
        }
    }
}

/// Computes a `(1−1/k)`-approximate maximum-cardinality matching of an
/// arbitrary graph (Algorithm 4, Theorem 3.15).
///
/// # Errors
/// Simulation or register-consistency failure.
///
/// # Example
/// ```
/// use dam_core::general::{general_mcm, GeneralMcmConfig};
/// use dam_graph::generators;
///
/// let g = generators::cycle(30); // even ring: perfect matching = 15
/// let r = general_mcm(&g, &GeneralMcmConfig { k: 3, seed: 5, ..Default::default() }).unwrap();
/// assert!(r.matching.size() >= 10); // ≥ (1 - 1/3) · 15
/// ```
pub fn general_mcm(g: &Graph, config: &GeneralMcmConfig) -> Result<AlgorithmReport, CoreError> {
    assert!(config.k >= 1, "k must be positive");
    let n = g.node_count();
    let sim = SimConfig::congest_for(n, config.congest_words).seed(config.seed).cost(config.cost);
    let mut net = Network::new(g, sim);
    let mut registers: Vec<Option<EdgeId>> = vec![None; n];
    let mut iterations = 0usize;
    let mut fruitless = 0usize;
    let cap = config.policy.cap();
    while iterations < cap {
        iterations += 1;
        // Lines 3–4: colour and carve out Ĝ.
        let colors = net.run(|v, graph| {
            let matched_port = registers[v]
                .map(|e| graph.port_of_edge(v, e).expect("register points at incident edge"));
            ColorNode::new(graph.degree(v), matched_port)
        })?;
        let sides: Vec<PhaseSide> = colors.outputs.iter().map(|o| o.side).collect();
        let live: Vec<Vec<bool>> = colors.outputs.into_iter().map(|o| o.live).collect();
        // Line 5: Aug(Ĝ, M, 2k−1), shortest lengths first.
        let before = registers.iter().flatten().count();
        let mut l = 1;
        while l < 2 * config.k {
            exhaust_length(&mut net, g, &sides, &live, &mut registers, l, usize::MAX)?;
            l += 2;
        }
        let after = registers.iter().flatten().count();
        match config.policy {
            IterationPolicy::Fixed(_) => {}
            IterationPolicy::Adaptive { patience, .. } => {
                if after == before {
                    fruitless += 1;
                    if fruitless >= patience {
                        break;
                    }
                } else {
                    fruitless = 0;
                }
            }
        }
    }
    let matching = matching_from_registers(g, &registers)?;
    Ok(AlgorithmReport { matching, stats: net.totals(), iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::{blossom, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_ratio(g: &Graph, k: usize, seed: u64) {
        let r = general_mcm(g, &GeneralMcmConfig { k, seed, ..Default::default() }).unwrap();
        r.matching.validate(g).unwrap();
        let opt = blossom::maximum_matching_size(g);
        assert!(
            r.matching.size() as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9,
            "{} < (1-1/{k})·{opt}",
            r.matching.size()
        );
    }

    #[test]
    fn iteration_bound_formula() {
        assert_eq!(paper_iteration_bound(2), 67);
        assert_eq!(paper_iteration_bound(3), 563);
        assert!(paper_iteration_bound(4) > 3000);
    }

    #[test]
    fn ratio_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(61);
        for trial in 0..6 {
            let g = generators::gnp(24, 0.15, &mut rng);
            assert_ratio(&g, 2, trial);
            assert_ratio(&g, 3, trial);
        }
    }

    #[test]
    fn handles_odd_structures() {
        assert_ratio(&generators::cycle(9), 3, 1);
        assert_ratio(&generators::flower(3), 3, 2);
        assert_ratio(&generators::complete(9), 2, 3);
    }

    #[test]
    fn even_ring_approximation() {
        // Footnote 1: exact needs Ω(n), but (1−1/k) is reachable fast.
        let g = generators::cycle(40);
        assert_ratio(&g, 4, 7);
    }

    #[test]
    fn colouring_produces_valid_bipartition() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = generators::gnp(30, 0.2, &mut rng);
        let mut net = Network::new(&g, SimConfig::local().seed(3));
        let out = net.run(|v, graph| ColorNode::new(graph.degree(v), None)).unwrap();
        for v in g.nodes() {
            let o = &out.outputs[v];
            assert!(o.side.is_some(), "free nodes always join V̂");
            for (p, _, _) in g.incident(v) {
                if o.live[p] {
                    let u = g.port(v, p).0;
                    // Live edges are bichromatic and mutual.
                    assert_ne!(out.outputs[v].side, out.outputs[u].side);
                    let q = g.port_of_edge(u, g.port(v, p).1).unwrap();
                    assert!(out.outputs[u].live[q], "liveness must be symmetric");
                }
            }
        }
    }

    #[test]
    fn faithful_policy_matches_paper_bound() {
        let g = generators::path(6);
        let cfg = GeneralMcmConfig::faithful(2, 9);
        let r = general_mcm(&g, &cfg).unwrap();
        assert_eq!(r.iterations, paper_iteration_bound(2));
        assert_eq!(r.matching.size(), blossom::maximum_matching_size(&g));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(81);
        let g = generators::gnp(18, 0.2, &mut rng);
        let cfg = GeneralMcmConfig { k: 2, seed: 13, ..Default::default() };
        let a = general_mcm(&g, &cfg).unwrap();
        let b = general_mcm(&g, &cfg).unwrap();
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
    }

    #[test]
    fn empty_graph() {
        let g = dam_graph::Graph::builder(3).build().unwrap();
        let r = general_mcm(&g, &GeneralMcmConfig::default()).unwrap();
        assert_eq!(r.matching.size(), 0);
    }
}
