//! Algorithm results: validated matchings plus cost accounting.

use dam_congest::TotalStats;
use dam_graph::{EdgeId, Graph, GraphError, Matching, NodeId, Topology};

/// The result of running a distributed matching algorithm.
#[derive(Debug, Clone)]
pub struct AlgorithmReport {
    /// The computed matching (validated against the input graph).
    pub matching: Matching,
    /// Rounds/messages/bits across every phase of the algorithm.
    pub stats: TotalStats,
    /// Outer iterations executed (meaning is algorithm-specific: Luby
    /// iterations, Algorithm 4 sampling rounds, Algorithm 5 improvement
    /// steps, ...).
    pub iterations: usize,
}

impl AlgorithmReport {
    /// Approximation ratio against a known optimum size (cardinality).
    ///
    /// Returns 1.0 when the optimum is 0.
    #[must_use]
    pub fn ratio_vs(&self, optimum: usize) -> f64 {
        if optimum == 0 {
            1.0
        } else {
            self.matching.size() as f64 / optimum as f64
        }
    }

    /// Approximation ratio against a known optimum weight.
    ///
    /// Returns 1.0 when the optimum is 0.
    #[must_use]
    pub fn weight_ratio_vs(&self, g: &Graph, optimum: f64) -> f64 {
        if optimum <= 0.0 {
            1.0
        } else {
            self.matching.weight(g) / optimum
        }
    }
}

/// How a driver decides when to stop iterating.
///
/// The paper's theorems use fixed worst-case iteration counts (e.g.
/// Algorithm 4's `2^{2k+1}(k+1) ln k`); real deployments detect
/// convergence with an `O(Diameter)` converge-cast. Both are available;
/// every experiment records which policy produced its numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationPolicy {
    /// Run exactly this many iterations (the faithful worst-case bound).
    Fixed(usize),
    /// Stop after `patience` consecutive iterations with no progress
    /// (and never exceed `cap`). Models convergence detection; `cap`
    /// guards against pathological non-progress.
    Adaptive {
        /// Fruitless iterations tolerated before stopping.
        patience: usize,
        /// Hard iteration cap.
        cap: usize,
    },
}

impl IterationPolicy {
    /// The hard upper bound on iterations under this policy.
    #[must_use]
    pub fn cap(&self) -> usize {
        match *self {
            IterationPolicy::Fixed(n) => n,
            IterationPolicy::Adaptive { cap, .. } => cap,
        }
    }
}

/// Assembles a [`Matching`] from per-node output registers (§2's output
/// convention) and cross-validates them: if `v` points at edge `e`, the
/// other endpoint of `e` must point back at `e`.
///
/// # Errors
/// Returns [`GraphError::InconsistentMatching`] if the registers disagree,
/// or the underlying matching-construction error.
pub fn matching_from_registers(
    g: &dyn Topology,
    registers: &[Option<EdgeId>],
) -> Result<Matching, GraphError> {
    assert_eq!(registers.len(), g.node_count(), "one register per node");
    let mut edges = Vec::new();
    for (v, &reg) in registers.iter().enumerate() {
        if let Some(e) = reg {
            if e >= g.edge_count() {
                return Err(GraphError::EdgeOutOfRange { edge: e, m: g.edge_count() });
            }
            let u = g.other_endpoint(e, v);
            if registers[u] != Some(e) {
                return Err(GraphError::InconsistentMatching { node: u as NodeId });
            }
            if v < u {
                edges.push(e);
            }
        }
    }
    Matching::from_edges_on(g, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::generators;

    #[test]
    fn registers_roundtrip() {
        let g = generators::path(4);
        let regs = vec![Some(0), Some(0), Some(2), Some(2)];
        let m = matching_from_registers(&g, &regs).unwrap();
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn registers_detect_disagreement() {
        let g = generators::path(4);
        // Node 1 claims edge 1 but node 2 claims edge 2.
        let regs = vec![None, Some(1), Some(2), Some(2)];
        assert!(matching_from_registers(&g, &regs).is_err());
    }

    #[test]
    fn ratio_helpers() {
        let g = generators::path(4);
        let m = Matching::from_edges(&g, [0]).unwrap();
        let r = AlgorithmReport { matching: m, stats: TotalStats::default(), iterations: 1 };
        assert!((r.ratio_vs(2) - 0.5).abs() < 1e-12);
        assert!((r.ratio_vs(0) - 1.0).abs() < 1e-12);
        assert!((r.weight_ratio_vs(&g, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn policy_caps() {
        assert_eq!(IterationPolicy::Fixed(7).cap(), 7);
        assert_eq!(IterationPolicy::Adaptive { patience: 2, cap: 99 }.cap(), 99);
    }
}
