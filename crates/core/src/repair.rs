//! Matching repair: self-stabilization after crashes and register damage.
//!
//! A fault-free run of any algorithm in this crate ends with symmetric
//! output registers (§2's convention: `v` stores its matched edge, and
//! the other endpoint stores the same edge). Crashes break that
//! invariant in two ways:
//!
//! - **dangling edges** — a crashed node's partner still points at their
//!   shared edge, but the edge no longer has two live endpoints;
//! - **inconsistent registers** — a node crashed mid-handshake, leaving
//!   one endpoint committed and the other free (or pointing elsewhere).
//!
//! This module restores a valid — and locally maximal — matching among
//! the survivors in two steps:
//!
//! 1. [`sanitize_registers`]: a *local* cross-validation pass. A node
//!    keeps its register only if the claimed edge exists, is incident to
//!    it, and its partner is alive and points back at the same edge.
//!    Everything else is dissolved; in particular a crashed node's
//!    partner is freed. What remains is the **surviving consistent
//!    matching** — provably a valid matching.
//! 2. [`repair_matching`]: the survivors re-run Israeli–Itai
//!    ([`crate::israeli_itai`]) on the *residual graph* (live nodes,
//!    minus already-matched ones), wrapped in the resilient transport
//!    ([`dam_congest::transport::Resilient`]) so the repair itself
//!    tolerates message loss, duplication and reordering. Matched
//!    survivors only re-announce their match and halt; free survivors
//!    compete for the remaining edges. Since a committed match is never
//!    released, the repaired matching always **contains** the surviving
//!    consistent matching — repair can only grow it.
//!
//! [`self_healing_mm`] packages the full pipeline: run Israeli–Itai
//! under an adversarial [`FaultPlan`] (over the resilient transport),
//! then sanitize and repair, returning the final matching with
//! per-phase cost accounting. It is now a thin shim over the unified
//! runtime ([`crate::runtime::run_mm`]); new code should drive the
//! runtime directly.

use dam_congest::transport::TransportCfg;
use dam_congest::{FaultPlan, RunStats, SimConfig};
use dam_graph::{BitSet, EdgeId, Graph, Matching, NodeId, Topology};

use crate::error::CoreError;
use crate::runtime::{run_mm, IsraeliItai, RuntimeConfig};

/// The result of [`sanitize_registers`]: cross-validated registers plus
/// an accounting of what was kept and what was dissolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sanitized {
    /// Registers after validation: `Some(e)` only where both endpoints
    /// of `e` are alive and agree.
    pub registers: Vec<Option<EdgeId>>,
    /// Edges of the surviving consistent matching.
    pub surviving: usize,
    /// Distinct claimed edges (or out-of-range claims) that failed
    /// validation and were dissolved.
    pub dissolved: usize,
}

/// Cross-validates per-node match registers against the graph and a
/// liveness vector (step 1 of the module pipeline).
///
/// A register entry `registers[v] = Some(e)` survives iff all of:
/// `v` is alive, `e` is a real edge incident to `v`, the other endpoint
/// `u` is alive, and `registers[u] == Some(e)`. Every other claim is
/// cleared. The surviving entries form a valid matching by construction
/// (each node claims at most one edge).
///
/// # Panics
/// Panics if `registers` or `alive` is not one entry per node.
#[must_use]
pub fn sanitize_registers(g: &Graph, registers: &[Option<EdgeId>], alive: &[bool]) -> Sanitized {
    sanitize_registers_on(g, registers, &BitSet::from_bools(alive))
}

/// The canonical entry of [`sanitize_registers`]: cross-validates on
/// any [`Topology`] with the liveness mask as a word-packed [`BitSet`]
/// — the representation the runtime pipeline and checkpoint codec
/// share.
///
/// # Panics
/// Panics if `registers` or `alive` is not one entry per node.
#[must_use]
pub fn sanitize_registers_on(
    g: &dyn Topology,
    registers: &[Option<EdgeId>],
    alive: &BitSet,
) -> Sanitized {
    let n = g.node_count();
    assert_eq!(registers.len(), n, "one register per node");
    assert_eq!(alive.len(), n, "one liveness flag per node");
    let mut out = vec![None; n];
    let mut claimed = BitSet::new(g.edge_count());
    let mut bogus_claims = 0usize;
    let mut surviving = 0usize;
    for v in 0..n {
        let Some(e) = registers[v] else { continue };
        if e >= g.edge_count() {
            bogus_claims += 1;
            continue;
        }
        claimed.set(e, true);
        let (a, b) = g.endpoints(e);
        if v != a && v != b {
            continue;
        }
        let u = g.other_endpoint(e, v);
        let keep = alive[v] && alive[u] && registers[u] == Some(e);
        if keep {
            out[v] = Some(e);
            if v < u {
                surviving += 1;
            }
        }
    }
    let dissolved = bogus_claims + claimed.count_ones().saturating_sub(surviving);
    Sanitized { registers: out, surviving, dissolved }
}

/// Configuration of the distributed repair phase.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Master seed of the repair run (phase 1 of [`self_healing_mm`]
    /// uses the same seed on a separate [`dam_congest::Network`]).
    pub seed: u64,
    /// Transport tuning for both phases.
    pub transport: TransportCfg,
    /// Round guard for each phase.
    pub max_rounds: usize,
}

impl Default for RepairConfig {
    fn default() -> RepairConfig {
        RepairConfig { seed: 0, transport: TransportCfg::default(), max_rounds: 500_000 }
    }
}

/// The result of a repair pass.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The repaired matching: valid, contains the surviving consistent
    /// matching, and (w.h.p.) maximal on the residual graph.
    pub matching: Matching,
    /// Edges of the surviving consistent matching (kept by sanitize).
    pub surviving: usize,
    /// Claimed edges dissolved by sanitize.
    pub dissolved: usize,
    /// Edges added by the Israeli–Itai repair on the residual graph.
    pub added: usize,
    /// Cost of the distributed repair run.
    pub stats: RunStats,
}

/// Sanitizes damaged registers and re-runs localized Israeli–Itai on
/// the residual graph (steps 1 + 2 of the module pipeline).
///
/// This is a thin shim over the runtime's repair engine,
/// [`crate::runtime::repair_registers`], which generalizes it to any
/// [`crate::runtime::Algorithm`].
///
/// `faults` applies to the repair run itself and must not contain
/// crashes — the dead are given by `alive`; use loss/duplication/
/// reordering to exercise repair under an unreliable network. Live
/// nodes start knowing which of their neighbours are dead (in the
/// self-healing pipeline the transport's failure detector told them
/// during phase 1), so repair needs no extra detection latency for
/// already-known deaths.
///
/// # Errors
/// Propagates simulator errors; the final register assembly cannot fail
/// for crash-free repair plans (survivors finish with symmetric
/// registers).
///
/// # Panics
/// Panics if `registers`/`alive` are not one entry per node or if
/// `faults` contains crashes.
pub fn repair_matching(
    g: &Graph,
    registers: &[Option<EdgeId>],
    alive: &[bool],
    faults: &FaultPlan,
    cfg: &RepairConfig,
) -> Result<RepairReport, CoreError> {
    crate::runtime::repair_registers(
        &IsraeliItai,
        g,
        registers,
        &BitSet::from_bools(alive),
        faults,
        Some(cfg.transport),
        None,
        SimConfig::local().seed(cfg.seed).max_rounds(cfg.max_rounds),
    )
}

/// The result of the full self-healing pipeline.
#[derive(Debug, Clone)]
pub struct SelfHealingReport {
    /// The final matching among surviving nodes.
    pub matching: Matching,
    /// Nodes dead at the end (crashed and never recovered).
    pub dead: Vec<NodeId>,
    /// Edges of the surviving consistent matching after phase 1.
    pub surviving: usize,
    /// Claimed edges dissolved by sanitize after phase 1.
    pub dissolved: usize,
    /// Edges added back by the repair phase.
    pub added: usize,
    /// Cost of phase 1 (faulty Israeli–Itai over the transport).
    pub phase1: RunStats,
    /// Cost of phase 2 (repair over the transport).
    pub repair: RunStats,
}

/// Runs the full self-healing pipeline: Israeli–Itai maximal matching
/// over the resilient transport under `plan`, then register sanitation
/// and matching repair on the residual graph (with the plan's
/// link-level faults still active, but no further crashes).
///
/// **Deprecated in favor of [`crate::runtime::run_mm`]** — this is now a
/// thin shim over the unified runtime (a [`RuntimeConfig`] with the
/// `repair` layer on), kept for source compatibility and bit-identical
/// to the pre-runtime implementation (`tests/runtime_equiv.rs`). New
/// code should build a [`RuntimeConfig`] directly.
///
/// The returned matching is always valid; it contains the surviving
/// consistent matching of phase 1; and (w.h.p.) no edge between two
/// surviving unmatched nodes remains — the matching is maximal on the
/// residual graph.
///
/// # Errors
/// Propagates simulator errors from either phase.
pub fn self_healing_mm(
    g: &Graph,
    plan: &FaultPlan,
    cfg: &RepairConfig,
) -> Result<SelfHealingReport, CoreError> {
    // The legacy repair phase kept the plan's link-level channels except
    // corruption; preserve that exact plan so replays stay bit-identical.
    let repair_faults = FaultPlan {
        loss: plan.loss,
        dup: plan.dup,
        reorder: plan.reorder,
        links: plan.links.clone(),
        ..FaultPlan::default()
    };
    let rep = run_mm(
        &IsraeliItai,
        g,
        &RuntimeConfig::new()
            .sim(SimConfig::local().seed(cfg.seed).max_rounds(cfg.max_rounds))
            .transport(cfg.transport)
            .faults(plan.clone())
            .repair(true)
            .repair_faults(repair_faults),
    )?;

    Ok(SelfHealingReport {
        matching: rep.matching,
        dead: rep.excluded,
        surviving: rep.surviving,
        dissolved: rep.dissolved,
        added: rep.added,
        phase1: rep.phase1,
        repair: rep.repair.expect("self-healing pipeline always runs the repair phase"),
    })
}

/// Checks that `m` is maximal on the residual graph: no edge joins two
/// alive, unmatched nodes. (Exposed for tests and experiments.)
///
/// This is [`crate::maintain::is_maximal_on_present`] specialized to
/// the crash-only setting where every edge is present.
#[must_use]
pub fn is_maximal_on_residual(g: &Graph, m: &Matching, alive: &[bool]) -> bool {
    crate::maintain::is_maximal_on_present(g, m, alive, &vec![true; g.edge_count()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::israeli_itai::israeli_itai;
    use dam_graph::generators;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn sanitize_frees_partner_of_dead_node() {
        let g = generators::path(4); // edges 0:(0,1) 1:(1,2) 2:(2,3)
        let regs = vec![Some(0), Some(0), Some(2), Some(2)];
        let mut alive = vec![true; 4];
        alive[0] = false;
        let sane = sanitize_registers(&g, &regs, &alive);
        // Edge 0 is dangling (node 0 dead): node 1 must be freed.
        assert_eq!(sane.registers, vec![None, None, Some(2), Some(2)]);
        assert_eq!(sane.surviving, 1);
        assert_eq!(sane.dissolved, 1);
    }

    #[test]
    fn sanitize_dissolves_inconsistent_and_bogus_claims() {
        let g = generators::path(4);
        // Node 1 claims edge 1, node 2 claims edge 2 (disagreement),
        // node 3 agrees with node 2, node 0 claims an out-of-range edge.
        let regs = vec![Some(9), Some(1), Some(2), Some(2)];
        let alive = vec![true; 4];
        let sane = sanitize_registers(&g, &regs, &alive);
        assert_eq!(sane.registers, vec![None, None, Some(2), Some(2)]);
        assert_eq!(sane.surviving, 1);
        assert_eq!(sane.dissolved, 2); // edge 1 + the bogus claim
    }

    #[test]
    fn repair_restores_maximality_and_keeps_survivors() {
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..10 {
            let g = generators::gnp(40, 0.12, &mut rng);
            let base = israeli_itai(&g, trial).unwrap();
            let mut regs: Vec<Option<EdgeId>> =
                (0..g.node_count()).map(|v| base.matching.matched_edge(v)).collect();
            // Kill ~15% of nodes; also corrupt one survivor's register.
            let alive: Vec<bool> = (0..g.node_count()).map(|_| !rng.random_bool(0.15)).collect();
            if let Some(v) = (0..g.node_count()).find(|&v| alive[v] && regs[v].is_none()) {
                if g.degree(v) > 0 {
                    regs[v] = Some(g.port(v, 0).1); // one-sided claim
                }
            }
            let sane = sanitize_registers(&g, &regs, &alive);
            let report = repair_matching(
                &g,
                &regs,
                &alive,
                &FaultPlan::default(),
                &RepairConfig { seed: 100 + trial, ..RepairConfig::default() },
            )
            .unwrap();
            report.matching.validate(&g).unwrap();
            // Monotone: every surviving consistent edge is still matched.
            for v in 0..g.node_count() {
                if let Some(e) = sane.registers[v] {
                    assert!(report.matching.contains(e), "trial {trial}: surviving edge lost");
                }
            }
            assert!(report.matching.size() >= sane.surviving);
            assert!(
                is_maximal_on_residual(&g, &report.matching, &alive),
                "trial {trial}: repair left an augmentable edge"
            );
        }
    }

    #[test]
    fn self_healing_under_loss_and_crashes() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp(48, 0.1, &mut rng);
        let crashes: Vec<(NodeId, usize)> = vec![(3, 5), (17, 9), (31, 2)];
        let plan = FaultPlan { crashes, loss: 0.05, ..FaultPlan::default() };
        let report = self_healing_mm(&g, &plan, &RepairConfig::default()).unwrap();
        report.matching.validate(&g).unwrap();
        assert_eq!(report.dead, vec![3, 17, 31]);
        let alive: Vec<bool> = (0..g.node_count()).map(|v| !report.dead.contains(&v)).collect();
        assert!(is_maximal_on_residual(&g, &report.matching, &alive));
        // No dead node is matched.
        for &v in &report.dead {
            assert!(report.matching.is_free(v));
        }
        assert_eq!(report.matching.size(), report.surviving + report.added);
    }

    #[test]
    fn self_healing_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::gnp(30, 0.15, &mut rng);
        let plan =
            FaultPlan { crashes: vec![(5, 4)], loss: 0.1, dup: 0.05, ..FaultPlan::default() };
        let cfg = RepairConfig { seed: 42, ..RepairConfig::default() };
        let a = self_healing_mm(&g, &plan, &cfg).unwrap();
        let b = self_healing_mm(&g, &plan, &cfg).unwrap();
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
        assert_eq!((a.phase1, a.repair), (b.phase1, b.repair));
    }

    #[test]
    fn crash_recovered_nodes_rejoin_via_repair() {
        // Node 1 of a path crashes and recovers: phase 1 leaves it
        // unmatched (its fresh incarnation is quarantined), but repair
        // runs on the full survivor set, so it can be matched again.
        let g = generators::path(6);
        let plan = FaultPlan::crashes(vec![(1, 4)]).with_recoveries(vec![(1, 30)]);
        let report = self_healing_mm(&g, &plan, &RepairConfig::default()).unwrap();
        report.matching.validate(&g).unwrap();
        assert!(report.dead.is_empty());
        let alive = vec![true; 6];
        assert!(is_maximal_on_residual(&g, &report.matching, &alive));
    }
}
