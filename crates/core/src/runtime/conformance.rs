//! Cross-algorithm conformance registry: the machine-checkable contract
//! every portfolio [`Algorithm`](super::Algorithm) implementor must
//! honor.
//!
//! `tests/algo_conformance.rs` drives one test surface over
//! [`registry`]: bit-identity to the legacy code path (the `golden`
//! replica) across seeds × threads × backends, validity and
//! family-invariant checks at quiescent points ([`Kind`]), certify →
//! repair → re-verify round-trips, resume idempotence, and telemetry
//! non-perturbation. A future implementor (Suitor, Huang–Su MWM) gets
//! all of it by adding one [`Entry`] here.
//!
//! Goldens are *legacy replicas*: they reproduce, instruction for
//! instruction, the driver loops as they existed before the port onto
//! the runtime trait, directly on a [`Network`]. That is the same
//! golden-replica discipline as `tests/runtime_equiv.rs` — the shims in
//! `bipartite.rs`/`weighted/mod.rs` delegate to [`super::run_mm`], so
//! an independent record of the old behaviour is needed to prove the
//! delegation is bit-identical.

use dam_congest::{Network, SimConfig};
use dam_graph::{hopcroft_karp, maximal, mwm, EdgeId, Graph, GraphError, Matching};

use super::AlgoSpec;
use crate::bipartite::{exhaust_length, PhaseSide};
use crate::error::CoreError;
use crate::israeli_itai::IiNode;
use crate::luby::LubyMatchingNode;
use crate::report::matching_from_registers;
use crate::weighted::local_max::LocalMaxNode;
use crate::weighted::{GainExchange, WeightedMwmConfig, WrapApply};

/// The approximation family an implementor belongs to — what "correct"
/// means for its output at a quiescent, fault-free point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kind {
    /// A maximal matching (the `½`-MCM guarantee).
    Maximal,
    /// A `(1−1/k)`-approximate maximum-cardinality matching on a
    /// bipartite input.
    BipartiteApprox {
        /// The family parameter `k`.
        k: usize,
    },
    /// A `(½−ε)`-approximate maximum-weight matching.
    WeightedHalf {
        /// The family slack `ε`.
        eps: f64,
    },
}

impl Kind {
    /// Checks the family invariant on a quiescent fault-free output:
    /// the matching must validate, and meet its family's bound against
    /// the exact oracle ([`maximal::is_maximal`],
    /// [`hopcroft_karp::maximum_bipartite_matching_size`], or
    /// [`mwm::maximum_weight`]).
    ///
    /// # Errors
    /// A human-readable description of the violated bound.
    pub fn check_quiescent(&self, g: &Graph, m: &Matching) -> Result<(), String> {
        m.validate(g).map_err(|e| format!("invalid matching: {e}"))?;
        match *self {
            Kind::Maximal => {
                if !maximal::is_maximal(g, m) {
                    return Err("matching is not maximal".to_string());
                }
            }
            Kind::BipartiteApprox { k } => {
                let opt = hopcroft_karp::maximum_bipartite_matching_size(g);
                if k * m.size() < (k - 1) * opt {
                    return Err(format!("ratio violated: {} < (1-1/{k})·{opt}", m.size()));
                }
            }
            Kind::WeightedHalf { eps } => {
                let opt = mwm::maximum_weight(g);
                let w = m.weight(g);
                if w + 1e-9 < (0.5 - eps) * opt {
                    return Err(format!("weight ratio violated: {w} < (1/2-{eps})·{opt}"));
                }
            }
        }
        Ok(())
    }
}

/// A legacy driver replica: takes the input graph and the simulator
/// configuration, returns the per-node register file (`None` =
/// unmatched) or the driver's error.
pub type Golden = fn(&Graph, SimConfig) -> Result<Vec<Option<EdgeId>>, CoreError>;

/// One registered implementor: everything the conformance harness needs
/// to exercise its full contract.
pub struct Entry {
    /// Display name; CI's `ALGO_CONFORMANCE` filter matches on it by
    /// prefix, and failures report it.
    pub name: &'static str,
    /// The selector that builds the implementor under test.
    pub spec: AlgoSpec,
    /// The approximation family of its output.
    pub kind: Kind,
    /// Whether the implementor requires a bipartite input graph (the
    /// harness then generates bipartite corpora).
    pub bipartite_input: bool,
    /// Whether [`super::Algorithm::resume`] from a quiescent fault-free
    /// state is the identity on registers. True for the maximal and
    /// bipartite families (no augmenting path remains); false for the
    /// weighted driver, whose resume contract is weight monotonicity —
    /// further gain iterations may legitimately rewrap edges.
    pub resume_fixpoint: bool,
    /// The legacy code-path replica: the pre-port driver loop, run
    /// directly on a [`Network`]. [`super::run_mm`] with the same
    /// `SimConfig` (and a default [`super::RuntimeConfig`] otherwise)
    /// must reproduce its registers bit for bit.
    pub golden: Golden,
}

/// The portfolio's conformance registry — one [`Entry`] per implementor
/// configuration under test. New implementors are added here and
/// nowhere else.
#[must_use]
pub fn registry() -> Vec<Entry> {
    vec![
        Entry {
            name: "israeli-itai",
            spec: AlgoSpec::IsraeliItai,
            kind: Kind::Maximal,
            bipartite_input: false,
            resume_fixpoint: true,
            golden: golden_israeli_itai,
        },
        Entry {
            name: "bipartite-k2",
            spec: AlgoSpec::Bipartite { k: 2 },
            kind: Kind::BipartiteApprox { k: 2 },
            bipartite_input: true,
            resume_fixpoint: true,
            golden: golden_bipartite_k2,
        },
        Entry {
            name: "bipartite-k3",
            spec: AlgoSpec::Bipartite { k: 3 },
            kind: Kind::BipartiteApprox { k: 3 },
            bipartite_input: true,
            resume_fixpoint: true,
            golden: golden_bipartite_k3,
        },
        Entry {
            name: "weighted",
            spec: AlgoSpec::Weighted { eps: 0.1 },
            kind: Kind::WeightedHalf { eps: 0.1 },
            bipartite_input: false,
            resume_fixpoint: false,
            golden: golden_weighted,
        },
        Entry {
            name: "luby-matching",
            spec: AlgoSpec::LubyMatching,
            kind: Kind::Maximal,
            bipartite_input: false,
            resume_fixpoint: true,
            golden: golden_luby_matching,
        },
    ]
}

/// [`registry`] filtered by the `ALGO_CONFORMANCE` environment variable
/// (prefix match on [`Entry::name`]; unset or empty keeps everything).
/// CI's `algo-conformance` matrix leg sets it so a portfolio regression
/// names the algorithm in the failing job title.
#[must_use]
pub fn filtered_registry() -> Vec<Entry> {
    let filter = std::env::var("ALGO_CONFORMANCE").unwrap_or_default();
    registry().into_iter().filter(|e| e.name.starts_with(&filter)).collect()
}

fn golden_israeli_itai(g: &Graph, sim: SimConfig) -> Result<Vec<Option<EdgeId>>, CoreError> {
    let mut net = Network::new(g, sim);
    let out = net.execute(|v, graph| IiNode::new(graph.degree(v)))?;
    Ok(out.outputs)
}

fn golden_bipartite(g: &Graph, sim: SimConfig, k: usize) -> Result<Vec<Option<EdgeId>>, CoreError> {
    let sides_raw = g.bipartition().ok_or(CoreError::Graph(GraphError::NotBipartite))?;
    let sides: Vec<PhaseSide> = sides_raw.iter().map(|&s| Some(s)).collect();
    let live: Vec<Vec<bool>> = g.nodes().map(|v| vec![true; g.degree(v)]).collect();
    let mut net = Network::new(g, sim);
    let mut registers: Vec<Option<EdgeId>> = vec![None; g.node_count()];
    let mut l = 1;
    while l < 2 * k {
        exhaust_length(&mut net, g, &sides, &live, &mut registers, l, usize::MAX)?;
        l += 2;
    }
    matching_from_registers(g, &registers)?;
    Ok(registers)
}

fn golden_bipartite_k2(g: &Graph, sim: SimConfig) -> Result<Vec<Option<EdgeId>>, CoreError> {
    golden_bipartite(g, sim, 2)
}

fn golden_bipartite_k3(g: &Graph, sim: SimConfig) -> Result<Vec<Option<EdgeId>>, CoreError> {
    golden_bipartite(g, sim, 3)
}

fn golden_weighted(g: &Graph, sim: SimConfig) -> Result<Vec<Option<EdgeId>>, CoreError> {
    let mut net = Network::new(g, sim);
    let mut registers: Vec<Option<EdgeId>> = vec![None; g.node_count()];
    let iterations = WeightedMwmConfig::default().iterations();
    for _ in 0..iterations {
        let gains = net
            .execute(|v, graph| {
                let matched_port = registers[v]
                    .map(|e| graph.port_of_edge(v, e).expect("register points at incident edge"));
                let my_weight = registers[v].map_or(0.0, |e| graph.weight(e));
                GainExchange::new(graph.degree(v), matched_port, my_weight)
            })?
            .outputs;
        let m_prime = net.execute(|v, _| LocalMaxNode::new(gains[v].clone()))?.outputs;
        matching_from_registers(g, &m_prime)?;
        let out = net.execute(|v, graph| {
            let matched_port = registers[v]
                .map(|e| graph.port_of_edge(v, e).expect("register points at incident edge"));
            WrapApply { matched_port, register: registers[v], m_prime: m_prime[v] }
        })?;
        registers = out.outputs;
        matching_from_registers(g, &registers)?;
    }
    Ok(registers)
}

fn golden_luby_matching(g: &Graph, sim: SimConfig) -> Result<Vec<Option<EdgeId>>, CoreError> {
    let mut net = Network::new(g, sim);
    let out = net.execute(|v, graph| LubyMatchingNode::new(graph.degree(v)))?;
    Ok(out.outputs)
}
