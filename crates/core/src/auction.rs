//! The distributed auction algorithm for bipartite maximum-weight
//! matching (Bertsekas 1988).
//!
//! A natural companion to the paper's §1 job/server example: *bidders*
//! (the `X` side) bid for their most profitable *object* (`Y` side) at
//! current prices, raising the price by their profit margin plus `ε`;
//! objects always belong to their highest bidder. With ε-scaling this is
//! the classical price-based alternative to augmenting-path algorithms:
//! upon termination the assignment is within `n·ε` of the maximum weight
//! assignment (and exact for integer weights when `ε < 1/n`).
//!
//! The protocol here is the synchronous Jacobi-style auction: each round
//! every unassigned bidder bids, each object processes its bids and
//! answers its previous owner with an eviction notice. Messages carry a
//! price/bid (64-bit) — CONGEST-friendly. Round complexity is
//! pseudo-polynomial (`O(n·w_max/ε)` in the worst case), which is
//! exactly the trade-off against Theorem 3.10's machinery: better
//! weights per round on easy prices, no worst-case round guarantee —
//! measured, not hidden.
//!
//! Unlike true matching algorithms the auction may leave a bidder
//! unassigned only when it runs out of profitable objects, so the result
//! maximizes weight over assignments that leave no `ε`-profitable bid
//! unplayed.

use dam_congest::{BitSize, Context, Network, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph, GraphError, Side};
use rand::RngExt;

use crate::error::CoreError;
use crate::report::{matching_from_registers, AlgorithmReport};

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuctionMsg {
    /// A bidder offers `price` for the object behind the port.
    Bid {
        /// Offered price.
        price: f64,
    },
    /// The object evicts its previous owner; `price` is the new price.
    Evicted {
        /// The price that outbid the owner.
        price: f64,
    },
    /// The object confirms the bidder as its new owner at `price`.
    Won {
        /// The price paid.
        price: f64,
    },
    /// The object announces its current price (so outbid or waiting
    /// bidders re-evaluate their profits).
    Price {
        /// Current asking price.
        price: f64,
    },
}

impl BitSize for AuctionMsg {
    fn bit_size(&self) -> usize {
        2 + 64
    }
}

/// Per-node state.
#[derive(Debug)]
enum Role {
    /// An `X`-side bidder.
    Bidder {
        /// Latest known price per port.
        prices: Vec<f64>,
        /// The object (port) currently holding our bid, if assigned.
        assigned: Option<Port>,
        /// Whether anything changed since the last bid (event-driven
        /// bidding: no change, no message).
        dirty: bool,
    },
    /// A `Y`-side object.
    Object {
        /// Current price.
        price: f64,
        /// Current owner (port), if any.
        owner: Option<Port>,
    },
}

/// The auction protocol node.
#[derive(Debug)]
pub struct AuctionNode {
    role: Role,
    eps: f64,
    deadline: usize,
    matched_edge: Option<EdgeId>,
}

impl AuctionNode {
    /// Builds the state for a node on side `side` with the given bid
    /// increment and round deadline.
    #[must_use]
    pub fn new(side: Side, degree: usize, eps: f64, deadline: usize) -> AuctionNode {
        let role = match side {
            Side::X => Role::Bidder { prices: vec![0.0; degree], assigned: None, dirty: true },
            Side::Y => Role::Object { price: 0.0, owner: None },
        };
        AuctionNode { role, eps, deadline, matched_edge: None }
    }

    /// The bidder's best action: bid on the port maximizing
    /// `w(e) − price`, at the price that makes the runner-up equally
    /// attractive, plus ε.
    fn place_bid(&mut self, ctx: &mut Context<'_, AuctionMsg>) {
        let eps = self.eps;
        let Role::Bidder { prices, assigned, dirty } = &mut self.role else {
            return;
        };
        if assigned.is_some() || !*dirty {
            return;
        }
        *dirty = false;
        let mut best: Option<(f64, Port)> = None;
        let mut second = f64::NEG_INFINITY;
        for (p, &price) in prices.iter().enumerate() {
            let profit = ctx.edge_weight(p) - price;
            match best {
                None => best = Some((profit, p)),
                Some((bp, _)) if profit > bp => {
                    second = bp;
                    best = Some((profit, p));
                }
                Some(_) => second = second.max(profit),
            }
        }
        if let Some((profit, port)) = best {
            if profit > 0.0 {
                let margin = if second.is_finite() { (profit - second).max(0.0) } else { profit };
                let bid = prices[port] + margin + eps;
                ctx.send(port, AuctionMsg::Bid { price: bid });
            }
            // Otherwise: nothing profitable at current prices. A later
            // Evicted/Price event sets `dirty` again.
        }
    }
}

impl Protocol for AuctionNode {
    type Msg = AuctionMsg;
    type Output = Option<EdgeId>;

    fn on_start(&mut self, ctx: &mut Context<'_, AuctionMsg>) {
        self.place_bid(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, AuctionMsg>, inbox: &[(Port, AuctionMsg)]) {
        let round = ctx.round();
        match &mut self.role {
            Role::Bidder { prices, assigned, dirty } => {
                for &(port, msg) in inbox {
                    match msg {
                        AuctionMsg::Won { price } => {
                            *assigned = Some(port);
                            prices[port] = price;
                            self.matched_edge = Some(ctx.edge(port));
                        }
                        AuctionMsg::Evicted { price } => {
                            prices[port] = prices[port].max(price);
                            if *assigned == Some(port) {
                                *assigned = None;
                                self.matched_edge = None;
                            }
                            *dirty = true;
                        }
                        AuctionMsg::Price { price } => {
                            if price > prices[port] {
                                prices[port] = price;
                                *dirty = true; // our bid lost or is stale
                            }
                        }
                        AuctionMsg::Bid { .. } => unreachable!("bidders never receive bids"),
                    }
                }
                self.place_bid(ctx);
            }
            Role::Object { price, owner } => {
                // Pick the best bid, random tie-break.
                let mut best: Option<(f64, Port)> = None;
                let mut ties = 0u32;
                for &(port, msg) in inbox {
                    if let AuctionMsg::Bid { price: bid } = msg {
                        match best {
                            None => {
                                best = Some((bid, port));
                                ties = 1;
                            }
                            Some((bp, _)) if bid > bp => {
                                best = Some((bid, port));
                                ties = 1;
                            }
                            Some((bp, _)) if (bid - bp).abs() < 1e-12 => {
                                ties += 1;
                                if ctx.rng().random_range(0..ties) == 0 {
                                    best = Some((bid, port));
                                }
                            }
                            Some(_) => {}
                        }
                    }
                }
                if let Some((bid, port)) = best {
                    if bid > *price {
                        let prev = *owner;
                        *price = bid;
                        *owner = Some(port);
                        self.matched_edge = Some(ctx.edge(port));
                        ctx.send(port, AuctionMsg::Won { price: bid });
                        if let Some(prev) = prev {
                            if prev != port {
                                ctx.send(prev, AuctionMsg::Evicted { price: bid });
                            }
                        }
                        // Tell everyone else the new price (losing
                        // bidders must re-bid or drop out).
                        for p in ctx.ports() {
                            if p != port && Some(p) != prev {
                                ctx.send(p, AuctionMsg::Price { price: bid });
                            }
                        }
                    }
                }
            }
        }
        if round >= self.deadline {
            ctx.halt();
        }
    }

    fn into_output(self) -> Option<EdgeId> {
        self.matched_edge
    }
}

/// Configuration for [`auction_mwm`].
#[derive(Debug, Clone, Copy)]
pub struct AuctionConfig {
    /// Bid increment ε (for integer weights, `ε < 1/n` makes the result
    /// exact).
    pub eps: f64,
    /// Master seed (object tie-breaks).
    pub seed: u64,
    /// Round deadline (`None` = `⌈n·w_max/ε⌉ + n`, the pseudo-polynomial
    /// worst case).
    pub deadline: Option<usize>,
}

impl Default for AuctionConfig {
    fn default() -> AuctionConfig {
        AuctionConfig { eps: 0.01, seed: 0, deadline: None }
    }
}

/// Runs the distributed auction on a bipartite graph (`X` = bidders,
/// `Y` = objects).
///
/// # Errors
/// [`GraphError::NotBipartite`] (wrapped) without a recorded
/// bipartition; simulation errors.
///
/// # Example
/// ```
/// use dam_core::auction::{auction_mwm, AuctionConfig};
/// use dam_graph::{generators, hungarian};
/// use dam_graph::weights::{randomize_weights, WeightDist};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let base = generators::complete_bipartite(5, 5);
/// let g = randomize_weights(&base, WeightDist::Integer { max: 9 }, &mut rng);
/// let r = auction_mwm(&g, &AuctionConfig { eps: 0.05, seed: 1, ..Default::default() }).unwrap();
/// let opt = hungarian::maximum_weight_bipartite(&g);
/// assert!(r.matching.weight(&g) >= opt - 5.0 * 0.05 - 1e-9);
/// ```
pub fn auction_mwm(g: &Graph, config: &AuctionConfig) -> Result<AlgorithmReport, CoreError> {
    let sides = g.bipartition().ok_or(CoreError::Graph(GraphError::NotBipartite))?.to_vec();
    let w_max = g.edge_ids().map(|e| g.weight(e)).fold(0.0f64, f64::max);
    let n = g.node_count().max(1);
    let deadline = config.deadline.unwrap_or_else(|| {
        ((n as f64 * w_max / config.eps.max(1e-9)).ceil() as usize + n).min(5_000_000)
    });
    let mut net = Network::new(
        g,
        SimConfig::congest_for(g.node_count(), 8)
            .seed(config.seed)
            .max_rounds(deadline + 8)
            .quiesce_after(2),
    );
    let out =
        net.run(|v, graph| AuctionNode::new(sides[v], graph.degree(v), config.eps, deadline))?;
    let matching = matching_from_registers(g, &out.outputs)?;
    let iterations = usize::try_from(out.stats.rounds).unwrap_or(usize::MAX);
    Ok(AlgorithmReport { matching, stats: net.totals(), iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::weights::{randomize_weights, WeightDist};
    use dam_graph::{generators, hungarian};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn near_optimal_on_random_bipartite() {
        let mut rng = StdRng::seed_from_u64(121);
        for trial in 0..8u64 {
            let base = generators::bipartite_gnp(8, 8, 0.5, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 12 }, &mut rng);
            let r =
                auction_mwm(&g, &AuctionConfig { eps: 0.02, seed: trial, ..Default::default() })
                    .unwrap();
            r.matching.validate(&g).unwrap();
            let opt = hungarian::maximum_weight_bipartite(&g);
            let slack = g.node_count() as f64 * 0.02;
            assert!(
                r.matching.weight(&g) >= opt - slack - 1e-9,
                "trial {trial}: auction {} vs hungarian {opt}",
                r.matching.weight(&g)
            );
        }
    }

    #[test]
    fn exact_on_integer_weights_with_small_eps() {
        let mut rng = StdRng::seed_from_u64(122);
        for trial in 0..5u64 {
            let base = generators::complete_bipartite(6, 6);
            let g = randomize_weights(&base, WeightDist::Integer { max: 8 }, &mut rng);
            let eps = 1.0 / (2.0 * g.node_count() as f64);
            let r =
                auction_mwm(&g, &AuctionConfig { eps, seed: trial, ..Default::default() }).unwrap();
            let opt = hungarian::maximum_weight_bipartite(&g);
            assert!(
                (r.matching.weight(&g) - opt).abs() < 1e-6,
                "trial {trial}: {} vs {opt}",
                r.matching.weight(&g)
            );
        }
    }

    #[test]
    fn handles_unbalanced_and_sparse() {
        let mut rng = StdRng::seed_from_u64(123);
        let base = generators::bipartite_gnp(4, 10, 0.4, &mut rng);
        let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.5, hi: 3.0 }, &mut rng);
        let r =
            auction_mwm(&g, &AuctionConfig { eps: 0.05, seed: 1, ..Default::default() }).unwrap();
        r.matching.validate(&g).unwrap();
    }

    #[test]
    fn rejects_non_bipartite() {
        let g = generators::cycle(5);
        assert!(auction_mwm(&g, &AuctionConfig::default()).is_err());
    }

    #[test]
    fn empty_graph() {
        let mut g = dam_graph::Graph::builder(4).build().unwrap();
        g.compute_bipartition();
        let r = auction_mwm(&g, &AuctionConfig::default()).unwrap();
        assert_eq!(r.matching.size(), 0);
    }
}
