//! §4 Remark: `(1−ε)`-approximate maximum **weight** matching in the
//! LOCAL model — the distributed adaptation of Hougardy & Vinkemeier
//! (2006) the paper sketches (and Nieberg (2008) reported independently).
//!
//! The idea, from the paper: *"Using Algorithm 2, we look at all
//! augmentations of length `O(1/ε)` and calculate for each its 'gain'
//! (similar to the `w_M` weight). The augmentations are then partitioned
//! into classes, where the gain of augmentations in class `i` is at least
//! `2^{i−1}` and less than `2^i`. Then, an MIS algorithm is run
//! repeatedly over the conflict graph, taking into account only nodes
//! (i.e., augmentations) of the highest remaining class ... repeating
//! this procedure `O(1/ε)` times results in a `(1−ε)`-MWM."*
//!
//! **Augmentations** here generalize augmenting paths: an alternating
//! path whose first and last edges are unmatched, together with the
//! *stub* matched edges dangling at its endpoints (which leave the
//! matching — the `wrap` of §4 is the length-1 case), or an alternating
//! **cycle**. Its *gain* is `w(M ⊕ A) − w(M)`. A matching with no
//! positive-gain augmentation of unbounded length is exactly a maximum
//! weight matching, which gives this module its strongest test: run to
//! exhaustion with `L ≥ n` on a small graph and you must land on the
//! optimum.
//!
//! Like `generic`, this is a LOCAL-model algorithm: messages carry
//! subgraph descriptions and bids (Lemma 3.4 widths). Classes are
//! processed from the highest down, one Luby-style lottery per class,
//! winners applied at the end of the pass; the driver repeats passes
//! until no positive-gain augmentation survives (or a fixed `O(1/ε)`
//! budget, per the paper).

use std::collections::BTreeSet;

use dam_congest::{BitSize, Context, Network, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph, NodeId, Topology};
use rand::RngExt;

use crate::error::CoreError;
use crate::report::{matching_from_registers, AlgorithmReport};

/// Knowledge-base facts for the weighted LOCAL algorithm.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum WFact {
    /// Node `id` with its output register.
    Node {
        /// Node id.
        id: u32,
        /// Matched edge (or `None`).
        matched: Option<u32>,
    },
    /// Edge `id` = `(u, v)` with weight `w`.
    Edge {
        /// Edge id.
        id: u32,
        /// Endpoint.
        u: u32,
        /// Endpoint.
        v: u32,
        /// Weight.
        w: f64,
    },
    /// A bid for augmentation `key` in `(class, iter)`.
    Bid {
        /// Gain class being processed.
        class: i32,
        /// Luby iteration within the class.
        iter: u32,
        /// Lottery value.
        value: u64,
        /// Canonical node list (paths: ends canonical; cycles: rotated).
        key: Vec<u32>,
    },
    /// Augmentation `key` won in `(class, iter)`.
    Won {
        /// Gain class.
        class: i32,
        /// Luby iteration.
        iter: u32,
        /// Canonical node list.
        key: Vec<u32>,
    },
}

// f64 in facts: ordering via total_cmp for the BTreeSet.
impl Eq for WFact {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for WFact {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(f: &WFact) -> u8 {
            match f {
                WFact::Node { .. } => 0,
                WFact::Edge { .. } => 1,
                WFact::Bid { .. } => 2,
                WFact::Won { .. } => 3,
            }
        }
        match (self, other) {
            (WFact::Node { id: a, matched: ma }, WFact::Node { id: b, matched: mb }) => {
                (a, ma).cmp(&(b, mb))
            }
            (
                WFact::Edge { id: a, u: ua, v: va, w: wa },
                WFact::Edge { id: b, u: ub, v: vb, w: wb },
            ) => (a, ua, va).cmp(&(b, ub, vb)).then(wa.total_cmp(wb)),
            (
                WFact::Bid { class: ca, iter: ia, value: xa, key: ka },
                WFact::Bid { class: cb, iter: ib, value: xb, key: kb },
            ) => (ca, ia, xa, ka).cmp(&(cb, ib, xb, kb)),
            (
                WFact::Won { class: ca, iter: ia, key: ka },
                WFact::Won { class: cb, iter: ib, key: kb },
            ) => (ca, ia, ka).cmp(&(cb, ib, kb)),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl BitSize for WFact {
    fn bit_size(&self) -> usize {
        match self {
            WFact::Node { .. } => 2 * 32 + 1,
            WFact::Edge { .. } => 3 * 32 + 64,
            WFact::Bid { key, .. } => 32 + 32 + 64 + 32 * key.len(),
            WFact::Won { key, .. } => 32 + 32 + 32 * key.len(),
        }
    }
}

/// Messages: knowledge floods plus the application walk.
#[derive(Debug, Clone, PartialEq)]
pub enum HvMsg {
    /// Newly learned facts.
    Flood(Vec<WFact>),
    /// Application walk along a winner augmentation.
    Apply {
        /// Node sequence (for cycles, without repeating the leader).
        nodes: Vec<u32>,
        /// Edge sequence (`edges[i]` joins `nodes[i]`, `nodes[i+1]`; for
        /// cycles one extra closing edge at the end).
        edges: Vec<u32>,
        /// Whether this is a cycle augmentation.
        cycle: bool,
    },
    /// "Your matched edge was a stub of an applied augmentation: you are
    /// free now."
    Unmatch,
}

impl BitSize for HvMsg {
    fn bit_size(&self) -> usize {
        match self {
            HvMsg::Flood(facts) => facts.iter().map(BitSize::bit_size).sum(),
            HvMsg::Apply { nodes, edges, .. } => 32 * (nodes.len() + edges.len()) + 1,
            HvMsg::Unmatch => 1,
        }
    }
}

/// One augmentation a leader owns.
#[derive(Debug, Clone)]
struct Augmentation {
    nodes: Vec<u32>,
    edges: Vec<u32>,
    /// Stub edges (endpoint matched edges leaving the matching), as
    /// `(endpoint index 0 or last, edge id, far node)`.
    stubs: Vec<(usize, u32, u32)>,
    cycle: bool,
    gain: f64,
    class: i32,
    alive: bool,
}

impl Augmentation {
    fn key(&self) -> Vec<u32> {
        let mut key = if self.cycle {
            // Canonical: rotate to the minimum node, pick the direction
            // whose second element is smaller.
            canonical_cycle(&self.nodes)
        } else if self.nodes.last() < self.nodes.first() {
            self.nodes.iter().rev().copied().collect()
        } else {
            self.nodes.clone()
        };
        // Disambiguate cycles from paths over the same node sequence.
        if self.cycle {
            key.push(u32::MAX);
        }
        key
    }

    /// All nodes whose matching state the augmentation touches.
    fn footprint(&self) -> Vec<u32> {
        let mut f = self.nodes.clone();
        f.extend(self.stubs.iter().map(|&(_, _, far)| far));
        f.sort_unstable();
        f.dedup();
        f
    }
}

fn canonical_cycle(nodes: &[u32]) -> Vec<u32> {
    let n = nodes.len();
    let start = (0..n).min_by_key(|&i| nodes[i]).expect("nonempty cycle");
    let fwd: Vec<u32> = (0..n).map(|i| nodes[(start + i) % n]).collect();
    let bwd: Vec<u32> = (0..n).map(|i| nodes[(start + n - i) % n]).collect();
    if fwd <= bwd {
        fwd
    } else {
        bwd
    }
}

fn intersects(a: &[u32], b: &[u32]) -> bool {
    a.iter().any(|x| b.contains(x))
}

/// Static parameters of one pass.
#[derive(Debug, Clone, Copy)]
pub struct HvParams {
    /// Maximum augmentation length `L` (edges on the path/cycle).
    pub max_len: usize,
    /// Luby iterations per class.
    pub mis_iterations: usize,
    /// Highest gain class processed (`⌈log₂(max gain)⌉`, from `W_max`).
    pub class_hi: i32,
    /// Number of classes processed (top-down).
    pub classes: usize,
}

impl HvParams {
    fn gather_rounds(&self) -> usize {
        self.max_len + 3
    }
    fn flood_rounds(&self) -> usize {
        2 * (self.max_len + 1) + 1
    }
    fn iter_rounds(&self) -> usize {
        2 * self.flood_rounds()
    }
    fn mis_rounds(&self) -> usize {
        self.classes * self.mis_iterations * self.iter_rounds()
    }
    fn total_rounds(&self) -> usize {
        self.gather_rounds() + self.mis_rounds() + self.max_len + 3
    }
    /// The `(class, iter)` processed at MIS-relative round `r`, plus the
    /// within-iteration phase round.
    fn slot(&self, r: usize) -> (i32, u32, usize) {
        let iter_r = self.iter_rounds();
        let per_class = self.mis_iterations * iter_r;
        let class_idx = r / per_class;
        let within = r % per_class;
        (self.class_hi - class_idx as i32, (within / iter_r) as u32, within % iter_r)
    }
}

/// Per-node state of one `(1−ε)`-MWM pass.
#[derive(Debug)]
pub struct HvNode {
    params: HvParams,
    register: Option<EdgeId>,
    known: BTreeSet<WFact>,
    fresh: Vec<WFact>,
    augs: Vec<Augmentation>,
    enumerated: bool,
    saw_aug: bool,
}

impl HvNode {
    /// Builds the pass state for node `v` with register `matched`.
    #[must_use]
    pub fn new(params: HvParams, g: &dyn Topology, v: NodeId, matched: Option<EdgeId>) -> HvNode {
        let mut known = BTreeSet::new();
        known.insert(WFact::Node { id: v as u32, matched: matched.map(|e| e as u32) });
        for (_, _, e) in g.incident(v) {
            let (a, b) = g.endpoints(e);
            known.insert(WFact::Edge { id: e as u32, u: a as u32, v: b as u32, w: g.weight(e) });
        }
        let fresh = known.iter().cloned().collect();
        HvNode {
            params,
            register: matched,
            known,
            fresh,
            augs: Vec::new(),
            enumerated: false,
            saw_aug: false,
        }
    }

    fn absorb(&mut self, facts: &[WFact]) {
        for f in facts {
            if self.known.insert(f.clone()) {
                self.fresh.push(f.clone());
            }
        }
    }

    fn flood(&mut self, ctx: &mut Context<'_, HvMsg>) {
        if !self.fresh.is_empty() {
            let batch = std::mem::take(&mut self.fresh);
            ctx.broadcast(HvMsg::Flood(batch));
        }
    }

    /// Enumerates all positive-gain augmentations this node leads.
    fn enumerate(&mut self, me: u32) {
        let view = View::build(&self.known);
        if !view.known(me) {
            return;
        }
        let mut augs = enumerate_augmentations(&view, me, self.params.max_len);
        augs.retain(|a| a.gain > 0.0);
        for a in &mut augs {
            a.class = a.gain.log2().floor() as i32;
        }
        // Augmentations above class_hi are clamped into the top class
        // (cannot happen when class_hi comes from W_max·L, but stay safe).
        for a in &mut augs {
            a.class = a.class.min(self.params.class_hi);
        }
        let lo = self.params.class_hi - self.params.classes as i32 + 1;
        augs.retain(|a| a.class >= lo);
        self.saw_aug = !augs.is_empty();
        self.augs = augs;
    }

    fn bids_for(&self, class: i32, iter: u32) -> Vec<(u64, Vec<u32>)> {
        self.known
            .iter()
            .filter_map(|f| match f {
                WFact::Bid { class: c, iter: i, value, key } if *c == class && *i == iter => {
                    Some((*value, key.clone()))
                }
                _ => None,
            })
            .collect()
    }

    fn winners_for(&self, class: i32, iter: u32) -> Vec<Vec<u32>> {
        self.known
            .iter()
            .filter_map(|f| match f {
                WFact::Won { class: c, iter: i, key } if *c == class && *i == iter => {
                    Some(key.clone())
                }
                _ => None,
            })
            .collect()
    }

    fn all_winner_keys(&self) -> Vec<Vec<u32>> {
        self.known
            .iter()
            .filter_map(|f| match f {
                WFact::Won { key, .. } => Some(key.clone()),
                _ => None,
            })
            .collect()
    }

    /// Applies an `Apply` walk at this node and forwards it.
    fn apply_walk(
        &mut self,
        ctx: &mut Context<'_, HvMsg>,
        nodes: &[u32],
        edges: &[u32],
        cycle: bool,
    ) {
        let me = ctx.id() as u32;
        let idx = nodes.iter().position(|&x| x == me).expect("on the walk");
        let my_edge = if idx % 2 == 0 { edges[idx % edges.len()] } else { edges[idx - 1] };
        // For paths the pairing is (0,1),(2,3),…; for cycles the same
        // formula works because even-indexed edges become matched and
        // `edges.len()` is even.
        self.register = Some(my_edge as EdgeId);
        if idx + 1 < nodes.len() {
            let next_edge = edges[idx];
            let port = (0..ctx.degree())
                .find(|&p| ctx.edge(p) == next_edge as EdgeId)
                .expect("walk edge incident");
            ctx.send(port, HvMsg::Apply { nodes: nodes.to_vec(), edges: edges.to_vec(), cycle });
        }
    }
}

impl Protocol for HvNode {
    type Msg = HvMsg;
    type Output = crate::bipartite::PhaseOutput;

    fn on_start(&mut self, ctx: &mut Context<'_, HvMsg>) {
        self.flood(ctx);
    }

    #[allow(clippy::too_many_lines)]
    fn on_round(&mut self, ctx: &mut Context<'_, HvMsg>, inbox: &[(Port, HvMsg)]) {
        let mut applies: Vec<(Vec<u32>, Vec<u32>, bool)> = Vec::new();
        let mut unmatch_ports: Vec<Port> = Vec::new();
        for (port, msg) in inbox {
            match msg {
                HvMsg::Flood(facts) => self.absorb(facts),
                HvMsg::Apply { nodes, edges, cycle } => {
                    applies.push((nodes.clone(), edges.clone(), *cycle));
                }
                HvMsg::Unmatch => unmatch_ports.push(*port),
            }
        }
        let p = self.params;
        let round = ctx.round();
        let gather_end = p.gather_rounds();
        let mis_end = gather_end + p.mis_rounds();

        if round < gather_end {
            self.flood(ctx);
        } else if round < mis_end {
            let (class, iter, phase_round) = p.slot(round - gather_end);
            if phase_round == 0 {
                if !self.enumerated {
                    self.enumerate(ctx.id() as u32);
                    self.enumerated = true;
                }
                self.fresh.clear();
                for a in &self.augs {
                    if a.alive && a.class == class {
                        let f = WFact::Bid { class, iter, value: ctx.rng().random(), key: a.key() };
                        if self.known.insert(f.clone()) {
                            self.fresh.push(f);
                        }
                    }
                }
                self.flood(ctx);
            } else if phase_round < p.flood_rounds() {
                self.flood(ctx);
            } else if phase_round == p.flood_rounds() {
                // Decide winners of this class iteration.
                let bids = self.bids_for(class, iter);
                let mut fresh_wins = Vec::new();
                for a in &mut self.augs {
                    if !a.alive || a.class != class {
                        continue;
                    }
                    let key = a.key();
                    let foot = a.footprint();
                    let Some(mine) = bids.iter().find(|(_, k)| *k == key) else {
                        continue;
                    };
                    let beaten = bids.iter().any(|(v, k)| {
                        *k != key && intersects(k, &foot) && (*v, k) > (mine.0, &mine.1)
                    });
                    if !beaten {
                        a.alive = false; // decided: winner
                        fresh_wins.push(WFact::Won { class, iter, key });
                    }
                }
                for f in fresh_wins {
                    if self.known.insert(f.clone()) {
                        self.fresh.push(f);
                    }
                }
                self.flood(ctx);
            } else {
                self.flood(ctx);
                if phase_round == p.iter_rounds() - 1 {
                    // Kill augmentations conflicting with this
                    // iteration's winners (footprints intersect).
                    let winners = self.winners_for(class, iter);
                    for a in &mut self.augs {
                        if a.alive {
                            let foot = a.footprint();
                            if winners.iter().any(|w| *w != a.key() && intersects(w, &foot)) {
                                a.alive = false;
                            }
                        }
                    }
                }
            }
        } else {
            // Application stage.
            if round == mis_end {
                let me = ctx.id() as u32;
                let winner_keys = self.all_winner_keys();
                let mine: Vec<Augmentation> = self
                    .augs
                    .iter()
                    .filter(|a| winner_keys.contains(&a.key()) && a.nodes[0] == me)
                    .cloned()
                    .collect();
                for a in mine {
                    self.start_apply(ctx, &a);
                }
            }
            for (nodes, edges, cycle) in applies {
                self.continue_apply(ctx, &nodes, &edges, cycle);
            }
            // A stub of an applied augmentation vanished: clear the
            // register only if we are still pointing at that very edge
            // (the walk may already have rematched us).
            for port in unmatch_ports {
                if self.register == Some(ctx.edge(port)) {
                    self.register = None;
                }
            }
            if round >= p.total_rounds() {
                ctx.halt();
            }
        }
    }

    fn into_output(self) -> crate::bipartite::PhaseOutput {
        crate::bipartite::PhaseOutput {
            matched_edge: self.register,
            saw_path: self.saw_aug,
            augmented: false,
            leader_paths: self.augs.len() as f64,
        }
    }
}

impl HvNode {
    fn start_apply(&mut self, ctx: &mut Context<'_, HvMsg>, a: &Augmentation) {
        // Send Unmatch over my stub (if any).
        for &(end_idx, stub_edge, _) in &a.stubs {
            if end_idx == 0 {
                if let Some(port) = (0..ctx.degree()).find(|&q| ctx.edge(q) == stub_edge as usize) {
                    ctx.send(port, HvMsg::Unmatch);
                }
            }
        }
        self.apply_walk(ctx, &a.nodes, &a.edges, a.cycle);
        // Remember far-end stub so the walk's last node can notify: the
        // stub data travels with nothing — instead the last node knows
        // its own register; the far-end stub is the last node's OLD
        // matched edge, and the walk overwrites the last node's register,
        // so its old mate must be told. We handle that in
        // `continue_apply` via the node's own pre-walk register.
    }

    fn continue_apply(
        &mut self,
        ctx: &mut Context<'_, HvMsg>,
        nodes: &[u32],
        edges: &[u32],
        cycle: bool,
    ) {
        let me = ctx.id() as u32;
        let idx = nodes.iter().position(|&x| x == me).expect("on the walk");
        // If my old matched edge is NOT on the walk, it is a stub: tell
        // the far end it is free now. (Interior nodes' old matched edges
        // are always walk edges; only the two endpoints can hold stubs.)
        if let Some(old) = self.register {
            if !edges.contains(&(old as u32)) {
                if let Some(port) = (0..ctx.degree()).find(|&q| ctx.edge(q) == old) {
                    ctx.send(port, HvMsg::Unmatch);
                }
            }
        }
        let _ = idx;
        self.apply_walk(ctx, nodes, edges, cycle);
    }
}

// ---------------------------------------------------------------------------
// Local view + enumeration
// ---------------------------------------------------------------------------

/// A decoded knowledge base.
struct View {
    matched: std::collections::BTreeMap<u32, Option<u32>>,
    adj: std::collections::BTreeMap<u32, Vec<(u32, u32, f64)>>,
    edge_w: std::collections::BTreeMap<u32, f64>,
    edge_ends: std::collections::BTreeMap<u32, (u32, u32)>,
}

impl View {
    fn build(known: &BTreeSet<WFact>) -> View {
        let mut matched = std::collections::BTreeMap::new();
        let mut adj: std::collections::BTreeMap<u32, Vec<(u32, u32, f64)>> =
            std::collections::BTreeMap::new();
        let mut edge_w = std::collections::BTreeMap::new();
        let mut edge_ends = std::collections::BTreeMap::new();
        for f in known {
            match f {
                WFact::Node { id, matched: m } => {
                    matched.insert(*id, *m);
                }
                WFact::Edge { id, u, v, w } => {
                    adj.entry(*u).or_default().push((*v, *id, *w));
                    adj.entry(*v).or_default().push((*u, *id, *w));
                    edge_w.insert(*id, *w);
                    edge_ends.insert(*id, (*u, *v));
                }
                _ => {}
            }
        }
        View { matched, adj, edge_w, edge_ends }
    }

    fn known(&self, v: u32) -> bool {
        self.matched.contains_key(&v)
    }

    fn matched_edge(&self, v: u32) -> Option<u32> {
        self.matched.get(&v).copied().flatten()
    }

    fn is_edge_matched(&self, e: u32) -> bool {
        self.edge_ends.get(&e).is_some_and(|&(u, v)| {
            self.matched_edge(u) == Some(e) || self.matched_edge(v) == Some(e)
        })
    }

    /// Stub cost + far node at a path endpoint, if the endpoint is
    /// matched and its matching edge is not on the path.
    fn stub(&self, v: u32, path_edges: &[u32]) -> Option<(u32, u32, f64)> {
        let e = self.matched_edge(v)?;
        if path_edges.contains(&e) {
            return None;
        }
        let (a, b) = *self.edge_ends.get(&e)?;
        let far = if a == v { b } else { a };
        Some((e, far, *self.edge_w.get(&e)?))
    }
}

/// Enumerates positive-gain augmentations led by `me`:
/// * alternating paths (ends unmatched-edge) with `me` = smaller endpoint,
///   including endpoint stubs;
/// * alternating cycles with `me` = minimum node.
fn enumerate_augmentations(view: &View, me: u32, max_len: usize) -> Vec<Augmentation> {
    let mut out = Vec::new();
    let mut nodes = vec![me];
    let mut edges: Vec<u32> = Vec::new();
    let mut gain_stack = vec![0.0f64];
    dfs(view, me, max_len, &mut nodes, &mut edges, &mut gain_stack, &mut out);
    out
}

#[allow(clippy::too_many_lines)]
fn dfs(
    view: &View,
    me: u32,
    max_len: usize,
    nodes: &mut Vec<u32>,
    edges: &mut Vec<u32>,
    gain_stack: &mut Vec<f64>,
    out: &mut Vec<Augmentation>,
) {
    if edges.len() >= max_len {
        return;
    }
    let v = *nodes.last().expect("nonempty");
    let need_matched = edges.len() % 2 == 1;
    let Some(arcs) = view.adj.get(&v) else { return };
    for &(u, e, w) in arcs {
        if !view.known(u) {
            continue;
        }
        let m = view.is_edge_matched(e);
        if m != need_matched {
            continue;
        }
        // Cycle closure: back to `me` over a matched edge, even length.
        if u == me {
            if m && edges.len() % 2 == 1 && edges.len() + 1 >= 4 {
                // Canonical: me is the cycle's minimum node. The
                // orientation is already unique: an alternating cycle has
                // exactly one unmatched edge at each node, and the DFS
                // always leaves over it.
                if nodes.iter().all(|&x| x >= me) {
                    let gain = gain_stack.last().expect("nonempty") + if m { -w } else { w };
                    let mut cyc_edges = edges.clone();
                    cyc_edges.push(e);
                    if gain > 0.0 {
                        out.push(Augmentation {
                            nodes: nodes.clone(),
                            edges: cyc_edges,
                            stubs: Vec::new(),
                            cycle: true,
                            gain,
                            class: 0,
                            alive: true,
                        });
                    }
                }
            }
            continue;
        }
        if nodes.contains(&u) {
            continue;
        }
        nodes.push(u);
        edges.push(e);
        let delta = if m { -w } else { w };
        gain_stack.push(gain_stack.last().expect("nonempty") + delta);
        // Path candidate: odd length (last edge unmatched), canonical
        // direction me < u; subtract stub weights at both ends.
        if edges.len() % 2 == 1 && me < u {
            let raw = *gain_stack.last().expect("nonempty");
            let stub0 = view.stub(me, edges);
            let mut stub1 = view.stub(u, edges);
            // Endpoints matched to each other share one stub: count it
            // once (the "path + shared stub" shape; the cycle enumeration
            // covers the same improvement via the closing edge too).
            if let (Some((e0, _, _)), Some((e1, _, _))) = (stub0, stub1) {
                if e0 == e1 {
                    stub1 = None;
                }
            }
            let gain =
                raw - stub0.map_or(0.0, |(_, _, sw)| sw) - stub1.map_or(0.0, |(_, _, sw)| sw);
            if gain > 0.0 {
                let mut stubs = Vec::new();
                if let Some((se, far, _)) = stub0 {
                    stubs.push((0usize, se, far));
                }
                if let Some((se, far, _)) = stub1 {
                    stubs.push((edges.len(), se, far));
                }
                out.push(Augmentation {
                    nodes: nodes.clone(),
                    edges: edges.clone(),
                    stubs,
                    cycle: false,
                    gain,
                    class: 0,
                    alive: true,
                });
            }
        }
        dfs(view, me, max_len, nodes, edges, gain_stack, out);
        gain_stack.pop();
        nodes.pop();
        edges.pop();
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Configuration for [`hv_mwm`].
#[derive(Debug, Clone, Copy)]
pub struct HvMwmConfig {
    /// Target slack: augmentation length is `⌈1/eps⌉` (odd-rounded) and
    /// the pass budget `⌈c/eps⌉` in faithful mode.
    pub eps: f64,
    /// Master seed.
    pub seed: u64,
    /// Luby iterations per class (`None` = `2⌈log₂(n+1)⌉ + 2`).
    pub mis_iterations: Option<usize>,
    /// Gain classes processed per pass, top-down (`None` = sized from
    /// the weight range: enough classes to reach gains of order the
    /// minimum edge weight, clamped to `[8, 48]`).
    pub classes: Option<usize>,
    /// Hard cap on passes (`None` = run to exhaustion).
    pub max_passes: Option<usize>,
    /// Override the augmentation length (`None` = from `eps`).
    pub max_len: Option<usize>,
}

impl Default for HvMwmConfig {
    fn default() -> HvMwmConfig {
        HvMwmConfig {
            eps: 0.2,
            seed: 0,
            mis_iterations: None,
            classes: None,
            max_passes: None,
            max_len: None,
        }
    }
}

/// Runs the `(1−ε)`-MWM LOCAL algorithm (§4 Remark).
///
/// # Errors
/// Simulation or register-consistency failure.
///
/// # Example
/// ```
/// use dam_core::hv::{hv_mwm, HvMwmConfig};
/// use dam_graph::generators;
///
/// // The greedy trap, where every ½-algorithm stalls at 0.6·OPT:
/// let g = generators::greedy_trap(2, 0.2);
/// let r = hv_mwm(&g, &HvMwmConfig { eps: 0.2, seed: 1, ..Default::default() }).unwrap();
/// assert!((r.matching.weight(&g) - 4.0).abs() < 1e-9); // the optimum
/// ```
pub fn hv_mwm(g: &Graph, config: &HvMwmConfig) -> Result<AlgorithmReport, CoreError> {
    assert!(config.eps > 0.0 && config.eps <= 1.0, "eps in (0,1]");
    let n = g.node_count();
    let max_len = config.max_len.unwrap_or_else(|| {
        let l = (1.0 / config.eps).ceil() as usize;
        (l | 1).max(3) // odd, at least wrap-length
    });
    let mis_iterations = config
        .mis_iterations
        .unwrap_or_else(|| 2 * (usize::BITS - n.max(1).leading_zeros()) as usize + 2);
    let max_gain = g.edge_ids().map(|e| g.weight(e)).fold(0.0f64, f64::max) * max_len as f64;
    let class_hi = if max_gain > 0.0 { max_gain.log2().ceil() as i32 } else { 0 };
    let classes = config.classes.unwrap_or_else(|| {
        let min_w = g.edge_ids().map(|e| g.weight(e)).fold(f64::INFINITY, f64::min);
        if min_w.is_finite() && min_w > 0.0 {
            // Cover gains down to ~min_w/16.
            let lo = min_w.log2().floor() as i32 - 4;
            usize::try_from((class_hi - lo + 1).max(8)).unwrap_or(8).min(48)
        } else {
            8
        }
    });
    let params = HvParams { max_len, mis_iterations, class_hi, classes };

    let mut net = Network::new(g, SimConfig::local().seed(config.seed).max_rounds(10_000_000));
    let mut registers: Vec<Option<EdgeId>> = vec![None; n];
    let mut passes = 0usize;
    let cap = config.max_passes.unwrap_or(usize::MAX);
    while passes < cap {
        let out = net.run(|v, graph| HvNode::new(params, graph, v, registers[v]))?;
        passes += 1;
        let mut any = false;
        for (v, o) in out.outputs.iter().enumerate() {
            registers[v] = o.matched_edge;
            any |= o.saw_path;
        }
        matching_from_registers(g, &registers)?;
        if !any {
            break;
        }
    }
    let matching = matching_from_registers(g, &registers)?;
    Ok(AlgorithmReport { matching, stats: net.totals(), iterations: passes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::weights::{randomize_weights, WeightDist};
    use dam_graph::{brute, generators, mwm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn escapes_the_greedy_trap() {
        // Algorithm 5 stalls at (1+δ)/2 here; the HV augmentations
        // (a length-3 path replacing the middle edge by both outer
        // edges) reach the optimum.
        let g = generators::greedy_trap(3, 0.25);
        let r = hv_mwm(&g, &HvMwmConfig { eps: 0.25, seed: 1, ..Default::default() }).unwrap();
        let opt = brute::maximum_weight(&g);
        assert!(
            (r.matching.weight(&g) - opt).abs() < 1e-9,
            "expected optimum {opt}, got {}",
            r.matching.weight(&g)
        );
    }

    #[test]
    fn exhaustive_run_reaches_exact_optimum() {
        // With L >= n and no pass cap, termination means no positive
        // augmentation remains — i.e. the matching is maximum weight.
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..6 {
            let base = generators::gnp(9, 0.4, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 12 }, &mut rng);
            let cfg = HvMwmConfig { max_len: Some(11), seed: trial, ..Default::default() };
            let r = hv_mwm(&g, &cfg).unwrap();
            r.matching.validate(&g).unwrap();
            let opt = brute::maximum_weight(&g);
            assert!(
                (r.matching.weight(&g) - opt).abs() < 1e-9,
                "trial {trial}: {} vs optimum {opt}",
                r.matching.weight(&g)
            );
        }
    }

    #[test]
    fn cycles_are_found_and_applied() {
        // A 4-cycle matched on its light pair: only an alternating
        // *cycle* augmentation can reach the heavy pair.
        let g = dam_graph::Graph::builder(4)
            .weighted_edge(0, 1, 1.0) // light
            .weighted_edge(1, 2, 5.0) // heavy
            .weighted_edge(2, 3, 1.0) // light
            .weighted_edge(3, 0, 5.0) // heavy
            .build()
            .unwrap();
        // Start from the light matching via a crafted register set: run
        // the algorithm from empty — local-max style enumeration will
        // find the heavy pair anyway; to force the cycle case, seed the
        // matching with the light pair through one pass of max_len 1?
        // Simpler: verify the enumerator itself sees the cycle.
        let mut known = BTreeSet::new();
        for v in 0..4u32 {
            let matched = match v {
                0 | 1 => Some(0u32),
                _ => Some(2u32),
            };
            known.insert(WFact::Node { id: v, matched });
        }
        known.insert(WFact::Edge { id: 0, u: 0, v: 1, w: 1.0 });
        known.insert(WFact::Edge { id: 1, u: 1, v: 2, w: 5.0 });
        known.insert(WFact::Edge { id: 2, u: 2, v: 3, w: 1.0 });
        known.insert(WFact::Edge { id: 3, u: 3, v: 0, w: 5.0 });
        let view = View::build(&known);
        let augs = enumerate_augmentations(&view, 0, 5);
        let cyc = augs.iter().find(|a| a.cycle).expect("cycle augmentation found");
        assert!((cyc.gain - 8.0).abs() < 1e-9, "gain 10 - 2 = 8, got {}", cyc.gain);
        // And the full algorithm lands on the optimum.
        let r = hv_mwm(&g, &HvMwmConfig { eps: 0.2, seed: 2, ..Default::default() }).unwrap();
        assert!((r.matching.weight(&g) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_floor_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(32);
        for trial in 0..5 {
            let base = generators::gnp(16, 0.25, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.2, hi: 4.0 }, &mut rng);
            let eps = 0.25;
            let r = hv_mwm(&g, &HvMwmConfig { eps, seed: trial, ..Default::default() }).unwrap();
            r.matching.validate(&g).unwrap();
            let opt = mwm::maximum_weight(&g);
            assert!(
                r.matching.weight(&g) >= (1.0 - 2.0 * eps) * opt - 1e-9,
                "trial {trial}: {} < (1-2eps)·{opt}",
                r.matching.weight(&g)
            );
        }
    }

    #[test]
    fn beats_algorithm_5_on_average() {
        use crate::weighted::{weighted_mwm, WeightedMwmConfig};
        let mut rng = StdRng::seed_from_u64(33);
        let mut hv_total = 0.0;
        let mut a5_total = 0.0;
        for trial in 0..5 {
            let base = generators::gnp(14, 0.3, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 9 }, &mut rng);
            let hv =
                hv_mwm(&g, &HvMwmConfig { eps: 0.2, seed: trial, ..Default::default() }).unwrap();
            let a5 = weighted_mwm(
                &g,
                &WeightedMwmConfig { eps: 0.05, seed: trial, ..Default::default() },
            )
            .unwrap();
            hv_total += hv.matching.weight(&g);
            a5_total += a5.matching.weight(&g);
        }
        // HV-to-exhaustion is locally optimal up to length-5
        // augmentations (≥ 3/4 guarantee, near-optimal in practice);
        // Algorithm 5 is capped at ½−ε. Aggregate comparison with slack
        // for lucky Alg-5 runs:
        assert!(hv_total >= 0.95 * a5_total, "HV {hv_total} vs Alg5 {a5_total}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(34);
        let base = generators::gnp(12, 0.3, &mut rng);
        let g = randomize_weights(&base, WeightDist::Integer { max: 6 }, &mut rng);
        let cfg = HvMwmConfig { eps: 0.3, seed: 9, ..Default::default() };
        let a = hv_mwm(&g, &cfg).unwrap();
        let b = hv_mwm(&g, &cfg).unwrap();
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
    }

    #[test]
    fn empty_and_unweighted() {
        let g = dam_graph::Graph::builder(3).build().unwrap();
        let r = hv_mwm(&g, &HvMwmConfig::default()).unwrap();
        assert_eq!(r.matching.size(), 0);

        let g = generators::path(6);
        let r = hv_mwm(&g, &HvMwmConfig { eps: 0.2, seed: 1, ..Default::default() }).unwrap();
        assert_eq!(r.matching.size(), 3); // unweighted: maximum cardinality on P6
    }
}
