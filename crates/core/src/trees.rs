//! Exact maximum-cardinality matching on **trees**, distributed.
//!
//! The paper's related work singles trees out (Hoepman, Kutten & Lotker
//! 2006 get a `(½−ε)`-MCM in expected *constant* time there). Trees also
//! admit something stronger at `O(diameter)` cost: the classic bottom-up
//! greedy — *match every node with an unmatched child* — computes an
//! **exactly maximum** matching. This module implements it as a genuine
//! message-passing protocol in three converge/broadcast waves:
//!
//! 1. **Root election + layering**: flood the minimum id (each node
//!    adopts the first/best root claim it hears; its parent is the port
//!    the claim arrived on) — `O(diameter)` rounds.
//! 2. **Upward matching**: leaves report `unmatched-child = false`… each
//!    node, once all children reported, matches the smallest-port
//!    unmatched child (sends `MatchYou` down, `Matched/Settled` up).
//! 3. Nodes halt once their matching state is final.
//!
//! The exactness argument is the standard exchange argument: a leaf's
//! parent edge is contained in some maximum matching whenever the leaf
//! is unmatched, applied inductively up the tree.
//!
//! The protocol doubles as this crate's `O(diameter)`-algorithm example:
//! unlike everything else here its round count is *linear* in the
//! diameter, which the tests exhibit on paths.

use dam_congest::{BitSize, Context, Network, Port, Protocol, SimConfig};
use dam_graph::{EdgeId, Graph};

use crate::error::CoreError;
use crate::report::{matching_from_registers, AlgorithmReport};

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMsg {
    /// Root-election flood: "the best root id I know is `root`".
    Claim {
        /// Candidate root id.
        root: u64,
        /// Analytical width: `⌈log₂ n⌉`-bit id plus tag.
        bits: u32,
    },
    /// Child → parent: "my subtree is done; I am `unmatched`".
    Report {
        /// Whether the child is still free (available to its parent).
        unmatched: bool,
    },
    /// Parent → child: "you are matched to me".
    MatchYou,
    /// Parent → child: "you stay free" (the verdict that lets an
    /// unmatched-reporting child terminate).
    NoMatch,
}

impl BitSize for TreeMsg {
    fn bit_size(&self) -> usize {
        match self {
            TreeMsg::Claim { bits, .. } => *bits as usize,
            TreeMsg::Report { .. } => 3,
            TreeMsg::MatchYou | TreeMsg::NoMatch => 2,
        }
    }
}

/// Analytical width of a root claim: tag plus an `O(log n)`-bit id.
fn claim_bits(ctx: &Context<'_, TreeMsg>) -> u32 {
    2 + dam_congest::message::id_bits(ctx.network_size()) as u32
}

/// Phases of the per-node state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TreePhase {
    /// Electing the root / learning the parent.
    Elect,
    /// Waiting for child reports.
    Gather,
    /// Waiting for the parent's verdict.
    AwaitParent,
}

/// Per-node state.
#[derive(Debug)]
pub struct TreeNode {
    /// Rounds spent flooding root claims (≥ diameter; any upper bound on
    /// the diameter works — `n` always does).
    elect_rounds: usize,
    phase: TreePhase,
    best_root: u64,
    parent: Option<Port>,
    children_pending: usize,
    reported: Vec<bool>,
    unmatched_child: Option<Port>,
    matched_edge: Option<EdgeId>,
}

impl TreeNode {
    /// Fresh state; `elect_rounds` must be at least the tree diameter.
    #[must_use]
    pub fn new(degree: usize, elect_rounds: usize) -> TreeNode {
        TreeNode {
            elect_rounds,
            phase: TreePhase::Elect,
            best_root: u64::MAX,
            parent: None,
            children_pending: degree,
            reported: vec![false; degree],
            unmatched_child: None,
            matched_edge: None,
        }
    }

    /// Matches the preferred unmatched child, sends every child its
    /// verdict, reports upward, and moves on.
    fn settle(&mut self, ctx: &mut Context<'_, TreeMsg>) {
        if let Some(child) = self.unmatched_child {
            self.matched_edge = Some(ctx.edge(child));
        }
        for p in ctx.ports() {
            if Some(p) == self.parent {
                continue;
            }
            let verdict =
                if Some(p) == self.unmatched_child { TreeMsg::MatchYou } else { TreeMsg::NoMatch };
            ctx.send(p, verdict);
        }
        match self.parent {
            Some(p) => {
                ctx.send(p, TreeMsg::Report { unmatched: self.matched_edge.is_none() });
                self.phase = TreePhase::AwaitParent;
                if self.matched_edge.is_some() {
                    // Already matched: the parent cannot claim us; done.
                    ctx.halt();
                }
            }
            None => ctx.halt(), // the root is done
        }
    }
}

impl Protocol for TreeNode {
    type Msg = TreeMsg;
    type Output = Option<EdgeId>;

    fn on_start(&mut self, ctx: &mut Context<'_, TreeMsg>) {
        self.best_root = ctx.id() as u64;
        let bits = claim_bits(ctx);
        ctx.broadcast(TreeMsg::Claim { root: self.best_root, bits });
        if ctx.degree() == 0 {
            ctx.halt();
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, TreeMsg>, inbox: &[(Port, TreeMsg)]) {
        match self.phase {
            TreePhase::Elect => {
                let mut improved = false;
                for &(port, msg) in inbox {
                    if let TreeMsg::Claim { root, .. } = msg {
                        if root < self.best_root {
                            self.best_root = root;
                            self.parent = Some(port);
                            improved = true;
                        }
                    }
                }
                if improved {
                    let bits = claim_bits(ctx);
                    ctx.broadcast(TreeMsg::Claim { root: self.best_root, bits });
                }
                if ctx.round() >= self.elect_rounds {
                    // Parent known (or I am the root). Children = all
                    // other ports.
                    self.children_pending = ctx.degree() - usize::from(self.parent.is_some());
                    self.phase = TreePhase::Gather;
                    if self.children_pending == 0 {
                        self.settle(ctx);
                    }
                }
            }
            TreePhase::Gather => {
                for &(port, msg) in inbox {
                    if let TreeMsg::Report { unmatched } = msg {
                        debug_assert!(Some(port) != self.parent, "reports come from children");
                        if !self.reported[port] {
                            self.reported[port] = true;
                            self.children_pending -= 1;
                            if unmatched {
                                // Prefer the smallest port (determinism).
                                if self.unmatched_child.is_none_or(|c| port < c) {
                                    self.unmatched_child = Some(port);
                                }
                            }
                        }
                    }
                }
                if self.children_pending == 0 {
                    self.settle(ctx);
                }
            }
            TreePhase::AwaitParent => {
                // Wait for the parent's verdict (it may be many rounds
                // away: the parent settles only after all its children —
                // our siblings' subtrees included — have reported).
                for &(port, msg) in inbox {
                    match msg {
                        TreeMsg::MatchYou => {
                            debug_assert_eq!(Some(port), self.parent);
                            debug_assert!(self.matched_edge.is_none());
                            self.matched_edge = Some(ctx.edge(port));
                            ctx.halt();
                        }
                        TreeMsg::NoMatch => {
                            debug_assert_eq!(Some(port), self.parent);
                            ctx.halt();
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn into_output(self) -> Option<EdgeId> {
        self.matched_edge
    }
}

/// Computes an exactly maximum matching of a forest, distributively, in
/// `O(diameter)` rounds with `O(log n)`-bit messages.
///
/// # Errors
/// Simulation/assembly failure; forests only (a cycle makes the
/// election produce a non-tree parent structure and the run fails
/// validation or the round guard).
///
/// # Example
/// ```
/// use dam_core::trees::tree_mcm;
/// use dam_graph::generators;
///
/// let g = generators::path(9); // P9: maximum matching = 4
/// let r = tree_mcm(&g, 3).unwrap();
/// assert_eq!(r.matching.size(), 4);
/// ```
pub fn tree_mcm(g: &Graph, seed: u64) -> Result<AlgorithmReport, CoreError> {
    let n = g.node_count();
    let mut net = Network::new(g, SimConfig::congest_for(n, 4).seed(seed));
    let elect_rounds = n.max(1);
    let out = net.run(|v, graph| TreeNode::new(graph.degree(v), elect_rounds))?;
    let matching = matching_from_registers(g, &out.outputs)?;
    Ok(AlgorithmReport { matching, stats: net.totals(), iterations: 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::{blossom, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(101);
        for trial in 0..15 {
            let g = generators::random_tree(50, &mut rng);
            let r = tree_mcm(&g, trial).unwrap();
            r.matching.validate(&g).unwrap();
            assert_eq!(
                r.matching.size(),
                blossom::maximum_matching_size(&g),
                "trial {trial}: tree matching not maximum"
            );
        }
    }

    #[test]
    fn exact_on_paths_and_stars() {
        for n in [2usize, 3, 4, 7, 12, 25] {
            let g = generators::path(n);
            let r = tree_mcm(&g, 1).unwrap();
            assert_eq!(r.matching.size(), n / 2);
        }
        let g = generators::star(9);
        let r = tree_mcm(&g, 1).unwrap();
        assert_eq!(r.matching.size(), 1);
    }

    #[test]
    fn works_on_forests_with_isolated_nodes() {
        let g = dam_graph::Graph::builder(7).edge(0, 1).edge(1, 2).edge(4, 5).build().unwrap();
        let r = tree_mcm(&g, 2).unwrap();
        assert_eq!(r.matching.size(), 2);
    }

    #[test]
    fn rounds_scale_with_diameter() {
        // Unlike the O(log n) algorithms, the tree protocol pays the
        // diameter: on a path, rounds grow linearly.
        let short = tree_mcm(&generators::path(16), 1).unwrap().stats.stats.rounds;
        let long = tree_mcm(&generators::path(256), 1).unwrap().stats.stats.rounds;
        assert!(long > 8 * short / 2, "rounds {short} -> {long} should scale with n");
    }

    #[test]
    fn congest_budget_respected() {
        let mut rng = StdRng::seed_from_u64(102);
        let g = generators::random_tree(200, &mut rng);
        let r = tree_mcm(&g, 3).unwrap();
        assert_eq!(r.stats.stats.violations, 0);
    }
}
