//! The crash-restart conformance suite: the checkpoint/restore
//! contract, machine-checked for every portfolio implementor
//! (`dam_core::runtime::conformance::registry()`) across all three
//! engine backends.
//!
//! Legs:
//! 1. Non-perturbation — checkpointing enabled changes *nothing* about
//!    a run (registers, matching, stats), like the telemetry sink.
//! 2. Clean restore — killing the process after a completed
//!    checkpointing run and restoring resumes to the identical
//!    matching on every backend, reported [`RestoreOutcome::Clean`].
//! 3. Torn-write / corruption injection — every [`Damage`] kind is
//!    *detected and degraded*: restore never panics and never resumes
//!    undetected-wrong state; the recovered matching is valid, maximal
//!    after maintenance, and meets the family bound.
//! 4. Cold start — when no generation survives, restore recomputes
//!    from scratch, bit-identical to an uninterrupted run, and reports
//!    the degradation honestly ([`RestoreOutcome::ColdStart`]).
//! 5. Bit-identical tail replay (the trace-regression satellite) — the
//!    `Main` boundary is snapshotted *before* register lies apply, so
//!    restoring it re-applies them under the same seed: detection,
//!    repair, and recheck replay bit for bit against the uninterrupted
//!    golden, modulo only the `restores` annotation counters.
//! 6. Tampered session exports — a handcrafted snapshot claiming
//!    outstanding transport slots (impossible at a genuine quiescent
//!    boundary) triggers the domain-separated heal pass: the restore
//!    degrades instead of trusting the registers, stays deterministic,
//!    and still ends valid and maximal.
//!
//! [`Damage`]: dam_core::checkpoint::Damage
//! [`RestoreOutcome::Clean`]: dam_core::checkpoint::RestoreOutcome::Clean
//! [`RestoreOutcome::ColdStart`]: dam_core::checkpoint::RestoreOutcome::ColdStart

use std::path::PathBuf;

use dam_congest::{Backend, FaultPlan, PortSession, SessionState, SimConfig};
use dam_core::checkpoint::{inject, CheckpointCfg, CheckpointStore, Damage, RestoreOutcome};
use dam_core::maintain::is_maximal_on_present;
use dam_core::runtime::conformance::{filtered_registry, Entry, Kind};
use dam_core::runtime::{run_mm, RunReport, RuntimeConfig};
use dam_graph::weights::{randomize_weights, WeightDist};
use dam_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BACKENDS: &[(Backend, usize)] =
    &[(Backend::Sequential, 1), (Backend::Sharded, 2), (Backend::Async, 1)];

/// The corpus graph an entry is exercised on (same discipline as
/// `algo_conformance.rs`): bipartite for the bipartite family, weighted
/// for the weighted family, plain G(n, p) otherwise.
fn corpus_graph(entry: &Entry, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(0x0C4E_C417 ^ seed);
    if entry.bipartite_input {
        return generators::bipartite_gnp(8, 8, 0.25, &mut rng);
    }
    let base = generators::gnp(16, 0.2, &mut rng);
    if matches!(entry.kind, Kind::WeightedHalf { .. }) {
        randomize_weights(&base, WeightDist::Uniform { lo: 0.2, hi: 5.0 }, &mut rng)
    } else {
        base
    }
}

fn sim_for(g: &Graph, seed: u64) -> SimConfig {
    SimConfig::congest_for(g.node_count(), 8).seed(seed)
}

/// A fresh per-case checkpoint directory under the OS temp dir.
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dam-crash-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Zeroes the restore annotation counters — the *only* stats a restore
/// is allowed to perturb — so bit-identity assertions can compare the
/// rest of the ledger exactly.
fn sans_restore_counters(rep: &RunReport) -> RunReport {
    let mut rep = rep.clone();
    rep.phase1.restores = 0;
    rep.phase1.restores_degraded = 0;
    rep.totals.stats.restores = 0;
    rep.totals.stats.restores_degraded = 0;
    rep.restore = None;
    rep
}

/// Leg 3's validity bundle: the recovered matching validates, sits
/// inside the final topology, is maximal on it (maintenance ran), and
/// meets the family bound — fault-free corpus, so the quiescent oracle
/// applies.
fn assert_recovered_sound(entry: &Entry, g: &Graph, rep: &RunReport, ctx: &str) {
    rep.matching.validate(g).unwrap_or_else(|e| panic!("{}: {ctx}: invalid: {e}", entry.name));
    assert!(
        is_maximal_on_present(g, &rep.matching, &rep.node_present, &rep.edge_present),
        "{}: {ctx}: recovered matching not maximal on the final topology",
        entry.name
    );
    entry
        .kind
        .check_quiescent(g, &rep.matching)
        .unwrap_or_else(|e| panic!("{}: {ctx}: family bound violated: {e}", entry.name));
}

/// Leg 1: a checkpointing run is bit-identical to the same run without
/// a checkpoint directory — on every backend.
#[test]
fn checkpointing_perturbs_nothing() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        for (i, &(backend, threads)) in BACKENDS.iter().enumerate() {
            let g = corpus_graph(&entry, 31);
            let base = RuntimeConfig::new()
                .sim(sim_for(&g, 31).backend(backend).threads(threads))
                .repair(true)
                .maintain(true);
            let golden = run_mm(&*algo, &g, &base).unwrap();
            let dir = tmpdir(&format!("perturb-{}-{i}", entry.name));
            let ck =
                run_mm(&*algo, &g, &base.clone().checkpoint(CheckpointCfg::new(&dir))).unwrap();
            assert_eq!(
                golden.registers, ck.registers,
                "{}: {backend:?}: checkpointing perturbed the registers",
                entry.name
            );
            assert_eq!(
                golden.matching.to_edge_vec(),
                ck.matching.to_edge_vec(),
                "{}: {backend:?}: checkpointing perturbed the matching",
                entry.name
            );
            assert_eq!(
                golden.phase1, ck.phase1,
                "{}: {backend:?}: checkpointing perturbed the stats",
                entry.name
            );
            assert_eq!(golden.totals, ck.totals);
            assert_eq!(ck.restore, None, "a fresh run must not claim a restore");
            assert!(
                !CheckpointStore::open(&dir).generations().unwrap().is_empty(),
                "{}: the checkpointing run wrote no generation",
                entry.name
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Leg 2: restore from an undamaged directory resumes every
/// implementor to the golden matching on every backend, reported
/// clean — exit-contract code 0.
#[test]
fn clean_restore_resumes_every_implementor_on_every_backend() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        for (i, &(backend, threads)) in BACKENDS.iter().enumerate() {
            let g = corpus_graph(&entry, 47);
            let base = RuntimeConfig::new()
                .sim(sim_for(&g, 47).backend(backend).threads(threads))
                .repair(true)
                .maintain(true);
            let golden = run_mm(&*algo, &g, &base).unwrap();
            let dir = tmpdir(&format!("clean-{}-{i}", entry.name));
            run_mm(&*algo, &g, &base.clone().checkpoint(CheckpointCfg::new(&dir))).unwrap();
            // The process "dies" here; a new one restores from disk.
            let rep = run_mm(&*algo, &g, &base.clone().restore(&dir)).unwrap();
            let outcome = rep.restore.expect("a restored run reports its outcome");
            assert!(
                matches!(outcome, RestoreOutcome::Clean { .. }),
                "{}: {backend:?}: undamaged directory restored {outcome}",
                entry.name
            );
            assert_eq!(
                golden.registers, rep.registers,
                "{}: {backend:?}: clean restore diverged from the golden",
                entry.name
            );
            assert_eq!(golden.matching.to_edge_vec(), rep.matching.to_edge_vec());
            assert_eq!(rep.phase1.restores, 1, "the restore must be accounted");
            assert_eq!(rep.phase1.restores_degraded, 0);
            assert_recovered_sound(&entry, &g, &rep, &format!("{backend:?} clean restore"));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Leg 3: every damage kind, on every implementor — detected and
/// degraded, never a panic, never an undetected-wrong resume. With
/// maintenance on, the run leaves multiple generations, so damage to
/// the newest falls back to an older intact one (or, for a stale
/// `HEAD`, the intact newest wins but the damage is still reported).
#[test]
fn every_damage_kind_is_detected_and_degraded() {
    const DAMAGE: &[(Damage, &str)] = &[
        (Damage::Truncate { keep: 21 }, "truncate"),
        (Damage::BitFlip { bit: 307 }, "bitflip"),
        (Damage::Rollback, "rollback"),
        (Damage::TornRename, "torn-rename"),
    ];
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        for &(damage, tag) in DAMAGE {
            let g = corpus_graph(&entry, 59);
            let base = RuntimeConfig::new().sim(sim_for(&g, 59)).repair(true).maintain(true);
            let golden = run_mm(&*algo, &g, &base).unwrap();
            let dir = tmpdir(&format!("damage-{tag}-{}", entry.name));
            run_mm(&*algo, &g, &base.clone().checkpoint(CheckpointCfg::new(&dir))).unwrap();
            inject(&dir, damage).unwrap();
            let rep = run_mm(&*algo, &g, &base.clone().restore(&dir))
                .unwrap_or_else(|e| panic!("{}: {tag}: restore errored: {e}", entry.name));
            let outcome = rep.restore.expect("a restored run reports its outcome");
            assert!(
                outcome.degraded(),
                "{}: {tag}: damage was not reported ({outcome})",
                entry.name
            );
            assert_eq!(rep.phase1.restores, 1);
            assert_eq!(rep.phase1.restores_degraded, 1);
            assert_recovered_sound(&entry, &g, &rep, tag);
            // Ratio-equivalence to the golden: same family bound, and
            // the recovered matching never does worse than the
            // uninterrupted run's guarantee witness.
            match entry.kind {
                Kind::WeightedHalf { .. } => assert!(
                    rep.matching.weight(&g) + 1e-9 >= golden.matching.weight(&g),
                    "{}: {tag}: recovery lost weight over the golden",
                    entry.name
                ),
                Kind::Maximal | Kind::BipartiteApprox { .. } => assert!(
                    2 * rep.matching.size() >= golden.matching.size(),
                    "{}: {tag}: recovered matching below the family floor",
                    entry.name
                ),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Leg 4: a run without repair/maintenance leaves exactly one
/// generation; damaging it leaves nothing intact, and restore
/// recomputes from scratch — bit-identical to the uninterrupted run,
/// reported [`RestoreOutcome::ColdStart`].
#[test]
fn unrecoverable_damage_cold_starts_bit_identically() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        let g = corpus_graph(&entry, 71);
        let base = RuntimeConfig::new().sim(sim_for(&g, 71));
        let golden = run_mm(&*algo, &g, &base).unwrap();
        let dir = tmpdir(&format!("coldstart-{}", entry.name));
        run_mm(&*algo, &g, &base.clone().checkpoint(CheckpointCfg::new(&dir))).unwrap();
        let gens = CheckpointStore::open(&dir).generations().unwrap();
        assert_eq!(gens.len(), 1, "{}: a bare run writes one generation", entry.name);
        inject(&dir, Damage::BitFlip { bit: 271 }).unwrap();
        let rep = run_mm(&*algo, &g, &base.clone().restore(&dir)).unwrap();
        assert_eq!(rep.restore, Some(RestoreOutcome::ColdStart), "{}", entry.name);
        assert_eq!(rep.phase1.restores, 1);
        assert_eq!(rep.phase1.restores_degraded, 1);
        let scrubbed = sans_restore_counters(&rep);
        assert_eq!(
            golden.registers, scrubbed.registers,
            "{}: cold start diverged from a fresh run",
            entry.name
        );
        assert_eq!(golden.matching.to_edge_vec(), scrubbed.matching.to_edge_vec());
        assert_eq!(golden.phase1, scrubbed.phase1, "{}: cold-start stats drifted", entry.name);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Leg 5 (the trace-regression satellite): the `Main` boundary is
/// written *before* register lies apply, so restoring it replays the
/// whole tail — lie application, detection, repair, recheck — bit for
/// bit against the uninterrupted golden, on every implementor. Only
/// the `restores` annotation counters (and the restore outcome itself)
/// may differ.
#[test]
fn main_boundary_restore_replays_the_tail_bit_identically() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        let g = corpus_graph(&entry, 83);
        let base = RuntimeConfig::new()
            .sim(sim_for(&g, 83))
            .faults(FaultPlan::default().with_liars(vec![0, 3]))
            .certify(true)
            .repair(true);
        let golden = run_mm(&*algo, &g, &base).unwrap();
        assert!(golden.detected(), "{}: the corpus lies must be detectable", entry.name);
        let dir = tmpdir(&format!("replay-{}", entry.name));
        run_mm(&*algo, &g, &base.clone().checkpoint(CheckpointCfg::new(&dir))).unwrap();
        // Kill the newest (post-repair) generation: the ladder falls
        // back to the Main-boundary snapshot and must replay the tail.
        inject(&dir, Damage::Truncate { keep: 17 }).unwrap();
        let rep = run_mm(&*algo, &g, &base.clone().restore(&dir)).unwrap();
        assert!(rep.restore.expect("restored").degraded());
        let scrubbed = sans_restore_counters(&rep);
        assert_eq!(
            golden.registers, scrubbed.registers,
            "{}: replayed tail diverged from the golden trace",
            entry.name
        );
        assert_eq!(golden.matching.to_edge_vec(), scrubbed.matching.to_edge_vec());
        assert_eq!(golden.detected(), scrubbed.detected());
        assert_eq!(golden.certified(), scrubbed.certified());
        assert_eq!(golden.phase1, scrubbed.phase1, "{}: replayed stats drifted", entry.name);
        let (gr, rr) = (golden.recheck.as_ref().unwrap(), scrubbed.recheck.as_ref().unwrap());
        assert_eq!(gr.flagged, rr.flagged, "{}: recheck verdicts drifted", entry.name);
        assert_eq!(gr.matched, rr.matched);
        assert_eq!(gr.stats, rr.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Leg 6: a snapshot claiming outstanding transport slots cannot come
/// from the runtime's own quiescent-boundary writer — it is tampered
/// or handcrafted. The restore must *not* trust its registers
/// verbatim: the domain-separated heal pass runs, the outcome degrades
/// (never silently clean), and the result is still valid, maximal, and
/// deterministic.
#[test]
fn tampered_session_exports_trigger_the_degraded_heal() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        let g = corpus_graph(&entry, 97);
        let base = RuntimeConfig::new().sim(sim_for(&g, 97)).repair(true).maintain(true);
        let dir = tmpdir(&format!("tamper-{}", entry.name));
        run_mm(&*algo, &g, &base.clone().checkpoint(CheckpointCfg::new(&dir))).unwrap();
        let store = CheckpointStore::open(&dir);
        let mut snap = store.load(&*algo).unwrap().snapshot.expect("intact snapshot");
        snap.sessions[0] = Some(SessionState {
            boot: 7,
            level: 1,
            ports: vec![PortSession {
                peer_boot: None,
                outstanding: 3,
                acked_out: 0,
                recv_ack: 0,
                done: false,
                dead: false,
            }],
        });
        snap.generation += 1;
        store.write(&snap, &*algo).unwrap();
        let rep = run_mm(&*algo, &g, &base.clone().restore(&dir))
            .unwrap_or_else(|e| panic!("{}: tampered restore errored: {e}", entry.name));
        let outcome = rep.restore.expect("restored");
        assert!(outcome.degraded(), "{}: an undrained snapshot was resumed as clean", entry.name);
        assert_recovered_sound(&entry, &g, &rep, "tampered sessions");
        let again = run_mm(&*algo, &g, &base.clone().restore(&dir)).unwrap();
        assert_eq!(
            rep.registers, again.registers,
            "{}: the heal pass is nondeterministic",
            entry.name
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
