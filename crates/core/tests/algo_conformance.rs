//! The cross-algorithm conformance harness: one test surface, driven by
//! `dam_core::runtime::conformance::registry()`, that machine-checks the
//! full [`dam_core::Algorithm`] contract for every portfolio
//! implementor. A future implementor gets every leg below by adding one
//! registry entry.
//!
//! Legs:
//! 1. Bit-identity to the legacy code path (golden replica) across 16
//!    seeds × threads {1, 2, 4} × all three backends — the proof that
//!    the deprecated shims (`bipartite_mcm`, `weighted_mwm`) delegate
//!    without drift.
//! 2. Family invariants ([`Kind`]) at quiescent fault-free points,
//!    against exact oracles.
//! 3. Fault + churn schedules through repair and maintenance: the final
//!    matching is valid and maximal on the final topology, and
//!    bit-stable across thread counts. (Maintenance is Israeli–Itai
//!    based: it restores *maximality*, not the family ratio — see
//!    DESIGN §Algorithm portfolio.)
//! 4. Certify → repair → re-verify round-trips under register lies.
//! 5. Resume-from-sanitized-registers: a fixpoint for the maximal and
//!    bipartite families, weight-monotone for the weighted driver; and
//!    on a residual graph after deaths, valid + maximal-on-residual
//!    where the family promises it.
//! 6. Telemetry non-perturbation: a `RecordingSink` never changes
//!    outputs (PR 7's contract, extended to the whole portfolio).
//!
//! CI runs this file once per implementor via the `ALGO_CONFORMANCE`
//! environment filter (prefix match on entry names).

use dam_congest::transport::TransportCfg;
use dam_congest::{
    Backend, ChurnEvent, ChurnKind, ChurnPlan, FaultPlan, RecordingSink, SimConfig, SinkHandle,
};
use dam_core::maintain::is_maximal_on_present;
use dam_core::repair::is_maximal_on_residual;
use dam_core::runtime::conformance::{filtered_registry, Entry, Kind};
use dam_core::runtime::{repair_registers, run_mm, Algorithm, Exec, MainRun, RuntimeConfig};
use dam_core::CoreError;
use dam_graph::weights::{randomize_weights, WeightDist};
use dam_graph::{generators, BitSet, EdgeId, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The corpus graph an entry is exercised on: bipartite for the
/// bipartite family, weighted for the weighted family, plain G(n, p)
/// otherwise. Small enough for the exact oracles, dense enough to have
/// augmenting structure.
fn corpus_graph(entry: &Entry, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE00 ^ seed);
    if entry.bipartite_input {
        return generators::bipartite_gnp(8, 8, 0.25, &mut rng);
    }
    let base = generators::gnp(16, 0.2, &mut rng);
    if matches!(entry.kind, Kind::WeightedHalf { .. }) {
        randomize_weights(&base, WeightDist::Uniform { lo: 0.2, hi: 5.0 }, &mut rng)
    } else {
        base
    }
}

fn sim_for(g: &Graph, seed: u64) -> SimConfig {
    // 8 words cover the weighted driver's 64-bit gain messages too.
    SimConfig::congest_for(g.node_count(), 8).seed(seed)
}

/// Leg 1: every implementor, on every backend and thread count, is
/// bit-identical to its legacy code-path replica.
#[test]
fn portfolio_is_bit_identical_to_legacy_goldens() {
    const VARIANTS: &[(Backend, usize)] = &[
        (Backend::Sequential, 1),
        (Backend::Sharded, 2),
        (Backend::Sharded, 4),
        (Backend::Async, 1),
    ];
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        for seed in 0..16u64 {
            let g = corpus_graph(&entry, seed);
            let sim = sim_for(&g, seed);
            let want = (entry.golden)(&g, sim).unwrap();
            for &(backend, threads) in VARIANTS {
                let cfg = RuntimeConfig::new().sim(sim.threads(threads).backend(backend));
                let rep = run_mm(&*algo, &g, &cfg).unwrap();
                assert_eq!(
                    rep.registers, want,
                    "{}: seed {seed}, {backend:?} x{threads} diverged from the legacy golden",
                    entry.name
                );
            }
        }
    }
}

/// Leg 2: quiescent fault-free outputs meet their family's bound
/// against the exact oracle.
#[test]
fn quiescent_outputs_meet_family_invariants() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        for seed in 100..106u64 {
            let g = corpus_graph(&entry, seed);
            let cfg = RuntimeConfig::new().sim(sim_for(&g, seed));
            let rep = run_mm(&*algo, &g, &cfg).unwrap();
            entry
                .kind
                .check_quiescent(&g, &rep.matching)
                .unwrap_or_else(|e| panic!("{}: seed {seed}: {e}", entry.name));
        }
    }
}

/// Leg 3: a fault + churn schedule through the full pipeline ends valid
/// and maximal on the final topology, identically across thread counts.
/// Loss is always paired with the resilient transport (bare lossy runs
/// of a free node can livelock by design).
#[test]
fn faulted_runs_end_valid_and_maximal_after_maintenance() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        for seed in 200..203u64 {
            let g = corpus_graph(&entry, seed);
            let n = g.node_count();
            let faults = FaultPlan { loss: 0.02, ..FaultPlan::crashes(vec![(1, 3)]) };
            let churn = ChurnPlan::events(vec![
                ChurnEvent { round: 2, kind: ChurnKind::EdgeDown { edge: 0 } },
                ChurnEvent { round: 4, kind: ChurnKind::Leave { node: n - 1 } },
            ]);
            let cfg = RuntimeConfig::new()
                .sim(sim_for(&g, seed))
                .transport(TransportCfg::default())
                .faults(faults)
                .churn(churn)
                .repair(true)
                .maintain(true);
            let rep = run_mm(&*algo, &g, &cfg).unwrap();
            rep.matching.validate(&g).unwrap();
            assert!(
                is_maximal_on_present(&g, &rep.matching, &rep.node_present, &rep.edge_present),
                "{}: seed {seed}: not maximal on the final topology",
                entry.name
            );
            for e in rep.matching.to_edge_vec() {
                let (a, b) = g.endpoints(e);
                assert!(
                    rep.node_present[a] && rep.node_present[b] && rep.edge_present[e],
                    "{}: seed {seed}: matched edge {e} outside the final topology",
                    entry.name
                );
            }
            // Determinism and thread-independence of the whole pipeline.
            let again = run_mm(&*algo, &g, &cfg).unwrap();
            assert_eq!(rep.registers, again.registers, "{}: nondeterministic", entry.name);
            let par = run_mm(&*algo, &g, &cfg.clone().threads(4)).unwrap();
            assert_eq!(
                rep.registers, par.registers,
                "{}: thread count changed the pipeline result",
                entry.name
            );
        }
    }
}

/// Leg 4: register lies are detected by the certification layer, and a
/// repair re-certifies, for every implementor.
#[test]
fn certify_repair_recertify_round_trips() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        let g = corpus_graph(&entry, 7);
        let cfg = RuntimeConfig::new()
            .sim(sim_for(&g, 7))
            .faults(FaultPlan::default().with_liars(vec![0, 3]))
            .certify(true)
            .repair(true);
        let rep = run_mm(&*algo, &g, &cfg).unwrap();
        assert!(rep.detected(), "{}: lies were not detected", entry.name);
        assert!(rep.certified(), "{}: repair did not re-certify", entry.name);
        assert!(rep.recheck.is_some());
        rep.matching.validate(&g).unwrap();
    }
}

/// Leg 5a: resume from an already-quiescent register state. Maximal and
/// bipartite implementors must return it unchanged (no augmenting
/// structure remains); the weighted driver must stay valid and
/// weight-monotone.
#[test]
fn resume_from_quiescent_registers_is_idempotent() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        for seed in 300..304u64 {
            let g = corpus_graph(&entry, seed);
            let sim = sim_for(&g, seed);
            let rep = run_mm(&*algo, &g, &RuntimeConfig::new().sim(sim)).unwrap();
            let alive = BitSet::filled(g.node_count(), true);
            let rr = repair_registers(
                &*algo,
                &g,
                &rep.registers,
                &alive,
                &FaultPlan::default(),
                None,
                None,
                sim,
            )
            .unwrap();
            assert_eq!(rr.dissolved, 0, "{}: quiescent registers were dissolved", entry.name);
            if entry.resume_fixpoint {
                assert_eq!(
                    rr.matching.to_edge_vec(),
                    rep.matching.to_edge_vec(),
                    "{}: seed {seed}: resume from a quiescent state is not a fixpoint",
                    entry.name
                );
                assert_eq!(rr.added, 0);
            } else {
                rr.matching.validate(&g).unwrap();
                assert!(
                    rr.matching.weight(&g) + 1e-9 >= rep.matching.weight(&g),
                    "{}: seed {seed}: resume decreased the matching weight",
                    entry.name
                );
            }
        }
    }
}

/// Leg 5b: resume on a residual graph after deaths: the healed matching
/// is valid, avoids the dead, keeps the surviving edges' guarantee
/// (maximal-on-residual for the maximal and bipartite families, weight
/// no worse than the surviving matching for the weighted family).
#[test]
fn resume_heals_register_damage_after_deaths() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        for seed in 400..403u64 {
            let g = corpus_graph(&entry, seed);
            let sim = sim_for(&g, seed);
            let rep = run_mm(&*algo, &g, &RuntimeConfig::new().sim(sim)).unwrap();
            let mut alive = BitSet::filled(g.node_count(), true);
            alive.set(0, false);
            alive.set(g.node_count() / 2, false);
            let surviving_weight: f64 = rep
                .matching
                .to_edge_vec()
                .iter()
                .filter(|&&e| {
                    let (a, b) = g.endpoints(e);
                    alive[a] && alive[b]
                })
                .map(|&e| g.weight(e))
                .sum();
            let rr = repair_registers(
                &*algo,
                &g,
                &rep.registers,
                &alive,
                &FaultPlan::default(),
                None,
                None,
                sim,
            )
            .unwrap();
            rr.matching.validate(&g).unwrap();
            for e in rr.matching.to_edge_vec() {
                let (a, b) = g.endpoints(e);
                assert!(alive[a] && alive[b], "{}: healed matching touches the dead", entry.name);
            }
            match entry.kind {
                Kind::Maximal | Kind::BipartiteApprox { .. } => {
                    // k ≥ 2 exhausts length-1 paths, so both families
                    // promise maximality on the residual graph.
                    assert!(
                        is_maximal_on_residual(&g, &rr.matching, &alive.to_bools()),
                        "{}: seed {seed}: healed matching not maximal on the residual graph",
                        entry.name
                    );
                }
                Kind::WeightedHalf { .. } => {
                    assert!(
                        rr.matching.weight(&g) + 1e-9 >= surviving_weight,
                        "{}: seed {seed}: healing lost weight over the surviving matching",
                        entry.name
                    );
                }
            }
        }
    }
}

/// Leg 6 (satellite 4): attaching a `RecordingSink` never perturbs any
/// implementor — outputs, registers, and stats are bit-identical, and
/// the sink records one sample per engine round of the main run.
#[test]
fn telemetry_sink_does_not_perturb_any_implementor() {
    for entry in filtered_registry() {
        let algo = entry.spec.build();
        let g = corpus_graph(&entry, 11);
        let base = RuntimeConfig::new().sim(sim_for(&g, 11));
        let plain = run_mm(&*algo, &g, &base.clone()).unwrap();
        let sink = Arc::new(RecordingSink::new());
        let observed = run_mm(&*algo, &g, &base.stats_sink(SinkHandle::new(sink.clone()))).unwrap();
        assert_eq!(plain.registers, observed.registers, "{}: sink perturbed registers", entry.name);
        assert_eq!(
            plain.matching.to_edge_vec(),
            observed.matching.to_edge_vec(),
            "{}: sink perturbed the matching",
            entry.name
        );
        assert_eq!(plain.phase1, observed.phase1, "{}: sink perturbed stats", entry.name);
        assert_eq!(plain.totals, observed.totals);
        assert!(!sink.samples().is_empty(), "{}: sink recorded nothing", entry.name);
    }
}

/// An implementor that is `LubyMatching` in everything but name — for
/// the satellite-2 regression below.
struct Renamed;

impl Algorithm for Renamed {
    fn name(&self) -> &'static str {
        "renamed-luby"
    }

    fn run(&self, exec: &mut Exec<'_>) -> Result<MainRun, CoreError> {
        dam_core::LubyMatching.run(exec)
    }

    fn resume(
        &self,
        exec: &mut Exec<'_>,
        registers: &[Option<EdgeId>],
    ) -> Result<MainRun, CoreError> {
        dam_core::LubyMatching.resume(exec, registers)
    }
}

/// Satellite-2 regression: the repair phase's randomness is keyed by
/// `Algorithm::name()`. Two drivers with identical phase structure but
/// different names draw *different* streams from the same master seed;
/// the same driver replays identically.
#[test]
fn repair_randomness_is_domain_separated_by_algorithm_name() {
    let mut rng = StdRng::seed_from_u64(99);
    let g = generators::gnp(40, 0.15, &mut rng);
    let mut alive = BitSet::filled(g.node_count(), true);
    alive.set(5, false);
    let registers = vec![None; g.node_count()];
    let sim = SimConfig::congest_for(g.node_count(), 8).seed(7);
    let run = |algo: &dyn Algorithm| {
        repair_registers(algo, &g, &registers, &alive, &FaultPlan::default(), None, None, sim)
            .unwrap()
    };
    let a = run(&dam_core::LubyMatching);
    let b = run(&Renamed);
    let c = run(&dam_core::LubyMatching);
    assert_eq!(a.matching.to_edge_vec(), c.matching.to_edge_vec(), "same name must replay");
    assert_eq!(a.stats, c.stats);
    assert!(
        a.matching.to_edge_vec() != b.matching.to_edge_vec() || a.stats != b.stats,
        "different algorithm names on the same seed must draw independent randomness"
    );
}
