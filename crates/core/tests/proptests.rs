//! Property-based tests for the distributed algorithms.

use dam_congest::{BitSize, CorruptKind, FaultPlan};
use dam_core::auction::{auction_mwm, AuctionConfig};
use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam_core::certify::{certify, check_registers};
use dam_core::hv::{hv_mwm, HvMwmConfig};
use dam_core::israeli_itai::IiMsg;
use dam_core::luby::{is_mis, luby_mis};
use dam_core::repair::{
    is_maximal_on_residual, repair_matching, sanitize_registers, self_healing_mm, RepairConfig,
};
use dam_core::trees::tree_mcm;
use dam_graph::{blossom, brute, hopcroft_karp, Graph, GraphBuilder, Matching, Side};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random bipartite graph with recorded bipartition.
fn arb_bipartite(max_half: usize) -> impl Strategy<Value = Graph> {
    (1usize..=max_half, 1usize..=max_half).prop_flat_map(|(a, b)| {
        let pairs: Vec<(usize, usize)> =
            (0..a).flat_map(|u| (a..a + b).map(move |v| (u, v))).collect();
        let m = pairs.len();
        proptest::collection::vec(0..m, 0..(2 * (a + b)).min(m)).prop_map(move |picks| {
            let mut builder = GraphBuilder::new(a + b);
            let mut seen = std::collections::HashSet::new();
            for i in picks {
                if seen.insert(i) {
                    builder.edge(pairs[i].0, pairs[i].1);
                }
            }
            builder
                .bipartition((0..a + b).map(|v| if v < a { Side::X } else { Side::Y }).collect());
            builder.build().expect("bipartite graph")
        })
    })
}

/// Random forest: a union of random trees over a node permutation.
fn arb_forest(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            // With probability 1/4 start a new component.
            if !rng.random_bool(0.25) {
                let parent = rng.random_range(0..v);
                b.edge(parent, v);
            }
        }
        b.build().expect("forest")
    })
}

/// Random small weighted graph (integer weights, exact arithmetic).
fn arb_weighted(max_n: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(move |n| {
        let all: Vec<(usize, usize)> =
            (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
        let m = all.len();
        (
            proptest::collection::vec(0..m, 0..max_edges.min(m)),
            proptest::collection::vec(1u32..32, max_edges.min(m)),
        )
            .prop_map(move |(picks, ws)| {
                let mut b = GraphBuilder::new(n);
                let mut seen = std::collections::HashSet::new();
                for (idx, i) in picks.into_iter().enumerate() {
                    if seen.insert(i) {
                        b.weighted_edge(all[i].0, all[i].1, f64::from(ws[idx % ws.len()]));
                    }
                }
                b.force_weighted();
                b.build().expect("weighted graph")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 3.10 floor on arbitrary bipartite graphs.
    #[test]
    fn bipartite_ratio_floor(g in arb_bipartite(8), k in 2usize..5, seed in 0u64..100) {
        let r = bipartite_mcm(&g, &BipartiteMcmConfig { k, seed, ..Default::default() }).unwrap();
        prop_assert!(r.matching.validate(&g).is_ok());
        let opt = hopcroft_karp::maximum_bipartite_matching_size(&g);
        prop_assert!(
            r.matching.size() as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9,
            "size {} vs bound (1-1/{})·{}", r.matching.size(), k, opt
        );
    }

    /// The auction's `n·ε` optimality bound on arbitrary bipartite
    /// weighted graphs.
    #[test]
    fn auction_eps_bound(g in arb_bipartite(6), seed in 0u64..100) {
        // Give the bipartite graph integer weights deterministically.
        let weights: Vec<f64> = g.edge_ids().map(|e| ((e * 7 + 3) % 10 + 1) as f64).collect();
        let g = if g.edge_count() > 0 { g.with_weights(weights).unwrap() } else { g };
        let eps = 0.05;
        let r = auction_mwm(&g, &AuctionConfig { eps, seed, ..Default::default() }).unwrap();
        prop_assert!(r.matching.validate(&g).is_ok());
        let opt = brute::maximum_weight(&g);
        let slack = g.node_count() as f64 * eps;
        prop_assert!(
            r.matching.weight(&g) >= opt - slack - 1e-9,
            "auction {} vs opt {} (slack {})",
            r.matching.weight(&g), opt, slack
        );
    }

    /// The tree protocol is exactly optimal on arbitrary forests.
    #[test]
    fn trees_exact_on_forests(g in arb_forest(24), seed in 0u64..100) {
        let r = tree_mcm(&g, seed).unwrap();
        prop_assert!(r.matching.validate(&g).is_ok());
        prop_assert_eq!(r.matching.size(), blossom::maximum_matching_size(&g));
    }

    /// Luby's MIS output is a maximal independent set on arbitrary
    /// graphs and seeds.
    #[test]
    fn luby_is_mis_everywhere(g in arb_weighted(14, 28), seed in 0u64..100) {
        let mis = luby_mis(&g, seed).unwrap();
        prop_assert!(is_mis(&g, &mis.in_mis));
    }

    /// Lemma 4.1 directly: for any matching `M` and any disjoint
    /// matching `M'` of positive-gain edges, applying all wraps yields a
    /// matching of weight at least `w(M) + w_M(M')`.
    #[test]
    fn lemma_4_1_gain_inequality(g in arb_weighted(10, 20), pick_seed in 0u64..1000) {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let mut rng = StdRng::seed_from_u64(pick_seed);
        // M: greedy over a random order.
        let mut order: Vec<usize> = g.edge_ids().collect();
        order.shuffle(&mut rng);
        let mut m = Matching::new(&g);
        for &e in &order {
            let (u, v) = g.endpoints(e);
            if m.is_free(u) && m.is_free(v) {
                let _ = m.add(&g, e);
            }
        }
        // Drop half of M so gains exist.
        for e in m.to_edge_vec().into_iter().step_by(2) {
            m.remove(&g, e);
        }
        // Gains w_M.
        let gain = |e: usize| -> f64 {
            let (u, v) = g.endpoints(e);
            let mu = m.matched_edge(u).map_or(0.0, |f| g.weight(f));
            let mv = m.matched_edge(v).map_or(0.0, |f| g.weight(f));
            g.weight(e) - mu - mv
        };
        // M': greedy matching over positive-gain non-M edges.
        let mut mp: Vec<usize> = Vec::new();
        let mut used = vec![false; g.node_count()];
        order.shuffle(&mut rng);
        for &e in &order {
            if m.contains(e) || gain(e) <= 0.0 {
                continue;
            }
            let (u, v) = g.endpoints(e);
            if !used[u] && !used[v] {
                used[u] = true;
                used[v] = true;
                mp.push(e);
            }
        }
        let gain_sum: f64 = mp.iter().map(|&e| gain(e)).sum();
        // Apply all wraps.
        let mut m2 = m.clone();
        for &e in &mp {
            let (u, v) = g.endpoints(e);
            if let Some(f) = m2.matched_edge(u) {
                m2.remove(&g, f);
            }
            if let Some(f) = m2.matched_edge(v) {
                m2.remove(&g, f);
            }
            prop_assert!(m2.add(&g, e).is_ok(), "Lemma 4.1: M'' must be a matching");
        }
        prop_assert!(m2.validate(&g).is_ok());
        prop_assert!(
            m2.weight(&g) >= m.weight(&g) + gain_sum - 1e-9,
            "w(M'') = {} < w(M) + w_M(M') = {}",
            m2.weight(&g),
            m.weight(&g) + gain_sum
        );
    }
}

/// Random sparse `G(n, c/n)` graph, sized for fault-injection runs.
fn arb_gnp(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n, 0u64..1000).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        dam_graph::generators::gnp(n, 3.0 / n as f64, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `is_maximal_on_residual` agrees with brute force — try to extend
    /// the matching by every edge whose endpoints are both alive — on
    /// random graphs up to 12 nodes, including the all-dead and no-dead
    /// corners (forced by `mode` 0/1 so proptest cannot skip them).
    #[test]
    fn residual_maximality_matches_brute_force(
        n in 1usize..=12,
        edge_seed in 0u64..1000,
        pick_seed in 0u64..1000,
        mode in 0u8..3,
    ) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(edge_seed);
        let g = dam_graph::generators::gnp(n, 0.35, &mut rng);
        let mut rng = StdRng::seed_from_u64(pick_seed);
        // A random valid (not necessarily maximal) matching.
        let mut m = Matching::new(&g);
        for e in g.edge_ids() {
            if rng.random_bool(0.4) {
                let _ = m.add(&g, e);
            }
        }
        let alive: Vec<bool> = match mode {
            0 => vec![true; n],  // no-dead corner
            1 => vec![false; n], // all-dead corner
            _ => (0..n).map(|_| rng.random_bool(0.6)).collect(),
        };
        let brute_extendable = g.edge_ids().any(|e| {
            let (a, b) = g.endpoints(e);
            alive[a] && alive[b] && {
                let mut m2 = m.clone();
                m2.add(&g, e).is_ok()
            }
        });
        prop_assert_eq!(is_maximal_on_residual(&g, &m, &alive), !brute_extendable);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The self-healing pipeline on arbitrary graphs under arbitrary
    /// link faults and crash/recovery schedules: the repaired output is
    /// always a valid matching, never smaller than the surviving
    /// consistent matching, maximal on the residual graph, and leaves
    /// every dead node free.
    #[test]
    fn self_healing_always_valid_and_monotone(
        g in arb_gnp(20),
        loss in 0.0..0.25f64,
        dup in 0.0..0.1f64,
        reorder in 0.0..0.3f64,
        crash_seed in 0u64..1000,
        seed in 0u64..100,
    ) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let n = g.node_count();
        let mut rng = StdRng::seed_from_u64(crash_seed);
        let mut crashes = Vec::new();
        let mut recoveries = Vec::new();
        for v in 0..n {
            if rng.random_bool(0.15) {
                crashes.push((v, 1 + rng.random_range(0..15)));
                // Some crashed nodes reboot (with wiped state) later.
                if rng.random_bool(0.3) {
                    recoveries.push((v, 40 + rng.random_range(0..20)));
                }
            }
        }
        let plan = FaultPlan { crashes, recoveries, loss, dup, reorder, ..FaultPlan::default() };
        let cfg = RepairConfig { seed, ..RepairConfig::default() };
        let rep = self_healing_mm(&g, &plan, &cfg).unwrap();

        prop_assert!(rep.matching.validate(&g).is_ok());
        prop_assert!(
            rep.matching.size() >= rep.surviving,
            "repair must keep the surviving matching: {} < {}",
            rep.matching.size(), rep.surviving
        );
        let mut alive = vec![true; n];
        for &v in &rep.dead {
            alive[v] = false;
        }
        prop_assert!(is_maximal_on_residual(&g, &rep.matching, &alive));
        for &v in &rep.dead {
            prop_assert!(rep.matching.is_free(v), "dead node {v} must end free");
        }
    }

    /// Register sanitation + repair from *arbitrary garbage registers*
    /// (dangling, asymmetric, out-of-range, non-incident): the surviving
    /// consistent matching is exactly what sanitation reports, every
    /// surviving edge is kept, and the result is maximal on the
    /// residual graph.
    #[test]
    fn repair_heals_arbitrary_registers(
        g in arb_gnp(16),
        reg_seed in 0u64..1000,
        alive_seed in 0u64..1000,
        loss in 0.0..0.2f64,
        seed in 0u64..100,
    ) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let n = g.node_count();
        let m = g.edge_count();
        let mut rng = StdRng::seed_from_u64(reg_seed);
        // Registers with all failure modes: None, valid edges, dangling
        // claims, and out-of-range ids (m..m+3).
        let registers: Vec<Option<usize>> = (0..n)
            .map(|_| rng.random_bool(0.5).then(|| rng.random_range(0..m + 3)))
            .collect();
        let mut rng = StdRng::seed_from_u64(alive_seed);
        let alive: Vec<bool> = (0..n).map(|_| rng.random_bool(0.85)).collect();

        let plan = FaultPlan { loss, ..FaultPlan::default() };
        let cfg = RepairConfig { seed, ..RepairConfig::default() };
        let san = sanitize_registers(&g, &registers, &alive);
        let rep = repair_matching(&g, &registers, &alive, &plan, &cfg).unwrap();

        prop_assert!(rep.matching.validate(&g).is_ok());
        prop_assert_eq!(rep.surviving, san.surviving);
        for (v, (&reg, &al)) in san.registers.iter().zip(&alive).enumerate() {
            if let Some(e) = reg {
                prop_assert!(rep.matching.contains(e), "surviving edge {e} was dropped");
            }
            if !al {
                prop_assert!(rep.matching.is_free(v), "dead node {v} must end free");
            }
        }
        prop_assert!(is_maximal_on_residual(&g, &rep.matching, &alive));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The HV algorithm run to exhaustion with unbounded length equals
    /// the exact maximum weight matching (local optimality ⇔ global
    /// optimality for matchings).
    #[test]
    fn hv_exhaustion_is_optimal(g in arb_weighted(7, 12), seed in 0u64..50) {
        let n = g.node_count();
        let cfg = HvMwmConfig { max_len: Some(2 * n + 1), seed, ..Default::default() };
        let r = hv_mwm(&g, &cfg).unwrap();
        prop_assert!(r.matching.validate(&g).is_ok());
        let opt = brute::maximum_weight(&g);
        prop_assert!(
            (r.matching.weight(&g) - opt).abs() < 1e-9,
            "HV exhaustion {} vs optimum {}",
            r.matching.weight(&g),
            opt
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Decode robustness: the 2-bit Israeli–Itai codewords survive
    /// arbitrary corruption chains without panicking, and the structured
    /// kinds decode exactly as documented (replays are identities,
    /// truncation destroys the codeword, forgeries read as acceptances).
    #[test]
    fn ii_codewords_decode_defensively(
        seed in any::<u64>(),
        picks in proptest::collection::vec(0usize..CorruptKind::ALL.len(), 1..8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for start in [IiMsg::Propose, IiMsg::Accept, IiMsg::Dead] {
            let mut cur = Some(start);
            for &i in &picks {
                let kind = CorruptKind::ALL[i];
                let Some(msg) = cur else { break };
                let next = msg.corrupted(kind, &mut rng);
                match kind {
                    CorruptKind::Replay => prop_assert_eq!(next, Some(msg)),
                    CorruptKind::Truncate => prop_assert_eq!(next, None),
                    CorruptKind::Forge => prop_assert_eq!(next, Some(IiMsg::Accept)),
                    // BitFlip and Garbage land on any codeword, or on
                    // the unused `11` point and are dropped: any result
                    // is in the message's value space by construction.
                    CorruptKind::BitFlip | CorruptKind::Garbage => {}
                }
                cur = next;
            }
        }
    }

    /// The distributed proof-labeling checker and its centralized twin
    /// agree verdict-for-verdict on arbitrarily damaged register arrays
    /// (out-of-range edges, asymmetric claims, absences), never panic,
    /// and always finish in the constant detection window.
    #[test]
    fn certification_agrees_with_centralized_checker(
        n in 2usize..14,
        p in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = dam_graph::generators::gnp(n, p, &mut rng);
        let m = g.edge_count();
        let registers: Vec<Option<dam_graph::EdgeId>> = (0..n)
            .map(|v| match rng.random_range(0..4u8) {
                0 => None,
                // A claim on some edge of the graph (often not incident).
                1 => Some(rng.random_range(0..m.max(1))),
                // A claim on an edge that does not exist at all.
                2 => Some(m + rng.random_range(0..3)),
                // A claim on a genuinely incident edge: exercises the
                // symmetric-agreement and asymmetry paths.
                _ => {
                    let inc: Vec<_> = g.incident(v).map(|(_, _, e)| e).collect();
                    if inc.is_empty() {
                        None
                    } else {
                        Some(inc[rng.random_range(0..inc.len())])
                    }
                }
            })
            .collect();
        let present: Vec<bool> = (0..n).map(|_| rng.random_bool(0.85)).collect();
        let cert = certify(&g, &registers, &present, seed).unwrap();
        prop_assert_eq!(&cert.verdicts, &check_registers(&g, &registers, &present));
        prop_assert!(cert.detection_rounds <= 2, "detection must stay in the constant window");
        prop_assert_eq!(cert.ok(), cert.flagged.is_empty());
    }
}
