//! Differential proptests for the implicit-topology layer: every
//! [`ImplicitTopology`] family must be **bit-identical** to its
//! materialized CSR twin through the whole stack. The engine only ever
//! sees a `&dyn Topology`, so a correct implicit implementor — same
//! degrees, same port order, same endpoints — must produce the same
//! port wiring, hence byte-equal runs:
//!
//! * the structural view itself (degrees, ports, endpoints, neighbor
//!   order) agrees with [`materialize`]'s CSR graph;
//! * [`run_mm`] reports agree — matching, registers, presence masks,
//!   and per-phase [`RunStats`] — across the sequential, sharded, and
//!   async backends;
//! * the full middleware pipeline (faults + repair + maintenance)
//!   agrees, masks included;
//! * engine traces are event-for-event equal.
//!
//! [`materialize`]: dam_graph::materialize
//! [`RunStats`]: dam_congest::RunStats

use dam_congest::{
    Backend, ChurnKind, ChurnPlan, FaultPlan, Network, Resilient, SimConfig, TransportCfg,
};
use dam_core::israeli_itai::IiNode;
use dam_core::runtime::{run_mm, IsraeliItai, RunReport, RuntimeConfig};
use dam_graph::{materialize, ImplicitTopology, NodeId, Topology};
use proptest::prelude::*;

/// Every implicit family at arbitrary (small) sizes: rings, tori,
/// circulants with even and odd degree, and keyed-hash G(n, p).
fn topo_strategy() -> impl Strategy<Value = ImplicitTopology> {
    let params = (
        (0usize..4, 4usize..48, any::<u64>()),
        (3usize..8, 3usize..8),
        // n = 2·half keeps n even, so both parities of d are legal.
        (3usize..16, 1usize..5),
        10u32..80,
    );
    params.prop_map(|((kind, n, s), (w, h), (half, d), p)| {
        let spec = match kind {
            0 => format!("ring:{n}"),
            1 => format!("torus:{w}x{h}"),
            2 => format!("reg:{}:{d}", 2 * half),
            _ => format!("gnp:{n}:0.{p}:{s}"),
        };
        ImplicitTopology::parse(&spec).expect("generated specs are well-formed")
    })
}

/// The three engine backends under test, configured for `seed`.
fn backends(seed: u64) -> [SimConfig; 3] {
    [
        SimConfig::local().seed(seed),
        SimConfig::local().seed(seed).backend(Backend::Sharded).threads(4),
        SimConfig::local().seed(seed).backend(Backend::Async),
    ]
}

/// A small seed-derived fault + churn schedule that exercises the
/// repair and maintenance masks without killing the whole graph.
fn schedule(seed: u64, topo: &dyn Topology) -> (FaultPlan, ChurnPlan) {
    let n = topo.node_count();
    let m = topo.edge_count();
    let v = seed as usize;
    let faults = FaultPlan { loss: 0.05, crashes: vec![(v % n, 2)], ..FaultPlan::default() };
    // A sparse G(n, p) draw can come out edgeless; churn only applies
    // when there is an edge to flap.
    let churn = if m == 0 {
        ChurnPlan::default()
    } else {
        ChurnPlan::default()
            .with_event(2, ChurnKind::EdgeDown { edge: v % m })
            .with_event(5, ChurnKind::EdgeUp { edge: v % m })
    };
    (faults, churn)
}

fn assert_reports_eq(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec(), "{ctx}: edges");
    assert_eq!(a.registers, b.registers, "{ctx}: registers");
    assert_eq!(a.node_present, b.node_present, "{ctx}: node presence mask");
    assert_eq!(a.edge_present, b.edge_present, "{ctx}: edge presence mask");
    assert_eq!(a.excluded, b.excluded, "{ctx}: excluded");
    assert_eq!(a.phase1, b.phase1, "{ctx}: phase-1 stats");
    assert_eq!(a.repair, b.repair, "{ctx}: repair stats");
    assert_eq!(a.maintain, b.maintain, "{ctx}: maintenance stats");
    assert_eq!(
        (a.surviving, a.dissolved, a.added, a.iterations),
        (b.surviving, b.dissolved, b.added, b.iterations),
        "{ctx}: counters"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The structural contract: an implicit topology and its CSR twin
    /// present the same graph — node for node, port for port.
    #[test]
    fn implicit_structure_matches_the_csr_twin(topo in topo_strategy()) {
        let g = materialize(&topo).expect("small topologies materialize");
        prop_assert_eq!(g.node_count(), topo.node_count());
        prop_assert_eq!(g.edge_count(), topo.edge_count());
        prop_assert_eq!(g.max_degree(), topo.max_degree());
        prop_assert_eq!(g.is_weighted(), topo.is_weighted());
        for v in 0..topo.node_count() {
            prop_assert_eq!(g.degree(v), topo.degree(v), "degree of {}", v);
            prop_assert_eq!(g.side_of(v), topo.side_of(v), "side of {}", v);
            let csr: Vec<_> = g.incident(v).collect();
            let imp: Vec<_> = topo.incident(v).collect();
            prop_assert_eq!(csr, imp, "incident list of {}", v);
        }
        for e in 0..topo.edge_count() {
            prop_assert_eq!(g.endpoints(e), topo.endpoints(e), "endpoints of {}", e);
            prop_assert!((g.weight(e) - topo.weight(e)).abs() < 1e-12, "weight of {}", e);
        }
    }

    /// The bare pipeline is bit-identical on all three backends: same
    /// matching, registers, masks, and stats from the implicit view as
    /// from its materialized twin.
    #[test]
    fn run_mm_is_bit_identical_on_every_backend(
        topo in topo_strategy(),
        seed in any::<u64>(),
    ) {
        let g = materialize(&topo).expect("small topologies materialize");
        for sim in backends(seed) {
            let cfg = RuntimeConfig::new().sim(sim);
            let imp = run_mm(&IsraeliItai, &topo, &cfg).expect("implicit run");
            let csr = run_mm(&IsraeliItai, &g, &cfg).expect("csr run");
            assert_reports_eq(&imp, &csr, &format!("{:?} seed {seed}", sim.backend));
        }
    }

    /// The full middleware stack — faults, transport hardening, repair,
    /// churn maintenance — agrees too, presence masks included.
    #[test]
    fn middleware_stack_is_bit_identical(
        topo in topo_strategy(),
        seed in any::<u64>(),
    ) {
        let g = materialize(&topo).expect("small topologies materialize");
        let (faults, churn) = schedule(seed, &topo);
        let cfg = RuntimeConfig::new()
            .sim(SimConfig::local().seed(seed))
            .transport(TransportCfg::default())
            .faults(faults)
            .churn(churn)
            .repair(true)
            .maintain(true);
        let imp = run_mm(&IsraeliItai, &topo, &cfg).expect("implicit run");
        let csr = run_mm(&IsraeliItai, &g, &cfg).expect("csr run");
        assert_reports_eq(&imp, &csr, &format!("middleware seed {seed}"));
    }

    /// Engine traces are event-for-event equal: the implicit view wires
    /// the same ports in the same order, so even the message-level
    /// transcript of a run cannot tell the two apart.
    #[test]
    fn engine_traces_are_event_for_event_equal(
        topo in topo_strategy(),
        seed in any::<u64>(),
    ) {
        let g = materialize(&topo).expect("small topologies materialize");
        let (faults, churn) = schedule(seed, &topo);
        let make = |v: NodeId, graph: &dyn Topology| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        };
        let (imp_out, imp_trace) = Network::new(&topo, SimConfig::local().seed(seed))
            .execute_plan_traced(make, &faults, &churn)
            .expect("implicit run");
        let (csr_out, csr_trace) = Network::new(&g, SimConfig::local().seed(seed))
            .execute_plan_traced(make, &faults, &churn)
            .expect("csr run");
        prop_assert_eq!(imp_out.outputs, csr_out.outputs, "outputs");
        prop_assert_eq!(imp_out.stats, csr_out.stats, "stats");
        prop_assert_eq!(imp_trace.events(), csr_trace.events(), "trace events");
    }
}
