//! Property tests for [`Algorithm::resume`] under random interruption,
//! driven by the conformance registry — every portfolio implementor is
//! exercised on every case, so a new implementor inherits these
//! properties by registration alone.
//!
//! The machine-checkable form of "interrupt + resume equals an
//! uninterrupted run on the residual graph":
//!
//! * healing a randomly killed run is valid, avoids the dead, and keeps
//!   the family's guarantee on the residual graph (maximality for the
//!   maximal and bipartite families, surviving weight for the weighted
//!   driver);
//! * the per-family progress measure is monotone across the resume
//!   (surviving edges / cardinality / weight);
//! * resume is deterministic, and a second resume of an already-healed
//!   state is a fixpoint wherever the family promises one.

use dam_congest::{FaultPlan, SimConfig};
use dam_core::repair::{is_maximal_on_residual, sanitize_registers};
use dam_core::runtime::conformance::{registry, Entry, Kind};
use dam_core::runtime::{repair_registers, run_mm, RuntimeConfig};
use dam_graph::weights::{randomize_weights, WeightDist};
use dam_graph::{generators, BitSet, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A small corpus graph fitting the entry's input family.
fn corpus(entry: &Entry, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(0xAB5E_17ED ^ seed);
    if entry.bipartite_input {
        return generators::bipartite_gnp(5, 5, 0.3, &mut rng);
    }
    let base = generators::gnp(12, 0.25, &mut rng);
    if matches!(entry.kind, Kind::WeightedHalf { .. }) {
        randomize_weights(&base, WeightDist::Uniform { lo: 0.5, hi: 4.0 }, &mut rng)
    } else {
        base
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill a random node subset after a completed run, resume, and
    /// check every family guarantee on the residual graph — for every
    /// registered implementor.
    #[test]
    fn resume_heals_random_interruptions_per_implementor(
        graph_seed in 0u64..1000,
        kill_seed in 0u64..1000,
        sim_seed in 0u64..100,
    ) {
        for entry in registry() {
            let algo = entry.spec.build();
            let g = corpus(&entry, graph_seed);
            let n = g.node_count();
            let sim = SimConfig::congest_for(n, 8).seed(sim_seed);
            let rep = run_mm(&*algo, &g, &RuntimeConfig::new().sim(sim)).unwrap();

            let mut rng = StdRng::seed_from_u64(kill_seed);
            let alive: Vec<bool> = (0..n).map(|_| rng.random_bool(0.75)).collect();
            let alive_mask = BitSet::from_bools(&alive);
            let sane = sanitize_registers(&g, &rep.registers, &alive);
            let surviving_weight: f64 = sane
                .registers
                .iter()
                .flatten()
                .map(|&e| g.weight(e))
                .sum::<f64>()
                / 2.0; // each surviving edge is claimed by both endpoints

            let rr = repair_registers(
                &*algo, &g, &rep.registers, &alive_mask, &FaultPlan::default(), None, None, sim,
            )
            .unwrap();
            prop_assert!(rr.matching.validate(&g).is_ok(), "{}: invalid heal", entry.name);
            for e in rr.matching.to_edge_vec() {
                let (a, b) = g.endpoints(e);
                prop_assert!(alive[a] && alive[b], "{}: matched a dead node", entry.name);
            }
            match entry.kind {
                Kind::Maximal => {
                    // Surviving edges are kept verbatim, and the heal is
                    // maximal on the residual graph.
                    for e in sane.registers.iter().flatten() {
                        prop_assert!(
                            rr.matching.contains(*e),
                            "{}: surviving edge {e} dropped", entry.name
                        );
                    }
                    prop_assert!(
                        is_maximal_on_residual(&g, &rr.matching, &alive),
                        "{}: heal not maximal on residual", entry.name
                    );
                }
                Kind::BipartiteApprox { .. } => {
                    // Augmentation may flip surviving edges but never
                    // shrinks the matching; length-1 exhaustion implies
                    // residual maximality.
                    prop_assert!(
                        rr.matching.size() >= sane.surviving,
                        "{}: heal shrank the matching", entry.name
                    );
                    prop_assert!(
                        is_maximal_on_residual(&g, &rr.matching, &alive),
                        "{}: heal not maximal on residual", entry.name
                    );
                }
                Kind::WeightedHalf { .. } => {
                    prop_assert!(
                        rr.matching.weight(&g) + 1e-9 >= surviving_weight,
                        "{}: heal lost weight ({} < {})",
                        entry.name, rr.matching.weight(&g), surviving_weight
                    );
                }
            }

            // Resume is deterministic.
            let again = repair_registers(
                &*algo, &g, &rep.registers, &alive_mask, &FaultPlan::default(), None, None, sim,
            )
            .unwrap();
            prop_assert_eq!(
                rr.matching.to_edge_vec(), again.matching.to_edge_vec(),
                "{}: nondeterministic resume", entry.name
            );
        }
    }

    /// A second resume of an already-healed state is a fixpoint for the
    /// maximal and bipartite families, and weight-monotone for the
    /// weighted driver.
    #[test]
    fn healing_is_idempotent_per_implementor(
        graph_seed in 0u64..1000,
        kill_seed in 0u64..1000,
        sim_seed in 0u64..100,
    ) {
        for entry in registry() {
            let algo = entry.spec.build();
            let g = corpus(&entry, graph_seed);
            let n = g.node_count();
            let sim = SimConfig::congest_for(n, 8).seed(sim_seed);
            let rep = run_mm(&*algo, &g, &RuntimeConfig::new().sim(sim)).unwrap();

            let mut rng = StdRng::seed_from_u64(!kill_seed);
            let alive: Vec<bool> = (0..n).map(|_| rng.random_bool(0.7)).collect();
            let alive_mask = BitSet::from_bools(&alive);
            let healed = repair_registers(
                &*algo, &g, &rep.registers, &alive_mask, &FaultPlan::default(), None, None, sim,
            )
            .unwrap();
            // Rebuild the healed register array from its matching (the
            // heal's registers are exactly its matching's claims).
            let healed_regs: Vec<Option<usize>> = (0..n)
                .map(|v| healed.matching.matched_edge(v))
                .collect();
            let second = repair_registers(
                &*algo, &g, &healed_regs, &alive_mask, &FaultPlan::default(), None, None, sim,
            )
            .unwrap();
            prop_assert_eq!(second.dissolved, 0, "{}: healed state re-dissolved", entry.name);
            if entry.resume_fixpoint {
                prop_assert_eq!(
                    second.matching.to_edge_vec(), healed.matching.to_edge_vec(),
                    "{}: healed state is not a resume fixpoint", entry.name
                );
                prop_assert_eq!(second.added, 0, "{}: fixpoint resume added edges", entry.name);
            } else {
                prop_assert!(second.matching.validate(&g).is_ok());
                prop_assert!(
                    second.matching.weight(&g) + 1e-9 >= healed.matching.weight(&g),
                    "{}: idempotent resume lost weight", entry.name
                );
            }
        }
    }
}
