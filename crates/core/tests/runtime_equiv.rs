//! Differential suite for the unified runtime refactor: every legacy
//! entry point (`self_healing_mm`, `churn_tolerant_mm`, `certified_mm`,
//! `israeli_itai_with`, `luby_mis_with`) is now a thin shim over
//! [`dam_core::runtime::run_mm`] / `execute_program`. This file keeps a
//! **golden replica** of each pre-refactor pipeline body, written
//! against the unchanged engine primitives (`run`, `run_faulty`,
//! `run_churned`, `Resilient`, `sanitize_registers`, `certify`,
//! `Maintainer::adopt`, …), and asserts the shims are bit-identical to
//! it — outputs, per-phase `RunStats`, certificates, traces, and error
//! paths — across seeds, fault/churn schedules, and thread counts.
//!
//! If a change to the runtime composition alters any observable of any
//! driver, this suite is the tripwire.

use dam_congest::rng::splitmix64;
use dam_congest::{
    Backend, ChurnKind, ChurnPlan, Context, DelayModel, FaultPlan, Frame, Network, Port, Protocol,
    Resilient, RunStats, SimConfig, TransportCfg,
};
use dam_core::certify::{apply_lies, certified_mm, certify, Certificate, CertifiedReport};
use dam_core::error::CoreError;
use dam_core::israeli_itai::{israeli_itai_with, IiMsg, IiNode};
use dam_core::luby::{luby_mis_with, LubyNode};
use dam_core::maintain::{
    churn_tolerant_mm, sanitize_present, ChurnReport, MaintainConfig, Maintainer,
};
use dam_core::repair::{sanitize_registers, self_healing_mm, RepairConfig, SelfHealingReport};
use dam_core::report::matching_from_registers;
use dam_core::runtime::{run_mm, IsraeliItai, RuntimeConfig};
use dam_graph::{generators, EdgeId, Graph, Matching, NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hardcoded copies of the crate-private domain-separation keys. They
/// are deliberately *not* imported: silently re-keying a phase inside
/// the crate without noticing the replay break is exactly the
/// regression this suite exists to catch.
const CHECK_DOMAIN: u64 = 0xCE47_1F1E_D5EE_D001;
const RECHECK_DOMAIN: u64 = 0x2ECE_27F1_CA7E_0001;
const MAINTAIN_DOMAIN: u64 = 0x4D41_494E;

const SEEDS: u64 = 16;
const THREADS: [usize; 3] = [1, 2, 4];

fn graph(i: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(0xD1FF ^ (1000 + i));
    generators::gnp(24, 0.18, &mut rng)
}

/// One fault schedule per seed: clean, lossy, crashy, and hostile (with
/// a recovery, so the never-recovered filter is exercised too).
fn fault_schedule(i: u64, n: usize) -> FaultPlan {
    let v = i as usize;
    match i % 4 {
        0 => FaultPlan::default(),
        1 => FaultPlan { loss: 0.1, dup: 0.05, reorder: 0.1, ..FaultPlan::default() },
        2 => FaultPlan {
            loss: 0.05,
            crashes: vec![(v % n, 2), ((v + 3) % n, 5)],
            ..FaultPlan::default()
        },
        _ => FaultPlan {
            loss: 0.15,
            dup: 0.05,
            reorder: 0.25,
            crashes: vec![((2 * v + 1) % n, 3), ((2 * v + 7) % n, 2)],
            recoveries: vec![((2 * v + 7) % n, 6)],
            ..FaultPlan::default()
        },
    }
}

/// Adds a Byzantine cohort (liars / corruption / equivocators) on top
/// of the seed's fault schedule, for the certified pipeline.
fn byzantine_schedule(i: u64, n: usize) -> FaultPlan {
    let v = i as usize;
    let mut plan = fault_schedule(i, n);
    match i % 3 {
        0 => plan.liars = vec![(v + 1) % n],
        1 => {
            plan.liars = vec![(v + 1) % n, (v + 9) % n];
            plan.corrupt = 0.02;
        }
        _ => plan.equivocators = vec![(v + 5) % n],
    }
    plan
}

/// One churn schedule per seed: none, an edge flap, or a leave plus an
/// edge loss. Node choices avoid the crash victims of
/// [`fault_schedule`] so every plan validates.
fn churn_schedule(i: u64, g: &Graph) -> ChurnPlan {
    let m = g.edge_count();
    let n = g.node_count();
    if m == 0 {
        return ChurnPlan::default();
    }
    let v = i as usize;
    match i % 3 {
        0 => ChurnPlan::default(),
        1 => ChurnPlan::default()
            .with_event(2, ChurnKind::EdgeDown { edge: v % m })
            .with_event(6, ChurnKind::EdgeUp { edge: v % m }),
        _ => ChurnPlan::default()
            .with_event(3, ChurnKind::Leave { node: (v + 4) % n })
            .with_event(9, ChurnKind::EdgeDown { edge: (3 * v + 1) % m }),
    }
}

// ---------------------------------------------------------------------
// Golden replicas of the pre-refactor pipeline bodies.
// ---------------------------------------------------------------------

/// Verbatim copy of the deleted per-node repair protocol: dead nodes
/// are halted tombstones, live nodes resume Israeli–Itai over the
/// resilient transport. The runtime's generic `Slot` wrapper must stay
/// behaviorally identical to this.
enum GoldenRepairProto {
    Dead,
    Live(Box<Resilient<IiNode>>),
}

impl Protocol for GoldenRepairProto {
    type Msg = Frame<IiMsg>;
    type Output = Option<EdgeId>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            GoldenRepairProto::Dead => ctx.halt(),
            GoldenRepairProto::Live(p) => p.on_start(ctx),
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: &[(Port, Self::Msg)]) {
        match self {
            GoldenRepairProto::Dead => ctx.halt(),
            GoldenRepairProto::Live(p) => p.on_round(ctx, inbox),
        }
    }

    fn into_output(self) -> Option<EdgeId> {
        match self {
            GoldenRepairProto::Dead => None,
            GoldenRepairProto::Live(p) => p.into_output(),
        }
    }
}

struct GoldenRepair {
    matching: Matching,
    surviving: usize,
    dissolved: usize,
    added: usize,
    stats: RunStats,
}

/// Pre-refactor `repair_matching` body.
fn golden_repair(
    g: &Graph,
    registers: &[Option<EdgeId>],
    alive: &[bool],
    faults: &FaultPlan,
    cfg: &RepairConfig,
) -> Result<GoldenRepair, CoreError> {
    let sane = sanitize_registers(g, registers, alive);
    let mut net = Network::new(g, SimConfig::local().seed(cfg.seed).max_rounds(cfg.max_rounds));
    let out = net.run_faulty(
        |v, graph| {
            if !alive[v] {
                return GoldenRepairProto::Dead;
            }
            let dead_ports: Vec<Port> =
                graph.incident(v).filter_map(|(p, u, _)| (!alive[u]).then_some(p)).collect();
            GoldenRepairProto::Live(Box::new(Resilient::new(
                IiNode::with_state(graph.degree(v), sane.registers[v], &dead_ports),
                cfg.transport,
            )))
        },
        faults,
    )?;
    let final_regs = sanitize_registers(g, &out.outputs, alive);
    let matching = matching_from_registers(g, &final_regs.registers)?;
    Ok(GoldenRepair {
        added: matching.size() - sane.surviving,
        matching,
        surviving: sane.surviving,
        dissolved: sane.dissolved,
        stats: out.stats,
    })
}

/// Pre-refactor `self_healing_mm` body.
fn golden_self_healing(
    g: &Graph,
    plan: &FaultPlan,
    cfg: &RepairConfig,
) -> Result<SelfHealingReport, CoreError> {
    let n = g.node_count();
    let mut alive = vec![true; n];
    for &(v, _) in &plan.crashes {
        if !plan.recoveries.iter().any(|&(u, _)| u == v) {
            alive[v] = false;
        }
    }

    let mut net = Network::new(g, SimConfig::local().seed(cfg.seed).max_rounds(cfg.max_rounds));
    let phase1 = net
        .run_faulty(|v, graph| Resilient::new(IiNode::new(graph.degree(v)), cfg.transport), plan)?;

    let repair_faults = FaultPlan {
        loss: plan.loss,
        dup: plan.dup,
        reorder: plan.reorder,
        links: plan.links.clone(),
        ..FaultPlan::default()
    };
    let report = golden_repair(g, &phase1.outputs, &alive, &repair_faults, cfg)?;

    Ok(SelfHealingReport {
        matching: report.matching,
        dead: (0..n).filter(|&v| !alive[v]).collect(),
        surviving: report.surviving,
        dissolved: report.dissolved,
        added: report.added,
        phase1: phase1.stats,
        repair: report.stats,
    })
}

/// Pre-refactor `certified_mm` body.
fn golden_certified(
    g: &Graph,
    plan: &FaultPlan,
    cfg: &RepairConfig,
) -> Result<CertifiedReport, CoreError> {
    let n = g.node_count();
    let mut alive = vec![true; n];
    for &(v, _) in &plan.crashes {
        if !plan.recoveries.iter().any(|&(u, _)| u == v) {
            alive[v] = false;
        }
    }
    for &v in &plan.equivocators {
        alive[v] = false;
    }

    let mut net = Network::new(g, SimConfig::local().seed(cfg.seed).max_rounds(cfg.max_rounds));
    let phase1 = net
        .run_faulty(|v, graph| Resilient::new(IiNode::new(graph.degree(v)), cfg.transport), plan)?;

    let mut regs = phase1.outputs;
    apply_lies(&mut regs, &plan.liars, cfg.seed, g.edge_count());

    let check_seed = splitmix64(cfg.seed ^ CHECK_DOMAIN);
    let initial = certify(g, &regs, &alive, check_seed)?;

    let excluded: Vec<NodeId> = (0..n).filter(|&v| !alive[v]).collect();
    if initial.ok() {
        let sane = sanitize_registers(g, &regs, &alive);
        let matching = matching_from_registers(g, &sane.registers)?;
        return Ok(CertifiedReport {
            matching,
            initial,
            recheck: None,
            excluded,
            surviving: sane.surviving,
            dissolved: sane.dissolved,
            added: 0,
            repair_touched: 0,
            phase1: phase1.stats,
            repair: None,
        });
    }

    let mut cleared = regs;
    for &v in &initial.flagged {
        cleared[v] = None;
    }
    let pre = sanitize_registers(g, &cleared, &alive);
    let repair_faults = FaultPlan {
        loss: plan.loss,
        dup: plan.dup,
        reorder: plan.reorder,
        corrupt: plan.corrupt,
        links: plan.links.clone(),
        ..FaultPlan::default()
    };
    let rep = golden_repair(g, &cleared, &alive, &repair_faults, cfg)?;

    let mut final_regs = vec![None; n];
    for e in rep.matching.to_edge_vec() {
        let (a, b) = g.endpoints(e);
        final_regs[a] = Some(e);
        final_regs[b] = Some(e);
    }
    let repair_touched = (0..n).filter(|&v| alive[v] && final_regs[v] != pre.registers[v]).count();
    let recheck = certify(g, &final_regs, &alive, splitmix64(check_seed ^ RECHECK_DOMAIN))?;

    Ok(CertifiedReport {
        matching: rep.matching,
        initial,
        recheck: Some(recheck),
        excluded,
        surviving: rep.surviving,
        dissolved: rep.dissolved,
        added: rep.added,
        repair_touched,
        phase1: phase1.stats,
        repair: Some(rep.stats),
    })
}

/// Pre-refactor `churn_tolerant_mm` body.
fn golden_churn_tolerant(
    g: &Graph,
    faults: &FaultPlan,
    churn: &ChurnPlan,
    cfg: &MaintainConfig,
) -> Result<ChurnReport, CoreError> {
    let mut net = Network::new(g, SimConfig::local().seed(cfg.seed).max_rounds(cfg.max_rounds));
    let out = net.run_churned(
        |v, graph| Resilient::new(IiNode::new(graph.degree(v)), cfg.transport),
        faults,
        churn,
    )?;
    let (mut node_present, edge_present) = churn.final_presence(g);
    for &(v, _) in &faults.crashes {
        if !faults.recoveries.iter().any(|&(u, _)| u == v) {
            node_present[v] = false;
        }
    }
    let sane = sanitize_present(g, &out.outputs, &node_present, &edge_present);
    let mut mt = Maintainer::adopt(
        g,
        sane.registers,
        node_present,
        edge_present,
        &MaintainConfig { seed: splitmix64(cfg.seed ^ MAINTAIN_DOMAIN), ..cfg.clone() },
    );
    let repair = mt.repair_full()?;
    Ok(ChurnReport {
        matching: mt.matching(),
        surviving: sane.surviving,
        dissolved: sane.dissolved,
        added: repair.added,
        run: out.stats,
        repair: repair.stats,
    })
}

fn assert_cert_eq(a: &Certificate, b: &Certificate, ctx: &str) {
    assert_eq!(a.verdicts, b.verdicts, "{ctx}: verdicts");
    assert_eq!(a.flagged, b.flagged, "{ctx}: flagged");
    assert_eq!(a.checked, b.checked, "{ctx}: checked");
    assert_eq!(a.matched, b.matched, "{ctx}: matched");
    assert_eq!(a.detection_rounds, b.detection_rounds, "{ctx}: detection rounds");
    assert_eq!(a.stats, b.stats, "{ctx}: checker stats");
}

// ---------------------------------------------------------------------
// The differential assertions.
// ---------------------------------------------------------------------

#[test]
fn self_healing_shim_is_bit_identical() {
    for i in 0..SEEDS {
        let g = graph(i);
        let n = g.node_count();
        let plan = fault_schedule(i, n);
        let cfg = RepairConfig { seed: i, ..RepairConfig::default() };

        let legacy = golden_self_healing(&g, &plan, &cfg).expect("golden pipeline");
        let shim = self_healing_mm(&g, &plan, &cfg).expect("shim pipeline");

        assert_eq!(legacy.matching.to_edge_vec(), shim.matching.to_edge_vec(), "seed {i}: edges");
        assert_eq!(legacy.dead, shim.dead, "seed {i}: dead");
        assert_eq!(legacy.surviving, shim.surviving, "seed {i}: surviving");
        assert_eq!(legacy.dissolved, shim.dissolved, "seed {i}: dissolved");
        assert_eq!(legacy.added, shim.added, "seed {i}: added");
        assert_eq!(legacy.phase1, shim.phase1, "seed {i}: phase-1 stats");
        assert_eq!(legacy.repair, shim.repair, "seed {i}: repair stats");

        // The parallel executor must not change any observable either.
        for threads in THREADS {
            let cfg_t = RuntimeConfig::new()
                .sim(SimConfig::local().seed(i).max_rounds(cfg.max_rounds).threads(threads))
                .transport(cfg.transport)
                .faults(plan.clone())
                .repair(true)
                .repair_faults(FaultPlan {
                    loss: plan.loss,
                    dup: plan.dup,
                    reorder: plan.reorder,
                    links: plan.links.clone(),
                    ..FaultPlan::default()
                });
            let rep = run_mm(&IsraeliItai, &g, &cfg_t).expect("runtime pipeline");
            let repair = rep.repair.as_ref().expect("repair layer ran");
            assert_eq!(
                rep.matching.to_edge_vec(),
                legacy.matching.to_edge_vec(),
                "seed {i}, {threads} threads: edges"
            );
            assert_eq!(rep.excluded, legacy.dead, "seed {i}, {threads} threads: excluded");
            assert_eq!(rep.phase1, legacy.phase1, "seed {i}, {threads} threads: phase-1 stats");
            assert_eq!(*repair, legacy.repair, "seed {i}, {threads} threads: repair stats");
            assert_eq!(
                (rep.surviving, rep.dissolved, rep.added),
                (legacy.surviving, legacy.dissolved, legacy.added),
                "seed {i}, {threads} threads: counters"
            );
        }
    }
}

#[test]
fn certified_shim_is_bit_identical() {
    for i in 0..SEEDS {
        let g = graph(i);
        let n = g.node_count();
        let plan = byzantine_schedule(i, n);
        let cfg = RepairConfig { seed: i, ..RepairConfig::default() };

        let legacy = golden_certified(&g, &plan, &cfg).expect("golden pipeline");
        let shim = certified_mm(&g, &plan, &cfg).expect("shim pipeline");

        assert_eq!(legacy.matching.to_edge_vec(), shim.matching.to_edge_vec(), "seed {i}: edges");
        assert_eq!(legacy.excluded, shim.excluded, "seed {i}: excluded");
        assert_eq!(legacy.surviving, shim.surviving, "seed {i}: surviving");
        assert_eq!(legacy.dissolved, shim.dissolved, "seed {i}: dissolved");
        assert_eq!(legacy.added, shim.added, "seed {i}: added");
        assert_eq!(legacy.repair_touched, shim.repair_touched, "seed {i}: repair touched");
        assert_eq!(legacy.phase1, shim.phase1, "seed {i}: phase-1 stats");
        assert_eq!(legacy.repair, shim.repair, "seed {i}: repair stats");
        assert_cert_eq(&legacy.initial, &shim.initial, &format!("seed {i}: initial"));
        assert_eq!(legacy.recheck.is_some(), shim.recheck.is_some(), "seed {i}: recheck ran");
        if let (Some(a), Some(b)) = (&legacy.recheck, &shim.recheck) {
            assert_cert_eq(a, b, &format!("seed {i}: recheck"));
        }

        for threads in THREADS {
            let cfg_t = RuntimeConfig::new()
                .sim(SimConfig::local().seed(i).max_rounds(cfg.max_rounds).threads(threads))
                .transport(cfg.transport)
                .faults(plan.clone())
                .certify(true)
                .repair(true);
            let rep = run_mm(&IsraeliItai, &g, &cfg_t).expect("runtime pipeline");
            let initial = rep.initial.as_ref().expect("certify layer ran");
            assert_eq!(
                rep.matching.to_edge_vec(),
                legacy.matching.to_edge_vec(),
                "seed {i}, {threads} threads: edges"
            );
            assert_eq!(rep.excluded, legacy.excluded, "seed {i}, {threads} threads: excluded");
            assert_eq!(rep.phase1, legacy.phase1, "seed {i}, {threads} threads: phase-1 stats");
            assert_eq!(rep.repair, legacy.repair, "seed {i}, {threads} threads: repair stats");
            assert_eq!(
                rep.repair_touched, legacy.repair_touched,
                "seed {i}, {threads} threads: repair touched"
            );
            assert_cert_eq(initial, &legacy.initial, &format!("seed {i}, {threads}t: initial"));
        }
    }
}

#[test]
fn churn_shim_is_bit_identical() {
    for i in 0..SEEDS {
        let g = graph(i);
        let n = g.node_count();
        let faults = fault_schedule(i, n);
        let churn = churn_schedule(i, &g);
        let cfg = MaintainConfig { seed: i, ..MaintainConfig::default() };

        let legacy = golden_churn_tolerant(&g, &faults, &churn, &cfg).expect("golden pipeline");
        let shim = churn_tolerant_mm(&g, &faults, &churn, &cfg).expect("shim pipeline");

        assert_eq!(legacy.matching.to_edge_vec(), shim.matching.to_edge_vec(), "seed {i}: edges");
        assert_eq!(legacy.surviving, shim.surviving, "seed {i}: surviving");
        assert_eq!(legacy.dissolved, shim.dissolved, "seed {i}: dissolved");
        assert_eq!(legacy.added, shim.added, "seed {i}: added");
        assert_eq!(legacy.run, shim.run, "seed {i}: run stats");
        assert_eq!(legacy.repair, shim.repair, "seed {i}: repair stats");

        for threads in THREADS {
            let cfg_t = RuntimeConfig::new()
                .sim(SimConfig::local().seed(i).max_rounds(cfg.max_rounds).threads(threads))
                .transport(cfg.transport)
                .faults(faults.clone())
                .churn(churn.clone())
                .maintain(true);
            let rep = run_mm(&IsraeliItai, &g, &cfg_t).expect("runtime pipeline");
            let maint = rep.maintain.as_ref().expect("maintenance layer ran");
            assert_eq!(
                rep.matching.to_edge_vec(),
                legacy.matching.to_edge_vec(),
                "seed {i}, {threads} threads: edges"
            );
            assert_eq!(rep.phase1, legacy.run, "seed {i}, {threads} threads: run stats");
            assert_eq!(*maint, legacy.repair, "seed {i}, {threads} threads: repair stats");
            assert_eq!(
                (rep.surviving, rep.dissolved, rep.added),
                (legacy.surviving, legacy.dissolved, legacy.added),
                "seed {i}, {threads} threads: counters"
            );
        }
    }
}

#[test]
fn plain_driver_shims_are_bit_identical() {
    for i in 0..SEEDS {
        let g = graph(i);
        for threads in THREADS {
            let config = SimConfig::local().seed(i).threads(threads);

            // Golden israeli_itai_with: the legacy body dispatched on
            // `threads` itself, directly over the engine primitives.
            let mut net = Network::new(&g, config);
            let out = if threads > 1 {
                net.run_parallel(|v, graph| IiNode::new(graph.degree(v)), threads)
            } else {
                net.run(|v, graph| IiNode::new(graph.degree(v)))
            }
            .expect("golden run");
            let matching = matching_from_registers(&g, &out.outputs).expect("golden assembly");
            let iterations = usize::try_from(out.stats.rounds.div_ceil(3)).unwrap_or(usize::MAX);
            let totals = net.totals();

            let shim = israeli_itai_with(&g, config).expect("shim run");
            assert_eq!(
                matching.to_edge_vec(),
                shim.matching.to_edge_vec(),
                "seed {i}, {threads} threads: edges"
            );
            assert_eq!(totals, shim.stats, "seed {i}, {threads} threads: totals");
            assert_eq!(iterations, shim.iterations, "seed {i}, {threads} threads: iterations");

            // Golden luby_mis_with.
            let mut net = Network::new(&g, config);
            let out = if threads > 1 {
                net.run_parallel(|v, graph| LubyNode::new(graph.degree(v)), threads)
            } else {
                net.run(|v, graph| LubyNode::new(graph.degree(v)))
            }
            .expect("golden run");
            let mis = luby_mis_with(&g, config).expect("shim run");
            assert_eq!(out.outputs, mis.in_mis, "seed {i}, {threads} threads: MIS");
            assert_eq!(out.stats, mis.stats, "seed {i}, {threads} threads: stats");
        }
    }
}

/// The runtime's single execute entry point must produce traces
/// byte-equal to the sequential engine's, for every thread count.
#[test]
fn runtime_traces_match_the_sequential_engine() {
    for i in 0..6u64 {
        let g = graph(i);
        let faults = fault_schedule(i, g.node_count());
        let churn = churn_schedule(i, &g);
        let make = |v: NodeId, graph: &dyn Topology| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        };

        let mut reference = Network::new(&g, SimConfig::local().seed(i));
        let (ref_out, ref_trace) =
            reference.run_churned_traced(make, &faults, &churn).expect("reference run");

        for threads in THREADS {
            let mut net = Network::new(&g, SimConfig::local().seed(i).threads(threads));
            let (out, trace) = net.execute_plan_traced(make, &faults, &churn).expect("runtime run");
            assert_eq!(out.outputs, ref_out.outputs, "seed {i}, {threads} threads: outputs");
            assert_eq!(out.stats, ref_out.stats, "seed {i}, {threads} threads: stats");
            assert_eq!(trace.events(), ref_trace.events(), "seed {i}, {threads} threads: trace");
        }
    }
}

/// The asynchronous backend through the same single entry point:
/// outputs, traces and stats (modulo the synchronizer's marker counter,
/// which only the async engine emits) byte-equal to the sequential
/// engine's for every delay model — and the full `run_mm` middleware
/// stack agrees end to end.
#[test]
fn runtime_matches_the_async_engine() {
    const DELAYS: [DelayModel; 3] = [
        DelayModel::Unit,
        DelayModel::LinkSkew { spread: 5 },
        DelayModel::Straggler { node: 3, slow: 7 },
    ];
    for i in 0..6u64 {
        let g = graph(i);
        let faults = fault_schedule(i, g.node_count());
        let churn = churn_schedule(i, &g);
        let make = |v: NodeId, graph: &dyn Topology| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        };

        let mut reference = Network::new(&g, SimConfig::local().seed(i));
        let (ref_out, ref_trace) =
            reference.run_churned_traced(make, &faults, &churn).expect("reference run");

        for delay in DELAYS {
            let config = SimConfig::local().seed(i).backend(Backend::Async).delay(delay);
            let mut net = Network::new(&g, config);
            let (out, trace) = net.execute_plan_traced(make, &faults, &churn).expect("runtime run");
            assert_eq!(out.outputs, ref_out.outputs, "seed {i}, {delay:?}: outputs");
            let mut stats = out.stats;
            assert!(stats.markers > 0, "seed {i}, {delay:?}: markers must be accounted");
            stats.markers = 0;
            assert_eq!(stats, ref_out.stats, "seed {i}, {delay:?}: stats");
            assert_eq!(trace.events(), ref_trace.events(), "seed {i}, {delay:?}: trace");
        }

        // Full middleware stack: main run + maintenance, both backends.
        let base = RuntimeConfig::new()
            .sim(SimConfig::local().seed(i))
            .transport(TransportCfg::default())
            .faults(faults.clone())
            .churn(churn.clone())
            .maintain(true);
        let seq = run_mm(&IsraeliItai, &g, &base.clone()).expect("sequential stack");
        let asy = run_mm(
            &IsraeliItai,
            &g,
            &base.backend(Backend::Async).delay_model(DelayModel::LinkSkew { spread: 4 }),
        )
        .expect("async stack");
        assert_eq!(seq.matching.to_edge_vec(), asy.matching.to_edge_vec(), "seed {i}: edges");
        let mut p1 = asy.phase1;
        p1.markers = 0;
        assert_eq!(seq.phase1, p1, "seed {i}: phase-1 stats");
        assert_eq!(seq.maintain, asy.maintain, "seed {i}: maintenance stats");
    }
}

/// Error paths survive the refactor too: an exhausted round guard must
/// surface the same engine error through the shims as through the
/// golden replicas.
#[test]
fn error_paths_are_bit_identical() {
    let g = graph(99);
    let plan = FaultPlan { loss: 0.3, dup: 0.1, reorder: 0.2, ..FaultPlan::default() };

    let repair_cfg = RepairConfig { seed: 3, max_rounds: 2, ..RepairConfig::default() };
    let legacy = golden_self_healing(&g, &plan, &repair_cfg).expect_err("guard must trip");
    let shim = self_healing_mm(&g, &plan, &repair_cfg).expect_err("guard must trip");
    assert_eq!(format!("{legacy:?}"), format!("{shim:?}"), "self-healing error");

    let legacy = golden_certified(&g, &plan, &repair_cfg).expect_err("guard must trip");
    let shim = certified_mm(&g, &plan, &repair_cfg).expect_err("guard must trip");
    assert_eq!(format!("{legacy:?}"), format!("{shim:?}"), "certified error");

    let maintain_cfg = MaintainConfig { seed: 3, max_rounds: 2, ..MaintainConfig::default() };
    let churn = ChurnPlan::default();
    let legacy =
        golden_churn_tolerant(&g, &plan, &churn, &maintain_cfg).expect_err("guard must trip");
    let shim = churn_tolerant_mm(&g, &plan, &churn, &maintain_cfg).expect_err("guard must trip");
    assert_eq!(format!("{legacy:?}"), format!("{shim:?}"), "churn error");

    let legacy_plain = {
        let mut net = Network::new(&g, SimConfig::local().seed(3).max_rounds(1));
        CoreError::from(
            net.run(|v, graph| IiNode::new(graph.degree(v))).expect_err("guard must trip"),
        )
    };
    let shim_plain = israeli_itai_with(&g, SimConfig::local().seed(3).max_rounds(1))
        .expect_err("guard must trip");
    assert_eq!(format!("{legacy_plain:?}"), format!("{shim_plain:?}"), "plain-driver error");
}
