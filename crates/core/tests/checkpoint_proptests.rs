//! Property tests for the checkpoint snapshot wire format
//! (`dam_core::checkpoint`), the durability layer's analogue of the
//! corpus proptests:
//!
//! * `decode ∘ encode` is the identity — under the default register
//!   codec *and* under every portfolio implementor's codec, so a
//!   driver that overrides [`Algorithm::encode_registers`] cannot ship
//!   a lossy codec unnoticed;
//! * `decode` is total: arbitrary bytes, truncations, and single-bit
//!   flips of well-formed snapshots produce a [`SnapshotError`], never
//!   a panic and never a silently different snapshot;
//! * the store's degradation ladder detects a generation whose
//!   filename and embedded meta generation disagree (a rollback or a
//!   mis-renamed file) and falls back to an older intact generation.
//!
//! [`Algorithm::encode_registers`]: dam_core::runtime::Algorithm::encode_registers
//! [`SnapshotError`]: dam_core::checkpoint::SnapshotError

use std::path::PathBuf;

use dam_congest::{PortSession, RunStats, SessionState, TotalStats};
use dam_core::checkpoint::{CheckpointStore, RestoreOutcome, Snapshot, Stage};
use dam_core::runtime::conformance::registry;
use dam_core::IsraeliItai;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn rand_stats(rng: &mut StdRng) -> RunStats {
    RunStats {
        rounds: rng.random_range(0..u64::MAX),
        charged_rounds: rng.random_range(0..u64::MAX),
        messages: rng.random_range(0..u64::MAX),
        retransmissions: rng.random_range(0..u64::MAX),
        heartbeats: rng.random_range(0..u64::MAX),
        maintenance: rng.random_range(0..u64::MAX),
        markers: rng.random_range(0..u64::MAX),
        churn_events: rng.random_range(0..u64::MAX),
        churn_drops: rng.random_range(0..u64::MAX),
        total_bits: rng.random_range(0..u64::MAX),
        max_message_bits: rng.random_range(0..usize::MAX),
        violations: rng.random_range(0..u64::MAX),
        corruptions: rng.random_range(0..u64::MAX),
        equivocations: rng.random_range(0..u64::MAX),
        rejected: rng.random_range(0..u64::MAX),
        quarantined: rng.random_range(0..u64::MAX),
        suspected: rng.random_range(0..u64::MAX),
        restores: rng.random_range(0..u64::MAX),
        restores_degraded: rng.random_range(0..u64::MAX),
    }
}

fn rand_session(rng: &mut StdRng) -> SessionState {
    let ports = (0..rng.random_range(0..4usize))
        .map(|_| PortSession {
            peer_boot: if rng.random_bool(0.5) {
                Some(rng.random_range(0..u16::MAX))
            } else {
                None
            },
            outstanding: rng.random_range(0..8u32),
            acked_out: rng.random_range(0..1000u32),
            recv_ack: rng.random_range(0..1000u32),
            done: rng.random_bool(0.5),
            dead: rng.random_bool(0.2),
        })
        .collect();
    SessionState { boot: rng.random_range(0..u16::MAX), level: rng.random_range(1..6u64), ports }
}

/// A structurally arbitrary snapshot: every field populated from `seed`,
/// including the optional stats ledgers and session exports, so a codec
/// that drops or reorders any field fails the identity property.
fn rand_snapshot(seed: u64) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(1..24usize);
    let m = rng.random_range(1..48usize);
    let stage = match seed % 3 {
        0 => Stage::Main,
        1 => Stage::Repaired,
        _ => Stage::Maintained,
    };
    Snapshot {
        generation: rng.random_range(0..10_000u64),
        seed: rng.random_range(0..u64::MAX),
        stage,
        algorithm: format!("driver-{}", rng.random_range(0..1000u32)),
        graph_nodes: n as u64,
        graph_edges: m as u64,
        graph_sum: rng.random_range(0..u64::MAX),
        detected: rng.random_bool(0.5),
        registers: (0..n).map(|_| rng.random_bool(0.5).then(|| rng.random_range(0..m))).collect(),
        alive: (0..n).map(|_| rng.random_bool(0.9)).collect(),
        node_present: (0..n).map(|_| rng.random_bool(0.9)).collect(),
        edge_present: (0..m).map(|_| rng.random_bool(0.9)).collect(),
        phase1: rand_stats(&mut rng),
        totals: TotalStats { runs: rng.random_range(0..16usize), stats: rand_stats(&mut rng) },
        repair: rng.random_bool(0.5).then(|| rand_stats(&mut rng)),
        maintain: rng.random_bool(0.5).then(|| rand_stats(&mut rng)),
        iterations: rng.random_range(0..100_000u64),
        counters: [
            rng.random_range(0..u64::MAX),
            rng.random_range(0..u64::MAX),
            rng.random_range(0..u64::MAX),
            rng.random_range(0..u64::MAX),
        ],
        sessions: (0..n).map(|_| rng.random_bool(0.6).then(|| rand_session(&mut rng))).collect(),
    }
}

fn tmpdir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dam-ckpt-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `decode ∘ encode` is the identity under the default codec and
    /// under every registered implementor's register codec.
    #[test]
    fn encode_decode_is_identity_for_every_register_codec(seed in any::<u64>()) {
        let snap = rand_snapshot(seed);
        let back = Snapshot::decode(&snap.encode()).expect("well-formed bytes decode");
        prop_assert_eq!(&back, &snap, "default codec round-trip diverged");
        for entry in registry() {
            let algo = entry.spec.build();
            let bytes = snap.encode_with(&*algo);
            let back = Snapshot::decode_with(&bytes, &*algo)
                .unwrap_or_else(|e| panic!("{}: well-formed bytes failed: {e}", entry.name));
            prop_assert_eq!(&back, &snap, "{}: codec round-trip diverged", entry.name);
        }
    }

    /// `decode` is total: arbitrary byte soup is an error, never a
    /// panic — under both codecs.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = Snapshot::decode(&bytes);
        let _ = Snapshot::decode_with(&bytes, &IsraeliItai);
    }

    /// Any truncation of a well-formed snapshot is detected. The commit
    /// protocol renames a fully written temp file into place, so a
    /// short file is always a torn write — it must never decode.
    #[test]
    fn truncations_are_detected(seed in any::<u64>(), cut in any::<u64>()) {
        let bytes = rand_snapshot(seed).encode();
        let keep = usize::try_from(cut % bytes.len() as u64).unwrap();
        prop_assert!(
            Snapshot::decode(&bytes[..keep]).is_err(),
            "a snapshot truncated to {keep}/{} bytes decoded",
            bytes.len()
        );
    }

    /// Any single bit flip of a well-formed snapshot is detected:
    /// payload flips break the section checksum (FNV-1a steps are
    /// injective per byte), header flips break the magic, version, or
    /// section framing.
    #[test]
    fn single_bit_flips_are_detected(seed in any::<u64>(), bit in any::<u64>()) {
        let mut bytes = rand_snapshot(seed).encode();
        let pos = usize::try_from(bit % (bytes.len() as u64 * 8)).unwrap();
        bytes[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(
            Snapshot::decode(&bytes).is_err(),
            "a snapshot with bit {pos} flipped decoded silently"
        );
    }

    /// A generation file whose name disagrees with its embedded meta
    /// generation (a rolled-back or mis-renamed file) is treated as
    /// damaged: the ladder skips it and resolves to the older intact
    /// generation, reporting the restore degraded.
    #[test]
    fn stale_generation_files_degrade_to_the_intact_one(
        seed in any::<u64>(),
        skew in 1u64..64,
    ) {
        let dir = tmpdir(seed ^ skew);
        let store = CheckpointStore::create(&dir).unwrap();
        let mut snap = rand_snapshot(seed);
        snap.algorithm = "israeli-itai".to_string();
        snap.generation = 1;
        store.write(&snap, &IsraeliItai).unwrap();
        // Masquerade the intact generation 1 as generation 1 + skew:
        // the bytes still decode, but their meta says 1.
        let bytes = std::fs::read(dir.join("ckpt-00000001.snap")).unwrap();
        std::fs::write(dir.join(format!("ckpt-{:08}.snap", 1 + skew)), &bytes).unwrap();
        let rec = store.load(&IsraeliItai).expect("an intact generation remains");
        prop_assert_eq!(
            rec.outcome,
            RestoreOutcome::Degraded { generation: 1 },
            "the mismatched file must be skipped, not trusted"
        );
        prop_assert_eq!(rec.snapshot.expect("snapshot").generation, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
