//! Property tests for the switch schedulers: every scheduler must emit a
//! valid matching over non-empty VOQs for arbitrary occupancy matrices.

use dam_switch::sched::distributed::{DistAlgo, Distributed};
use dam_switch::sched::islip::Islip;
use dam_switch::sched::oracle::{MaxSize, MaxWeight};
use dam_switch::sched::pim::Pim;
use dam_switch::sched::random::RandomMaximal;
use dam_switch::sched::{is_valid_schedule, schedule_size, Scheduler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_occupancy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    (1usize..8).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0usize..5, n..=n), n..=n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_emit_valid_matchings(occ in arb_occupancy(), seed in 0u64..500) {
        let n = occ.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Pim::new(n, 2)),
            Box::new(Islip::new(n, 2)),
            Box::new(RandomMaximal),
            Box::new(MaxSize),
            Box::new(MaxWeight),
            Box::new(Distributed::new(DistAlgo::IsraeliItai)),
        ];
        for s in &mut schedulers {
            let sched = s.schedule(&occ, &mut rng);
            prop_assert!(
                is_valid_schedule(&occ, &sched),
                "{} produced an invalid schedule for {occ:?}",
                s.name()
            );
        }
    }

    /// The exact MaxSize oracle dominates every heuristic.
    #[test]
    fn max_size_dominates(occ in arb_occupancy(), seed in 0u64..500) {
        let n = occ.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let best = schedule_size(&MaxSize.schedule(&occ, &mut rng));
        // Run PIM/iSLIP with n iterations: each productive iteration
        // matches at least one pair, so the result is maximal — hence
        // within the ½ bound of the exact oracle.
        for mut s in [
            Box::new(Pim::new(n, n)) as Box<dyn Scheduler>,
            Box::new(Islip::new(n, n)),
            Box::new(RandomMaximal),
        ] {
            let size = schedule_size(&s.schedule(&occ, &mut rng));
            prop_assert!(size <= best, "{} beat the exact oracle?!", s.name());
            prop_assert!(2 * size >= best, "{} below 1/2: {size} vs {best}", s.name());
        }
    }
}
