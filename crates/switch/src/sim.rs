//! The cell-time simulation loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::sched::{is_valid_schedule, Scheduler};
use crate::traffic::{ArrivalProcess, TrafficPattern, TrafficSource};
use crate::voq::VoqSwitch;

/// Configuration of one switch-simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SwitchSimConfig {
    /// Switch radix `N`.
    pub ports: usize,
    /// Measured cell times (after warm-up).
    pub cells: u64,
    /// Offered load `ρ ∈ [0, 1]` per input.
    pub load: f64,
    /// Spatial traffic pattern.
    pub pattern: TrafficPattern,
    /// Temporal arrival process.
    pub process: ArrivalProcess,
    /// RNG seed.
    pub seed: u64,
    /// Warm-up cells excluded from the metrics.
    pub warmup: u64,
    /// Fabric speedup `S`: the scheduler runs `S` times per cell time,
    /// transferring up to `S` matchings (1 = plain crossbar; 2 is the
    /// classical "speedup-2 makes maximal matchings behave like maximum"
    /// regime).
    pub speedup: usize,
}

impl Default for SwitchSimConfig {
    fn default() -> SwitchSimConfig {
        SwitchSimConfig {
            ports: 8,
            cells: 2_000,
            load: 0.5,
            pattern: TrafficPattern::Uniform,
            process: ArrivalProcess::Bernoulli,
            seed: 0,
            warmup: 200,
            speedup: 1,
        }
    }
}

/// Measured steady-state behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchMetrics {
    /// Delivered cells per port per cell time (≤ offered load when
    /// stable, < offered load when the switch saturates).
    pub throughput: f64,
    /// Offered load actually generated per port per cell time.
    pub offered: f64,
    /// Mean queueing delay of delivered cells (cell times).
    pub mean_delay: f64,
    /// Mean total backlog over the measurement period (cells).
    pub mean_backlog: f64,
    /// Final backlog (large and growing ⇒ unstable).
    pub final_backlog: usize,
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchSimError {
    /// A scheduler emitted a conflicting or out-of-range schedule.
    InvalidSchedule {
        /// The cell time of the offence.
        cell: u64,
    },
}

impl std::fmt::Display for SwitchSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchSimError::InvalidSchedule { cell } => {
                write!(f, "scheduler produced an invalid schedule at cell {cell}")
            }
        }
    }
}

impl std::error::Error for SwitchSimError {}

/// Runs one simulation.
///
/// # Errors
/// Returns [`SwitchSimError::InvalidSchedule`] if the scheduler violates
/// the matching constraint.
pub fn simulate(
    config: &SwitchSimConfig,
    scheduler: &mut dyn Scheduler,
) -> Result<SwitchMetrics, SwitchSimError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut source = TrafficSource::new(config.pattern, config.process, config.ports, config.load);
    let mut switch = VoqSwitch::new(config.ports);
    let total = config.warmup + config.cells;
    let mut backlog_sum: u64 = 0;
    for cell in 0..total {
        if cell == config.warmup {
            switch.reset_metrics();
        }
        for (i, j) in source.tick(&mut rng) {
            switch.arrive(i, j);
        }
        for pass in 0..config.speedup.max(1) {
            let occ = switch.occupancy_matrix();
            let schedule = scheduler.schedule(&occ, &mut rng);
            if !is_valid_schedule(&occ, &schedule) {
                return Err(SwitchSimError::InvalidSchedule { cell });
            }
            if pass + 1 == config.speedup.max(1) {
                switch.transfer(&schedule); // advances the clock
            } else {
                switch.transfer_without_tick(&schedule);
            }
        }
        if cell >= config.warmup {
            backlog_sum += switch.backlog() as u64;
        }
    }
    let denom = config.cells as f64 * config.ports as f64;
    Ok(SwitchMetrics {
        throughput: switch.delivered() as f64 / denom,
        offered: switch.arrived() as f64 / denom,
        mean_delay: switch.mean_delay(),
        mean_backlog: backlog_sum as f64 / config.cells.max(1) as f64,
        final_backlog: switch.backlog(),
    })
}

/// Finds the saturation load of a scheduler under `pattern`: the largest
/// offered load it still carries within `tolerance`, by bisection over
/// `[lo, hi]`.
///
/// Fresh scheduler state per probe comes from `make` (pointer-based
/// schedulers must not carry state across loads).
///
/// # Errors
/// Propagates simulation failures.
pub fn find_saturation(
    base: &SwitchSimConfig,
    mut make: impl FnMut() -> Box<dyn Scheduler>,
    tolerance: f64,
    probes: usize,
) -> Result<f64, SwitchSimError> {
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..probes {
        let mid = 0.5 * (lo + hi);
        let cfg = SwitchSimConfig { load: mid, ..*base };
        let m = simulate(&cfg, make().as_mut())?;
        if m.offered - m.throughput <= tolerance {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::islip::Islip;
    use crate::sched::oracle::{MaxSize, MaxWeight};
    use crate::sched::pim::Pim;

    fn cfg(load: f64, pattern: TrafficPattern) -> SwitchSimConfig {
        SwitchSimConfig {
            ports: 8,
            cells: 3_000,
            load,
            pattern,
            process: ArrivalProcess::Bernoulli,
            seed: 11,
            warmup: 500,
            speedup: 1,
        }
    }

    #[test]
    fn all_schedulers_stable_at_low_load() {
        let c = cfg(0.4, TrafficPattern::Uniform);
        for (name, m) in [
            ("pim", simulate(&c, &mut Pim::new(8, 3)).unwrap()),
            ("islip", simulate(&c, &mut Islip::new(8, 2)).unwrap()),
            ("maxsize", simulate(&c, &mut MaxSize).unwrap()),
            ("maxweight", simulate(&c, &mut MaxWeight).unwrap()),
        ] {
            assert!(
                (m.throughput - m.offered).abs() < 0.02,
                "{name}: throughput {} vs offered {}",
                m.throughput,
                m.offered
            );
            assert!(m.final_backlog < 200, "{name}: backlog {}", m.final_backlog);
        }
    }

    #[test]
    fn single_iteration_pim_saturates_before_islip() {
        // PIM-1 is known to cap around 63% uniform throughput; iSLIP-1
        // reaches ~100% by pointer de-synchronization.
        let c = cfg(0.95, TrafficPattern::Uniform);
        let pim = simulate(&c, &mut Pim::new(8, 1)).unwrap();
        let islip = simulate(&c, &mut Islip::new(8, 1)).unwrap();
        assert!(pim.throughput < 0.85, "PIM-1 should saturate: {}", pim.throughput);
        assert!(
            islip.throughput > pim.throughput + 0.05,
            "iSLIP {} should beat PIM-1 {}",
            islip.throughput,
            pim.throughput
        );
    }

    #[test]
    fn delay_grows_with_load() {
        let lo = simulate(&cfg(0.3, TrafficPattern::Uniform), &mut Islip::new(8, 2)).unwrap();
        let hi = simulate(&cfg(0.9, TrafficPattern::Uniform), &mut Islip::new(8, 2)).unwrap();
        assert!(hi.mean_delay > lo.mean_delay);
    }

    #[test]
    fn maxweight_handles_diagonal_stress() {
        let c = cfg(0.85, TrafficPattern::Diagonal);
        let m = simulate(&c, &mut MaxWeight).unwrap();
        assert!((m.throughput - m.offered).abs() < 0.03, "MWM is stable: {m:?}");
    }

    #[test]
    fn speedup_rescues_weak_schedulers() {
        // PIM-1 saturates at ~63% under heavy uniform load; with fabric
        // speedup 2 it becomes stable.
        let base = cfg(0.95, TrafficPattern::Uniform);
        let plain = simulate(&base, &mut Pim::new(8, 1)).unwrap();
        let sped = simulate(&SwitchSimConfig { speedup: 2, ..base }, &mut Pim::new(8, 1)).unwrap();
        assert!(plain.throughput < 0.85);
        assert!(sped.throughput > 0.92, "speedup-2 PIM-1 should be stable: {}", sped.throughput);
        assert!(sped.final_backlog < plain.final_backlog / 4);
    }

    #[test]
    fn bursty_traffic_increases_delay() {
        let mut smooth = cfg(0.7, TrafficPattern::Uniform);
        smooth.cells = 6_000;
        let mut bursty = smooth;
        bursty.process = ArrivalProcess::Bursty { mean_burst: 16.0 };
        let s = simulate(&smooth, &mut Islip::new(8, 2)).unwrap();
        let b = simulate(&bursty, &mut Islip::new(8, 2)).unwrap();
        assert!(
            b.mean_delay > 2.0 * s.mean_delay,
            "bursts should hurt delay: {} vs {}",
            b.mean_delay,
            s.mean_delay
        );
    }

    #[test]
    fn saturation_bisection_separates_pim1_from_islip() {
        let base = SwitchSimConfig {
            ports: 8,
            cells: 1_500,
            warmup: 300,
            seed: 17,
            ..SwitchSimConfig::default()
        };
        let pim_sat = find_saturation(&base, || Box::new(Pim::new(8, 1)), 0.02, 5).unwrap();
        let islip_sat = find_saturation(&base, || Box::new(Islip::new(8, 2)), 0.02, 5).unwrap();
        assert!(pim_sat < 0.85, "PIM-1 saturates early: {pim_sat}");
        assert!(islip_sat > pim_sat + 0.1, "iSLIP-2 {islip_sat} must beat PIM-1 {pim_sat}");
    }

    #[test]
    fn permutation_traffic_is_trivially_stable() {
        // Under a fixed permutation even PIM-1 carries ~full load.
        let c = cfg(0.95, TrafficPattern::Permutation);
        let m = simulate(&c, &mut Pim::new(8, 1)).unwrap();
        assert!((m.throughput - m.offered).abs() < 0.02, "{m:?}");
    }

    #[test]
    fn random_maximal_scheduler_runs() {
        use crate::sched::random::RandomMaximal;
        let c = cfg(0.6, TrafficPattern::Uniform);
        let m = simulate(&c, &mut RandomMaximal).unwrap();
        assert!((m.throughput - m.offered).abs() < 0.02);
    }
}
