#![warn(missing_docs)]

//! Input-queued crossbar switch simulation — the paper's §1 motivating
//! application (Figure 1).
//!
//! "In most switch architectures, the switch fabric can deliver in each
//! cycle at most one packet from each input and at most one packet to
//! each output port, and an internal scheduling routine decides which
//! ports will be connected in each cycle" — i.e. the scheduler computes a
//! **matching** of the bipartite request graph every cell time. The paper
//! names PIM (Anderson et al. 1993, derived from Israeli–Itai) and iSLIP
//! (McKeown 1999) as the practical descendants of the `½`-MCM algorithm
//! it improves on.
//!
//! This crate provides:
//! * [`voq`] — an `N×N` virtual-output-queued switch with per-cell
//!   delay tracking;
//! * [`traffic`] — Bernoulli and bursty arrival processes over the
//!   standard traffic matrices (uniform, diagonal, log-diagonal,
//!   hotspot);
//! * [`sched`] — schedulers: PIM, iSLIP, maximum-size/weight oracles,
//!   and adapters that run the `dam-core` distributed algorithms on each
//!   cell's request graph;
//! * [`sim`] — the cell-time loop measuring throughput, mean delay and
//!   queue occupancy.
//!
//! # Example
//!
//! ```
//! use dam_switch::sched::islip::Islip;
//! use dam_switch::sim::{simulate, SwitchSimConfig};
//! use dam_switch::traffic::{ArrivalProcess, TrafficPattern};
//!
//! let cfg = SwitchSimConfig {
//!     ports: 8,
//!     cells: 2_000,
//!     load: 0.6,
//!     pattern: TrafficPattern::Uniform,
//!     process: ArrivalProcess::Bernoulli,
//!     seed: 7,
//!     warmup: 200,
//!     speedup: 1,
//! };
//! let m = simulate(&cfg, &mut Islip::new(8, 2)).unwrap();
//! // At 60% uniform load iSLIP is stable: throughput ≈ offered load.
//! assert!(m.throughput > 0.55);
//! ```

pub mod sched;
pub mod sim;
pub mod traffic;
pub mod voq;

pub use sim::{simulate, SwitchMetrics, SwitchSimConfig};
