//! Schedulers that run the paper's distributed algorithms on each cell's
//! request graph.
//!
//! This is the experiment the paper's introduction gestures at: replace
//! PIM/iSLIP's maximal matching (a `½`-MCM) with the `(1−1/k)`-MCM of
//! Theorem 3.10 and watch the matchings — and hence throughput under
//! stress — grow. The adapter also records how many CONGEST rounds each
//! cell's schedule cost, making the "quality vs. scheduling latency"
//! trade-off measurable (experiment E8).

use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam_core::israeli_itai::israeli_itai_with;
use dam_core::weighted::local_max::local_max_mwm;
use dam_graph::{Graph, Side};
use rand::rngs::StdRng;
use rand::RngExt;

use super::Scheduler;

/// Which distributed algorithm computes the per-cell matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistAlgo {
    /// Israeli–Itai maximal matching (`½`-MCM) — the PIM ancestor.
    IsraeliItai,
    /// The paper's bipartite `(1−1/k)`-MCM (Theorem 3.10).
    BipartiteMcm {
        /// Approximation parameter.
        k: usize,
    },
    /// Distributed locally-heaviest-edge matching over queue-length
    /// weights — the message-passing approximation of the MaxWeight/LQF
    /// oracle (`½`-MWM per cell).
    LocalMaxWeight,
}

/// A scheduler backed by a `dam-core` distributed algorithm.
#[derive(Debug)]
pub struct Distributed {
    algo: DistAlgo,
    /// Total CONGEST rounds spent across all cells (the scheduling
    /// latency the fabric would pay).
    pub rounds_total: u64,
    /// Cells scheduled.
    pub cells: u64,
}

impl Distributed {
    /// A scheduler running `algo` each cell time.
    #[must_use]
    pub fn new(algo: DistAlgo) -> Distributed {
        Distributed { algo, rounds_total: 0, cells: 0 }
    }

    /// Mean CONGEST rounds per scheduled cell.
    #[must_use]
    pub fn mean_rounds(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.rounds_total as f64 / self.cells as f64
        }
    }
}

fn request_graph(occupancy: &[Vec<usize>], weighted: bool) -> Graph {
    let n = occupancy.len();
    let mut b = Graph::builder(2 * n);
    for (i, row) in occupancy.iter().enumerate() {
        for (j, &q) in row.iter().enumerate() {
            if q > 0 {
                if weighted {
                    b.weighted_edge(i, n + j, q as f64);
                } else {
                    b.edge(i, n + j);
                }
            }
        }
    }
    b.bipartition((0..2 * n).map(|v| if v < n { Side::X } else { Side::Y }).collect());
    b.build().expect("request graph is valid")
}

impl Scheduler for Distributed {
    fn name(&self) -> &'static str {
        match self.algo {
            DistAlgo::IsraeliItai => "II",
            DistAlgo::BipartiteMcm { .. } => "LPP-MCM",
            DistAlgo::LocalMaxWeight => "LocalMaxW",
        }
    }

    fn schedule(&mut self, occupancy: &[Vec<usize>], rng: &mut StdRng) -> Vec<Option<usize>> {
        let n = occupancy.len();
        let g = request_graph(occupancy, matches!(self.algo, DistAlgo::LocalMaxWeight));
        let seed: u64 = rng.random();
        let report = match self.algo {
            DistAlgo::IsraeliItai => israeli_itai_with(
                &g,
                dam_congest::SimConfig::congest_for(g.node_count(), 4).seed(seed),
            ),
            DistAlgo::BipartiteMcm { k } => {
                bipartite_mcm(&g, &BipartiteMcmConfig { k, seed, ..Default::default() })
            }
            DistAlgo::LocalMaxWeight => local_max_mwm(&g, seed),
        }
        .expect("distributed scheduling failed");
        self.rounds_total += report.stats.stats.rounds as u64;
        self.cells += 1;
        super::oracle::matching_to_schedule(&g, &report.matching, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{is_valid_schedule, schedule_size};
    use rand::SeedableRng;

    fn random_occ(n: usize, p: f64, rng: &mut StdRng) -> Vec<Vec<usize>> {
        (0..n).map(|_| (0..n).map(|_| usize::from(rng.random_bool(p)) * 3).collect()).collect()
    }

    #[test]
    fn ii_schedules_are_valid_and_maximal() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = Distributed::new(DistAlgo::IsraeliItai);
        for _ in 0..10 {
            let occ = random_occ(6, 0.4, &mut rng);
            let sched = s.schedule(&occ, &mut rng);
            assert!(is_valid_schedule(&occ, &sched));
        }
        assert!(s.mean_rounds() > 0.0);
    }

    #[test]
    fn local_max_weight_prefers_long_queues() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = Distributed::new(DistAlgo::LocalMaxWeight);
        // Input 0 has a huge queue to output 0; others small.
        let occ = vec![vec![50, 1], vec![1, 0]];
        let mut serves_heavy = 0;
        for _ in 0..10 {
            let sched = s.schedule(&occ, &mut rng);
            assert!(is_valid_schedule(&occ, &sched));
            if sched[0] == Some(0) {
                serves_heavy += 1;
            }
        }
        assert!(serves_heavy >= 9, "LQF-style scheduler must serve the long queue");
    }

    #[test]
    fn mcm_beats_or_ties_ii_on_average() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut ii = Distributed::new(DistAlgo::IsraeliItai);
        let mut mcm = Distributed::new(DistAlgo::BipartiteMcm { k: 3 });
        let mut ii_total = 0usize;
        let mut mcm_total = 0usize;
        for _ in 0..15 {
            let occ = random_occ(8, 0.25, &mut rng);
            ii_total += schedule_size(&ii.schedule(&occ, &mut rng));
            mcm_total += schedule_size(&mcm.schedule(&occ, &mut rng));
        }
        assert!(mcm_total >= ii_total, "MCM {mcm_total} vs II {ii_total}");
        // The better matching costs more rounds.
        assert!(mcm.mean_rounds() > ii.mean_rounds());
    }
}
