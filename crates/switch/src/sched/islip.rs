//! iSLIP (McKeown 1999) — the deterministic refinement of PIM used in
//! commercial routers ("the algorithm of choice in many of today's
//! routers", §1 of the paper).
//!
//! Like PIM but grants and accepts follow round-robin pointers instead of
//! coins, and a pointer advances only when its grant is accepted **in the
//! first iteration** — the property that de-synchronizes the pointers and
//! yields 100% throughput under admissible uniform traffic.

use rand::rngs::StdRng;

use super::Scheduler;

/// The iSLIP scheduler.
#[derive(Debug, Clone)]
pub struct Islip {
    n: usize,
    iterations: usize,
    /// Grant pointer per output.
    grant_ptr: Vec<usize>,
    /// Accept pointer per input.
    accept_ptr: Vec<usize>,
}

impl Islip {
    /// iSLIP over `n` ports with `iterations` grant/accept rounds.
    #[must_use]
    pub fn new(n: usize, iterations: usize) -> Islip {
        assert!(iterations > 0, "iSLIP needs at least one iteration");
        Islip { n, iterations, grant_ptr: vec![0; n], accept_ptr: vec![0; n] }
    }

    /// First index in round-robin order from `ptr` that satisfies `pred`.
    fn round_robin(n: usize, ptr: usize, mut pred: impl FnMut(usize) -> bool) -> Option<usize> {
        (0..n).map(|d| (ptr + d) % n).find(|&x| pred(x))
    }
}

impl Scheduler for Islip {
    fn name(&self) -> &'static str {
        "iSLIP"
    }

    fn schedule(&mut self, occupancy: &[Vec<usize>], _rng: &mut StdRng) -> Vec<Option<usize>> {
        let n = self.n;
        debug_assert_eq!(occupancy.len(), n);
        let mut in_match: Vec<Option<usize>> = vec![None; n];
        let mut out_taken = vec![false; n];
        for iter in 0..self.iterations {
            // Grant phase: each free output grants the first requesting
            // free input at or after its pointer.
            let mut grant_of_output: Vec<Option<usize>> = vec![None; n];
            for (j, grant) in grant_of_output.iter_mut().enumerate() {
                if out_taken[j] {
                    continue;
                }
                *grant = Islip::round_robin(n, self.grant_ptr[j], |i| {
                    in_match[i].is_none() && occupancy[i][j] > 0
                });
            }
            // Accept phase: each granted input accepts the first granting
            // output at or after its pointer.
            let mut progress = false;
            for (i, slot) in in_match.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let accept =
                    Islip::round_robin(n, self.accept_ptr[i], |j| grant_of_output[j] == Some(i));
                if let Some(j) = accept {
                    *slot = Some(j);
                    out_taken[j] = true;
                    progress = true;
                    if iter == 0 {
                        // Pointers advance one past the match, only on
                        // first-iteration acceptance.
                        self.grant_ptr[j] = (i + 1) % n;
                        self.accept_ptr[i] = (j + 1) % n;
                    }
                }
            }
            if !progress {
                break;
            }
        }
        in_match
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{is_valid_schedule, schedule_size};
    use rand::{RngExt, SeedableRng};

    #[test]
    fn produces_valid_schedules() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut islip = Islip::new(5, 2);
        for _ in 0..50 {
            let occ: Vec<Vec<usize>> = (0..5)
                .map(|_| (0..5).map(|_| usize::from(rng.random_bool(0.4))).collect())
                .collect();
            let s = islip.schedule(&occ, &mut rng);
            assert!(is_valid_schedule(&occ, &s));
        }
    }

    #[test]
    fn desynchronizes_under_full_load() {
        // The hallmark of iSLIP: under full occupancy the pointers
        // de-synchronize and, within a few cell times, every cycle is a
        // perfect matching.
        let mut rng = StdRng::seed_from_u64(5);
        let occ = vec![vec![1; 4]; 4];
        let mut islip = Islip::new(4, 1);
        let mut last_sizes = Vec::new();
        for t in 0..20 {
            let s = islip.schedule(&occ, &mut rng);
            if t >= 8 {
                last_sizes.push(schedule_size(&s));
            }
        }
        assert!(
            last_sizes.iter().all(|&s| s == 4),
            "iSLIP should settle into perfect matchings: {last_sizes:?}"
        );
    }

    #[test]
    fn is_deterministic() {
        let mut rng = StdRng::seed_from_u64(6);
        let occ = vec![vec![1, 0, 1], vec![1, 1, 0], vec![0, 1, 1]];
        let s1 = Islip::new(3, 2).schedule(&occ, &mut rng);
        let s2 = Islip::new(3, 2).schedule(&occ, &mut rng);
        assert_eq!(s1, s2);
    }
}
