//! Centralized oracle schedulers: maximum-size and maximum-weight
//! matching per cell time.
//!
//! These are not implementable at line rate in hardware — they exist as
//! the upper bound every iterative scheduler is measured against
//! ("the scheduling routine tries to maximize throughput, which is
//! usually interpreted as finding the largest possible matching", §1).

use dam_graph::{hopcroft_karp, hungarian, Graph, Side};
use rand::rngs::StdRng;

use super::Scheduler;

/// Builds the request graph: inputs `0..n` (`X`), outputs `n..2n` (`Y`),
/// one edge per non-empty VOQ, optionally weighted by queue length.
fn request_graph(occupancy: &[Vec<usize>], weighted: bool) -> Graph {
    let n = occupancy.len();
    let mut b = Graph::builder(2 * n);
    for (i, row) in occupancy.iter().enumerate() {
        for (j, &q) in row.iter().enumerate() {
            if q > 0 {
                if weighted {
                    b.weighted_edge(i, n + j, q as f64);
                } else {
                    b.edge(i, n + j);
                }
            }
        }
    }
    b.bipartition((0..2 * n).map(|v| if v < n { Side::X } else { Side::Y }).collect());
    b.build().expect("request graph is valid")
}

/// Extracts `input -> output` assignments from a matching on the request
/// graph.
pub(crate) fn matching_to_schedule(
    g: &Graph,
    m: &dam_graph::Matching,
    n: usize,
) -> Vec<Option<usize>> {
    (0..n).map(|i| m.mate(g, i).map(|out| out - n)).collect()
}

/// Maximum-size matching scheduler (Hopcroft–Karp every cell).
#[derive(Debug, Clone, Default)]
pub struct MaxSize;

impl Scheduler for MaxSize {
    fn name(&self) -> &'static str {
        "MaxSize"
    }

    fn schedule(&mut self, occupancy: &[Vec<usize>], _rng: &mut StdRng) -> Vec<Option<usize>> {
        let g = request_graph(occupancy, false);
        let m = hopcroft_karp::maximum_bipartite_matching(&g);
        matching_to_schedule(&g, &m, occupancy.len())
    }
}

/// Maximum-weight matching scheduler with queue-length weights (the
/// classical MWM/LQF policy, stable for all admissible traffic).
#[derive(Debug, Clone, Default)]
pub struct MaxWeight;

impl Scheduler for MaxWeight {
    fn name(&self) -> &'static str {
        "MaxWeight"
    }

    fn schedule(&mut self, occupancy: &[Vec<usize>], _rng: &mut StdRng) -> Vec<Option<usize>> {
        let g = request_graph(occupancy, true);
        let m = hungarian::maximum_weight_bipartite_matching(&g);
        matching_to_schedule(&g, &m, occupancy.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{is_valid_schedule, schedule_size};
    use rand::SeedableRng;

    #[test]
    fn max_size_finds_perfect_matching() {
        let mut rng = StdRng::seed_from_u64(7);
        let occ = vec![vec![1, 0, 0], vec![1, 1, 0], vec![0, 1, 1]];
        let s = MaxSize.schedule(&occ, &mut rng);
        assert!(is_valid_schedule(&occ, &s));
        assert_eq!(schedule_size(&s), 3);
    }

    #[test]
    fn max_weight_prefers_long_queues() {
        let mut rng = StdRng::seed_from_u64(8);
        // Input 0 can go to 0 (queue 10) or 1 (queue 1); input 1 only to
        // 0 (queue 1). MaxWeight serves (0,0) and leaves input 1 unserved
        // this cell? No: (0,1)+(1,0) = 2 > 10? 1+1=2 < 10: serve (0,0).
        let occ = vec![vec![10, 1], vec![1, 0]];
        let s = MaxWeight.schedule(&occ, &mut rng);
        assert!(is_valid_schedule(&occ, &s));
        assert_eq!(s[0], Some(0));
    }
}
