//! Random maximal matching scheduler — the cheapest baseline.
//!
//! Scans the request graph's edges in a uniformly random order and takes
//! whatever fits: a maximal matching (`½`-MCM) computed with zero
//! iteration structure. Sits below PIM in the scheduler hierarchy and
//! calibrates how much the smarter matchings actually buy.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use super::Scheduler;

/// The random-maximal scheduler.
#[derive(Debug, Clone, Default)]
pub struct RandomMaximal;

impl Scheduler for RandomMaximal {
    fn name(&self) -> &'static str {
        "RandomMaximal"
    }

    fn schedule(&mut self, occupancy: &[Vec<usize>], rng: &mut StdRng) -> Vec<Option<usize>> {
        let n = occupancy.len();
        let mut requests: Vec<(usize, usize)> = occupancy
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter().enumerate().filter_map(move |(j, &q)| (q > 0).then_some((i, j)))
            })
            .collect();
        requests.shuffle(rng);
        let mut in_match = vec![None; n];
        let mut out_taken = vec![false; n];
        for (i, j) in requests {
            if in_match[i].is_none() && !out_taken[j] {
                in_match[i] = Some(j);
                out_taken[j] = true;
            }
        }
        in_match
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{is_valid_schedule, schedule_size};
    use rand::{RngExt, SeedableRng};

    #[test]
    fn valid_and_maximal() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut s = RandomMaximal;
        for _ in 0..30 {
            let occ: Vec<Vec<usize>> = (0..6)
                .map(|_| (0..6).map(|_| usize::from(rng.random_bool(0.4))).collect())
                .collect();
            let sched = s.schedule(&occ, &mut rng);
            assert!(is_valid_schedule(&occ, &sched));
            // Maximality: no request between a free input and free output.
            let used: Vec<bool> = {
                let mut u = vec![false; 6];
                for &m in &sched {
                    if let Some(j) = m {
                        u[j] = true;
                    }
                }
                u
            };
            for i in 0..6 {
                for j in 0..6 {
                    assert!(
                        !(occ[i][j] > 0 && sched[i].is_none() && !used[j]),
                        "request ({i},{j}) left unserved by a maximal scheduler"
                    );
                }
            }
        }
    }

    #[test]
    fn full_occupancy_yields_perfect() {
        let mut rng = StdRng::seed_from_u64(32);
        let occ = vec![vec![1; 5]; 5];
        let sched = RandomMaximal.schedule(&occ, &mut rng);
        assert_eq!(schedule_size(&sched), 5);
    }
}
