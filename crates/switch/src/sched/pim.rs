//! PIM — Parallel Iterative Matching (Anderson et al. 1993).
//!
//! The scheduler of DEC's AN2 switch, built (as the paper notes) on the
//! ideas of Israeli–Itai. Each of `k` iterations runs three phases over
//! the still-unmatched ports:
//!
//! 1. **Request**: every unmatched input requests every unmatched output
//!    it has cells for;
//! 2. **Grant**: every requested output grants one request uniformly at
//!    random;
//! 3. **Accept**: every granted input accepts one grant uniformly at
//!    random.
//!
//! With `k = O(log N)` iterations the expected result is maximal.

use rand::rngs::StdRng;
use rand::RngExt;

use super::Scheduler;

/// The PIM scheduler.
#[derive(Debug, Clone)]
pub struct Pim {
    n: usize,
    iterations: usize,
}

impl Pim {
    /// PIM over `n` ports with `iterations` request/grant/accept rounds.
    #[must_use]
    pub fn new(n: usize, iterations: usize) -> Pim {
        assert!(iterations > 0, "PIM needs at least one iteration");
        Pim { n, iterations }
    }
}

impl Scheduler for Pim {
    fn name(&self) -> &'static str {
        "PIM"
    }

    fn schedule(&mut self, occupancy: &[Vec<usize>], rng: &mut StdRng) -> Vec<Option<usize>> {
        let n = self.n;
        debug_assert_eq!(occupancy.len(), n);
        let mut in_match: Vec<Option<usize>> = vec![None; n];
        let mut out_taken = vec![false; n];
        for _ in 0..self.iterations {
            // Grant: for each free output, collect requesting free inputs.
            let mut grants: Vec<Vec<usize>> = vec![Vec::new(); n]; // per input: granting outputs
            for j in 0..n {
                if out_taken[j] {
                    continue;
                }
                let requesters: Vec<usize> =
                    (0..n).filter(|&i| in_match[i].is_none() && occupancy[i][j] > 0).collect();
                if let Some(&i) = pick(&requesters, rng) {
                    grants[i].push(j);
                }
            }
            // Accept: each input takes one grant at random.
            let mut progress = false;
            for i in 0..n {
                if in_match[i].is_none() {
                    if let Some(&j) = pick(&grants[i], rng) {
                        in_match[i] = Some(j);
                        out_taken[j] = true;
                        progress = true;
                    }
                }
            }
            if !progress {
                break;
            }
        }
        in_match
    }
}

fn pick<'a>(items: &'a [usize], rng: &mut StdRng) -> Option<&'a usize> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.random_range(0..items.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::is_valid_schedule;
    use rand::SeedableRng;

    #[test]
    fn produces_valid_schedules() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pim = Pim::new(4, 3);
        for _ in 0..50 {
            let occ: Vec<Vec<usize>> = (0..4)
                .map(|_| (0..4).map(|_| usize::from(rng.random_bool(0.5))).collect())
                .collect();
            let s = pim.schedule(&occ, &mut rng);
            assert!(is_valid_schedule(&occ, &s));
        }
    }

    #[test]
    fn full_occupancy_with_enough_iterations_is_perfect_often() {
        // On a fully loaded 4x4 switch, 4 iterations almost always reach
        // a perfect matching; check it does so at least once and is
        // always maximal-ish (size ≥ n−1 on average).
        let mut rng = StdRng::seed_from_u64(2);
        let occ = vec![vec![1; 4]; 4];
        let mut pim = Pim::new(4, 4);
        let mut total = 0;
        for _ in 0..100 {
            total += crate::sched::schedule_size(&pim.schedule(&occ, &mut rng));
        }
        assert!(total >= 350, "PIM should nearly saturate: {total}/400");
    }

    #[test]
    fn single_iteration_can_be_suboptimal() {
        // With 1 iteration PIM is exactly request/grant/accept — valid
        // but possibly far from maximum.
        let mut rng = StdRng::seed_from_u64(3);
        let occ = vec![vec![1; 8]; 8];
        let mut pim = Pim::new(8, 1);
        let s = pim.schedule(&occ, &mut rng);
        assert!(is_valid_schedule(&occ, &s));
        assert!(crate::sched::schedule_size(&s) >= 1);
    }
}
