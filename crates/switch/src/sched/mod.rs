//! Crossbar schedulers.
//!
//! A scheduler inspects the VOQ occupancy matrix and returns a matching
//! between inputs and outputs for this cell time. The quality of that
//! matching is exactly what the paper's matching algorithms improve.

pub mod distributed;
pub mod islip;
pub mod oracle;
pub mod pim;
pub mod random;

use rand::rngs::StdRng;

/// A cell-time scheduling policy.
pub trait Scheduler {
    /// Short human-readable name for result tables.
    fn name(&self) -> &'static str;

    /// Computes this cell's matching: `result[i] = Some(j)` connects
    /// input `i` to output `j`. The result must be a matching and should
    /// only connect pairs with a non-empty VOQ.
    fn schedule(&mut self, occupancy: &[Vec<usize>], rng: &mut StdRng) -> Vec<Option<usize>>;
}

/// Checks that a schedule is a matching over non-empty VOQs.
#[must_use]
pub fn is_valid_schedule(occupancy: &[Vec<usize>], schedule: &[Option<usize>]) -> bool {
    let n = occupancy.len();
    if schedule.len() != n {
        return false;
    }
    let mut used = vec![false; n];
    for (i, &s) in schedule.iter().enumerate() {
        if let Some(j) = s {
            if j >= n || used[j] || occupancy[i][j] == 0 {
                return false;
            }
            used[j] = true;
        }
    }
    true
}

/// Size of a schedule (matched pairs).
#[must_use]
pub fn schedule_size(schedule: &[Option<usize>]) -> usize {
    schedule.iter().flatten().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_conflicts_and_empties() {
        let occ = vec![vec![1, 0], vec![1, 1]];
        assert!(is_valid_schedule(&occ, &[Some(0), Some(1)]));
        assert!(!is_valid_schedule(&occ, &[Some(0), Some(0)]), "output reuse");
        assert!(!is_valid_schedule(&occ, &[Some(1), None]), "empty VOQ");
        assert!(!is_valid_schedule(&occ, &[None]), "wrong length");
        assert_eq!(schedule_size(&[Some(0), None, Some(2)]), 2);
    }
}
