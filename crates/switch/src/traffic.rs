//! Synthetic traffic: admission matrices and arrival processes.
//!
//! The matrices are the standard ones from the input-queued switch
//! literature (McKeown 1999 and successors). `rate(i, j)` is the
//! probability that a cell destined for output `j` arrives at input `i`
//! in a given cell time; every matrix is admissible (row and column sums
//! ≤ `load`).

use rand::rngs::StdRng;
use rand::RngExt;

/// Spatial distribution of traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// `rate(i,j) = ρ/N` — the benign case.
    Uniform,
    /// `rate(i,i) = 2ρ/3`, `rate(i,i+1) = ρ/3` — the classic unbalanced
    /// "diagonal" stress test.
    Diagonal,
    /// `rate(i,j) ∝ 2^{-((j−i) mod N)}` — skewed but smoother.
    LogDiagonal,
    /// All of input `i`'s load aimed at output `(i + 1) mod N` — a fixed
    /// permutation, the easiest admissible pattern (any maximal
    /// scheduler carries it at full load).
    Permutation,
    /// Half the load uniform, half concentrated on the diagonal
    /// "hotspot" (rows and columns still sum to `ρ`).
    Hotspot,
}

impl TrafficPattern {
    /// The admission matrix for `n` ports at offered `load ∈ [0, 1]`.
    #[must_use]
    pub fn matrix(&self, n: usize, load: f64) -> Vec<Vec<f64>> {
        assert!(n > 0, "need at least one port");
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        let mut m = vec![vec![0.0; n]; n];
        match self {
            TrafficPattern::Uniform => {
                for row in &mut m {
                    for r in row.iter_mut() {
                        *r = load / n as f64;
                    }
                }
            }
            TrafficPattern::Diagonal => {
                for i in 0..n {
                    m[i][i] = 2.0 * load / 3.0;
                    m[i][(i + 1) % n] = load / 3.0;
                }
            }
            TrafficPattern::LogDiagonal => {
                // Weights 2^{-d}, d = (j - i) mod n, normalized per row.
                let total: f64 = (0..n).map(|d| 0.5f64.powi(d as i32)).sum();
                for (i, row) in m.iter_mut().enumerate() {
                    for (j, cell) in row.iter_mut().enumerate() {
                        let d = (j + n - i) % n;
                        *cell = load * 0.5f64.powi(d as i32) / total;
                    }
                }
            }
            TrafficPattern::Permutation => {
                for i in 0..n {
                    m[i][(i + 1) % n] = load;
                }
            }
            TrafficPattern::Hotspot => {
                // Half the load uniform, half concentrated on the
                // diagonal "hotspot" — rows and columns both sum to ρ,
                // so the matrix stays admissible.
                let nf = n as f64;
                for (i, row) in m.iter_mut().enumerate() {
                    for cell in row.iter_mut() {
                        *cell = load / (2.0 * nf);
                    }
                    row[i] += load / 2.0 * (nf - 1.0) / nf;
                }
            }
        }
        m
    }
}

/// Temporal structure of arrivals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Independent Bernoulli arrivals per (input, output, cell).
    Bernoulli,
    /// Two-state on/off bursts with the given mean burst length; the
    /// destination is redrawn per burst, rates are preserved on average.
    Bursty {
        /// Mean burst length in cells (≥ 1).
        mean_burst: f64,
    },
}

/// Stateful arrival generator for one switch.
#[derive(Debug)]
pub struct TrafficSource {
    rates: Vec<Vec<f64>>,
    process: ArrivalProcess,
    /// Per-input burst state: remaining cells and destination.
    burst: Vec<Option<(usize, usize)>>,
    /// Per-input total rate (for burst admission).
    row_rate: Vec<f64>,
}

impl TrafficSource {
    /// Creates a source for `n` ports.
    #[must_use]
    pub fn new(
        pattern: TrafficPattern,
        process: ArrivalProcess,
        n: usize,
        load: f64,
    ) -> TrafficSource {
        let rates = pattern.matrix(n, load);
        let row_rate = rates.iter().map(|r| r.iter().sum()).collect();
        TrafficSource { rates, process, burst: vec![None; n], row_rate }
    }

    /// Number of ports.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.rates.len()
    }

    /// Draws the arrivals of one cell time: `(input, output)` pairs.
    pub fn tick(&mut self, rng: &mut StdRng) -> Vec<(usize, usize)> {
        let n = self.ports();
        let mut arrivals = Vec::new();
        match self.process {
            ArrivalProcess::Bernoulli => {
                for i in 0..n {
                    for j in 0..n {
                        let p = self.rates[i][j];
                        if p > 0.0 && rng.random_bool(p.min(1.0)) {
                            arrivals.push((i, j));
                        }
                    }
                }
            }
            ArrivalProcess::Bursty { mean_burst } => {
                let mean_burst = mean_burst.max(1.0);
                for i in 0..n {
                    match self.burst[i] {
                        Some((j, left)) => {
                            arrivals.push((i, j));
                            self.burst[i] = (left > 1).then_some((j, left - 1));
                        }
                        None => {
                            // Start a burst with probability chosen so the
                            // long-run arrival rate equals row_rate.
                            let rho = self.row_rate[i].min(1.0);
                            let p_start = rho / (mean_burst * (1.0 - rho) + rho);
                            if rho > 0.0 && rng.random_bool(p_start.clamp(0.0, 1.0)) {
                                // Geometric burst length with the given mean.
                                let mut len = 1usize;
                                while rng.random_bool(1.0 - 1.0 / mean_burst) {
                                    len += 1;
                                    if len > 10_000 {
                                        break;
                                    }
                                }
                                let j = self.pick_destination(i, rng);
                                arrivals.push((i, j));
                                self.burst[i] = (len > 1).then_some((j, len - 1));
                            }
                        }
                    }
                }
            }
        }
        arrivals
    }

    fn pick_destination(&self, i: usize, rng: &mut StdRng) -> usize {
        let total = self.row_rate[i];
        let mut x: f64 = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        for (j, &r) in self.rates[i].iter().enumerate() {
            if x < r {
                return j;
            }
            x -= r;
        }
        self.rates[i].len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matrices_are_admissible() {
        for pattern in [
            TrafficPattern::Uniform,
            TrafficPattern::Diagonal,
            TrafficPattern::LogDiagonal,
            TrafficPattern::Permutation,
            TrafficPattern::Hotspot,
        ] {
            let m = pattern.matrix(8, 0.9);
            for (i, row_cells) in m.iter().enumerate() {
                let row: f64 = row_cells.iter().sum();
                assert!(row <= 0.9 + 1e-9, "{pattern:?} row {i} sum {row}");
                let col: f64 = (0..8).map(|r| m[r][i]).sum();
                assert!(col <= 0.9 + 1e-6, "{pattern:?} col {i} sum {col}");
            }
        }
    }

    #[test]
    fn bernoulli_rate_matches_matrix() {
        let mut src =
            TrafficSource::new(TrafficPattern::Uniform, ArrivalProcess::Bernoulli, 4, 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        let cells = 20_000;
        let mut count = 0usize;
        for _ in 0..cells {
            count += src.tick(&mut rng).len();
        }
        let rate = count as f64 / (cells as f64 * 4.0);
        assert!((rate - 0.8).abs() < 0.02, "measured per-input rate {rate}");
    }

    #[test]
    fn bursty_rate_is_preserved() {
        let mut src = TrafficSource::new(
            TrafficPattern::Uniform,
            ArrivalProcess::Bursty { mean_burst: 8.0 },
            4,
            0.5,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let cells = 40_000;
        let mut count = 0usize;
        let mut max_run = 0usize;
        let mut run = 0usize;
        for _ in 0..cells {
            let a = src.tick(&mut rng);
            if a.iter().any(|&(i, _)| i == 0) {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
            count += a.len();
        }
        let rate = count as f64 / (cells as f64 * 4.0);
        assert!((rate - 0.5).abs() < 0.05, "measured per-input rate {rate}");
        assert!(max_run >= 8, "bursts should produce long runs, max {max_run}");
    }

    #[test]
    fn destinations_follow_pattern() {
        let mut src =
            TrafficSource::new(TrafficPattern::Diagonal, ArrivalProcess::Bernoulli, 6, 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        let mut diag = 0usize;
        let mut other = 0usize;
        for _ in 0..5_000 {
            for (i, j) in src.tick(&mut rng) {
                if i == j {
                    diag += 1;
                } else {
                    other += 1;
                }
            }
        }
        assert!(diag > other, "diagonal pattern favours (i,i): {diag} vs {other}");
    }
}
