//! The virtual-output-queued crossbar.
//!
//! Input `i` keeps one FIFO per output `j` (the VOQ), which removes
//! head-of-line blocking; each cell time the fabric realizes one matching
//! between inputs and outputs (Figure 1 of the paper) and transfers at
//! most one cell per matched pair.

use std::collections::VecDeque;

/// An `N×N` input-queued switch with per-cell arrival timestamps.
#[derive(Debug, Clone)]
pub struct VoqSwitch {
    n: usize,
    /// `queues[i][j]`: arrival times of cells at input `i` for output `j`.
    queues: Vec<Vec<VecDeque<u64>>>,
    now: u64,
    delivered: u64,
    total_delay: u64,
    arrived: u64,
    dropped: u64,
    capacity: usize,
}

impl VoqSwitch {
    /// A switch with `n` ports and unbounded queues.
    #[must_use]
    pub fn new(n: usize) -> VoqSwitch {
        VoqSwitch::with_capacity(n, usize::MAX)
    }

    /// A switch whose VOQs hold at most `capacity` cells (extra arrivals
    /// are dropped and counted).
    #[must_use]
    pub fn with_capacity(n: usize, capacity: usize) -> VoqSwitch {
        VoqSwitch {
            n,
            queues: vec![vec![VecDeque::new(); n]; n],
            now: 0,
            delivered: 0,
            total_delay: 0,
            arrived: 0,
            dropped: 0,
            capacity,
        }
    }

    /// Number of ports.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.n
    }

    /// The current cell time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Queue length of VOQ `(i, j)`.
    #[must_use]
    pub fn occupancy(&self, i: usize, j: usize) -> usize {
        self.queues[i][j].len()
    }

    /// The full occupancy matrix.
    #[must_use]
    pub fn occupancy_matrix(&self) -> Vec<Vec<usize>> {
        self.queues.iter().map(|row| row.iter().map(VecDeque::len).collect()).collect()
    }

    /// Total buffered cells.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.queues.iter().flat_map(|row| row.iter()).map(VecDeque::len).sum()
    }

    /// Enqueues one arrival at input `i` for output `j`.
    pub fn arrive(&mut self, i: usize, j: usize) {
        self.arrived += 1;
        if self.queues[i][j].len() >= self.capacity {
            self.dropped += 1;
        } else {
            self.queues[i][j].push_back(self.now);
        }
    }

    /// Applies one fabric cycle: `schedule[i] = Some(j)` connects input
    /// `i` to output `j`. Advances the clock.
    ///
    /// Returns the number of cells transferred.
    ///
    /// # Panics
    /// Panics if the schedule is not a matching (an output used twice) or
    /// indices are out of range.
    pub fn transfer(&mut self, schedule: &[Option<usize>]) -> usize {
        let moved = self.transfer_without_tick(schedule);
        self.now += 1;
        moved
    }

    /// As [`VoqSwitch::transfer`] but without advancing the clock — used
    /// for fabric speedup (multiple matchings per cell time).
    ///
    /// # Panics
    /// As [`VoqSwitch::transfer`].
    pub fn transfer_without_tick(&mut self, schedule: &[Option<usize>]) -> usize {
        assert_eq!(schedule.len(), self.n, "one entry per input");
        let mut used = vec![false; self.n];
        let mut moved = 0;
        for (i, &out) in schedule.iter().enumerate() {
            if let Some(j) = out {
                assert!(!used[j], "output {j} scheduled twice");
                used[j] = true;
                if let Some(t) = self.queues[i][j].pop_front() {
                    self.delivered += 1;
                    self.total_delay += self.now - t;
                    moved += 1;
                }
            }
        }
        moved
    }

    /// Cells delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Cells that arrived so far (including dropped ones).
    #[must_use]
    pub fn arrived(&self) -> u64 {
        self.arrived
    }

    /// Cells dropped to full VOQs.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Mean queueing delay of delivered cells, in cell times.
    #[must_use]
    pub fn mean_delay(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.delivered as f64
        }
    }

    /// Resets the delivery/delay counters (e.g. after warm-up) while
    /// keeping the queues.
    pub fn reset_metrics(&mut self) {
        self.delivered = 0;
        self.total_delay = 0;
        self.arrived = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_delay_accounting() {
        let mut sw = VoqSwitch::new(2);
        sw.arrive(0, 1); // t = 0
        sw.transfer(&[None, None]); // t -> 1, nothing moved
        sw.arrive(0, 1); // t = 1
        let moved = sw.transfer(&[Some(1), None]); // serves the t=0 cell at t=1
        assert_eq!(moved, 1);
        let moved = sw.transfer(&[Some(1), None]); // serves the t=1 cell at t=2
        assert_eq!(moved, 1);
        assert_eq!(sw.delivered(), 2);
        // Delays: 1 and 1 -> mean 1.
        assert!((sw.mean_delay() - 1.0).abs() < 1e-12);
        assert_eq!(sw.backlog(), 0);
    }

    #[test]
    fn empty_voq_transfer_is_noop() {
        let mut sw = VoqSwitch::new(3);
        assert_eq!(sw.transfer(&[Some(0), Some(1), Some(2)]), 0);
        assert_eq!(sw.delivered(), 0);
    }

    #[test]
    #[should_panic(expected = "scheduled twice")]
    fn rejects_conflicting_schedule() {
        let mut sw = VoqSwitch::new(2);
        sw.transfer(&[Some(0), Some(0)]);
    }

    #[test]
    fn capacity_drops() {
        let mut sw = VoqSwitch::with_capacity(1, 2);
        sw.arrive(0, 0);
        sw.arrive(0, 0);
        sw.arrive(0, 0);
        assert_eq!(sw.dropped(), 1);
        assert_eq!(sw.occupancy(0, 0), 2);
    }
}
