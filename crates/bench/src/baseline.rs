//! Committed performance baselines for the engine workloads.
//!
//! `results/BENCH_e12.json` records a timed run of the fixed E12 gossip
//! workload (4-regular graph, `n = 4096`, 20 rounds) on the sequential
//! and the sharded parallel engine, together with the **host
//! parallelism** it was measured on. `results/BENCH_e18.json` records
//! the same workload on the **asynchronous backend** ([`AsyncBaseline`])
//! — its wall clock pays for virtual-time tracking and synchronizer
//! markers, and the committed marker count pins the control-plane
//! overhead bit-exactly. The smoke test
//! (`crates/bench/tests/bench_smoke.rs`, gated on `CI_SMOKE=1`)
//! re-measures both and fails if throughput fell below half of the
//! committed figure.
//!
//! Honesty note: on a single-hardware-thread host the parallel engine
//! cannot beat the sequential one — the `host_threads` field exists so
//! a baseline measured on such a machine is never misread as a speedup
//! claim. Regression checks therefore compare parallel throughput
//! against the *committed parallel* throughput, never against serial.
//!
//! The workspace is fully vendored and has no serde, so the JSON here
//! is emitted and parsed by hand: one flat object, string and numeric
//! values only.

use std::time::Instant;

use dam_congest::{
    AdaptivePolicy, Backend, Context, Network, Port, Protocol, Resilient, SimConfig, TransportCfg,
};
use dam_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Gossip rounds per run — matches E12's table workload.
pub const ROUNDS: usize = 20;
/// Node count of the baseline graph.
pub const N: usize = 4096;
/// Degree of the baseline graph.
pub const DEGREE: usize = 4;
/// Seed of the baseline graph generator.
pub const GRAPH_SEED: u64 = 7;
/// Simulator seed of every timed run.
pub const SIM_SEED: u64 = 1;
/// Identifies the workload so a stale file is never compared against a
/// different experiment.
pub const WORKLOAD: &str = "e12-gossip-4regular";
/// Workload id of the committed async-overhead baseline.
pub const ASYNC_WORKLOAD: &str = "e18-gossip-4regular-async";
/// Workload id of the committed adaptive-controller-overhead baseline.
pub const ADAPTIVE_WORKLOAD: &str = "e19-gossip-4regular-adaptive";

/// The fixed-round gossip protocol used by E12 and the Criterion
/// engine benchmarks: broadcast a running sum for [`ROUNDS`] rounds.
pub struct Gossip {
    rounds: usize,
    acc: u64,
}

impl Gossip {
    /// A fresh gossip node running for the baseline round count.
    #[must_use]
    pub fn new() -> Gossip {
        Gossip { rounds: ROUNDS, acc: 0 }
    }
}

impl Default for Gossip {
    fn default() -> Gossip {
        Gossip::new()
    }
}

impl Protocol for Gossip {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(ctx.id() as u64);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
        for &(_, x) in inbox {
            self.acc = self.acc.wrapping_add(x);
        }
        if ctx.round() >= self.rounds {
            ctx.halt();
        } else {
            ctx.broadcast(self.acc);
        }
    }

    fn into_output(self) -> u64 {
        self.acc
    }
}

/// Builds the canonical baseline graph.
#[must_use]
pub fn workload_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(GRAPH_SEED);
    generators::random_regular(N, DEGREE, &mut rng)
}

/// Times the workload at the given thread count (1 = sequential engine)
/// and returns the best-of-`repeats` wall-clock seconds plus the exact
/// message count (which is deterministic and identical on both engines).
///
/// # Panics
/// Panics if the simulation itself fails — the workload is fault-free,
/// so that is a bug.
#[must_use]
pub fn measure(g: &Graph, threads: usize, repeats: usize) -> (f64, u64) {
    assert!(repeats > 0, "need at least one timed repeat");
    let mut best = f64::INFINITY;
    let mut messages = 0u64;
    for _ in 0..repeats {
        let mut net = Network::new(g, SimConfig::local().seed(SIM_SEED).threads(threads));
        let t0 = Instant::now();
        let out = net.execute(|_, _| Gossip::new()).expect("fault-free gossip cannot fail");
        let dt = t0.elapsed().as_secs_f64();
        messages = out.stats.messages;
        if dt < best {
            best = dt;
        }
    }
    (best, messages)
}

/// Times the workload on the asynchronous backend (lockstep delays, no
/// patience budget — the bit-identical regime) and returns the
/// best-of-`repeats` wall-clock seconds plus the exact message and
/// synchronizer-marker counts, both deterministic.
///
/// # Panics
/// Panics if the simulation itself fails — the workload is fault-free,
/// so that is a bug.
#[must_use]
pub fn measure_async(g: &Graph, repeats: usize) -> (f64, u64, u64) {
    assert!(repeats > 0, "need at least one timed repeat");
    let mut best = f64::INFINITY;
    let mut messages = 0u64;
    let mut markers = 0u64;
    for _ in 0..repeats {
        let mut net = Network::new(g, SimConfig::local().seed(SIM_SEED).backend(Backend::Async));
        let t0 = Instant::now();
        let out = net.execute(|_, _| Gossip::new()).expect("fault-free gossip cannot fail");
        let dt = t0.elapsed().as_secs_f64();
        messages = out.stats.messages;
        markers = out.stats.markers;
        if dt < best {
            best = dt;
        }
    }
    (best, messages, markers)
}

/// Times the gossip workload behind the resilient transport, once with
/// the static floor configuration and once with the closed-loop
/// controller over the same floor. The run is fault-free, so the
/// controller never leaves level 1 and both runs are message-for-message
/// identical — the wall-clock gap is pure controller overhead (epoch
/// bookkeeping plus the boundary re-derivations). Returns
/// `(static_s, adaptive_s, messages)` with each wall clock
/// best-of-`repeats`.
///
/// # Panics
/// Panics if the simulation itself fails — the workload is fault-free,
/// so that is a bug.
#[must_use]
pub fn measure_adaptive(g: &Graph, repeats: usize) -> (f64, f64, u64) {
    assert!(repeats > 0, "need at least one timed repeat");
    let floor = TransportCfg::default();
    let policy = AdaptivePolicy::for_floor(floor);
    let mut static_best = f64::INFINITY;
    let mut adaptive_best = f64::INFINITY;
    let mut static_messages = 0u64;
    let mut adaptive_messages = 0u64;
    for _ in 0..repeats {
        let mut net = Network::new(g, SimConfig::local().seed(SIM_SEED));
        let t0 = Instant::now();
        let out = net
            .execute(|_, _| Resilient::new(Gossip::new(), floor))
            .expect("fault-free gossip cannot fail");
        let dt = t0.elapsed().as_secs_f64();
        static_messages = out.stats.messages;
        if dt < static_best {
            static_best = dt;
        }

        let mut net = Network::new(g, SimConfig::local().seed(SIM_SEED));
        let t0 = Instant::now();
        let out = net
            .execute(|_, _| Resilient::with_policy(Gossip::new(), policy))
            .expect("fault-free gossip cannot fail");
        let dt = t0.elapsed().as_secs_f64();
        adaptive_messages = out.stats.messages;
        if dt < adaptive_best {
            adaptive_best = dt;
        }
    }
    assert_eq!(
        static_messages, adaptive_messages,
        "a fault-free controller must stay at its floor (identical traffic)"
    );
    (static_best, adaptive_best, static_messages)
}

/// One committed measurement of the E12 workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Workload identifier — must equal [`WORKLOAD`].
    pub workload: String,
    /// Node count.
    pub n: usize,
    /// Gossip rounds.
    pub rounds: usize,
    /// Total messages of one run (engine-independent, deterministic).
    pub messages: u64,
    /// Best-of-N sequential wall clock, milliseconds.
    pub serial_ms: f64,
    /// Best-of-N parallel wall clock, milliseconds.
    pub parallel_ms: f64,
    /// Worker threads of the parallel measurement.
    pub parallel_threads: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    /// A baseline with `host_threads == 1` carries no speedup claim.
    pub host_threads: usize,
}

impl Baseline {
    /// Sequential throughput in million messages per second.
    #[must_use]
    pub fn serial_mmsg_per_s(&self) -> f64 {
        self.messages as f64 / (self.serial_ms / 1e3) / 1e6
    }

    /// Parallel throughput in million messages per second.
    #[must_use]
    pub fn parallel_mmsg_per_s(&self) -> f64 {
        self.messages as f64 / (self.parallel_ms / 1e3) / 1e6
    }

    /// Wall-clock speedup of the parallel engine over the sequential
    /// one. Only meaningful when `host_threads > 1`.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }

    /// Measures a fresh baseline on this host.
    #[must_use]
    pub fn collect(parallel_threads: usize, repeats: usize) -> Baseline {
        let g = workload_graph();
        let (serial_s, messages) = measure(&g, 1, repeats);
        let (parallel_s, par_messages) = measure(&g, parallel_threads, repeats);
        assert_eq!(messages, par_messages, "engines must agree on the message count");
        Baseline {
            workload: WORKLOAD.to_string(),
            n: N,
            rounds: ROUNDS,
            messages,
            serial_ms: serial_s * 1e3,
            parallel_ms: parallel_s * 1e3,
            parallel_threads,
            host_threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        }
    }

    /// Serializes to the committed JSON format (hand-rolled; the
    /// workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"workload\": \"{}\",\n  \"n\": {},\n  \"rounds\": {},\n  \
             \"messages\": {},\n  \"serial_ms\": {:.3},\n  \"parallel_ms\": {:.3},\n  \
             \"parallel_threads\": {},\n  \"host_threads\": {}\n}}\n",
            self.workload,
            self.n,
            self.rounds,
            self.messages,
            self.serial_ms,
            self.parallel_ms,
            self.parallel_threads,
            self.host_threads,
        )
    }

    /// Parses the committed JSON format.
    ///
    /// # Errors
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or("baseline JSON must be a single object")?;
        let mut workload = None;
        let mut fields: Vec<(String, String)> = Vec::new();
        for entry in body.split(',') {
            let (key, value) =
                entry.split_once(':').ok_or_else(|| format!("malformed entry {entry:?}"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim().to_string();
            if key == "workload" {
                workload = Some(value.trim_matches('"').to_string());
            } else {
                fields.push((key, value));
            }
        }
        let lookup = |name: &str| -> Result<f64, String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .ok_or_else(|| format!("missing field {name:?}"))?
                .1
                .parse::<f64>()
                .map_err(|e| format!("field {name:?}: {e}"))
        };
        Ok(Baseline {
            workload: workload.ok_or("missing field \"workload\"")?,
            n: lookup("n")? as usize,
            rounds: lookup("rounds")? as usize,
            messages: lookup("messages")? as u64,
            serial_ms: lookup("serial_ms")?,
            parallel_ms: lookup("parallel_ms")?,
            parallel_threads: lookup("parallel_threads")? as usize,
            host_threads: lookup("host_threads")? as usize,
        })
    }
}

/// One committed measurement of the E18 async-overhead workload: the
/// E12 gossip run on the asynchronous backend, against the sequential
/// engine on the same host.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncBaseline {
    /// Workload identifier — must equal [`ASYNC_WORKLOAD`].
    pub workload: String,
    /// Node count.
    pub n: usize,
    /// Gossip rounds.
    pub rounds: usize,
    /// Total payload messages of one run (backend-independent,
    /// deterministic).
    pub messages: u64,
    /// Synchronizer markers of one async run (deterministic — the
    /// committed figure pins the control-plane overhead bit-exactly).
    pub markers: u64,
    /// Best-of-N sequential wall clock, milliseconds.
    pub serial_ms: f64,
    /// Best-of-N asynchronous-backend wall clock, milliseconds.
    pub async_ms: f64,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_threads: usize,
}

impl AsyncBaseline {
    /// Asynchronous-backend throughput in million payload messages per
    /// second.
    #[must_use]
    pub fn async_mmsg_per_s(&self) -> f64 {
        self.messages as f64 / (self.async_ms / 1e3) / 1e6
    }

    /// Wall-clock overhead of the asynchronous backend over the
    /// sequential engine (> 1 — virtual time and markers are not free).
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.async_ms / self.serial_ms
    }

    /// Measures a fresh async baseline on this host.
    #[must_use]
    pub fn collect(repeats: usize) -> AsyncBaseline {
        let g = workload_graph();
        let (serial_s, messages) = measure(&g, 1, repeats);
        let (async_s, async_messages, markers) = measure_async(&g, repeats);
        assert_eq!(messages, async_messages, "backends must agree on the payload count");
        AsyncBaseline {
            workload: ASYNC_WORKLOAD.to_string(),
            n: N,
            rounds: ROUNDS,
            messages,
            markers,
            serial_ms: serial_s * 1e3,
            async_ms: async_s * 1e3,
            host_threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        }
    }

    /// Serializes to the committed JSON format (hand-rolled; the
    /// workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"workload\": \"{}\",\n  \"n\": {},\n  \"rounds\": {},\n  \
             \"messages\": {},\n  \"markers\": {},\n  \"serial_ms\": {:.3},\n  \
             \"async_ms\": {:.3},\n  \"host_threads\": {}\n}}\n",
            self.workload,
            self.n,
            self.rounds,
            self.messages,
            self.markers,
            self.serial_ms,
            self.async_ms,
            self.host_threads,
        )
    }

    /// Parses the committed JSON format.
    ///
    /// # Errors
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<AsyncBaseline, String> {
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or("baseline JSON must be a single object")?;
        let mut workload = None;
        let mut fields: Vec<(String, String)> = Vec::new();
        for entry in body.split(',') {
            let (key, value) =
                entry.split_once(':').ok_or_else(|| format!("malformed entry {entry:?}"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim().to_string();
            if key == "workload" {
                workload = Some(value.trim_matches('"').to_string());
            } else {
                fields.push((key, value));
            }
        }
        let lookup = |name: &str| -> Result<f64, String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .ok_or_else(|| format!("missing field {name:?}"))?
                .1
                .parse::<f64>()
                .map_err(|e| format!("field {name:?}: {e}"))
        };
        Ok(AsyncBaseline {
            workload: workload.ok_or("missing field \"workload\"")?,
            n: lookup("n")? as usize,
            rounds: lookup("rounds")? as usize,
            messages: lookup("messages")? as u64,
            markers: lookup("markers")? as u64,
            serial_ms: lookup("serial_ms")?,
            async_ms: lookup("async_ms")?,
            host_threads: lookup("host_threads")? as usize,
        })
    }
}

/// One committed measurement of the E19 controller-overhead workload:
/// the E12 gossip run behind the resilient transport, static floor vs
/// the closed-loop controller over the same floor, on the same host.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveBaseline {
    /// Workload identifier — must equal [`ADAPTIVE_WORKLOAD`].
    pub workload: String,
    /// Node count.
    pub n: usize,
    /// Gossip rounds.
    pub rounds: usize,
    /// Total frames of one run (identical for both arms — the
    /// fault-free controller never leaves its floor, and the committed
    /// figure pins that bit-exactly).
    pub messages: u64,
    /// Best-of-N static-transport wall clock, milliseconds.
    pub static_ms: f64,
    /// Best-of-N adaptive-transport wall clock, milliseconds.
    pub adaptive_ms: f64,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_threads: usize,
}

impl AdaptiveBaseline {
    /// Adaptive-transport throughput in million frames per second.
    #[must_use]
    pub fn adaptive_mmsg_per_s(&self) -> f64 {
        self.messages as f64 / (self.adaptive_ms / 1e3) / 1e6
    }

    /// Wall-clock overhead of the controller over the static transport
    /// (≈ 1 — the control law runs once per epoch per node).
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.adaptive_ms / self.static_ms
    }

    /// Measures a fresh adaptive baseline on this host.
    #[must_use]
    pub fn collect(repeats: usize) -> AdaptiveBaseline {
        let g = workload_graph();
        let (static_s, adaptive_s, messages) = measure_adaptive(&g, repeats);
        AdaptiveBaseline {
            workload: ADAPTIVE_WORKLOAD.to_string(),
            n: N,
            rounds: ROUNDS,
            messages,
            static_ms: static_s * 1e3,
            adaptive_ms: adaptive_s * 1e3,
            host_threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        }
    }

    /// Serializes to the committed JSON format (hand-rolled; the
    /// workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"workload\": \"{}\",\n  \"n\": {},\n  \"rounds\": {},\n  \
             \"messages\": {},\n  \"static_ms\": {:.3},\n  \"adaptive_ms\": {:.3},\n  \
             \"host_threads\": {}\n}}\n",
            self.workload,
            self.n,
            self.rounds,
            self.messages,
            self.static_ms,
            self.adaptive_ms,
            self.host_threads,
        )
    }

    /// Parses the committed JSON format.
    ///
    /// # Errors
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<AdaptiveBaseline, String> {
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or("baseline JSON must be a single object")?;
        let mut workload = None;
        let mut fields: Vec<(String, String)> = Vec::new();
        for entry in body.split(',') {
            let (key, value) =
                entry.split_once(':').ok_or_else(|| format!("malformed entry {entry:?}"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim().to_string();
            if key == "workload" {
                workload = Some(value.trim_matches('"').to_string());
            } else {
                fields.push((key, value));
            }
        }
        let lookup = |name: &str| -> Result<f64, String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .ok_or_else(|| format!("missing field {name:?}"))?
                .1
                .parse::<f64>()
                .map_err(|e| format!("field {name:?}: {e}"))
        };
        Ok(AdaptiveBaseline {
            workload: workload.ok_or("missing field \"workload\"")?,
            n: lookup("n")? as usize,
            rounds: lookup("rounds")? as usize,
            messages: lookup("messages")? as u64,
            static_ms: lookup("static_ms")?,
            adaptive_ms: lookup("adaptive_ms")?,
            host_threads: lookup("host_threads")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips() {
        let b = Baseline {
            workload: WORKLOAD.to_string(),
            n: N,
            rounds: ROUNDS,
            messages: 327_680,
            serial_ms: 41.5,
            parallel_ms: 55.25,
            parallel_threads: 4,
            host_threads: 1,
        };
        let back = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::from_json("not json").is_err());
        assert!(Baseline::from_json("{\"workload\": \"x\"}").is_err());
        assert!(AsyncBaseline::from_json("not json").is_err());
        assert!(AsyncBaseline::from_json("{\"workload\": \"x\"}").is_err());
    }

    #[test]
    fn async_json_roundtrips() {
        let b = AsyncBaseline {
            workload: ASYNC_WORKLOAD.to_string(),
            n: N,
            rounds: ROUNDS,
            messages: 327_680,
            markers: 12_345,
            serial_ms: 41.5,
            async_ms: 77.25,
            host_threads: 1,
        };
        let back = AsyncBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn adaptive_json_roundtrips() {
        let b = AdaptiveBaseline {
            workload: ADAPTIVE_WORKLOAD.to_string(),
            n: N,
            rounds: ROUNDS,
            messages: 500_000,
            static_ms: 60.5,
            adaptive_ms: 61.75,
            host_threads: 1,
        };
        let back = AdaptiveBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(b, back);
        assert!(AdaptiveBaseline::from_json("not json").is_err());
        assert!(AdaptiveBaseline::from_json("{\"workload\": \"x\"}").is_err());
    }

    #[test]
    fn adaptive_measurement_matches_static_traffic() {
        // Scaled down like the other engine unit tests; the full
        // n = 4096 run is exercised by bench-e19 and the CI_SMOKE
        // regression test. The equality assert lives inside
        // `measure_adaptive`.
        let mut rng = StdRng::seed_from_u64(GRAPH_SEED);
        let g = generators::random_regular(64, DEGREE, &mut rng);
        let (_, _, messages) = measure_adaptive(&g, 1);
        let (_, _, again) = measure_adaptive(&g, 1);
        assert!(messages > 0, "the resilient workload sends frames");
        assert_eq!(messages, again, "frame count must be deterministic");
    }

    #[test]
    fn async_measurement_matches_sequential_payload() {
        let mut rng = StdRng::seed_from_u64(GRAPH_SEED);
        let g = generators::random_regular(64, DEGREE, &mut rng);
        let (_, seq) = measure(&g, 1, 1);
        let (_, asy, markers) = measure_async(&g, 1);
        assert_eq!(seq, asy, "payload counts must agree across backends");
        let (_, asy2, markers2) = measure_async(&g, 1);
        assert_eq!((asy, markers), (asy2, markers2), "marker count must be deterministic");
    }

    #[test]
    fn measurement_is_deterministic_across_engines() {
        // A scaled-down workload keeps the unit test fast; the full
        // n = 4096 run is exercised by the bench-e12 binary and the
        // CI_SMOKE regression test.
        let mut rng = StdRng::seed_from_u64(GRAPH_SEED);
        let g = generators::random_regular(64, DEGREE, &mut rng);
        let (_, seq) = measure(&g, 1, 1);
        let (_, par) = measure(&g, 4, 1);
        assert_eq!(seq, par);
    }
}
