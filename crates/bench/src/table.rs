//! Aligned text tables + CSV output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned text form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the CSV form to `path` (parents created).
    ///
    /// # Errors
    /// I/O failure.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        fs::write(path, s)
    }
}

/// Formats a float with 4 significant decimals.
#[must_use]
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimals.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("demo", &["n", "ratio"]);
        t.row(vec!["8".into(), f(0.5)]);
        t.row(vec!["1024".into(), f(0.875)]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("0.8750"));
        assert_eq!(t.len(), 2);

        let dir = std::env::temp_dir().join("dam-bench-test");
        let path = dir.join("demo.csv");
        t.write_csv(&path).unwrap();
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("n,ratio\n8,0.5000\n"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
