//! E20: the algorithm portfolio on the runtime trait — ratio and round
//! sweep across every registered implementor.
//!
//! Every entry of the conformance registry
//! ([`dam_core::runtime::conformance::registry`]) runs through the same
//! `run_mm` pipeline on its input family at several sizes, and is
//! measured against its exact oracle (blossom cardinality /
//! Hopcroft–Karp / `O(n³)` MWM). The family bound is **asserted**, not
//! just reported — the sweep doubles as an end-to-end check that the
//! portfolio keeps its guarantees at sizes the unit conformance corpus
//! does not reach.

use dam_congest::SimConfig;
use dam_core::runtime::conformance::{registry, Entry, Kind};
use dam_core::runtime::{run_mm, RuntimeConfig};
use dam_graph::weights::{randomize_weights, WeightDist};
use dam_graph::{blossom, generators, hopcroft_karp, mwm, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::table::{f2, Table};

/// The entry's input family at size `n`, seeded per `(entry, n)`.
fn family_graph(entry: &Entry, n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ (n as u64) << 8);
    if entry.bipartite_input {
        return generators::bipartite_gnp(n / 2, n - n / 2, 4.0 / n as f64, &mut rng);
    }
    let base = generators::gnp(n, 4.0 / n as f64, &mut rng);
    if matches!(entry.kind, Kind::WeightedHalf { .. }) {
        randomize_weights(&base, WeightDist::Uniform { lo: 0.5, hi: 8.0 }, &mut rng)
    } else {
        base
    }
}

/// E20 — portfolio ratio and rounds by implementor and size.
pub fn e20(ctx: &ExpContext) -> Vec<Table> {
    let sizes: Vec<usize> = if ctx.quick { vec![12, 16] } else { vec![16, 32, 64] };
    let mut t = Table::new(
        "portfolio ratio and rounds by algorithm",
        &["algo", "n", "edges", "achieved", "optimum", "ratio", "rounds", "messages", "iterations"],
    );
    for entry in registry() {
        for &n in &sizes {
            let g = family_graph(&entry, n, 0xE20);
            let sim = SimConfig::congest_for(g.node_count(), 8).seed(7);
            let rep = run_mm(&*entry.spec.build(), &g, &RuntimeConfig::new().sim(sim))
                .expect("portfolio run");
            // The family bound is a hard claim, not a data point.
            entry
                .kind
                .check_quiescent(&g, &rep.matching)
                .unwrap_or_else(|e| panic!("{} (n = {n}): {e}", entry.name));
            let (achieved, optimum) = match entry.kind {
                Kind::Maximal => {
                    (rep.matching.size() as f64, blossom::maximum_matching_size(&g) as f64)
                }
                Kind::BipartiteApprox { .. } => (
                    rep.matching.size() as f64,
                    hopcroft_karp::maximum_bipartite_matching_size(&g) as f64,
                ),
                Kind::WeightedHalf { .. } => (rep.matching.weight(&g), mwm::maximum_weight(&g)),
            };
            let ratio = if optimum > 0.0 { achieved / optimum } else { 1.0 };
            t.row(vec![
                entry.name.to_string(),
                n.to_string(),
                g.edge_count().to_string(),
                f2(achieved),
                f2(optimum),
                f2(ratio),
                rep.phase1.rounds.to_string(),
                rep.phase1.messages.to_string(),
                rep.iterations.to_string(),
            ]);
        }
    }
    vec![t]
}
