//! E11: the implemented extensions — the §4-Remark `(1−ε)`-MWM, the
//! `b`-matching generalization, and the matching LCA.

use dam_core::hv::{hv_mwm, HvMwmConfig};
use dam_core::lca::MatchingLca;
use dam_core::weighted::b_local_max::b_local_max;
use dam_core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam_graph::bmatching::greedy_b_matching;
use dam_graph::weights::{randomize_weights, WeightDist};
use dam_graph::{generators, mwm};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f, f2, Table};

/// E11 — extensions.
pub fn e11(ctx: &ExpContext) -> Vec<Table> {
    let seeds = ctx.size(4, 2) as u64;

    // (a) HV (1−ε)-MWM vs Algorithm 5 across the trap and random inputs.
    let n = ctx.size(30, 14);
    let mut a = Table::new(
        "HV (1-eps)-MWM vs Algorithm 5",
        &["family", "alg5 eps=.05", "hv eps=.33", "hv eps=.2", "hv passes"],
    );
    let families: super::SeedFamilies = vec![
        ("greedy trap", Box::new(move |_| generators::greedy_trap(n / 4, 0.2))),
        (
            "gnp uniform w",
            Box::new(move |s| {
                let mut rng = StdRng::seed_from_u64(9000 + s);
                let base = generators::gnp(n, 6.0 / n as f64, &mut rng);
                randomize_weights(&base, WeightDist::Uniform { lo: 0.1, hi: 3.0 }, &mut rng)
            }),
        ),
        (
            "gnp powers-of-2",
            Box::new(move |s| {
                let mut rng = StdRng::seed_from_u64(9100 + s);
                let base = generators::gnp(n, 6.0 / n as f64, &mut rng);
                randomize_weights(&base, WeightDist::PowersOfTwo { classes: 10 }, &mut rng)
            }),
        ),
    ];
    for (name, make) in &families {
        let mut a5 = Vec::new();
        let mut hv33 = Vec::new();
        let mut hv20 = Vec::new();
        let mut passes = Vec::new();
        for seed in 0..seeds {
            let g = make(seed);
            let opt = mwm::maximum_weight(&g).max(f64::MIN_POSITIVE);
            let r5 = weighted_mwm(&g, &WeightedMwmConfig { eps: 0.05, seed, ..Default::default() })
                .expect("alg5");
            a5.push(r5.matching.weight(&g) / opt);
            let r33 =
                hv_mwm(&g, &HvMwmConfig { eps: 0.34, seed, ..Default::default() }).expect("hv");
            hv33.push(r33.matching.weight(&g) / opt);
            let r20 =
                hv_mwm(&g, &HvMwmConfig { eps: 0.2, seed, ..Default::default() }).expect("hv");
            hv20.push(r20.matching.weight(&g) / opt);
            passes.push(r20.iterations as f64);
        }
        a.row(vec![
            (*name).to_string(),
            f(mean(&a5)),
            f(mean(&hv33)),
            f(mean(&hv20)),
            f2(mean(&passes)),
        ]);
    }

    // (b) distributed b-matching: ratio vs capacity, matched to greedy.
    let bn = ctx.size(40, 16);
    let mut b = Table::new(
        "distributed b-matching (local-max)",
        &["capacity b", "mean weight / greedy", "mean rounds", "mean size"],
    );
    for cap in [1usize, 2, 4] {
        let mut rel = Vec::new();
        let mut rounds = Vec::new();
        let mut size = Vec::new();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(9200 + seed);
            let base = generators::gnp(bn, 8.0 / bn as f64, &mut rng);
            let g = randomize_weights(&base, WeightDist::Exponential { lambda: 1.0 }, &mut rng);
            let caps = vec![cap; g.node_count()];
            let dist = b_local_max(&g, &caps, seed).expect("b matching");
            let greedy = greedy_b_matching(&g, &caps);
            rel.push(dist.b_matching.weight(&g) / greedy.weight(&g).max(f64::MIN_POSITIVE));
            rounds.push(dist.stats.rounds as f64);
            size.push(dist.b_matching.size() as f64);
        }
        b.row(vec![cap.to_string(), f(mean(&rel)), f2(mean(&rounds)), f2(mean(&size))]);
    }

    // (c) LCA: probes per query vs graph size (sublinearity).
    let mut c = Table::new(
        "matching LCA probes per query (4-regular)",
        &["n", "edges", "mean probes", "max probes", "probes / edges"],
    );
    let sizes: Vec<usize> = if ctx.quick { vec![256, 1024] } else { vec![256, 1024, 4096, 16384] };
    for &nn in &sizes {
        let mut rng = StdRng::seed_from_u64(9300 + nn as u64);
        let g = generators::random_regular(nn, 4, &mut rng);
        let mut probes = Vec::new();
        let mut worst = 0u64;
        for q in 0..ctx.size(40, 10) {
            let lca = MatchingLca::new(&g, q as u64);
            let e = rng.random_range(0..g.edge_count());
            let _ = lca.edge_in_matching(e);
            probes.push(lca.probes() as f64);
            worst = worst.max(lca.probes());
        }
        c.row(vec![
            nn.to_string(),
            g.edge_count().to_string(),
            f2(mean(&probes)),
            worst.to_string(),
            f(mean(&probes) / g.edge_count() as f64),
        ]);
    }

    vec![a, b, c]
}
