//! E13: price-based vs augmenting-path-based weighted matching — the
//! Bertsekas auction against Algorithm 5 and the exact oracle.

use dam_core::auction::{auction_mwm, AuctionConfig};
use dam_core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam_graph::weights::{randomize_weights, WeightDist};
use dam_graph::{generators, hungarian};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f, f2, Table};

/// E13 — weighted bipartite assignment: auction (ratio → 1 as ε → 0,
/// pseudo-polynomial rounds) vs Algorithm 5 (`½−ε` floor, `O(log n)`
/// rounds). The trade-off the §1 job/server story implies.
pub fn e13(ctx: &ExpContext) -> Vec<Table> {
    let half = ctx.size(30, 12);
    let seeds = ctx.size(4, 2) as u64;
    let mut t = Table::new(
        "auction vs Algorithm 5 (bipartite, integer weights)",
        &["algorithm", "param", "mean ratio", "mean rounds"],
    );
    let instance = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(9500 + seed);
        let base = generators::bipartite_gnp(half, half, 0.3, &mut rng);
        randomize_weights(&base, WeightDist::Integer { max: 20 }, &mut rng)
    };
    // Auction at three ε levels.
    for eps in [2.0, 0.5, 0.05] {
        let mut ratios = Vec::new();
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let g = instance(seed);
            let opt = hungarian::maximum_weight_bipartite(&g).max(f64::MIN_POSITIVE);
            let r = auction_mwm(&g, &AuctionConfig { eps, seed, ..Default::default() })
                .expect("auction");
            ratios.push(r.matching.weight(&g) / opt);
            rounds.push(r.stats.stats.rounds as f64);
        }
        t.row(vec![
            "auction".to_string(),
            format!("eps={eps}"),
            f(mean(&ratios)),
            f2(mean(&rounds)),
        ]);
    }
    // Algorithm 5 for contrast.
    for eps in [0.2, 0.05] {
        let mut ratios = Vec::new();
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let g = instance(seed);
            let opt = hungarian::maximum_weight_bipartite(&g).max(f64::MIN_POSITIVE);
            let r = weighted_mwm(&g, &WeightedMwmConfig { eps, seed, ..Default::default() })
                .expect("alg5");
            ratios.push(r.matching.weight(&g) / opt);
            rounds.push(r.stats.stats.rounds as f64);
        }
        t.row(vec![
            "Algorithm 5".to_string(),
            format!("eps={eps}"),
            f(mean(&ratios)),
            f2(mean(&rounds)),
        ]);
    }

    // Auction round growth with the weight scale (pseudo-polynomial).
    let mut t2 = Table::new(
        "auction rounds vs weight scale (eps=0.5)",
        &["w_max", "mean rounds", "mean ratio"],
    );
    for w_max in [5u64, 20, 80, 320] {
        let mut ratios = Vec::new();
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(9600 + seed);
            let base = generators::bipartite_gnp(half, half, 0.3, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: w_max }, &mut rng);
            let opt = hungarian::maximum_weight_bipartite(&g).max(f64::MIN_POSITIVE);
            let r = auction_mwm(&g, &AuctionConfig { eps: 0.5, seed, ..Default::default() })
                .expect("auction");
            ratios.push(r.matching.weight(&g) / opt);
            rounds.push(r.stats.stats.rounds as f64);
        }
        t2.row(vec![w_max.to_string(), f2(mean(&rounds)), f(mean(&ratios))]);
    }
    vec![t, t2]
}
