//! The experiment registry (E1–E21).
//!
//! Each experiment reproduces one claim of the paper; the mapping is
//! documented in `DESIGN.md` and the measured outcomes in
//! `EXPERIMENTS.md`.

mod e_ablation;
mod e_adaptive;
mod e_async;
mod e_auction;
mod e_baselines;
mod e_checkpoint;
mod e_churn;
mod e_extensions;
mod e_fault;
mod e_integrity;
mod e_messages;
mod e_portfolio;
mod e_simulator;
mod e_switch;
mod e_timing;
mod e_unweighted;
mod e_weighted;

use std::path::PathBuf;

use crate::table::Table;

/// Named graph families drawn from a shared RNG (used by several
/// experiments' instance sweeps).
pub(crate) type RngFamilies<'a> =
    Vec<(&'a str, Box<dyn Fn(&mut rand::rngs::StdRng) -> dam_graph::Graph>)>;
/// Named graph families generated from an explicit seed.
pub(crate) type SeedFamilies<'a> = Vec<(&'a str, Box<dyn Fn(u64) -> dam_graph::Graph>)>;

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Shrink instance sizes for smoke runs.
    pub quick: bool,
    /// Where CSVs land.
    pub out_dir: PathBuf,
}

impl ExpContext {
    /// The default context writing to `results/`.
    #[must_use]
    pub fn new(quick: bool) -> ExpContext {
        ExpContext { quick, out_dir: PathBuf::from("results") }
    }

    /// Scales a size parameter down in quick mode.
    #[must_use]
    pub fn size(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// An experiment: id, one-line description, runner.
pub type Experiment = (&'static str, &'static str, fn(&ExpContext) -> Vec<Table>);

/// All experiments, in order.
#[must_use]
pub fn registry() -> Vec<Experiment> {
    vec![
        ("e1", "Theorem 3.10: bipartite (1-1/k)-MCM approximation ratio", e_unweighted::e1),
        ("e2", "Theorem 3.10: bipartite round complexity vs n (log scaling)", e_unweighted::e2),
        ("e3", "Theorem 3.15: general-graph (1-1/k)-MCM via Algorithm 4", e_unweighted::e3),
        ("e4", "Theorem 4.5: (1/2-eps)-MWM ratio and round complexity", e_weighted::e4),
        ("e5", "Lemma 3.4 vs 3.9: LOCAL vs CONGEST message widths", e_messages::e5),
        ("e6", "vs Israeli-Itai: cardinality improvement across graph families", e_baselines::e6),
        (
            "e7",
            "weighted baselines: greedy / path-growing / local-max vs Algorithm 5",
            e_weighted::e7,
        ),
        ("e8", "Figure 1 motivation: switch throughput/delay by scheduler", e_switch::e8),
        ("e9", "footnote 1: rings C_n - approximation is local, exactness is not", e_baselines::e9),
        ("e10", "ablations: black box, cost model, iteration policy", e_ablation::e10),
        ("e11", "extensions: (1-eps)-MWM LOCAL, b-matching, matching LCA", e_extensions::e11),
        ("e12", "simulator throughput: sequential vs multi-threaded engine", e_simulator::e12),
        ("e13", "auction vs Algorithm 5: price-based weighted assignment", e_auction::e13),
        ("e14", "alpha-synchronizer overhead: async == sync, at what cost", e_async::e14),
        ("e15", "self-healing: matching quality under loss and crashes", e_fault::e15),
        ("e16", "churn tolerance: matching quality and repair locality under churn", e_churn::e16),
        (
            "e17",
            "adversarial integrity: certified matchings under corruption and Byzantine nodes",
            e_integrity::e17,
        ),
        ("e18", "adversarial timing: graceful degradation off the round barrier", e_timing::e18),
        (
            "e19",
            "closed-loop adaptive transport vs static configs on drifting schedules",
            e_adaptive::e19,
        ),
        (
            "e20",
            "algorithm portfolio: ratio and rounds per implementor via one runtime",
            e_portfolio::e20,
        ),
        (
            "e21",
            "crash-consistent checkpointing: recovery per damage class, durability cost",
            e_checkpoint::e21,
        ),
    ]
}

/// Runs one experiment by id, printing tables and writing CSVs.
///
/// Returns `false` for unknown ids.
pub fn run(id: &str, ctx: &ExpContext) -> bool {
    for (eid, desc, f) in registry() {
        if eid == id {
            println!("\n### {eid}: {desc}\n");
            for t in f(ctx) {
                t.print();
                let path = ctx.out_dir.join(format!(
                    "{eid}_{}.csv",
                    t.title().to_lowercase().replace([' ', '/', ':', ','], "_")
                ));
                if let Err(e) = t.write_csv(&path) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("[csv] {}", path.display());
                }
            }
            return true;
        }
    }
    false
}
