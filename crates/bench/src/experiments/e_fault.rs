//! E15: the self-healing runtime — matching quality under message loss
//! and node crashes. This is the robustness extension (not a claim of
//! the paper): Israeli–Itai over the resilient transport, followed by
//! register sanitation and matching repair on the residual graph.

use dam_congest::{FaultPlan, SimConfig, TransportCfg};
use dam_core::israeli_itai::israeli_itai;
use dam_core::repair::is_maximal_on_residual;
use dam_core::runtime::{run_mm, IsraeliItai, RuntimeConfig};
use dam_graph::generators;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f2, Table};

/// Picks `k` distinct nodes to crash, each at an engine round in
/// `1..=burst` (early enough that the loss is not already locked in).
fn crash_plan(n: usize, k: usize, burst: usize, rng: &mut StdRng) -> Vec<(usize, usize)> {
    let mut hit = vec![false; n];
    let mut crashes = Vec::with_capacity(k);
    while crashes.len() < k {
        let v = rng.random_range(0..n);
        if !hit[v] {
            hit[v] = true;
            crashes.push((v, 1 + rng.random_range(0..burst)));
        }
    }
    crashes
}

/// E15 — self-healing maximal matching on `G(n, 8/n)`: fault-free
/// Israeli–Itai vs the resilient-transport + repair pipeline under
/// increasingly hostile fault plans. The acceptance bar (5% loss plus
/// 5% crashed nodes keeps ≥ 0.9 of the fault-free matching) is asserted
/// as part of the experiment.
pub fn e15(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(512, 64);
    let seeds = ctx.size(3, 2) as u64;
    let crashed = (n as f64 * 0.05).round() as usize;

    let mut t = Table::new(
        "self-healing under loss and crashes",
        &[
            "fault plan",
            "dead",
            "surviving",
            "dissolved",
            "added",
            "|M|",
            "ratio vs fault-free",
            "rounds",
            "retransmit",
            "heartbeat",
        ],
    );

    // Fault-free baseline (plain engine, no transport): per-seed sizes.
    let mut base_size = Vec::new();
    let mut base_rounds = Vec::new();
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(5150 + seed);
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
        let report = israeli_itai(&g, seed).expect("fault-free run");
        base_size.push(report.matching.size() as f64);
        base_rounds.push(report.stats.stats.rounds as f64);
    }
    t.row(vec![
        "fault-free (plain engine)".to_string(),
        f2(0.0),
        f2(mean(&base_size)),
        f2(0.0),
        f2(0.0),
        f2(mean(&base_size)),
        f2(1.0),
        f2(mean(&base_rounds)),
        f2(0.0),
        f2(0.0),
    ]);

    for (name, loss, dup, reorder, with_crashes) in [
        ("loss 5%", 0.05, 0.0, 0.0, false),
        ("loss 5% + 5% crashes", 0.05, 0.0, 0.0, true),
        ("loss 15% + dup 5% + reorder 25% + crashes", 0.15, 0.05, 0.25, true),
    ] {
        let mut dead = Vec::new();
        let mut surviving = Vec::new();
        let mut dissolved = Vec::new();
        let mut added = Vec::new();
        let mut size = Vec::new();
        let mut ratio = Vec::new();
        let mut rounds = Vec::new();
        let mut retx = Vec::new();
        let mut hb = Vec::new();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(5150 + seed);
            let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
            let crashes =
                if with_crashes { crash_plan(n, crashed, 24, &mut rng) } else { Vec::new() };
            let plan = FaultPlan { crashes, loss, dup, reorder, ..FaultPlan::default() };
            // The unified runtime with the repair layer on, under the
            // plan's link-level faults (the self-healing composition).
            let cfg = RuntimeConfig::new()
                .sim(SimConfig::local().seed(seed))
                .transport(TransportCfg::default())
                .faults(plan.clone())
                .repair(true)
                .repair_faults(FaultPlan { loss, dup, reorder, ..FaultPlan::default() });
            let rep = run_mm(&IsraeliItai, &g, &cfg).expect("self-healing run");
            let repair = rep.repair.as_ref().expect("repair layer ran");

            let mut alive = vec![true; n];
            for &v in &rep.excluded {
                alive[v] = false;
            }
            assert!(
                is_maximal_on_residual(&g, &rep.matching, &alive),
                "repair must restore maximality on the residual graph ({name}, seed {seed})"
            );

            dead.push(rep.excluded.len() as f64);
            surviving.push(rep.surviving as f64);
            dissolved.push(rep.dissolved as f64);
            added.push(rep.added as f64);
            size.push(rep.matching.size() as f64);
            ratio.push(rep.matching.size() as f64 / base_size[seed as usize]);
            rounds.push((rep.phase1.rounds + repair.rounds) as f64);
            retx.push((rep.phase1.retransmissions + repair.retransmissions) as f64);
            hb.push((rep.phase1.heartbeats + repair.heartbeats) as f64);
        }
        if name == "loss 5% + 5% crashes" {
            assert!(
                mean(&ratio) >= 0.9,
                "acceptance bar: 5% loss + 5% crashes must keep >=0.9 of the \
                 fault-free matching (got {:.3})",
                mean(&ratio)
            );
        }
        t.row(vec![
            name.to_string(),
            f2(mean(&dead)),
            f2(mean(&surviving)),
            f2(mean(&dissolved)),
            f2(mean(&added)),
            f2(mean(&size)),
            f2(mean(&ratio)),
            f2(mean(&rounds)),
            f2(mean(&retx)),
            f2(mean(&hb)),
        ]);
    }
    vec![t]
}
