//! E18: graceful degradation off the round barrier.
//!
//! The adversarial timing models stress the one place the hardened
//! pipeline can hurt a *correct* node: a silence-based failure detector
//! whose timeouts assume lockstep delivery. The experiment runs the
//! full `run_mm` stack (resilient transport + maintenance) on the
//! asynchronous backend under increasingly hostile delay models, twice
//! per cell — once with every timeout derived from the declared delay
//! bound (`RuntimeConfig::tuned_for_async`), once with naive lockstep
//! settings — and reports the matching ratio against the synchronous
//! run together with the false-suspicion/quarantine counts. The claim
//! under test: tuned, the pipeline holds ratio ≥ 0.9 with **zero**
//! false suspicions on every schedule; naive, the detector convicts
//! slow-but-correct nodes.

use dam_congest::{Backend, DelayModel, SimConfig, TransportCfg};
use dam_core::runtime::{run_mm, IsraeliItai, RuntimeConfig};
use dam_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f2, Table};

/// One async pipeline run; returns (matching size, suspected,
/// quarantined), or `None` if the run failed outright (a naive
/// configuration is allowed to fail; a tuned one is not and panics).
fn async_run(
    g: &dam_graph::Graph,
    seed: u64,
    delay: DelayModel,
    tuned: bool,
) -> Option<(usize, u64, u64)> {
    let base = RuntimeConfig::new()
        .sim(SimConfig::local().seed(seed))
        .transport(TransportCfg::default())
        .maintain(true);
    let cfg = if tuned {
        base.delay_model(delay).tuned_for_async()
    } else {
        // A lockstep operator's settings: default transport timeouts
        // and a patience budget sized for unit delays.
        base.delay_model(delay).backend(Backend::Async).patience(2)
    };
    let report = match run_mm(&IsraeliItai, g, &cfg) {
        Ok(r) => r,
        Err(e) => {
            assert!(!tuned, "a tuned async run must not fail: {e:?}");
            return None;
        }
    };
    let suspected = report
        .phase1
        .suspected
        .saturating_add(report.repair.as_ref().map_or(0, |s| s.suspected))
        .saturating_add(report.maintain.as_ref().map_or(0, |s| s.suspected));
    let quarantined = report
        .phase1
        .quarantined
        .saturating_add(report.repair.as_ref().map_or(0, |s| s.quarantined))
        .saturating_add(report.maintain.as_ref().map_or(0, |s| s.quarantined));
    Some((report.matching.size(), suspected, quarantined))
}

/// E18 — ratio and false-suspicion rate vs delay spread, derived vs
/// naive timeouts. Every node is live and the channel honest, so any
/// suspicion here convicts a slow-but-correct node.
pub fn e18(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(96, 28);
    let seeds = ctx.size(4, 2) as u64;
    let mut t = Table::new(
        "async graceful degradation vs delay spread",
        &[
            "delay model",
            "bound",
            "transport",
            "ratio",
            "suspected/run",
            "quarantined/run",
            "false-suspicion rate",
        ],
    );
    let models = [
        ("skew 2", DelayModel::LinkSkew { spread: 2 }),
        ("skew 4", DelayModel::LinkSkew { spread: 4 }),
        ("skew 8", DelayModel::LinkSkew { spread: 8 }),
        ("skew 16", DelayModel::LinkSkew { spread: 16 }),
        ("straggler 12", DelayModel::Straggler { node: 0, slow: 12 }),
        ("burst 6/2+9", DelayModel::Burst { period: 6, width: 2, extra: 9 }),
    ];
    for (name, delay) in models {
        for tuned in [true, false] {
            let mut ratios = Vec::new();
            let mut suspected = Vec::new();
            let mut quarantined = Vec::new();
            let mut convicted_runs = 0usize;
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(11_800 + seed);
                let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
                let reference = run_mm(
                    &IsraeliItai,
                    &g,
                    &RuntimeConfig::new()
                        .sim(SimConfig::local().seed(seed))
                        .transport(TransportCfg::default())
                        .maintain(true),
                )
                .expect("synchronous reference run")
                .matching
                .size();
                match async_run(&g, seed, delay, tuned) {
                    Some((size, susp, quar)) => {
                        ratios.push(size as f64 / reference.max(1) as f64);
                        suspected.push(susp as f64);
                        quarantined.push(quar as f64);
                        convicted_runs += usize::from(susp > 0 || quar > 0);
                    }
                    None => {
                        ratios.push(0.0);
                        convicted_runs += 1;
                    }
                }
            }
            if tuned {
                // The acceptance bar of the experiment, not just a
                // reported number: derived timeouts never convict a
                // slow-but-correct node and the matching survives.
                assert_eq!(mean(&suspected), 0.0, "{name}: tuned transport raised suspicion");
                assert_eq!(mean(&quarantined), 0.0, "{name}: tuned transport quarantined");
                assert!(
                    ratios.iter().all(|&r| r >= 0.9),
                    "{name}: tuned ratio fell below 0.9: {ratios:?}"
                );
            }
            t.row(vec![
                name.to_string(),
                delay.bound().to_string(),
                if tuned { "derived".to_string() } else { "naive".to_string() },
                f2(mean(&ratios)),
                f2(mean(&suspected)),
                f2(mean(&quarantined)),
                f2(convicted_runs as f64 / seeds as f64),
            ]);
        }
    }
    vec![t]
}
