//! E14: the α-synchronizer's price (footnote 2 made quantitative).

use dam_congest::{AsyncNetwork, DelayModel, Network, SimConfig};
use dam_core::israeli_itai::IiNode;
use dam_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f2, Table};

/// E14 — running Israeli–Itai asynchronously: marker overhead and
/// makespan under increasingly hostile delay models, with the output
/// guaranteed identical to the synchronous run.
pub fn e14(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(200, 40);
    let seeds = ctx.size(4, 2) as u64;
    let mut t = Table::new(
        "alpha-synchronizer overhead (Israeli-Itai)",
        &["delay model", "sync rounds", "payload msgs", "marker msgs", "overhead x", "makespan"],
    );
    for (name, delays) in [
        ("unit", DelayModel::Unit),
        ("uniform<=5", DelayModel::UniformRandom { max: 5 }),
        ("uniform<=25", DelayModel::UniformRandom { max: 25 }),
        ("link-skew 9", DelayModel::LinkSkew { spread: 9 }),
    ] {
        let mut sync_rounds = Vec::new();
        let mut payload = Vec::new();
        let mut marker = Vec::new();
        let mut makespan = Vec::new();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(9700 + seed);
            let g = generators::gnp(n, 6.0 / n as f64, &mut rng);
            let sync = Network::new(&g, SimConfig::local().seed(seed))
                .run(|v, graph| IiNode::new(graph.degree(v)))
                .expect("sync run");
            let (outputs, stats) = AsyncNetwork::new(&g, seed)
                .run_async(|v, graph| IiNode::new(graph.degree(v)), delays)
                .expect("async run");
            assert_eq!(outputs, sync.outputs, "equivalence is part of the experiment");
            sync_rounds.push(sync.stats.rounds as f64);
            payload.push(stats.payload_messages as f64);
            marker.push(stats.marker_messages as f64);
            makespan.push(stats.makespan as f64);
        }
        let overhead = (mean(&payload) + mean(&marker)) / mean(&payload).max(1.0);
        t.row(vec![
            name.to_string(),
            f2(mean(&sync_rounds)),
            f2(mean(&payload)),
            f2(mean(&marker)),
            f2(overhead),
            f2(mean(&makespan)),
        ]);
    }
    vec![t]
}
