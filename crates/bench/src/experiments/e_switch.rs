//! E8: the switch-scheduling motivation (Figure 1 / §1 of the paper).

use dam_switch::sched::distributed::{DistAlgo, Distributed};
use dam_switch::sched::islip::Islip;
use dam_switch::sched::oracle::{MaxSize, MaxWeight};
use dam_switch::sched::pim::Pim;
use dam_switch::sched::Scheduler;
use dam_switch::sim::{simulate, SwitchSimConfig};
use dam_switch::traffic::{ArrivalProcess, TrafficPattern};

use super::ExpContext;
use crate::table::{f, f2, Table};

/// E8 — throughput and delay vs offered load for the scheduler family
/// the paper discusses: PIM (II descendant), iSLIP, the distributed
/// matching algorithms themselves, and the centralized oracles.
pub fn e8(ctx: &ExpContext) -> Vec<Table> {
    let ports = ctx.size(16, 8);
    let cells = ctx.size(4_000, 600) as u64;
    let warmup = cells / 5;
    let dist_cells = ctx.size(400, 120) as u64; // distributed schedulers are slow
    let loads = if ctx.quick { vec![0.6, 0.95] } else { vec![0.5, 0.7, 0.85, 0.95, 0.99] };

    let mut tables = Vec::new();
    for pattern in [TrafficPattern::Uniform, TrafficPattern::Diagonal, TrafficPattern::Hotspot] {
        let mut t = Table::new(
            &format!("switch {pattern:?} N={ports}"),
            &["scheduler", "load", "throughput", "mean delay", "backlog"],
        );
        for &load in &loads {
            let mut run = |name: &str, sched: &mut dyn Scheduler, cells: u64| {
                let cfg = SwitchSimConfig {
                    ports,
                    cells,
                    load,
                    pattern,
                    process: ArrivalProcess::Bernoulli,
                    seed: 42,
                    warmup,
                    speedup: 1,
                };
                let m = simulate(&cfg, sched).expect("switch sim");
                t.row(vec![
                    name.to_string(),
                    f2(load),
                    f(m.throughput),
                    f2(m.mean_delay),
                    m.final_backlog.to_string(),
                ]);
            };
            run("PIM-1", &mut Pim::new(ports, 1), cells);
            run("PIM-4", &mut Pim::new(ports, 4), cells);
            run("iSLIP-1", &mut Islip::new(ports, 1), cells);
            run("iSLIP-4", &mut Islip::new(ports, 4), cells);
            run("MaxSize", &mut MaxSize, cells);
            run("MaxWeight", &mut MaxWeight, cells);
            run("II (dist)", &mut Distributed::new(DistAlgo::IsraeliItai), dist_cells);
            run(
                "LPP-MCM k=3 (dist)",
                &mut Distributed::new(DistAlgo::BipartiteMcm { k: 3 }),
                dist_cells,
            );
        }
        tables.push(t);
    }

    // Scheduling latency of the distributed schedulers (rounds per cell).
    let mut lat =
        Table::new("distributed scheduler latency", &["scheduler", "mean CONGEST rounds per cell"]);
    for (name, algo) in [
        ("II", DistAlgo::IsraeliItai),
        ("LPP-MCM k=2", DistAlgo::BipartiteMcm { k: 2 }),
        ("LPP-MCM k=3", DistAlgo::BipartiteMcm { k: 3 }),
        ("LPP-MCM k=4", DistAlgo::BipartiteMcm { k: 4 }),
    ] {
        let mut sched = Distributed::new(algo);
        let cfg = SwitchSimConfig {
            ports,
            cells: dist_cells,
            load: 0.9,
            pattern: TrafficPattern::Uniform,
            process: ArrivalProcess::Bernoulli,
            seed: 43,
            warmup: dist_cells / 5,
            speedup: 1,
        };
        let _ = simulate(&cfg, &mut sched).expect("switch sim");
        lat.row(vec![name.to_string(), f2(sched.mean_rounds())]);
    }
    tables.push(lat);
    tables
}
