//! E6 and E9: comparison against the Israeli–Itai baseline and the
//! ring/locality illustration.

use dam_core::general::{general_mcm, GeneralMcmConfig};
use dam_core::israeli_itai::israeli_itai;
use dam_graph::{blossom, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f, f2, Table};

/// E6 — headline comparison: II's maximal matching (`½` worst case)
/// vs Algorithm 4 at `k = 3` (`2/3` guarantee) across graph families.
pub fn e6(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(60, 24);
    let seeds = ctx.size(5, 2) as u64;
    let mut t = Table::new(
        "II vs Algorithm 4 (k=3)",
        &["family", "II mean ratio", "II rounds", "LPP mean ratio", "LPP rounds", "ratio gain"],
    );
    let families: super::RngFamilies = vec![
        ("gnp(n,4/n)", Box::new(move |rng| generators::gnp(n, 4.0 / n as f64, rng))),
        ("3-regular", Box::new(move |rng| generators::random_regular(n, 3, rng))),
        ("tree", Box::new(move |rng| generators::random_tree(n, rng))),
        ("P6 components", Box::new(move |_| generators::disjoint_paths(n / 6, 5))),
        ("power-law 2.5", Box::new(move |rng| generators::power_law(n, 2.5, 3.0, rng))),
    ];
    for (name, make) in &families {
        let mut ii_r = Vec::new();
        let mut ii_rounds = Vec::new();
        let mut lpp_r = Vec::new();
        let mut lpp_rounds = Vec::new();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(7000 + seed);
            let g = make(&mut rng);
            let opt = blossom::maximum_matching_size(&g).max(1);
            let ii = israeli_itai(&g, seed).expect("ii");
            ii_r.push(ii.matching.size() as f64 / opt as f64);
            ii_rounds.push(ii.stats.stats.rounds as f64);
            let lpp = general_mcm(&g, &GeneralMcmConfig { k: 3, seed, ..Default::default() })
                .expect("lpp");
            lpp_r.push(lpp.matching.size() as f64 / opt as f64);
            lpp_rounds.push(lpp.stats.stats.rounds as f64);
        }
        t.row(vec![
            (*name).to_string(),
            f(mean(&ii_r)),
            f2(mean(&ii_rounds)),
            f(mean(&lpp_r)),
            f2(mean(&lpp_rounds)),
            f(mean(&lpp_r) - mean(&ii_r)),
        ]);
    }
    vec![t]
}

/// E9 — footnote 1: on the even ring `C_n` exact maximum matching needs
/// `Ω(n)` rounds, but `(1−1/k)`-approximation costs rounds independent
/// of `n`: the ratio approaches (but never reaches) 1 as `k` grows,
/// while the round count stays flat in `n`.
pub fn e9(ctx: &ExpContext) -> Vec<Table> {
    let sizes: Vec<usize> = if ctx.quick { vec![16, 64] } else { vec![16, 64, 256, 1024] };
    let mut t =
        Table::new("rings C_n: ratio and rounds", &["n", "k", "ratio", "rounds", "rounds/n"]);
    for &n in &sizes {
        for k in [2usize, 3, 4] {
            let g = generators::cycle(n);
            let r = general_mcm(&g, &GeneralMcmConfig { k, seed: 5, ..Default::default() })
                .expect("ring");
            let opt = n / 2;
            t.row(vec![
                n.to_string(),
                k.to_string(),
                f(r.matching.size() as f64 / opt as f64),
                r.stats.stats.rounds.to_string(),
                f(r.stats.stats.rounds as f64 / n as f64),
            ]);
        }
    }
    vec![t]
}
