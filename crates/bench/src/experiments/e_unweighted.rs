//! E1–E3: the unweighted approximation theorems.

use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam_core::general::{general_mcm, paper_iteration_bound, GeneralMcmConfig};
use dam_core::report::IterationPolicy;
use dam_graph::{blossom, generators, hopcroft_karp};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::fit::{log_fit, mean};
use crate::table::{f, f2, Table};

/// E1 — Theorem 3.10: measured ratio vs the `(1−1/k)` bound on random
/// and adversarial bipartite graphs.
pub fn e1(ctx: &ExpContext) -> Vec<Table> {
    let half = ctx.size(100, 24);
    let seeds = ctx.size(5, 2) as u64;
    let mut t = Table::new(
        "bipartite ratio vs k",
        &["family", "k", "bound 1-1/k", "min ratio", "mean ratio", "mean rounds"],
    );
    let families: super::RngFamilies = vec![
        (
            "gnp(n/2,n/2,8/n)",
            Box::new(move |rng| {
                generators::bipartite_gnp(half, half, 8.0 / (2.0 * half as f64), rng)
            }),
        ),
        (
            "regular-out d=4",
            Box::new(move |rng| generators::bipartite_regular_out(half, half, 4, rng)),
        ),
        ("P6 components", Box::new(move |_| generators::disjoint_paths(half / 3, 5))),
    ];
    for (name, make) in &families {
        for k in [2usize, 3, 4, 5] {
            let mut ratios = Vec::new();
            let mut rounds = Vec::new();
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(1000 + seed);
                let g = make(&mut rng);
                let r = bipartite_mcm(&g, &BipartiteMcmConfig { k, seed, ..Default::default() })
                    .expect("bipartite mcm");
                let opt = hopcroft_karp::maximum_bipartite_matching_size(&g);
                ratios.push(if opt == 0 { 1.0 } else { r.matching.size() as f64 / opt as f64 });
                rounds.push(r.stats.stats.rounds as f64);
            }
            let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
            t.row(vec![
                (*name).to_string(),
                k.to_string(),
                f(1.0 - 1.0 / k as f64),
                f(min),
                f(mean(&ratios)),
                f2(mean(&rounds)),
            ]);
        }
    }
    vec![t]
}

/// E2 — Theorem 3.10: rounds vs `n` at fixed `k` (should fit
/// `a·log₂ n + b`).
pub fn e2(ctx: &ExpContext) -> Vec<Table> {
    let sizes: Vec<usize> =
        if ctx.quick { vec![64, 128, 256] } else { vec![64, 128, 256, 512, 1024, 2048, 4096] };
    let seeds = ctx.size(3, 2) as u64;
    let k = 3usize;
    let mut t = Table::new(
        "bipartite rounds vs n (k=3)",
        &["n", "mean rounds", "mean charged rounds", "mean passes", "max msg bits"],
    );
    let mut ns = Vec::new();
    let mut ys = Vec::new();
    for &n in &sizes {
        let half = n / 2;
        let mut rounds = Vec::new();
        let mut charged = Vec::new();
        let mut passes = Vec::new();
        let mut maxbits = 0usize;
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(2000 + seed);
            let g = generators::bipartite_gnp(half, half, 8.0 / n as f64, &mut rng);
            let cfg = BipartiteMcmConfig {
                k,
                seed,
                cost: dam_congest::CostModel::Pipelined,
                ..Default::default()
            };
            let r = bipartite_mcm(&g, &cfg).expect("bipartite mcm");
            rounds.push(r.stats.stats.rounds as f64);
            charged.push(r.stats.stats.charged_rounds as f64);
            passes.push(r.iterations as f64);
            maxbits = maxbits.max(r.stats.stats.max_message_bits);
        }
        ns.push(n);
        ys.push(mean(&rounds));
        t.row(vec![
            n.to_string(),
            f2(mean(&rounds)),
            f2(mean(&charged)),
            f2(mean(&passes)),
            maxbits.to_string(),
        ]);
    }
    let (a, b, r2) = log_fit(&ns, &ys);
    let mut fit = Table::new("rounds = a*log2(n)+b fit", &["a", "b", "r^2"]);
    fit.row(vec![f2(a), f2(b), f(r2)]);
    vec![t, fit]
}

/// E3 — Theorem 3.15: Algorithm 4 on general graphs; adaptive vs the
/// paper's fixed iteration bound.
pub fn e3(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(60, 24);
    let seeds = ctx.size(4, 2) as u64;
    let mut t = Table::new(
        "general (1-1/k)-MCM",
        &["family", "k", "policy", "bound", "min ratio", "mean ratio", "mean iters", "mean rounds"],
    );
    let families: super::RngFamilies = vec![
        ("gnp(n,6/n)", Box::new(move |rng| generators::gnp(n, 6.0 / n as f64, rng))),
        ("4-regular", Box::new(move |rng| generators::random_regular(n, 4, rng))),
        ("C_n odd", Box::new(move |_| generators::cycle(n | 1))),
    ];
    for (name, make) in &families {
        for k in [2usize, 3] {
            for (policy_name, policy) in [
                ("adaptive", IterationPolicy::Adaptive { patience: 12, cap: 100_000 }),
                ("paper-fixed", IterationPolicy::Fixed(paper_iteration_bound(k))),
            ] {
                if policy_name == "paper-fixed" && k > 2 && ctx.quick {
                    continue; // 563 iterations is long for a smoke run
                }
                let mut ratios = Vec::new();
                let mut iters = Vec::new();
                let mut rounds = Vec::new();
                for seed in 0..seeds {
                    let mut rng = StdRng::seed_from_u64(3000 + seed);
                    let g = make(&mut rng);
                    let cfg = GeneralMcmConfig { k, seed, policy, ..Default::default() };
                    let r = general_mcm(&g, &cfg).expect("general mcm");
                    let opt = blossom::maximum_matching_size(&g);
                    ratios.push(if opt == 0 { 1.0 } else { r.matching.size() as f64 / opt as f64 });
                    iters.push(r.iterations as f64);
                    rounds.push(r.stats.stats.rounds as f64);
                }
                let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
                t.row(vec![
                    (*name).to_string(),
                    k.to_string(),
                    policy_name.to_string(),
                    f(1.0 - 1.0 / k as f64),
                    f(min),
                    f(mean(&ratios)),
                    f2(mean(&iters)),
                    f2(mean(&rounds)),
                ]);
            }
        }
    }
    vec![t]
}
