//! E19: closed-loop adaptive transport vs every static derivation.
//!
//! The static transport pays for its worst case twice: timers derived
//! for a storm keep spending retransmissions after it passes, and
//! timers tuned for the quiet case convict honest peers while it rages.
//! The experiment runs the adaptive-vs-static tournament
//! ([`crate::adversary::run_tournament`]) over **drifting** schedules —
//! a loss squall that ends, a straggler that recovers, a corruption
//! storm that ends — and reports matching ratio, suspicions,
//! quarantines and retransmission spend (total and in the quiet tail,
//! from the per-round telemetry stream).
//!
//! The claim under test, asserted not just reported: the closed-loop
//! controller is **never worse** than any static arm on ratio or false
//! suspicions, and on the loss squall it spends **strictly fewer**
//! retransmissions in the quiet tail than the storm-grade static
//! derivations — adaptation buys the storm's robustness without the
//! storm's steady-state bill.

use super::ExpContext;
use crate::adversary::{drift_schedules, run_tournament};
use crate::table::{f2, Table};

/// E19 — the adaptive-vs-static tournament over drifting schedules.
pub fn e19(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(64, 24);
    let mut t = Table::new(
        "adaptive vs static transport on drifting schedules",
        &[
            "schedule",
            "arm",
            "ratio",
            "suspected",
            "quarantined",
            "retransmissions",
            "tail retx",
            "rounds",
        ],
    );
    let results = run_tournament(&drift_schedules(n));
    for (schedule, arms) in &results {
        let adaptive = &arms[0];
        let statics = &arms[1..];
        for s in statics {
            assert!(
                adaptive.ratio >= s.ratio - 1e-9,
                "{schedule}: adaptive ratio {} fell below {} ({})",
                adaptive.ratio,
                s.arm,
                s.ratio
            );
            assert!(
                adaptive.suspected <= s.suspected,
                "{schedule}: adaptive suspected {} exceeds {} ({})",
                adaptive.suspected,
                s.arm,
                s.suspected
            );
            assert!(
                adaptive.quarantined <= s.quarantined,
                "{schedule}: adaptive quarantined {} exceeds {} ({})",
                adaptive.quarantined,
                s.arm,
                s.quarantined
            );
        }
        if *schedule == "burst-then-quiet" {
            // The tentpole economy claim: once the squall passes, the
            // controller has decayed back toward its floor, so its
            // quiet-tail spend undercuts *every* static derivation —
            // the storm-grade arms because their stretched timers keep
            // dribbling retransmissions, and the tight arm because its
            // aggressive storm-time retries leave more unfinished work
            // (and convictions) to mop up in the tail.
            for s in statics {
                assert!(
                    adaptive.tail_retx < s.tail_retx,
                    "{schedule}: adaptive tail retx {} not below {} ({})",
                    adaptive.tail_retx,
                    s.arm,
                    s.tail_retx
                );
            }
        }
        for a in arms {
            t.row(vec![
                schedule.clone(),
                a.arm.clone(),
                f2(a.ratio),
                a.suspected.to_string(),
                a.quarantined.to_string(),
                a.retransmissions.to_string(),
                a.tail_retx.to_string(),
                a.rounds.to_string(),
            ]);
        }
    }
    vec![t]
}
