//! E5: message widths — the LOCAL generic algorithm (Lemma 3.4) against
//! the CONGEST bipartite machinery (Lemma 3.9).

use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam_core::generic::{generic_mcm, GenericMcmConfig};
use dam_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::table::{f2, Table};

/// E5 — maximum message width (bits) vs `n` for both algorithms on the
/// same bipartite inputs. The LOCAL flood grows roughly with the graph
/// description size; the CONGEST widths grow with `log n`.
pub fn e5(ctx: &ExpContext) -> Vec<Table> {
    let sizes: Vec<usize> = if ctx.quick { vec![16, 32] } else { vec![16, 32, 64, 128, 256] };
    let mut t = Table::new(
        "max message bits: LOCAL generic vs CONGEST bipartite (k=2)",
        &["n", "edges", "LOCAL max bits", "CONGEST max bits", "ratio", "CONGEST budget 4log n"],
    );
    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(5000 + n as u64);
        let g = generators::bipartite_gnp(n / 2, n / 2, 6.0 / n as f64, &mut rng);
        let gen = generic_mcm(&g, &GenericMcmConfig { k: 2, seed: 1, ..Default::default() })
            .expect("generic");
        let bip = bipartite_mcm(&g, &BipartiteMcmConfig { k: 2, seed: 1, ..Default::default() })
            .expect("bipartite");
        let lb = gen.stats.stats.max_message_bits;
        let cb = bip.stats.stats.max_message_bits;
        t.row(vec![
            n.to_string(),
            g.edge_count().to_string(),
            lb.to_string(),
            cb.to_string(),
            f2(lb as f64 / cb.max(1) as f64),
            (4 * dam_congest::message::id_bits(n)).to_string(),
        ]);
    }

    // Density sweep at fixed n: LOCAL width tracks |E|, CONGEST does not.
    let n = ctx.size(64, 24);
    let mut t2 = Table::new(
        "max message bits vs density (fixed n)",
        &["p", "edges", "LOCAL max bits", "CONGEST max bits"],
    );
    for p in [0.05, 0.1, 0.2, 0.4] {
        let mut rng = StdRng::seed_from_u64(6000 + (p * 100.0) as u64);
        let g = generators::bipartite_gnp(n / 2, n / 2, p, &mut rng);
        let gen = generic_mcm(&g, &GenericMcmConfig { k: 2, seed: 1, ..Default::default() })
            .expect("generic");
        let bip = bipartite_mcm(&g, &BipartiteMcmConfig { k: 2, seed: 1, ..Default::default() })
            .expect("bipartite");
        t2.row(vec![
            f2(p),
            g.edge_count().to_string(),
            gen.stats.stats.max_message_bits.to_string(),
            bip.stats.stats.max_message_bits.to_string(),
        ]);
    }
    vec![t, t2]
}
