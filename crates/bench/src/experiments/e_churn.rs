//! E16: the churn-tolerant maintenance runtime — matching quality and
//! repair locality under dynamic topology. This is the churn extension
//! (not a claim of the paper): round-stamped edge/node churn applied
//! mid-run, incremental register sanitation, and localized Israeli–Itai
//! repair.
//!
//! Two acceptance bars are asserted as part of the experiment:
//! - at one event per 10 rounds the pipeline keeps ≥ 0.9 of the
//!   churn-free matching on the final topology, and
//! - the mean repair locality (nodes touched per event) stays below a
//!   constant independent of `n`.

use dam_congest::ChurnKind;
use dam_core::maintain::{MaintainConfig, Maintainer};
use dam_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::ExpContext;
use crate::adversary::{evaluate, ChaosCase};
use crate::fit::mean;
use crate::table::{f2, Table};

/// Repair locality must stay below this many touched nodes per event at
/// every instance size — the "constant independent of n" bar. On
/// `G(n, 8/n)` an event frees at most two endpoints whose joint
/// candidate neighbourhood has expected size ≈ 2·(1 + 8); the bar
/// leaves room for degree fluctuations without tolerating anything
/// that scales with `n`.
const LOCALITY_BOUND: f64 = 32.0;

/// Generates a valid churn schedule at one event per `cadence` rounds
/// up to `horizon`, tracking presence so every event is applicable and
/// each node joins or leaves at most once (the [`dam_congest::ChurnPlan`]
/// rule). Nodes in `absent` start outside the graph and form the join
/// pool.
fn churn_events(
    g: &Graph,
    absent: &[usize],
    cadence: usize,
    horizon: usize,
    rng: &mut StdRng,
) -> Vec<(usize, ChurnKind)> {
    let n = g.node_count();
    let mut node_present: Vec<bool> = (0..n).map(|v| !absent.contains(&v)).collect();
    let mut edge_present = vec![true; g.edge_count()];
    let mut joined = vec![false; n];
    let mut left = vec![false; n];

    let mut events = Vec::new();
    let mut round = cadence.max(1);
    while round <= horizon {
        let kind = match rng.random_range(0..4u32) {
            0 => {
                let live: Vec<usize> = (0..g.edge_count()).filter(|&e| edge_present[e]).collect();
                if live.is_empty() {
                    continue;
                }
                let e = live[rng.random_range(0..live.len())];
                edge_present[e] = false;
                ChurnKind::EdgeDown { edge: e }
            }
            1 => {
                let down: Vec<usize> = (0..g.edge_count()).filter(|&e| !edge_present[e]).collect();
                if down.is_empty() {
                    continue;
                }
                let e = down[rng.random_range(0..down.len())];
                edge_present[e] = true;
                ChurnKind::EdgeUp { edge: e }
            }
            2 => {
                let pool: Vec<usize> =
                    (0..n).filter(|&v| node_present[v] && !joined[v] && !left[v]).collect();
                if pool.is_empty() {
                    continue;
                }
                let v = pool[rng.random_range(0..pool.len())];
                node_present[v] = false;
                left[v] = true;
                ChurnKind::Leave { node: v }
            }
            _ => {
                let pool: Vec<usize> =
                    (0..n).filter(|&v| !node_present[v] && !joined[v] && !left[v]).collect();
                if pool.is_empty() {
                    continue;
                }
                let v = pool[rng.random_range(0..pool.len())];
                node_present[v] = true;
                joined[v] = true;
                ChurnKind::Join { node: v }
            }
        };
        events.push((round, kind));
        round += cadence;
    }
    events
}

/// Builds the full distributed-pipeline scenario for one (seed, cadence)
/// cell: `G(n, 8/n)`, ~5% of nodes initially absent, one event per
/// `cadence` rounds. Reuses [`ChaosCase`] so the measurement path is
/// exactly the one the adversarial search and the regression corpus
/// exercise.
fn churn_case(n: usize, cadence: usize, horizon: usize, seed: u64) -> ChaosCase {
    let graph_seed = 6180 + seed;
    let g = {
        let mut grng = StdRng::seed_from_u64(graph_seed);
        generators::gnp(n, 8.0 / n as f64, &mut grng)
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE16);
    let absent_nodes: Vec<usize> = (0..n).filter(|_| rng.random_bool(0.05)).collect();
    let events = churn_events(&g, &absent_nodes, cadence, horizon, &mut rng);
    ChaosCase {
        n,
        topology: None,
        graph_seed,
        run_seed: seed,
        loss: 0.0,
        corrupt: 0.0,
        delay: dam_congest::DelayModel::Unit,
        crashes: Vec::new(),
        kill: None,
        absent_nodes,
        events,
    }
}

/// Mean/max repair locality and quality of a [`Maintainer`] run that
/// applies `batches` single-event batches on `G(n, 8/n)`.
fn locality_run(n: usize, batches: usize, seed: u64) -> (f64, f64, usize) {
    let g = {
        let mut grng = StdRng::seed_from_u64(6180 + seed);
        generators::gnp(n, 8.0 / n as f64, &mut grng)
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10CA1);
    let absent: Vec<usize> = (0..n).filter(|_| rng.random_bool(0.05)).collect();
    let cfg = MaintainConfig { seed, ..MaintainConfig::default() };
    let node_present: Vec<bool> = (0..n).map(|v| !absent.contains(&v)).collect();
    let mut m = Maintainer::with_presence(&g, node_present, vec![true; g.edge_count()], &cfg)
        .expect("bootstrap");

    // One event per batch, drawn against the maintainer's live masks
    // (re-joins and re-leaves are allowed here: the Maintainer only
    // requires consistency with the current presence).
    let mut locs = Vec::with_capacity(batches);
    for _ in 0..batches {
        let ev = loop {
            match rng.random_range(0..4u32) {
                0 => {
                    let live: Vec<usize> =
                        (0..g.edge_count()).filter(|&e| m.edge_present()[e]).collect();
                    if let Some(&e) = live.get(rng.random_range(0..live.len().max(1))) {
                        break ChurnKind::EdgeDown { edge: e };
                    }
                }
                1 => {
                    let down: Vec<usize> =
                        (0..g.edge_count()).filter(|&e| !m.edge_present()[e]).collect();
                    if !down.is_empty() {
                        break ChurnKind::EdgeUp { edge: down[rng.random_range(0..down.len())] };
                    }
                }
                2 => {
                    let pool: Vec<usize> = (0..n).filter(|&v| m.node_present()[v]).collect();
                    if !pool.is_empty() {
                        break ChurnKind::Leave { node: pool[rng.random_range(0..pool.len())] };
                    }
                }
                _ => {
                    let pool: Vec<usize> = (0..n).filter(|&v| !m.node_present()[v]).collect();
                    if !pool.is_empty() {
                        break ChurnKind::Join { node: pool[rng.random_range(0..pool.len())] };
                    }
                }
            }
        };
        let report = m.apply(&[ev]).expect("maintenance batch");
        locs.push(report.locality());
    }
    assert!(m.is_quiescent(), "maintainer must end at a quiescent point (n {n}, seed {seed})");
    let max = locs.iter().cloned().fold(0.0f64, f64::max);
    (mean(&locs), max, m.matching().size())
}

/// E16 — churn-tolerant maximal matching on `G(n, 8/n)`: matching
/// ratio vs churn rate through the full distributed pipeline, and
/// repair locality vs instance size through the maintenance loop.
pub fn e16(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(512, 64);
    let seeds = ctx.size(3, 2) as u64;
    let horizon = ctx.size(200, 60);

    let mut quality = Table::new(
        "matching quality vs churn rate",
        &["churn rate", "events", "|M|", "fresh |M|", "ratio vs churn-free", "invariant"],
    );
    for cadence in [20usize, 10, 5, 2] {
        let mut events = Vec::new();
        let mut size = Vec::new();
        let mut fresh = Vec::new();
        let mut ratio = Vec::new();
        for seed in 0..seeds {
            let case = churn_case(n, cadence, horizon, seed);
            let out = evaluate(&case);
            assert!(
                out.invariant_ok,
                "pipeline matching must stay valid+maximal (cadence {cadence}, seed {seed})"
            );
            if cadence == 10 && seed == 0 {
                // Determinism: the same scenario must measure
                // bit-identically on a second run.
                assert_eq!(out, evaluate(&case), "churn pipeline must be deterministic");
            }
            events.push(case.events.len() as f64);
            size.push(out.size as f64);
            fresh.push(out.fresh as f64);
            ratio.push(out.ratio);
        }
        if cadence == 10 {
            assert!(
                mean(&ratio) >= 0.9,
                "acceptance bar: >= 0.9 of churn-free at 1 event / 10 rounds, got {}",
                mean(&ratio)
            );
        }
        quality.row(vec![
            format!("1 event / {cadence} rounds"),
            f2(mean(&events)),
            f2(mean(&size)),
            f2(mean(&fresh)),
            f2(mean(&ratio)),
            "ok".to_string(),
        ]);
    }

    let mut locality = Table::new(
        "repair locality vs n (1 event per batch)",
        &["n", "batches", "mean locality", "max locality", "|M|"],
    );
    let sizes: &[usize] = if ctx.quick { &[32, 64] } else { &[128, 512, 2048] };
    let batches = ctx.size(40, 12);
    for &ln in sizes {
        let mut mloc = Vec::new();
        let mut xloc = Vec::new();
        let mut msize = Vec::new();
        for seed in 0..seeds {
            let (l, x, s) = locality_run(ln, batches, seed);
            mloc.push(l);
            xloc.push(x);
            msize.push(s as f64);
        }
        assert!(
            mean(&mloc) <= LOCALITY_BOUND,
            "acceptance bar: mean repair locality {} exceeds the constant bound {} at n {}",
            mean(&mloc),
            LOCALITY_BOUND,
            ln
        );
        locality.row(vec![
            ln.to_string(),
            batches.to_string(),
            f2(mean(&mloc)),
            f2(mean(&xloc)),
            f2(mean(&msize)),
        ]);
    }

    vec![quality, locality]
}
