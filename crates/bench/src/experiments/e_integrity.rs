//! E17: adversarial integrity — the certified matching pipeline under
//! channel corruption and Byzantine nodes. This is the self-verification
//! extension (not a claim of the paper): Israeli–Itai over the hardened
//! transport, O(1)-round proof-labeling verification, and localized
//! repair + re-verification on detection.
//!
//! Acceptance bar (asserted): every run at ≤5% frame corruption ends
//! with a **certified** (valid + attested-maximal) matching on the
//! trusted domain, and detection latency stays in the constant window
//! regardless of `n`.

use dam_congest::{FaultPlan, SimConfig, TransportCfg};
use dam_core::israeli_itai::israeli_itai;
use dam_core::runtime::{run_mm, IsraeliItai, RuntimeConfig};
use dam_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f2, Table};

/// One measured cell: the certified runtime pipeline (`run_mm` with the
/// certify + repair layers on) under `plan`, averaged over seeds.
struct Cell {
    detected: Vec<f64>,
    certified: Vec<f64>,
    detect_rounds: Vec<f64>,
    locality: Vec<f64>,
    excluded: Vec<f64>,
    added: Vec<f64>,
    size: Vec<f64>,
    ratio: Vec<f64>,
}

fn measure(n: usize, seeds: u64, plan_of: &dyn Fn(u64) -> FaultPlan, label: &str) -> Cell {
    let mut cell = Cell {
        detected: Vec::new(),
        certified: Vec::new(),
        detect_rounds: Vec::new(),
        locality: Vec::new(),
        excluded: Vec::new(),
        added: Vec::new(),
        size: Vec::new(),
        ratio: Vec::new(),
    };
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(1700 + seed);
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
        let base = israeli_itai(&g, seed).expect("fault-free baseline").matching.size() as f64;
        let cfg = RuntimeConfig::new()
            .sim(SimConfig::local().seed(seed))
            .transport(TransportCfg::default())
            .faults(plan_of(seed))
            .certify(true)
            .repair(true);
        let rep = run_mm(&IsraeliItai, &g, &cfg).expect("certified run");
        let initial = rep.initial.as_ref().expect("certify layer ran");

        assert!(rep.matching.validate(&g).is_ok(), "{label}: final matching must be valid");
        assert!(
            initial.detection_rounds <= 2,
            "{label}: detection latency must stay in the constant window"
        );
        cell.detected.push(f64::from(u8::from(rep.detected())));
        cell.certified.push(f64::from(u8::from(rep.certified())));
        cell.detect_rounds.push(initial.detection_rounds as f64);
        cell.locality.push(rep.repair_touched as f64 / initial.checked.max(1) as f64);
        cell.excluded.push(rep.excluded.len() as f64);
        cell.added.push(rep.added as f64);
        cell.size.push(rep.matching.size() as f64);
        cell.ratio.push(if base == 0.0 { 1.0 } else { rep.matching.size() as f64 / base });
    }
    cell
}

fn push_row(t: &mut Table, name: &str, cell: &Cell) {
    t.row(vec![
        name.to_string(),
        f2(mean(&cell.detected)),
        f2(mean(&cell.certified)),
        f2(mean(&cell.detect_rounds)),
        f2(mean(&cell.locality)),
        f2(mean(&cell.excluded)),
        f2(mean(&cell.added)),
        f2(mean(&cell.size)),
        f2(mean(&cell.ratio)),
    ]);
}

const COLUMNS: [&str; 9] = [
    "adversary",
    "detected",
    "certified",
    "detect rounds",
    "repair locality",
    "excluded",
    "added",
    "|M|",
    "ratio vs fault-free",
];

/// E17 — certified maximal matching on `G(n, 8/n)`.
///
/// Table A sweeps the frame-corruption rate with a fixed Byzantine
/// cohort (2 liars, 1 equivocator, 2 crashes) so detection and repair
/// actually engage; table B isolates the Byzantine modes one by one.
pub fn e17(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(256, 48);
    let seeds = ctx.size(5, 2) as u64;

    // Disjoint adversary cohort, valid for every n used here.
    let liars = vec![1, 3];
    let equivocators = vec![5];
    let crashes = vec![(7, 3), (11, 9)];

    let mut a = Table::new("certified validity vs corruption rate", &COLUMNS);
    for corrupt in [0.0, 0.01, 0.02, 0.05, 0.10] {
        let liars_a = liars.clone();
        let equiv_a = equivocators.clone();
        let crashes_a = crashes.clone();
        let plan_of = move |_seed: u64| FaultPlan {
            loss: 0.02,
            corrupt,
            crashes: crashes_a.clone(),
            equivocators: equiv_a.clone(),
            liars: liars_a.clone(),
            ..FaultPlan::default()
        };
        let name = format!("corrupt {:.0}% + 2 liars + 1 equiv + 2 crashes", corrupt * 100.0);
        let cell = measure(n, seeds, &plan_of, &name);
        if corrupt <= 0.05 {
            assert!(
                cell.certified.iter().all(|&c| c == 1.0),
                "acceptance bar: every run at <=5% corruption must end certified \
                 (corrupt {corrupt}, certified {:?})",
                cell.certified
            );
        }
        push_row(&mut a, &name, &cell);
    }

    let mut b = Table::new("byzantine modes", &COLUMNS);
    let modes: Vec<(&str, FaultPlan)> = vec![
        ("honest channel", FaultPlan::default()),
        ("1 liar", FaultPlan { liars: vec![1], ..FaultPlan::default() }),
        ("4 liars", FaultPlan { liars: vec![1, 3, 5, 7], ..FaultPlan::default() }),
        ("2 equivocators", FaultPlan { equivocators: vec![2, 9], ..FaultPlan::default() }),
        (
            "corrupt 5% + 2 liars + 2 equivocators",
            FaultPlan {
                corrupt: 0.05,
                liars: vec![1, 3],
                equivocators: vec![2, 9],
                ..FaultPlan::default()
            },
        ),
    ];
    for (name, plan) in modes {
        let plan_of = move |_seed: u64| plan.clone();
        let cell = measure(n, seeds, &plan_of, name);
        if name.contains("liar") {
            assert!(
                cell.detected.iter().all(|&d| d == 1.0),
                "every lie must be detected ({name}: {:?})",
                cell.detected
            );
        }
        assert!(
            cell.certified.iter().all(|&c| c == 1.0),
            "detect -> repair -> re-verify must end certified ({name}: {:?})",
            cell.certified
        );
        push_row(&mut b, name, &cell);
    }

    vec![a, b]
}
