//! E10: ablations over the design choices called out in `DESIGN.md`.

use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam_core::general::{general_mcm, paper_iteration_bound, GeneralMcmConfig};
use dam_core::report::IterationPolicy;
use dam_core::weighted::{weighted_mwm, BlackBox, WeightedMwmConfig};
use dam_graph::weights::{randomize_weights, WeightDist};
use dam_graph::{blossom, generators, mwm};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f, f2, Table};

/// E10 — four ablations:
/// (a) Algorithm 5's black box: local-max vs the proposal heuristic;
/// (b) round accounting: unit vs pipelined cost for the bipartite
///     machinery (the Lemma 3.9 chunking charge);
/// (c) Algorithm 4: adaptive termination vs the paper's fixed bound;
/// (d) bipartite machinery: cold start vs Israeli–Itai warm start.
pub fn e10(ctx: &ExpContext) -> Vec<Table> {
    let seeds = ctx.size(4, 2) as u64;

    // (a) black-box choice.
    let n = ctx.size(50, 20);
    let mut a = Table::new(
        "ablation a: Algorithm 5 black box",
        &["black box", "mean ratio", "mean rounds"],
    );
    for (name, bb) in [
        ("local-max (delta=1/2)", BlackBox::LocalMax),
        ("proposal x8", BlackBox::Proposal { iterations: 8 }),
        ("proposal x2", BlackBox::Proposal { iterations: 2 }),
    ] {
        let mut ratios = Vec::new();
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(8000 + seed);
            let base = generators::gnp(n, 6.0 / n as f64, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.1, hi: 3.0 }, &mut rng);
            let cfg = WeightedMwmConfig { eps: 0.05, seed, black_box: bb, ..Default::default() };
            let r = weighted_mwm(&g, &cfg).expect("alg5");
            let opt = mwm::maximum_weight(&g).max(f64::MIN_POSITIVE);
            ratios.push(r.matching.weight(&g) / opt);
            rounds.push(r.stats.stats.rounds as f64);
        }
        a.row(vec![name.to_string(), f(mean(&ratios)), f2(mean(&rounds))]);
    }

    // (b) cost model.
    let mut b = Table::new(
        "ablation b: unit vs pipelined rounds (bipartite)",
        &["k", "unit rounds", "pipelined charged", "inflation"],
    );
    let half = ctx.size(100, 24);
    for k in [2usize, 3, 4] {
        let mut unit = Vec::new();
        let mut charged = Vec::new();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(8100 + seed);
            let g = generators::bipartite_gnp(half, half, 8.0 / (2.0 * half as f64), &mut rng);
            let cfg = BipartiteMcmConfig {
                k,
                seed,
                cost: dam_congest::CostModel::Pipelined,
                ..Default::default()
            };
            let r = bipartite_mcm(&g, &cfg).expect("bipartite");
            unit.push(r.stats.stats.rounds as f64);
            charged.push(r.stats.stats.charged_rounds as f64);
        }
        b.row(vec![
            k.to_string(),
            f2(mean(&unit)),
            f2(mean(&charged)),
            f2(mean(&charged) / mean(&unit)),
        ]);
    }

    // (c) Algorithm 4 iteration policy.
    let mut c = Table::new(
        "ablation c: Algorithm 4 iteration policy (k=2)",
        &["policy", "iterations", "mean ratio", "mean rounds"],
    );
    let gn = ctx.size(40, 18);
    for (name, policy) in [
        ("adaptive p=4", IterationPolicy::Adaptive { patience: 4, cap: 100_000 }),
        ("adaptive p=12", IterationPolicy::Adaptive { patience: 12, cap: 100_000 }),
        ("paper-fixed (67)", IterationPolicy::Fixed(paper_iteration_bound(2))),
    ] {
        let mut ratios = Vec::new();
        let mut rounds = Vec::new();
        let mut iters = Vec::new();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(8200 + seed);
            let g = generators::gnp(gn, 5.0 / gn as f64, &mut rng);
            let cfg = GeneralMcmConfig { k: 2, seed, policy, ..Default::default() };
            let r = general_mcm(&g, &cfg).expect("general");
            let opt = blossom::maximum_matching_size(&g).max(1);
            ratios.push(r.matching.size() as f64 / opt as f64);
            rounds.push(r.stats.stats.rounds as f64);
            iters.push(r.iterations as f64);
        }
        c.row(vec![name.to_string(), f2(mean(&iters)), f(mean(&ratios)), f2(mean(&rounds))]);
    }

    // (d) bipartite warm start.
    let mut d = Table::new(
        "ablation d: bipartite warm start (k=3)",
        &["variant", "mean passes", "mean rounds", "mean ratio"],
    );
    for (name, warm) in [("cold", false), ("II warm start", true)] {
        let mut passes = Vec::new();
        let mut rounds = Vec::new();
        let mut ratios = Vec::new();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(8300 + seed);
            let g = generators::bipartite_gnp(half, half, 8.0 / (2.0 * half as f64), &mut rng);
            let cfg = BipartiteMcmConfig { k: 3, seed, warm_start: warm, ..Default::default() };
            let r = bipartite_mcm(&g, &cfg).expect("bipartite");
            let opt = dam_graph::hopcroft_karp::maximum_bipartite_matching_size(&g).max(1);
            passes.push(r.iterations as f64);
            rounds.push(r.stats.stats.rounds as f64);
            ratios.push(r.matching.size() as f64 / opt as f64);
        }
        d.row(vec![name.to_string(), f2(mean(&passes)), f2(mean(&rounds)), f(mean(&ratios))]);
    }

    vec![a, b, c, d]
}
