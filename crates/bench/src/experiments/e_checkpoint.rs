//! E21: crash-consistent checkpointing — recovery fidelity per damage
//! class and the cost of durability. This is the robustness extension
//! (not a claim of the paper): the pipeline snapshots quiescent
//! boundaries through `dam_core::checkpoint`, a fault injector damages
//! the store exactly as a failing disk or a crashed writer would, and
//! the restore must detect the damage, degrade down the ladder
//! (previous generation, then cold start), and still hand back a valid
//! maximal matching ratio-equivalent to the uninterrupted golden run.

use std::path::PathBuf;

use dam_congest::{FaultPlan, SimConfig, TransportCfg};
use dam_core::checkpoint::{inject, CheckpointCfg, CheckpointStore, Damage, RestoreOutcome};
use dam_core::runtime::{run_mm, IsraeliItai, RunReport, RuntimeConfig};
use dam_graph::generators;
use dam_graph::maximal::is_maximal;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f2, Table};

/// The damage arms of the recovery table: what the injector does to the
/// checkpoint directory between the kill and the restore.
enum Arm {
    /// No damage — the clean-restore control.
    None,
    /// One [`Damage`] class applied to the newest generation.
    Inject(Damage),
    /// Every snapshot file deleted (`HEAD` left behind): evidence of
    /// checkpointing with nothing intact, the cold-start rung.
    Wipe,
}

/// A scratch checkpoint directory under the target tmpdir, fresh per
/// (arm, seed) cell.
fn scratch(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dam-e21-{tag}-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The pipeline under measurement: Israeli–Itai over the resilient
/// transport with 5% loss, repair and maintenance on — every layer a
/// long-running daemon would keep armed.
fn cfg_for(seed: u64) -> RuntimeConfig {
    RuntimeConfig::new()
        .sim(SimConfig::local().seed(seed))
        .transport(TransportCfg::default())
        .faults(FaultPlan { loss: 0.05, ..FaultPlan::default() })
        .repair(true)
        .maintain(true)
}

/// Total bytes of the snapshot files currently in `dir`.
fn disk_bytes(dir: &PathBuf) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// E21 — crash-restart recovery on `G(n, 8/n)`: for each damage class,
/// checkpoint a run, damage the store, restore, and compare the
/// recovered matching to the uninterrupted golden run; plus the cost
/// side, snapshots written and bytes on disk per `--checkpoint-every`
/// pacing. The acceptance bars (damage detected and degraded, recovered
/// matching maximal and ratio-equivalent, pacing never perturbing the
/// run) are asserted as part of the experiment.
pub fn e21(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(256, 48);
    let seeds = ctx.size(3, 2) as u64;

    // Uninterrupted golden runs (no checkpointing): the fidelity and
    // non-perturbation baseline, one per seed.
    let graphs: Vec<_> = (0..seeds)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(2100 + seed);
            generators::gnp(n, 8.0 / n as f64, &mut rng)
        })
        .collect();
    let golden: Vec<RunReport> = (0..seeds)
        .map(|seed| run_mm(&IsraeliItai, &graphs[seed as usize], &cfg_for(seed)).expect("golden"))
        .collect();

    let mut rec = Table::new(
        "crash-restart recovery by damage class",
        &["damage", "outcome", "|M| recovered", "ratio vs golden", "bit-identical"],
    );

    let arms: [(&str, Arm); 6] = [
        ("none (clean restore)", Arm::None),
        ("truncate (torn write)", Arm::Inject(Damage::Truncate { keep: 21 })),
        ("bit flip (media rot)", Arm::Inject(Damage::BitFlip { bit: 307 })),
        ("rollback (stale HEAD)", Arm::Inject(Damage::Rollback)),
        ("torn rename (mid-commit)", Arm::Inject(Damage::TornRename)),
        ("wipe (nothing intact)", Arm::Wipe),
    ];
    for (name, arm) in arms {
        let tag = name.split_whitespace().next().unwrap_or("arm");
        let mut sizes = Vec::new();
        let mut ratios = Vec::new();
        let mut rungs = Vec::new();
        let mut identical = true;
        for seed in 0..seeds {
            let g = &graphs[seed as usize];
            let gold = &golden[seed as usize];
            let dir = scratch(tag, seed);
            run_mm(&IsraeliItai, g, &cfg_for(seed).checkpoint(CheckpointCfg::new(&dir)))
                .expect("checkpointing run");
            match arm {
                Arm::None => {}
                Arm::Inject(damage) => inject(&dir, damage).expect("inject"),
                Arm::Wipe => {
                    let store = CheckpointStore::open(&dir);
                    for g in store.generations().expect("generations") {
                        let _ = std::fs::remove_file(dir.join(format!("ckpt-{g:08}.snap")));
                    }
                }
            }
            let rep = run_mm(&IsraeliItai, g, &cfg_for(seed).restore(&dir))
                .expect("damaged stores must still restore");
            let _ = std::fs::remove_dir_all(&dir);
            let outcome = rep.restore.expect("restored runs report an outcome");

            // The contract per arm: clean restores resume verbatim,
            // damaged stores are *detected* (degraded, never silently
            // clean), and the recovered matching is always sound.
            match arm {
                Arm::None => assert!(
                    matches!(outcome, RestoreOutcome::Clean { .. }),
                    "undamaged store restored {outcome} (seed {seed})"
                ),
                Arm::Inject(_) => assert!(
                    outcome.degraded(),
                    "damaged store restored {outcome} — damage went undetected (seed {seed})"
                ),
                Arm::Wipe => assert!(
                    matches!(outcome, RestoreOutcome::ColdStart),
                    "wiped store restored {outcome}, not a cold start (seed {seed})"
                ),
            }
            rep.matching.validate(g).expect("recovered matching is valid");
            assert!(is_maximal(g, &rep.matching), "recovered matching is maximal ({name})");
            assert!(
                2 * rep.matching.size() >= gold.matching.size(),
                "recovery left the maximal-matching factor-2 band ({name}, seed {seed})"
            );
            identical &= rep.registers == gold.registers;
            sizes.push(rep.matching.size() as f64);
            ratios.push(rep.matching.size() as f64 / gold.matching.size() as f64);
            rungs.push(match outcome {
                RestoreOutcome::Clean { .. } => "clean",
                RestoreOutcome::Degraded { .. } => "degraded",
                RestoreOutcome::ColdStart => "cold start",
            });
        }
        rungs.dedup();
        assert_eq!(rungs.len(), 1, "every seed resolves the same rung ({name})");
        // Clean restores and cold starts recompute the golden trace
        // exactly (the checkpoint seed domain never perturbs them).
        if matches!(arm, Arm::None | Arm::Wipe) {
            assert!(identical, "{name} must reproduce the golden registers bit-identically");
        }
        rec.row(vec![
            name.to_string(),
            rungs[0].to_string(),
            f2(mean(&sizes)),
            f2(mean(&ratios)),
            if identical { "yes".to_string() } else { "no".to_string() },
        ]);
    }

    let mut cost = Table::new(
        "checkpoint cadence vs durability cost",
        &["--checkpoint-every", "snapshots written", "disk bytes", "perturbs run"],
    );
    for every in [0u64, 8, 64, 100_000] {
        let mut written = Vec::new();
        let mut bytes = Vec::new();
        let mut perturbed = false;
        for seed in 0..seeds {
            let g = &graphs[seed as usize];
            let dir = scratch("cost", seed ^ (every << 8));
            let rep = run_mm(
                &IsraeliItai,
                g,
                &cfg_for(seed).checkpoint(CheckpointCfg::new(&dir).every(every)),
            )
            .expect("checkpointing run");
            let head = CheckpointStore::open(&dir).head().unwrap_or(0);
            written.push(head as f64);
            bytes.push(disk_bytes(&dir) as f64);
            let _ = std::fs::remove_dir_all(&dir);
            // Non-perturbation: durability must be free of in-run
            // effects at any pacing, like the telemetry sink.
            perturbed |= rep.registers != golden[seed as usize].registers
                || rep.matching.size() != golden[seed as usize].matching.size();
        }
        assert!(!perturbed, "checkpointing (every={every}) must not perturb the run");
        cost.row(vec![every.to_string(), f2(mean(&written)), f2(mean(&bytes)), "no".to_string()]);
    }

    vec![rec, cost]
}
