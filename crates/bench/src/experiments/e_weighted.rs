//! E4 and E7: the weighted matching theorem and its baselines.

use dam_core::weighted::local_max::local_max_mwm;
use dam_core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam_graph::weights::{randomize_weights, WeightDist};
use dam_graph::{generators, maximal, mwm, pettie_sanders, Graph, Matching};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::fit::mean;
use crate::table::{f, f2, Table};

fn weighted_instance(n: usize, dist: WeightDist, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(4000 + seed);
    let base = generators::gnp(n, 6.0 / n as f64, &mut rng);
    randomize_weights(&base, dist, &mut rng)
}

/// E4 — Theorem 4.5: `(½−ε)`-MWM ratio and `O(log ε⁻¹ log n)` rounds.
pub fn e4(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(80, 24);
    let seeds = ctx.size(4, 2) as u64;
    let mut t = Table::new(
        "weighted ratio vs eps",
        &["eps", "bound 1/2-eps", "iters", "min ratio", "mean ratio", "mean rounds"],
    );
    for eps in [0.5, 0.2, 0.1, 0.05, 0.02] {
        let mut ratios = Vec::new();
        let mut rounds = Vec::new();
        let mut iters = 0usize;
        for seed in 0..seeds {
            let g = weighted_instance(n, WeightDist::Exponential { lambda: 1.0 }, seed);
            let cfg = WeightedMwmConfig { eps, seed, ..Default::default() };
            iters = cfg.iterations();
            let r = weighted_mwm(&g, &cfg).expect("weighted mwm");
            let opt = mwm::maximum_weight(&g);
            ratios.push(if opt == 0.0 { 1.0 } else { r.matching.weight(&g) / opt });
            rounds.push(r.stats.stats.rounds as f64);
        }
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        t.row(vec![
            f(eps),
            f(0.5 - eps),
            iters.to_string(),
            f(min),
            f(mean(&ratios)),
            f2(mean(&rounds)),
        ]);
    }

    // Round scaling vs n at fixed eps.
    let sizes: Vec<usize> = if ctx.quick { vec![32, 64] } else { vec![64, 128, 256, 512, 1024] };
    let mut t2 = Table::new("weighted rounds vs n (eps=0.1)", &["n", "mean rounds"]);
    for &nn in &sizes {
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let g = weighted_instance(nn, WeightDist::Uniform { lo: 0.1, hi: 2.0 }, 50 + seed);
            let cfg = WeightedMwmConfig { eps: 0.1, seed, ..Default::default() };
            let r = weighted_mwm(&g, &cfg).expect("weighted mwm");
            rounds.push(r.stats.stats.rounds as f64);
        }
        t2.row(vec![nn.to_string(), f2(mean(&rounds))]);
    }
    vec![t, t2]
}

/// E7 — weighted baselines: the `½` family (sequential greedy,
/// path-growing, distributed local-max) against Algorithm 5, including
/// the adversarial greedy trap.
pub fn e7(ctx: &ExpContext) -> Vec<Table> {
    let n = ctx.size(60, 20);
    let seeds = ctx.size(5, 2) as u64;
    let mut t = Table::new(
        "weighted baselines mean ratio",
        &["family", "greedy", "path-grow", "local-max(dist)", "alg5 eps=.05", "pettie-sanders"],
    );
    let families: super::SeedFamilies = vec![
        (
            "gnp uniform w",
            Box::new(move |s| weighted_instance(n, WeightDist::Uniform { lo: 0.1, hi: 3.0 }, s)),
        ),
        (
            "gnp powers-of-2",
            Box::new(move |s| weighted_instance(n, WeightDist::PowersOfTwo { classes: 12 }, s)),
        ),
        ("greedy trap", Box::new(move |_| generators::greedy_trap(n / 4, 0.2))),
        ("3-edge series", Box::new(move |_| generators::three_edge_series())),
    ];
    for (name, make) in &families {
        let mut sums = [0.0f64; 5];
        for seed in 0..seeds {
            let g = make(seed);
            let opt = mwm::maximum_weight(&g).max(f64::MIN_POSITIVE);
            sums[0] += maximal::greedy_mwm(&g).weight(&g) / opt;
            sums[1] += maximal::path_growing_mwm(&g).weight(&g) / opt;
            sums[2] += local_max_mwm(&g, seed).expect("local max").matching.weight(&g) / opt;
            let cfg = WeightedMwmConfig { eps: 0.05, seed, ..Default::default() };
            sums[3] += weighted_mwm(&g, &cfg).expect("alg5").matching.weight(&g) / opt;
            let mut rng = StdRng::seed_from_u64(4600 + seed);
            let ps = pettie_sanders::pettie_sanders_mwm(&g, Matching::new(&g), 10, &mut rng);
            sums[4] += ps.weight(&g) / opt;
        }
        let k = seeds as f64;
        t.row(vec![
            (*name).to_string(),
            f(sums[0] / k),
            f(sums[1] / k),
            f(sums[2] / k),
            f(sums[3] / k),
            f(sums[4] / k),
        ]);
    }
    vec![t]
}
