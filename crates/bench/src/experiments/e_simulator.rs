//! E12: the simulator itself — wall-clock throughput of the sequential
//! and multi-threaded engines (complements the Criterion micro-benches
//! with a one-shot table).

use std::time::Instant;

use dam_congest::{Context, Network, Port, Protocol, SimConfig};
use dam_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::ExpContext;
use crate::table::{f2, Table};

/// Fixed-round gossip used as the engine workload.
struct Load {
    rounds: usize,
    acc: u64,
}

impl Protocol for Load {
    type Msg = u64;
    type Output = u64;
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(ctx.id() as u64);
    }
    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
        for &(_, x) in inbox {
            self.acc = self.acc.wrapping_add(x);
        }
        if ctx.round() >= self.rounds {
            ctx.halt();
        } else {
            ctx.broadcast(self.acc);
        }
    }
    fn into_output(self) -> u64 {
        self.acc
    }
}

/// E12 — engine throughput: messages per second, sequential vs 4
/// threads, across network sizes.
pub fn e12(ctx: &ExpContext) -> Vec<Table> {
    let sizes: Vec<usize> =
        if ctx.quick { vec![1_000, 4_000] } else { vec![1_000, 10_000, 50_000, 200_000] };
    let rounds = 20usize;
    let mut t = Table::new(
        "engine throughput (gossip, 20 rounds, 4-regular)",
        &["n", "messages", "seq ms", "seq Mmsg/s", "par4 ms", "par4 Mmsg/s", "speedup"],
    );
    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::random_regular(n, 4, &mut rng);
        let run_seq = {
            let mut net = Network::new(&g, SimConfig::local().seed(1));
            let t0 = Instant::now();
            let out = net.run(|_, _| Load { rounds, acc: 0 }).unwrap();
            (t0.elapsed().as_secs_f64(), out.stats.messages)
        };
        let run_par = {
            let mut net = Network::new(&g, SimConfig::local().seed(1));
            let t0 = Instant::now();
            let out = net.run_parallel(|_, _| Load { rounds, acc: 0 }, 4).unwrap();
            (t0.elapsed().as_secs_f64(), out.stats.messages)
        };
        assert_eq!(run_seq.1, run_par.1, "identical executions");
        let msgs = run_seq.1 as f64;
        t.row(vec![
            n.to_string(),
            run_seq.1.to_string(),
            f2(run_seq.0 * 1e3),
            f2(msgs / run_seq.0 / 1e6),
            f2(run_par.0 * 1e3),
            f2(msgs / run_par.0 / 1e6),
            f2(run_seq.0 / run_par.0),
        ]);
    }
    vec![t]
}
