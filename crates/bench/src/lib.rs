#![warn(missing_docs)]

//! Experiment harness reproducing every claim of the paper.
//!
//! The paper is a theory paper — its "results" are theorems, not tables —
//! so each experiment here materializes one theorem (or explicitly named
//! baseline/motivation) as a measurable run. `EXPERIMENTS.md` at the
//! workspace root records the measured outcomes next to the paper's
//! claims.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p dam-bench --bin experiments -- all
//! cargo run --release -p dam-bench --bin experiments -- e1 e4 --quick
//! ```
//!
//! Each experiment prints an aligned table and writes a CSV next to it
//! under `results/`.

pub mod adversary;
pub mod baseline;
pub mod experiments;
pub mod fit;
pub mod scale;
pub mod table;

pub use table::Table;
