//! Tiny statistics: means, least squares, and log-scaling fits.
//!
//! Used to check claims of the shape "rounds = `O(log n)`": we regress
//! the measured rounds against `log₂ n` and report the fit quality.

/// Mean of a sample.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation.
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Least-squares fit `y = a·x + b`; returns `(a, b, r²)`.
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "paired samples");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return (0.0, ys.first().copied().unwrap_or(0.0), 1.0);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let a = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let b = my - a * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = xs.iter().zip(ys).map(|(x, y)| (y - (a * x + b)).powi(2)).sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    let _ = n;
    (a, b, r2)
}

/// Fits `y = a·log₂(n) + b` and returns `(a, b, r²)`.
#[must_use]
pub fn log_fit(ns: &[usize], ys: &[f64]) -> (f64, f64, f64) {
    let xs: Vec<f64> = ns.iter().map(|&n| (n.max(2) as f64).log2()).collect();
    linear_fit(&xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (a, b, r2) = linear_fit(&xs, &ys);
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_scaling_detected() {
        let ns = [16usize, 64, 256, 1024];
        let ys: Vec<f64> = ns.iter().map(|&n| 3.0 * (n as f64).log2() + 5.0).collect();
        let (a, b, r2) = log_fit(&ns, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 5.0).abs() < 1e-9);
        assert!(r2 > 0.999);
    }

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((stddev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
