//! Experiment runner: reproduces every claim of the paper (E1–E17).
//!
//! ```text
//! experiments all            # run everything
//! experiments e1 e4          # run a subset
//! experiments all --quick    # small instances (smoke run)
//! experiments --list         # show the registry
//! ```

use dam_bench::experiments::{registry, run, ExpContext};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if list || ids.is_empty() {
        println!("available experiments:");
        for (id, desc, _) in registry() {
            println!("  {id:<5} {desc}");
        }
        if ids.is_empty() {
            println!("\nusage: experiments <ids...|all> [--quick]");
            std::process::exit(2);
        }
        return;
    }

    let ctx = ExpContext::new(quick);
    let t0 = std::time::Instant::now();
    let mut ran = 0;
    if ids.iter().any(|s| s.as_str() == "all") {
        for (id, _, _) in registry() {
            assert!(run(id, &ctx), "registry id must run");
            ran += 1;
        }
    } else {
        for id in ids {
            if run(id, &ctx) {
                ran += 1;
            } else {
                eprintln!("unknown experiment: {id}");
                std::process::exit(2);
            }
        }
    }
    println!("\nran {ran} experiment(s) in {:.1}s", t0.elapsed().as_secs_f64());
}
