//! Emits `results/BENCH_e18.json`: the committed perf baseline of the
//! E12 gossip workload on the asynchronous engine backend, against the
//! sequential engine — the wall-clock price of virtual time plus the
//! exact (deterministic) synchronizer-marker count.
//!
//! ```text
//! cargo run --release -p dam-bench --bin bench-e18 [-- --repeats R]
//! ```
//!
//! Run from the workspace root (the output path is relative).

use std::fs;
use std::process::ExitCode;

use dam_bench::baseline::AsyncBaseline;

fn main() -> ExitCode {
    let mut repeats = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or_else(|| panic!("--repeats needs a positive integer"));
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: bench-e18 [--repeats R]");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("measuring E18 async-overhead baseline (best of {repeats})...");
    let b = AsyncBaseline::collect(repeats);
    println!(
        "n={} rounds={} messages={} markers={} | serial {:.1} ms | \
         async {:.1} ms ({:.2} Mmsg/s) | overhead {:.2}x | host threads {}",
        b.n,
        b.rounds,
        b.messages,
        b.markers,
        b.serial_ms,
        b.async_ms,
        b.async_mmsg_per_s(),
        b.overhead(),
        b.host_threads,
    );
    if let Err(e) = fs::create_dir_all("results") {
        eprintln!("cannot create results/: {e}");
        return ExitCode::FAILURE;
    }
    match fs::write("results/BENCH_e18.json", b.to_json()) {
        Ok(()) => {
            eprintln!("wrote results/BENCH_e18.json");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write results/BENCH_e18.json: {e}");
            ExitCode::FAILURE
        }
    }
}
