//! Emits `results/BENCH_e19.json`: the committed perf baseline of the
//! E12 gossip workload behind the resilient transport, static floor vs
//! the closed-loop adaptive controller over the same floor — the
//! wall-clock price of the control law, on traffic the two arms carry
//! bit-identically (fault-free, the controller never leaves level 1).
//!
//! ```text
//! cargo run --release -p dam-bench --bin bench-e19 [-- --repeats R]
//! ```
//!
//! Run from the workspace root (the output path is relative).

use std::fs;
use std::process::ExitCode;

use dam_bench::baseline::AdaptiveBaseline;

fn main() -> ExitCode {
    let mut repeats = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or_else(|| panic!("--repeats needs a positive integer"));
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: bench-e19 [--repeats R]");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("measuring E19 controller-overhead baseline (best of {repeats})...");
    let b = AdaptiveBaseline::collect(repeats);
    println!(
        "n={} rounds={} messages={} | static {:.1} ms | \
         adaptive {:.1} ms ({:.2} Mmsg/s) | overhead {:.2}x | host threads {}",
        b.n,
        b.rounds,
        b.messages,
        b.static_ms,
        b.adaptive_ms,
        b.adaptive_mmsg_per_s(),
        b.overhead(),
        b.host_threads,
    );
    if let Err(e) = fs::create_dir_all("results") {
        eprintln!("cannot create results/: {e}");
        return ExitCode::FAILURE;
    }
    match fs::write("results/BENCH_e19.json", b.to_json()) {
        Ok(()) => {
            eprintln!("wrote results/BENCH_e19.json");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write results/BENCH_e19.json: {e}");
            ExitCode::FAILURE
        }
    }
}
