//! Emits `results/BENCH_e12.json`: the committed perf baseline of the
//! E12 gossip workload on the sequential and sharded parallel engines.
//!
//! ```text
//! cargo run --release -p dam-bench --bin bench-e12 [-- --threads T --repeats R]
//! ```
//!
//! Run from the workspace root (the output path is relative). The file
//! records the host parallelism it was measured on — see
//! `dam_bench::baseline` for why that matters.

use std::fs;
use std::process::ExitCode;

use dam_bench::baseline::Baseline;

fn main() -> ExitCode {
    let mut threads = 4usize;
    let mut repeats = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v > 0)
                .unwrap_or_else(|| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--threads" => threads = take("--threads"),
            "--repeats" => repeats = take("--repeats"),
            other => {
                eprintln!("unknown argument {other:?}; usage: bench-e12 [--threads T --repeats R]");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("measuring E12 baseline (best of {repeats}, parallel at {threads} threads)...");
    let b = Baseline::collect(threads, repeats);
    println!(
        "n={} rounds={} messages={} | serial {:.1} ms ({:.2} Mmsg/s) | \
         parallel{} {:.1} ms ({:.2} Mmsg/s) | speedup {:.2}x | host threads {}",
        b.n,
        b.rounds,
        b.messages,
        b.serial_ms,
        b.serial_mmsg_per_s(),
        b.parallel_threads,
        b.parallel_ms,
        b.parallel_mmsg_per_s(),
        b.speedup(),
        b.host_threads,
    );
    if b.host_threads == 1 {
        eprintln!("note: single-threaded host — the parallel figure carries no speedup claim");
    }
    if let Err(e) = fs::create_dir_all("results") {
        eprintln!("cannot create results/: {e}");
        return ExitCode::FAILURE;
    }
    match fs::write("results/BENCH_e12.json", b.to_json()) {
        Ok(()) => {
            eprintln!("wrote results/BENCH_e12.json");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write results/BENCH_e12.json: {e}");
            ExitCode::FAILURE
        }
    }
}
