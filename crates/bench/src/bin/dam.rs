//! `dam-cli` — command-line front end for the matching library.
//!
//! ```text
//! dam-cli match <graph.txt> [algo] [--k K] [--eps E] [--seed S] [--parallel T] [--json]
//! dam-cli run <graph.txt> [runtime flags] [--json]   # unified runtime pipeline
//! dam-cli certify <graph.txt> [--seed S] [--corrupt P] [--loss P] \
//!                 [--liars a,b] [--equivocators a,b] [--json]
//! dam-cli gen <family> <params...> [--seed S]   # print a graph in dam text format
//! dam-cli info <graph.txt>                      # structural summary
//! dam-cli dot <graph.txt> [algo]                # Graphviz with matching
//! ```
//!
//! `run` drives the unified protocol runtime
//! ([`dam_core::runtime::run_mm`]): one flag per [`RuntimeConfig`] knob
//! (fault plan, churn schedule, transport, certify/repair/maintain
//! middleware toggles, threads). `certify` is the legacy spelling of
//! `run --certify --repair`.
//!
//! Every subcommand obeys the same exit-code contract:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success (including a clean checkpoint restore) |
//! | 1 | runtime error (bad input, simulator failure, unrecoverable restore) |
//! | 2 | usage error (bad flags/arguments; usage printed to stderr) |
//! | 3 | corruption detected-and-repaired, or a degraded checkpoint restore |
//!
//! `--parallel T` runs the simulator rounds on `T` worker threads;
//! results are bit-identical to the sequential engine, so the flag
//! affects wall-clock only.
//!
//! Algorithms: `ii` (Israeli–Itai), `bipartite` (Theorem 3.10),
//! `general` (Theorem 3.15), `weighted` (Theorem 4.5), `hv`
//! (§4 Remark), `tree` (exact on forests), `local-max` (δ-MWM box),
//! plus the exact oracles `hk`, `blossom`, `mwm`.

use std::process::ExitCode;
use std::sync::Arc;

use dam_congest::{
    AdaptivePolicy, Backend, ChurnEvent, ChurnKind, ChurnPlan, DelayModel, FaultPlan,
    RecordingSink, SimConfig, SinkHandle, TransportCfg,
};
use dam_core::auction::{auction_mwm, AuctionConfig};
use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam_core::certify::certified_mm;
use dam_core::checkpoint::CheckpointCfg;
use dam_core::general::{general_mcm, GeneralMcmConfig};
use dam_core::hv::{hv_mwm, HvMwmConfig};
use dam_core::israeli_itai::israeli_itai_with;
use dam_core::repair::RepairConfig;
use dam_core::runtime::{run_configured, AlgoSpec, RunReport, RuntimeConfig};
use dam_core::trees::tree_mcm;
use dam_core::weighted::local_max::local_max_mwm;
use dam_core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam_core::AlgorithmReport;
use dam_graph::{
    analysis, blossom, generators, hopcroft_karp, io, mwm, Graph, ImplicitTopology, Matching,
    Topology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A classified command failure, mapped onto the exit-code contract:
/// `Usage` prints the usage text and exits 2, `Run` exits 1.
enum CliError {
    Usage(String),
    Run(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Run(msg)
    }
}

fn usage_err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::Usage(msg.into()))
}

struct Args {
    positional: Vec<String>,
    graph_spec: Option<String>,
    k: usize,
    eps: f64,
    seed: u64,
    max_rounds: usize,
    parallel: usize,
    algo: AlgoSpec,
    backend: Backend,
    delay: DelayModel,
    patience: Option<u64>,
    corrupt: f64,
    loss: f64,
    dup: f64,
    reorder: f64,
    crashes: Vec<(usize, usize)>,
    recoveries: Vec<(usize, usize)>,
    liars: Vec<usize>,
    equivocators: Vec<usize>,
    churn: Vec<ChurnEvent>,
    absent_nodes: Vec<usize>,
    absent_edges: Vec<usize>,
    no_transport: bool,
    adaptive: bool,
    stats_out: Option<String>,
    certify: bool,
    repair: bool,
    maintain: bool,
    isolated_repair: bool,
    checkpoint_out: Option<String>,
    checkpoint_every: u64,
    restore: Option<String>,
    json: bool,
}

fn parse_nodes(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().map_err(|_| format!("bad node '{t}'")))
        .collect()
}

/// Parses a `node@round` list, e.g. `--crash 3@5,17@9`.
fn parse_at_list(s: &str) -> Result<Vec<(usize, usize)>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            let (node, round) = t.split_once('@').ok_or(format!("bad event '{t}' (want v@r)"))?;
            let node = node.parse().map_err(|_| format!("bad node in '{t}'"))?;
            let round = round.parse().map_err(|_| format!("bad round in '{t}'"))?;
            Ok((node, round))
        })
        .collect()
}

/// Parses a churn schedule, e.g.
/// `--churn leave:4@6,edgedown:2@9,join:31@12,edgeup:2@15`.
fn parse_churn(s: &str) -> Result<Vec<ChurnEvent>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            let (kind, rest) =
                t.split_once(':').ok_or(format!("bad churn '{t}' (want kind:x@r)"))?;
            let (id, round) =
                rest.split_once('@').ok_or(format!("bad churn '{t}' (want kind:x@r)"))?;
            let id: usize = id.parse().map_err(|_| format!("bad id in '{t}'"))?;
            let round = round.parse().map_err(|_| format!("bad round in '{t}'"))?;
            let kind = match kind {
                "leave" => ChurnKind::Leave { node: id },
                "join" => ChurnKind::Join { node: id },
                "edgedown" => ChurnKind::EdgeDown { edge: id },
                "edgeup" => ChurnKind::EdgeUp { edge: id },
                other => {
                    return Err(format!(
                        "unknown churn kind '{other}' (leave|join|edgedown|edgeup)"
                    ))
                }
            };
            Ok(ChurnEvent { round, kind })
        })
        .collect()
}

/// Parses an engine backend name: `seq`, `sharded` or `async`.
fn parse_backend(s: &str) -> Result<Backend, String> {
    match s {
        "seq" | "sequential" => Ok(Backend::Sequential),
        "sharded" | "parallel" => Ok(Backend::Sharded),
        "async" => Ok(Backend::Async),
        other => Err(format!("unknown backend '{other}' (seq|sharded|async)")),
    }
}

/// Parses an adversarial delay model, e.g. `unit`, `uniform:7`,
/// `skew:5`, `straggler:3:9` (node:slowdown) or `burst:4:2:6`
/// (period:width:extra).
fn parse_delay(s: &str) -> Result<DelayModel, String> {
    // One parser serves the CLI and the chaos corpus, so the two spec
    // surfaces cannot drift.
    dam_bench::adversary::parse_delay(s)
}

fn parse_prob(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<f64, String> {
    let p: f64 = it
        .next()
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("bad {flag}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{flag} must be a probability in [0, 1]"));
    }
    Ok(p)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        graph_spec: None,
        k: 3,
        eps: 0.1,
        seed: 0,
        max_rounds: 500_000,
        parallel: 1,
        algo: AlgoSpec::IsraeliItai,
        backend: Backend::Sequential,
        delay: DelayModel::Unit,
        patience: None,
        corrupt: 0.0,
        loss: 0.0,
        dup: 0.0,
        reorder: 0.0,
        crashes: Vec::new(),
        recoveries: Vec::new(),
        liars: Vec::new(),
        equivocators: Vec::new(),
        churn: Vec::new(),
        absent_nodes: Vec::new(),
        absent_edges: Vec::new(),
        no_transport: false,
        adaptive: false,
        stats_out: None,
        certify: false,
        repair: false,
        maintain: false,
        isolated_repair: false,
        checkpoint_out: None,
        checkpoint_every: 0,
        restore: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--k" => {
                args.k = it.next().ok_or("--k needs a value")?.parse().map_err(|_| "bad --k")?;
            }
            "--eps" => {
                args.eps =
                    it.next().ok_or("--eps needs a value")?.parse().map_err(|_| "bad --eps")?;
            }
            "--seed" => {
                args.seed =
                    it.next().ok_or("--seed needs a value")?.parse().map_err(|_| "bad --seed")?;
            }
            "--max-rounds" => {
                args.max_rounds = it
                    .next()
                    .ok_or("--max-rounds needs a value")?
                    .parse()
                    .map_err(|_| "bad --max-rounds")?;
            }
            "--parallel" => {
                args.parallel = it
                    .next()
                    .ok_or("--parallel needs a value")?
                    .parse()
                    .map_err(|_| "bad --parallel")?;
                if args.parallel == 0 {
                    return Err("--parallel needs at least 1 thread".to_string());
                }
            }
            "--algo" => {
                args.algo = AlgoSpec::parse(&it.next().ok_or("--algo needs a value")?)?;
            }
            "--graph" => {
                let spec = it.next().ok_or("--graph needs a topology spec")?;
                // Validate eagerly so a bad spec is a usage error (exit
                // 2) before any file or simulator work starts.
                ImplicitTopology::parse(&spec)?;
                args.graph_spec = Some(spec);
            }
            "--backend" => {
                args.backend = parse_backend(&it.next().ok_or("--backend needs a value")?)?;
            }
            "--delay" => {
                args.delay = parse_delay(&it.next().ok_or("--delay needs a value")?)?;
            }
            "--patience" => {
                args.patience = Some(
                    it.next()
                        .ok_or("--patience needs a value")?
                        .parse()
                        .map_err(|_| "bad --patience")?,
                );
            }
            "--corrupt" => args.corrupt = parse_prob(&mut it, "--corrupt")?,
            "--loss" => args.loss = parse_prob(&mut it, "--loss")?,
            "--dup" => args.dup = parse_prob(&mut it, "--dup")?,
            "--reorder" => args.reorder = parse_prob(&mut it, "--reorder")?,
            "--crash" => {
                args.crashes = parse_at_list(&it.next().ok_or("--crash needs a value")?)?;
            }
            "--recover" => {
                args.recoveries = parse_at_list(&it.next().ok_or("--recover needs a value")?)?;
            }
            "--liars" => args.liars = parse_nodes(&it.next().ok_or("--liars needs a value")?)?,
            "--equivocators" => {
                args.equivocators = parse_nodes(&it.next().ok_or("--equivocators needs a value")?)?;
            }
            "--churn" => args.churn = parse_churn(&it.next().ok_or("--churn needs a value")?)?,
            "--absent" => {
                args.absent_nodes = parse_nodes(&it.next().ok_or("--absent needs a value")?)?;
            }
            "--absent-edges" => {
                args.absent_edges = parse_nodes(&it.next().ok_or("--absent-edges needs a value")?)?;
            }
            "--no-transport" => args.no_transport = true,
            "--adaptive" => args.adaptive = true,
            "--stats-out" => {
                args.stats_out = Some(it.next().ok_or("--stats-out needs a path")?);
            }
            "--certify" => args.certify = true,
            "--repair" => args.repair = true,
            "--maintain" => args.maintain = true,
            "--isolated-repair" => args.isolated_repair = true,
            "--checkpoint-out" => {
                args.checkpoint_out = Some(it.next().ok_or("--checkpoint-out needs a directory")?);
            }
            "--checkpoint-every" => {
                args.checkpoint_every = it
                    .next()
                    .ok_or("--checkpoint-every needs a round count")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every")?;
            }
            "--restore" => {
                args.restore = Some(it.next().ok_or("--restore needs a directory")?);
            }
            "--json" => args.json = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dam-cli match <graph.txt> [algo]  [--k K] [--eps E] [--seed S] [--parallel T] [--json]\n  \
         dam-cli run <graph.txt>|--graph SPEC [--algo A] [--seed S] [--max-rounds R] [--parallel T] [--no-transport]\n           \
         [--adaptive] [--stats-out FILE.csv|FILE.json]\n           \
         [--backend seq|sharded|async] [--delay MODEL] [--patience U]\n           \
         [--loss P] [--dup P] [--reorder P] [--corrupt P]\n           \
         [--crash v@r,..] [--recover v@r,..] [--liars a,b] [--equivocators a,b]\n           \
         [--churn kind:x@r,..] [--absent a,b] [--absent-edges e,f]\n           \
         [--certify] [--repair] [--maintain] [--isolated-repair]\n           \
         [--checkpoint-out DIR] [--checkpoint-every N] [--restore DIR] [--json]\n  \
         dam-cli certify <graph.txt> [--seed S] [--corrupt P] [--loss P] [--liars a,b] [--equivocators a,b] [--json]\n  \
         dam-cli gen <family> <n> [extra] [--seed S]\n  dam-cli info <graph.txt>\n  dam-cli dot <graph.txt> [algo]\n\n\
         exit codes: 0 ok (incl. clean restore), 1 error (incl. unrecoverable restore),\n            \
         2 usage, 3 detected-and-repaired or degraded-but-recovered restore\n\
         algos: ii bipartite general weighted hv tree auction local-max hk blossom mwm\n\
         run algos (--algo): ii bipartite[:K] weighted luby\n\
         families: gnp bipartite regular tree cycle path complete trap\n\
         --graph specs (implicit, no adjacency arrays): ring:N torus:WxH reg:N:D gnp:N:P:SEED\n\
         churn kinds: leave join edgedown edgeup\n\
         delay models: unit uniform:M skew:S straggler:V:D recovers:V:D:U burst:P:W:E"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    io::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

/// The matching as a hand-rolled JSON fragment (the workspace has no
/// serde): `"size":..,"weight":..,"edges":[[u,v],..]`. `{:?}` keeps
/// floats JSON-valid (always a digit after the point, no locale).
fn json_matching(g: &dyn Topology, m: &Matching) -> String {
    let edges: Vec<String> = m
        .edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            format!("[{u},{v}]")
        })
        .collect();
    format!(r#""size":{},"weight":{:?},"edges":[{}]"#, m.size(), m.weight(g), edges.join(","))
}

fn emit_report(name: &str, g: &Graph, report: &AlgorithmReport, json: bool) {
    if json {
        let s = &report.stats.stats;
        println!(
            r#"{{"algorithm":"{name}",{},"rounds":{},"charged_rounds":{},"messages":{},"max_message_bits":{},"retransmissions":{},"heartbeats":{}}}"#,
            json_matching(g, &report.matching),
            s.rounds,
            s.charged_rounds,
            s.messages,
            s.max_message_bits,
            s.retransmissions,
            s.heartbeats,
        );
    } else {
        print_report(name, g, report);
    }
}

fn emit_matching(name: &str, g: &Graph, m: &Matching, json: bool) {
    if json {
        println!(r#"{{"algorithm":"{name}",{}}}"#, json_matching(g, m));
    } else {
        print_matching(name, g, m);
    }
}

fn print_report(name: &str, g: &Graph, report: &AlgorithmReport) {
    print_matching(name, g, &report.matching);
    println!(
        "cost      : {} rounds ({} charged), {} messages, widest {} bits",
        report.stats.stats.rounds,
        report.stats.stats.charged_rounds,
        report.stats.stats.messages,
        report.stats.stats.max_message_bits
    );
}

fn print_matching(name: &str, g: &dyn Topology, m: &Matching) {
    println!("algorithm : {name}");
    println!("matching  : {} edges, weight {:.4}", m.size(), m.weight(g));
    let edges: Vec<String> = m
        .edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            format!("{u}-{v}")
        })
        .collect();
    println!("edges     : {}", edges.join(" "));
}

fn cmd_match(args: &Args) -> Result<(), CliError> {
    let Some(path) = args.positional.get(1) else {
        return usage_err("missing graph file");
    };
    let algo = args.positional.get(2).map_or("general", String::as_str);
    let mut g = load(path)?;
    match algo {
        "ii" => {
            let sim = SimConfig::congest_for(g.node_count(), 4)
                .seed(args.seed)
                .threads(args.parallel)
                .backend(args.backend);
            emit_report(
                "israeli-itai",
                &g,
                &israeli_itai_with(&g, sim).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "bipartite" => {
            if g.bipartition().is_none() && g.compute_bipartition().is_none() {
                return Err(CliError::Run("graph is not bipartite".to_string()));
            }
            let cfg = BipartiteMcmConfig {
                k: args.k,
                seed: args.seed,
                threads: args.parallel,
                backend: args.backend,
                ..Default::default()
            };
            emit_report(
                "bipartite (1-1/k)-MCM",
                &g,
                &bipartite_mcm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "general" => {
            let cfg = GeneralMcmConfig { k: args.k, seed: args.seed, ..Default::default() };
            emit_report(
                "general (1-1/k)-MCM",
                &g,
                &general_mcm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "weighted" => {
            let cfg = WeightedMwmConfig {
                eps: args.eps,
                seed: args.seed,
                threads: args.parallel,
                backend: args.backend,
                ..Default::default()
            };
            emit_report(
                "(1/2-eps)-MWM",
                &g,
                &weighted_mwm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "hv" => {
            let cfg = HvMwmConfig { eps: args.eps, seed: args.seed, ..Default::default() };
            emit_report(
                "(1-eps)-MWM (LOCAL)",
                &g,
                &hv_mwm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "tree" => emit_report(
            "tree exact MCM",
            &g,
            &tree_mcm(&g, args.seed).map_err(|e| e.to_string())?,
            args.json,
        ),
        "auction" => {
            if g.bipartition().is_none() && g.compute_bipartition().is_none() {
                return Err(CliError::Run("graph is not bipartite".to_string()));
            }
            let cfg = AuctionConfig { eps: args.eps, seed: args.seed, ..Default::default() };
            emit_report(
                "auction MWM",
                &g,
                &auction_mwm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "local-max" => {
            emit_report(
                "local-max 1/2-MWM",
                &g,
                &local_max_mwm(&g, args.seed).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "hk" => {
            if g.bipartition().is_none() && g.compute_bipartition().is_none() {
                return Err(CliError::Run("graph is not bipartite".to_string()));
            }
            emit_matching(
                "hopcroft-karp (exact)",
                &g,
                &hopcroft_karp::maximum_bipartite_matching(&g),
                args.json,
            );
        }
        "blossom" => {
            emit_matching("blossom (exact MCM)", &g, &blossom::maximum_matching(&g), args.json);
        }
        "mwm" => emit_matching(
            "blossom-with-duals (exact MWM)",
            &g,
            &mwm::maximum_weight_matching(&g),
            args.json,
        ),
        other => return usage_err(format!("unknown algorithm '{other}'")),
    }
    Ok(())
}

/// Builds the [`RuntimeConfig`] described by the command-line flags.
/// Every [`RuntimeConfig::KNOBS`] entry is plumbed here.
fn runtime_config(args: &Args) -> Result<RuntimeConfig, CliError> {
    let mut sim = SimConfig::local()
        .seed(args.seed)
        .max_rounds(args.max_rounds)
        .threads(args.parallel)
        .backend(args.backend)
        .delay(args.delay);
    if let Some(units) = args.patience {
        sim = sim.patience(units);
    }
    let mut cfg = RuntimeConfig::new()
        .sim(sim)
        .faults(FaultPlan {
            crashes: args.crashes.clone(),
            recoveries: args.recoveries.clone(),
            loss: args.loss,
            dup: args.dup,
            reorder: args.reorder,
            corrupt: args.corrupt,
            liars: args.liars.clone(),
            equivocators: args.equivocators.clone(),
            ..FaultPlan::default()
        })
        .churn(ChurnPlan {
            absent_nodes: args.absent_nodes.clone(),
            absent_edges: args.absent_edges.clone(),
            events: args.churn.clone(),
        })
        .certify(args.certify)
        .repair(args.repair)
        .maintain(args.maintain)
        .algo(args.algo);
    if args.adaptive {
        if args.no_transport {
            return usage_err("--adaptive needs the transport layer (drop --no-transport)");
        }
        // The controller's floor is the same default configuration the
        // static transport would run, so `--adaptive` can only raise
        // timers above what a plain `run` uses.
        cfg = cfg.adaptive(AdaptivePolicy::default());
    } else if !args.no_transport {
        cfg = cfg.transport(TransportCfg::default());
    }
    if args.isolated_repair {
        // Repair on a quiet network instead of inheriting the main
        // plan's link-level faults.
        cfg = cfg.repair_faults(FaultPlan::default());
    }
    if let Some(dir) = &args.checkpoint_out {
        cfg = cfg
            .checkpoint(CheckpointCfg::new(std::path::Path::new(dir)).every(args.checkpoint_every));
    } else if args.checkpoint_every != 0 {
        return usage_err("--checkpoint-every needs --checkpoint-out DIR");
    }
    if let Some(dir) = &args.restore {
        cfg = cfg.restore(std::path::Path::new(dir));
    }
    Ok(cfg)
}

fn emit_run_report(g: &dyn Topology, rep: &RunReport, certify: bool, json: bool) {
    let name = format!("runtime-{}", rep.algorithm);
    if json {
        let excluded: Vec<String> = rep.excluded.iter().map(usize::to_string).collect();
        let s = &rep.phase1;
        // The `restore` key appears only on restored runs, so every
        // pre-checkpoint consumer sees byte-identical output.
        let restore = rep.restore.map_or(String::new(), |r| {
            format!(
                r#","restore":"{}","restore_generation":{}"#,
                match r {
                    dam_core::checkpoint::RestoreOutcome::Clean { .. } => "clean",
                    dam_core::checkpoint::RestoreOutcome::Degraded { .. } => "degraded",
                    dam_core::checkpoint::RestoreOutcome::ColdStart => "cold-start",
                },
                match r {
                    dam_core::checkpoint::RestoreOutcome::Clean { generation }
                    | dam_core::checkpoint::RestoreOutcome::Degraded { generation } =>
                        generation.to_string(),
                    dam_core::checkpoint::RestoreOutcome::ColdStart => "null".to_string(),
                }
            )
        });
        println!(
            r#"{{"algorithm":"{name}",{},"detected":{},"certified":{},"surviving":{},"dissolved":{},"added":{},"repair_touched":{},"excluded":[{}],"rounds":{},"charged_rounds":{},"messages":{},"retransmissions":{},"heartbeats":{},"churn_events":{},"churn_drops":{}{restore}}}"#,
            json_matching(g, &rep.matching),
            rep.detected(),
            rep.certified(),
            rep.surviving,
            rep.dissolved,
            rep.added,
            rep.repair_touched,
            excluded.join(","),
            s.rounds,
            s.charged_rounds,
            s.messages,
            s.retransmissions,
            s.heartbeats,
            s.churn_events,
            s.churn_drops,
        );
    } else {
        print_matching(&name, g, &rep.matching);
        println!(
            "cost      : {} rounds ({} charged), {} messages",
            rep.phase1.rounds, rep.phase1.charged_rounds, rep.phase1.messages
        );
        if certify {
            println!(
                "verdict   : {} (certified {})",
                if rep.detected() { "corruption DETECTED" } else { "clean" },
                rep.certified(),
            );
        }
        if rep.repair.is_some() || rep.maintain.is_some() {
            println!(
                "healing   : {} surviving, {} dissolved, {} added, {} touched",
                rep.surviving, rep.dissolved, rep.added, rep.repair_touched
            );
        }
        if !rep.excluded.is_empty() {
            let ex: Vec<String> = rep.excluded.iter().map(usize::to_string).collect();
            println!("excluded  : {}", ex.join(" "));
        }
        if let Some(r) = &rep.restore {
            println!("restore   : {r}");
        }
    }
}

/// `run`: the unified runtime pipeline. Exit code `0` on a clean run
/// (including a clean checkpoint restore), `3` when the certification
/// layer detected corruption and the follow-up repair re-certified —
/// or when a restore had to degrade (older generation or cold start).
/// An unrecoverable restore (nothing to restore, foreign snapshot) is
/// an ordinary runtime error: exit `1`.
fn cmd_run(args: &Args) -> Result<ExitCode, CliError> {
    // The topology is either a materialized CSR file (positional path)
    // or an implicit family spec (`--graph ring:N|torus:WxH|reg:N:D|
    // gnp:N:P:SEED`) that never builds adjacency arrays — the latter is
    // how million-node runs fit in memory.
    let implicit;
    let mut loaded;
    let g: &dyn Topology = match (&args.graph_spec, args.positional.get(1)) {
        (Some(_), Some(_)) => {
            return usage_err("run takes either <graph.txt> or --graph SPEC, not both");
        }
        (Some(spec), None) => {
            implicit = ImplicitTopology::parse(spec).map_err(CliError::Usage)?;
            &implicit
        }
        (None, Some(path)) => {
            loaded = load(path)?;
            // Side information is lazy on CSR graphs; force it so the
            // unified `side_of` check below sees the cached partition.
            loaded.compute_bipartition();
            &loaded
        }
        (None, None) => return usage_err("missing graph file (or --graph SPEC)"),
    };
    if matches!(args.algo, AlgoSpec::Bipartite { .. })
        && (0..g.node_count()).any(|v| g.side_of(v).is_none())
    {
        return Err(CliError::Run("graph is not bipartite".to_string()));
    }
    let mut cfg = runtime_config(args)?;
    let sink = args.stats_out.as_ref().map(|_| Arc::new(RecordingSink::new()));
    if let Some(s) = &sink {
        cfg = cfg.stats_sink(SinkHandle::from(Arc::clone(s)));
    }
    let rep = run_configured(g, &cfg).map_err(|e| e.to_string())?;
    if let (Some(path), Some(s)) = (&args.stats_out, &sink) {
        let body = if path.ends_with(".json") { s.to_json() } else { s.to_csv() };
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
    }
    emit_run_report(g, &rep, cfg.certify, args.json);
    if cfg.certify && !rep.certified() {
        return Err(CliError::Run("verification failed and no repair re-certified".to_string()));
    }
    let degraded = rep.restore.is_some_and(|r| r.degraded());
    Ok(if rep.detected() || degraded { ExitCode::from(3) } else { ExitCode::SUCCESS })
}

/// `certify`: the certified matching pipeline. Returns the process exit
/// code on success (`0` nothing detected, `3` detected-and-repaired).
fn cmd_certify(args: &Args) -> Result<ExitCode, CliError> {
    let Some(path) = args.positional.get(1) else {
        return usage_err("missing graph file");
    };
    let g = load(path)?;
    let plan = FaultPlan {
        corrupt: args.corrupt,
        loss: args.loss,
        liars: args.liars.clone(),
        equivocators: args.equivocators.clone(),
        ..FaultPlan::default()
    };
    let cfg = RepairConfig { seed: args.seed, ..RepairConfig::default() };
    let rep = certified_mm(&g, &plan, &cfg).map_err(|e| e.to_string())?;
    if args.json {
        let excluded: Vec<String> = rep.excluded.iter().map(usize::to_string).collect();
        let flagged: Vec<String> = rep.initial.flagged.iter().map(usize::to_string).collect();
        println!(
            r#"{{"algorithm":"certified-ii",{},"detected":{},"certified":{},"detection_rounds":{},"repair_locality":{:?},"flagged":[{}],"excluded":[{}],"surviving":{},"dissolved":{},"added":{}}}"#,
            json_matching(&g, &rep.matching),
            rep.detected(),
            rep.certified(),
            rep.detection_rounds(),
            rep.repair_locality(),
            flagged.join(","),
            excluded.join(","),
            rep.surviving,
            rep.dissolved,
            rep.added,
        );
    } else {
        print_matching("certified israeli-itai", &g, &rep.matching);
        println!(
            "verdict   : {} ({} flagged, detection in {} rounds)",
            if rep.detected() { "corruption DETECTED" } else { "clean" },
            rep.initial.flagged.len(),
            rep.detection_rounds(),
        );
        println!(
            "certified : {} ({} surviving, {} dissolved, {} added, locality {:.3})",
            rep.certified(),
            rep.surviving,
            rep.dissolved,
            rep.added,
            rep.repair_locality(),
        );
        if !rep.excluded.is_empty() {
            let ex: Vec<String> = rep.excluded.iter().map(usize::to_string).collect();
            println!("excluded  : {}", ex.join(" "));
        }
    }
    if !rep.certified() {
        // The pipeline's contract is detect -> repair -> re-certify; a
        // final uncertified matching is a bug, not an input problem.
        return Err(CliError::Run("re-verification failed after repair".to_string()));
    }
    Ok(if rep.detected() { ExitCode::from(3) } else { ExitCode::SUCCESS })
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let Some(family) = args.positional.get(1) else {
        return usage_err("missing family");
    };
    let Some(size) = args.positional.get(2) else {
        return usage_err("missing size");
    };
    let n: usize = match size.parse() {
        Ok(n) => n,
        Err(_) => return usage_err("bad size"),
    };
    let extra: f64 = match args.positional.get(3).map_or(Ok(0.1), |s| s.parse()) {
        Ok(x) => x,
        Err(_) => return usage_err("bad extra parameter"),
    };
    let mut rng = StdRng::seed_from_u64(args.seed);
    let g = match family.as_str() {
        "gnp" => generators::gnp(n, extra, &mut rng),
        "bipartite" => generators::bipartite_gnp(n / 2, n - n / 2, extra, &mut rng),
        "regular" => generators::random_regular(n, extra.max(1.0) as usize, &mut rng),
        "tree" => generators::random_tree(n, &mut rng),
        "cycle" => generators::cycle(n),
        "path" => generators::path(n),
        "complete" => generators::complete(n),
        "trap" => generators::greedy_trap(n, extra.max(0.01)),
        other => return usage_err(format!("unknown family '{other}'")),
    };
    print!("{}", io::to_text(&g));
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), CliError> {
    let Some(path) = args.positional.get(1) else {
        return usage_err("missing graph file");
    };
    let g = load(path)?;
    let matching = match args.positional.get(2).map(String::as_str) {
        None => None,
        Some("blossom") | Some("mcm") => Some(blossom::maximum_matching(&g)),
        Some("mwm") => Some(mwm::maximum_weight_matching(&g)),
        Some("greedy") => Some(dam_graph::maximal::greedy_mwm(&g)),
        Some(other) => {
            return usage_err(format!("unknown dot matching '{other}' (blossom|mwm|greedy)"));
        }
    };
    print!("{}", io::to_dot(&g, matching.as_ref()));
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), CliError> {
    let Some(path) = args.positional.get(1) else {
        return usage_err("missing graph file");
    };
    let g = load(path)?;
    let stats = analysis::degree_stats(&g);
    let (_, components) = analysis::connected_components(&g);
    println!("nodes      : {}", g.node_count());
    println!("edges      : {}", g.edge_count());
    println!("weighted   : {}", g.is_weighted());
    println!("bipartite  : {}", g.bipartition().is_some());
    println!("components : {components}");
    println!(
        "degree     : min {} / mean {:.2} / max {} ({} isolated)",
        stats.min, stats.mean, stats.max, stats.isolated
    );
    if g.node_count() <= 2000 {
        println!("diameter   : {}", analysis::diameter(&g));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let cmd = args.positional.first().cloned().unwrap_or_default();
    let result = match cmd.as_str() {
        "match" => cmd_match(&args).map(|()| ExitCode::SUCCESS),
        "run" => cmd_run(&args),
        "certify" => cmd_certify(&args),
        "gen" => cmd_gen(&args).map(|()| ExitCode::SUCCESS),
        "info" => cmd_info(&args).map(|()| ExitCode::SUCCESS),
        "dot" => cmd_dot(&args).map(|()| ExitCode::SUCCESS),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            usage()
        }
        Err(CliError::Run(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
