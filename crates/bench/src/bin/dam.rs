//! `dam-cli` — command-line front end for the matching library.
//!
//! ```text
//! dam-cli match <graph.txt> [algo] [--k K] [--eps E] [--seed S] [--parallel T] [--json]
//! dam-cli certify <graph.txt> [--seed S] [--corrupt P] [--loss P] \
//!                 [--liars a,b] [--equivocators a,b] [--json]
//! dam-cli gen <family> <params...> [--seed S]   # print a graph in dam text format
//! dam-cli info <graph.txt>                      # structural summary
//! dam-cli dot <graph.txt> [algo]                # Graphviz with matching
//! ```
//!
//! `certify` runs the certified pipeline (Israeli–Itai over the hardened
//! transport, O(1)-round self-verification, localized repair on
//! detection) and reports with its exit status: `0` certified with
//! nothing detected, `3` corruption detected (and repaired to a
//! re-certified matching), `1` internal error, `2` usage error.
//!
//! `--parallel T` runs the simulator rounds on `T` worker threads
//! (`ii`, `bipartite`, `weighted`); results are bit-identical to the
//! sequential engine, so the flag affects wall-clock only.
//!
//! Algorithms: `ii` (Israeli–Itai), `bipartite` (Theorem 3.10),
//! `general` (Theorem 3.15), `weighted` (Theorem 4.5), `hv`
//! (§4 Remark), `tree` (exact on forests), `local-max` (δ-MWM box),
//! plus the exact oracles `hk`, `blossom`, `mwm`.

use std::process::ExitCode;

use dam_congest::{FaultPlan, SimConfig};
use dam_core::auction::{auction_mwm, AuctionConfig};
use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam_core::certify::certified_mm;
use dam_core::general::{general_mcm, GeneralMcmConfig};
use dam_core::hv::{hv_mwm, HvMwmConfig};
use dam_core::israeli_itai::israeli_itai_with;
use dam_core::repair::RepairConfig;
use dam_core::trees::tree_mcm;
use dam_core::weighted::local_max::local_max_mwm;
use dam_core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam_core::AlgorithmReport;
use dam_graph::{analysis, blossom, generators, hopcroft_karp, io, mwm, Graph, Matching};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    positional: Vec<String>,
    k: usize,
    eps: f64,
    seed: u64,
    parallel: usize,
    corrupt: f64,
    loss: f64,
    liars: Vec<usize>,
    equivocators: Vec<usize>,
    json: bool,
}

fn parse_nodes(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().map_err(|_| format!("bad node '{t}'")))
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut k = 3usize;
    let mut eps = 0.1f64;
    let mut seed = 0u64;
    let mut parallel = 1usize;
    let mut corrupt = 0.0f64;
    let mut loss = 0.0f64;
    let mut liars = Vec::new();
    let mut equivocators = Vec::new();
    let mut json = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--k" => k = it.next().ok_or("--k needs a value")?.parse().map_err(|_| "bad --k")?,
            "--eps" => {
                eps = it.next().ok_or("--eps needs a value")?.parse().map_err(|_| "bad --eps")?;
            }
            "--seed" => {
                seed =
                    it.next().ok_or("--seed needs a value")?.parse().map_err(|_| "bad --seed")?;
            }
            "--parallel" => {
                parallel = it
                    .next()
                    .ok_or("--parallel needs a value")?
                    .parse()
                    .map_err(|_| "bad --parallel")?;
                if parallel == 0 {
                    return Err("--parallel needs at least 1 thread".to_string());
                }
            }
            "--corrupt" => {
                corrupt = it
                    .next()
                    .ok_or("--corrupt needs a value")?
                    .parse()
                    .map_err(|_| "bad --corrupt")?;
                if !(0.0..=1.0).contains(&corrupt) {
                    return Err("--corrupt must be a probability in [0, 1]".to_string());
                }
            }
            "--loss" => {
                loss =
                    it.next().ok_or("--loss needs a value")?.parse().map_err(|_| "bad --loss")?;
                if !(0.0..=1.0).contains(&loss) {
                    return Err("--loss must be a probability in [0, 1]".to_string());
                }
            }
            "--liars" => liars = parse_nodes(&it.next().ok_or("--liars needs a value")?)?,
            "--equivocators" => {
                equivocators = parse_nodes(&it.next().ok_or("--equivocators needs a value")?)?;
            }
            "--json" => json = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    Ok(Args { positional, k, eps, seed, parallel, corrupt, loss, liars, equivocators, json })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dam-cli match <graph.txt> [algo]  [--k K] [--eps E] [--seed S] [--parallel T] [--json]\n  \
         dam-cli match <graph.txt> <algo>\n  \
         dam-cli certify <graph.txt> [--seed S] [--corrupt P] [--loss P] [--liars a,b] [--equivocators a,b] [--json]\n  \
         dam-cli gen <family> <n> [extra] [--seed S]\n  dam-cli info <graph.txt>\n\n\
         algos: ii bipartite general weighted hv tree auction local-max hk blossom mwm\n\
         families: gnp bipartite regular tree cycle path complete trap"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    io::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

/// The matching as a hand-rolled JSON fragment (the workspace has no
/// serde): `"size":..,"weight":..,"edges":[[u,v],..]`. `{:?}` keeps
/// floats JSON-valid (always a digit after the point, no locale).
fn json_matching(g: &Graph, m: &Matching) -> String {
    let edges: Vec<String> = m
        .edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            format!("[{u},{v}]")
        })
        .collect();
    format!(r#""size":{},"weight":{:?},"edges":[{}]"#, m.size(), m.weight(g), edges.join(","))
}

fn emit_report(name: &str, g: &Graph, report: &AlgorithmReport, json: bool) {
    if json {
        let s = &report.stats.stats;
        println!(
            r#"{{"algorithm":"{name}",{},"rounds":{},"charged_rounds":{},"messages":{},"max_message_bits":{},"retransmissions":{},"heartbeats":{}}}"#,
            json_matching(g, &report.matching),
            s.rounds,
            s.charged_rounds,
            s.messages,
            s.max_message_bits,
            s.retransmissions,
            s.heartbeats,
        );
    } else {
        print_report(name, g, report);
    }
}

fn emit_matching(name: &str, g: &Graph, m: &Matching, json: bool) {
    if json {
        println!(r#"{{"algorithm":"{name}",{}}}"#, json_matching(g, m));
    } else {
        print_matching(name, g, m);
    }
}

fn print_report(name: &str, g: &Graph, report: &AlgorithmReport) {
    print_matching(name, g, &report.matching);
    println!(
        "cost      : {} rounds ({} charged), {} messages, widest {} bits",
        report.stats.stats.rounds,
        report.stats.stats.charged_rounds,
        report.stats.stats.messages,
        report.stats.stats.max_message_bits
    );
}

fn print_matching(name: &str, g: &Graph, m: &Matching) {
    println!("algorithm : {name}");
    println!("matching  : {} edges, weight {:.4}", m.size(), m.weight(g));
    let edges: Vec<String> = m
        .edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            format!("{u}-{v}")
        })
        .collect();
    println!("edges     : {}", edges.join(" "));
}

fn cmd_match(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("missing graph file")?;
    let algo = args.positional.get(2).map_or("general", String::as_str);
    let mut g = load(path)?;
    match algo {
        "ii" => {
            let sim =
                SimConfig::congest_for(g.node_count(), 4).seed(args.seed).threads(args.parallel);
            emit_report(
                "israeli-itai",
                &g,
                &israeli_itai_with(&g, sim).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "bipartite" => {
            if g.bipartition().is_none() && g.compute_bipartition().is_none() {
                return Err("graph is not bipartite".to_string());
            }
            let cfg = BipartiteMcmConfig {
                k: args.k,
                seed: args.seed,
                threads: args.parallel,
                ..Default::default()
            };
            emit_report(
                "bipartite (1-1/k)-MCM",
                &g,
                &bipartite_mcm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "general" => {
            let cfg = GeneralMcmConfig { k: args.k, seed: args.seed, ..Default::default() };
            emit_report(
                "general (1-1/k)-MCM",
                &g,
                &general_mcm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "weighted" => {
            let cfg = WeightedMwmConfig {
                eps: args.eps,
                seed: args.seed,
                threads: args.parallel,
                ..Default::default()
            };
            emit_report(
                "(1/2-eps)-MWM",
                &g,
                &weighted_mwm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "hv" => {
            let cfg = HvMwmConfig { eps: args.eps, seed: args.seed, ..Default::default() };
            emit_report(
                "(1-eps)-MWM (LOCAL)",
                &g,
                &hv_mwm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "tree" => emit_report(
            "tree exact MCM",
            &g,
            &tree_mcm(&g, args.seed).map_err(|e| e.to_string())?,
            args.json,
        ),
        "auction" => {
            if g.bipartition().is_none() && g.compute_bipartition().is_none() {
                return Err("graph is not bipartite".to_string());
            }
            let cfg = AuctionConfig { eps: args.eps, seed: args.seed, ..Default::default() };
            emit_report(
                "auction MWM",
                &g,
                &auction_mwm(&g, &cfg).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "local-max" => {
            emit_report(
                "local-max 1/2-MWM",
                &g,
                &local_max_mwm(&g, args.seed).map_err(|e| e.to_string())?,
                args.json,
            );
        }
        "hk" => {
            if g.bipartition().is_none() && g.compute_bipartition().is_none() {
                return Err("graph is not bipartite".to_string());
            }
            emit_matching(
                "hopcroft-karp (exact)",
                &g,
                &hopcroft_karp::maximum_bipartite_matching(&g),
                args.json,
            );
        }
        "blossom" => {
            emit_matching("blossom (exact MCM)", &g, &blossom::maximum_matching(&g), args.json);
        }
        "mwm" => emit_matching(
            "blossom-with-duals (exact MWM)",
            &g,
            &mwm::maximum_weight_matching(&g),
            args.json,
        ),
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    Ok(())
}

/// `certify`: the certified matching pipeline. Returns the process exit
/// code on success (`0` nothing detected, `3` detected-and-repaired).
fn cmd_certify(args: &Args) -> Result<ExitCode, String> {
    let Some(path) = args.positional.get(1) else {
        return Ok(usage());
    };
    let g = load(path)?;
    let plan = FaultPlan {
        corrupt: args.corrupt,
        loss: args.loss,
        liars: args.liars.clone(),
        equivocators: args.equivocators.clone(),
        ..FaultPlan::default()
    };
    let cfg = RepairConfig { seed: args.seed, ..RepairConfig::default() };
    let rep = certified_mm(&g, &plan, &cfg).map_err(|e| e.to_string())?;
    if args.json {
        let excluded: Vec<String> = rep.excluded.iter().map(usize::to_string).collect();
        let flagged: Vec<String> = rep.initial.flagged.iter().map(usize::to_string).collect();
        println!(
            r#"{{"algorithm":"certified-ii",{},"detected":{},"certified":{},"detection_rounds":{},"repair_locality":{:?},"flagged":[{}],"excluded":[{}],"surviving":{},"dissolved":{},"added":{}}}"#,
            json_matching(&g, &rep.matching),
            rep.detected(),
            rep.certified(),
            rep.detection_rounds(),
            rep.repair_locality(),
            flagged.join(","),
            excluded.join(","),
            rep.surviving,
            rep.dissolved,
            rep.added,
        );
    } else {
        print_matching("certified israeli-itai", &g, &rep.matching);
        println!(
            "verdict   : {} ({} flagged, detection in {} rounds)",
            if rep.detected() { "corruption DETECTED" } else { "clean" },
            rep.initial.flagged.len(),
            rep.detection_rounds(),
        );
        println!(
            "certified : {} ({} surviving, {} dissolved, {} added, locality {:.3})",
            rep.certified(),
            rep.surviving,
            rep.dissolved,
            rep.added,
            rep.repair_locality(),
        );
        if !rep.excluded.is_empty() {
            let ex: Vec<String> = rep.excluded.iter().map(usize::to_string).collect();
            println!("excluded  : {}", ex.join(" "));
        }
    }
    if !rep.certified() {
        // The pipeline's contract is detect -> repair -> re-certify; a
        // final uncertified matching is a bug, not an input problem.
        return Err("re-verification failed after repair".to_string());
    }
    Ok(if rep.detected() { ExitCode::from(3) } else { ExitCode::SUCCESS })
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let family = args.positional.get(1).ok_or("missing family")?;
    let n: usize = args.positional.get(2).ok_or("missing size")?.parse().map_err(|_| "bad size")?;
    let extra: f64 =
        args.positional.get(3).map_or(Ok(0.1), |s| s.parse()).map_err(|_| "bad extra parameter")?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let g = match family.as_str() {
        "gnp" => generators::gnp(n, extra, &mut rng),
        "bipartite" => generators::bipartite_gnp(n / 2, n - n / 2, extra, &mut rng),
        "regular" => generators::random_regular(n, extra.max(1.0) as usize, &mut rng),
        "tree" => generators::random_tree(n, &mut rng),
        "cycle" => generators::cycle(n),
        "path" => generators::path(n),
        "complete" => generators::complete(n),
        "trap" => generators::greedy_trap(n, extra.max(0.01)),
        other => return Err(format!("unknown family '{other}'")),
    };
    print!("{}", io::to_text(&g));
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("missing graph file")?;
    let g = load(path)?;
    let matching = match args.positional.get(2).map(String::as_str) {
        None => None,
        Some("blossom") | Some("mcm") => Some(blossom::maximum_matching(&g)),
        Some("mwm") => Some(mwm::maximum_weight_matching(&g)),
        Some("greedy") => Some(dam_graph::maximal::greedy_mwm(&g)),
        Some(other) => return Err(format!("unknown dot matching '{other}' (blossom|mwm|greedy)")),
    };
    print!("{}", io::to_dot(&g, matching.as_ref()));
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("missing graph file")?;
    let g = load(path)?;
    let stats = analysis::degree_stats(&g);
    let (_, components) = analysis::connected_components(&g);
    println!("nodes      : {}", g.node_count());
    println!("edges      : {}", g.edge_count());
    println!("weighted   : {}", g.is_weighted());
    println!("bipartite  : {}", g.bipartition().is_some());
    println!("components : {components}");
    println!(
        "degree     : min {} / mean {:.2} / max {} ({} isolated)",
        stats.min, stats.mean, stats.max, stats.isolated
    );
    if g.node_count() <= 2000 {
        println!("diameter   : {}", analysis::diameter(&g));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let cmd = args.positional.first().cloned().unwrap_or_default();
    let result = match cmd.as_str() {
        "match" => cmd_match(&args).map(|()| ExitCode::SUCCESS),
        "certify" => cmd_certify(&args),
        "gen" => cmd_gen(&args).map(|()| ExitCode::SUCCESS),
        "info" => cmd_info(&args).map(|()| ExitCode::SUCCESS),
        "dot" => cmd_dot(&args).map(|()| ExitCode::SUCCESS),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
