//! `chaos` — seed-deterministic adversarial schedule search.
//!
//! Random-searches churn+fault schedules for the one that hurts the
//! maintenance runtime's matching ratio the most, greedily shrinks the
//! winner, and (with `--out`) appends it to the regression corpus that
//! `cargo test -p dam-bench --test chaos_regression` replays.
//!
//! ```text
//! cargo run --release -p dam-bench --bin chaos -- \
//!     [--seed S] [--searches K] [--cases N] [--nodes V] [--corrupt P] \
//!     [--delay-bound B] [--graph SPEC] [--out crates/bench/tests/corpus/chaos.txt]
//! ```
//!
//! `--graph SPEC` pins every schedule to one implicit-topology family
//! (`ring:N`, `torus:WxH`, `reg:N:D`, `gnp:N:P:SEED` — the same
//! grammar as `dam-cli run --graph`) instead of fresh `G(n, 8/n)`
//! draws; corpus lines remember the spec via their `graph=` key.
//!
//! `--delay-bound B` arms the timing adversary: schedules carry random
//! delay models of per-hop bound ≤ B and run on the asynchronous
//! backend with derived timeouts, hunting false suspicions of
//! slow-but-correct nodes on top of ratio collapses.
//!
//! `--adaptive` runs the whole hunt against the closed-loop adaptive
//! transport instead of the static derivation (same floor), so the
//! self-tuning controller faces the same adversary the static timers
//! are validated against.
//!
//! `--crash-restart` arms the durability adversary: every schedule
//! carries a kill round — the pipeline checkpoints, the process dies
//! after that boundary with the next commit torn mid-rename, and the
//! run resumes through `dam_core::checkpoint` restore. Invariants are
//! then checked on the *recovered* matching, hunting schedules where
//! restart loses what the snapshot promised.
//!
//! Exit status: 0 when every evaluated schedule kept the invariant
//! (valid + maximal on the final topology, no false suspicion), 1 when
//! a violation was found — so CI fails loudly on a real bug, not on a
//! low ratio.

use std::path::PathBuf;
use std::process::ExitCode;

use dam_bench::adversary::{
    evaluate, parse_corpus, render_case, render_corpus, search, ChaosCase, SearchCfg,
};

struct Args {
    seed: u64,
    searches: u64,
    cases: usize,
    nodes: usize,
    corrupt: f64,
    delay_bound: u64,
    adaptive: bool,
    crash_restart: bool,
    graph: Option<String>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0xC7A0,
        searches: 4,
        cases: 24,
        nodes: 48,
        corrupt: 0.05,
        delay_bound: 0,
        adaptive: false,
        crash_restart: false,
        graph: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--searches" => {
                args.searches =
                    value("--searches")?.parse().map_err(|e| format!("--searches: {e}"))?;
            }
            "--cases" => {
                args.cases = value("--cases")?.parse().map_err(|e| format!("--cases: {e}"))?;
            }
            "--nodes" => {
                args.nodes = value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?;
            }
            "--corrupt" => {
                args.corrupt =
                    value("--corrupt")?.parse().map_err(|e| format!("--corrupt: {e}"))?;
                if !(0.0..=1.0).contains(&args.corrupt) {
                    return Err("--corrupt must be a probability in [0, 1]".to_string());
                }
            }
            "--delay-bound" => {
                args.delay_bound =
                    value("--delay-bound")?.parse().map_err(|e| format!("--delay-bound: {e}"))?;
            }
            "--adaptive" => args.adaptive = true,
            "--crash-restart" => args.crash_restart = true,
            "--graph" => {
                let spec = value("--graph")?;
                // Same spec grammar as `dam-cli run --graph`; a bad
                // spec is a usage error before any search starts.
                dam_graph::ImplicitTopology::parse(&spec)?;
                args.graph = Some(spec);
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: chaos [--seed S] [--searches K] [--cases N] [--nodes V] \
                 [--corrupt P] [--delay-bound B] [--adaptive] [--crash-restart] \
                 [--graph ring:N|torus:WxH|reg:N:D|gnp:N:P:SEED] [--out FILE]"
            );
            return ExitCode::from(2);
        }
    };

    let mut worst: Vec<ChaosCase> = Vec::new();
    let mut violated = false;
    for i in 0..args.searches {
        let cfg = SearchCfg {
            n: args.nodes,
            cases: args.cases,
            max_corrupt: args.corrupt,
            max_delay_bound: args.delay_bound,
            seed: args.seed.wrapping_add(i),
            adaptive: args.adaptive,
            crash_restart: args.crash_restart,
            topology: args.graph.clone(),
            ..SearchCfg::default()
        };
        let (case, out) = search(&cfg);
        println!(
            "search {i}: worst ratio {:.4} ({}/{} matched, invariant {}, {} suspected{}) \
             after shrink: {} events, {} crashes, loss {}, corrupt {}, delay {}",
            out.ratio,
            out.size,
            out.fresh,
            if out.invariant_ok { "ok" } else { "VIOLATED" },
            out.suspected,
            if out.false_suspicion { " — FALSE SUSPICION" } else { "" },
            case.events.len(),
            case.crashes.len(),
            case.loss,
            case.corrupt,
            dam_bench::adversary::render_delay(case.delay),
        );
        println!("  {}", render_case(&case));
        violated |= !out.invariant_ok || out.false_suspicion;
        worst.push(case);
    }

    if let Some(path) = &args.out {
        // Merge with the existing corpus, dedup, and rewrite.
        let mut cases = match std::fs::read_to_string(path) {
            Ok(text) => match parse_corpus(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: existing corpus {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => Vec::new(),
        };
        for case in worst {
            if !cases.contains(&case) {
                cases.push(case);
            }
        }
        for case in &cases {
            // Every corpus line must replay cleanly before we commit it.
            let _ = evaluate(case);
        }
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: creating {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(path, render_corpus(&cases)) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("corpus: {} cases -> {}", cases.len(), path.display());
    }

    if violated {
        eprintln!("invariant violation or false suspicion found — see the schedules above");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
