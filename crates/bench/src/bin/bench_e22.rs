//! Emits `results/BENCH_e22.json`: the committed million-node
//! scale-out baseline (experiment E22) — Israeli–Itai through the
//! unified runtime on implicit topologies (`ring`, `torus`, `reg`) at
//! n = 10⁵ and 10⁶ with peak RSS and round throughput per record, a
//! sharded-backend thread sweep, and the implicit-vs-CSR twin
//! bit-identity check.
//!
//! ```text
//! cargo run --release -p dam-bench --bin bench-e22 [-- --repeats R]
//! CI_SMOKE=1 cargo run --release -p dam-bench --bin bench-e22
//! ```
//!
//! With `CI_SMOKE=1` the sweep is restricted to n = 10⁵ and the run
//! fails (exit 1) if peak RSS exceeds the committed budget
//! ([`dam_bench::scale::RSS_BUDGET_KB`]) — CI's `scale-smoke` job.
//! Run from the workspace root (the output path is relative).

use std::fs;
use std::process::ExitCode;

use dam_bench::scale::ScaleBaseline;

fn main() -> ExitCode {
    let mut repeats = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or_else(|| panic!("--repeats needs a positive integer"));
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: bench-e22 [--repeats R]");
                return ExitCode::from(2);
            }
        }
    }

    let ci_smoke = std::env::var_os("CI_SMOKE").is_some();
    eprintln!(
        "measuring E22 scale baseline ({}, best of {repeats})...",
        if ci_smoke { "smoke: n = 1e5 only" } else { "full: n = 1e5 and 1e6" },
    );
    let b = ScaleBaseline::collect(ci_smoke, repeats);
    for r in &b.records {
        println!(
            "{:<16} n={:<8} m={:<8} rounds={:<3} {:>9.1} ms  {:>7.1} rounds/s  peak {:>7} kB",
            r.spec,
            r.n,
            r.m,
            r.rounds,
            r.wall_ms,
            r.rounds_per_sec(),
            r.peak_rss_kb,
        );
    }
    for r in &b.sweep {
        println!(
            "sweep {} threads={} {:>9.1} ms  {:>7.1} rounds/s",
            r.spec,
            r.threads,
            r.wall_ms,
            r.rounds_per_sec(),
        );
    }
    println!(
        "twins ({}) identical: {} | process peak RSS {} kB (budget {} kB)",
        b.twin_specs, b.twins_identical, b.peak_rss_kb, b.rss_budget_kb,
    );
    if !b.twins_identical {
        eprintln!("implicit topologies diverged from their materialized twins");
        return ExitCode::FAILURE;
    }
    if ci_smoke && b.peak_rss_kb > b.rss_budget_kb {
        eprintln!(
            "peak RSS {} kB exceeds the smoke budget of {} kB",
            b.peak_rss_kb, b.rss_budget_kb
        );
        return ExitCode::FAILURE;
    }
    if let Err(e) = fs::create_dir_all("results") {
        eprintln!("cannot create results/: {e}");
        return ExitCode::FAILURE;
    }
    match fs::write("results/BENCH_e22.json", b.to_json()) {
        Ok(()) => {
            eprintln!("wrote results/BENCH_e22.json");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write results/BENCH_e22.json: {e}");
            ExitCode::FAILURE
        }
    }
}
