//! Million-node scale-out baseline (experiment E22).
//!
//! Runs the Israeli–Itai pipeline through the unified runtime on
//! *implicit* topologies — `ring:N`, `torus:WxH`, `reg:N:D` — whose
//! adjacency is computed on the fly ([`dam_graph::ImplicitTopology`]),
//! so the instance never stores per-edge arrays. Each record carries
//! wall clock, round/message totals and the process's peak RSS
//! (`VmHWM` from `/proc/self/status`), which is how the headline claim
//! — Israeli–Itai at n = 10⁶ inside container memory — is pinned.
//!
//! The baseline also records a **twin check** (the implicit run is
//! bit-identical to the same run on the materialized CSR graph, at a
//! size where both fit) and a **thread sweep** on the sharded backend.
//!
//! `results/BENCH_e22.json` commits a full collection; the CI
//! `scale-smoke` job re-collects with [`ScaleBaseline::collect`] in
//! smoke mode (n = 10⁵ only) and asserts the [`RSS_BUDGET_KB`] budget.
//! The JSON is emitted and parsed by hand — the workspace has no serde.

use std::time::Instant;

use dam_congest::{Backend, SimConfig};
use dam_core::runtime::{run_mm, IsraeliItai, RunReport, RuntimeConfig};
use dam_graph::{materialize, ImplicitTopology, Topology};

/// Workload id — a stale artifact is never compared across experiments.
pub const SCALE_WORKLOAD: &str = "e22-israeli-itai-implicit";
/// Simulator seed of every timed run.
pub const SCALE_SEED: u64 = 22;
/// Peak-RSS budget of the smoke collection (n = 10⁵ records only),
/// asserted by CI's `scale-smoke` job. Measured headroom: the n = 10⁵
/// sweep peaks around 60 MB, the budget is ~4x that.
pub const RSS_BUDGET_KB: u64 = 262_144;
/// Implicit specs measured at n = 10⁵ (both modes).
pub const SPECS_1E5: &[&str] = &["ring:100000", "torus:320x320", "reg:100000:4"];
/// Implicit specs measured at n = 10⁶ (full mode only).
pub const SPECS_1E6: &[&str] = &["ring:1000000", "torus:1000x1000", "reg:1000000:4"];
/// Twin-checked specs: implicit vs materialized CSR, bit-identical.
pub const TWIN_SPECS: &[&str] = &["ring:10000", "torus:48x48", "reg:10000:4", "gnp:2000:0.004:42"];
/// Thread counts of the sharded-backend sweep.
pub const SWEEP_THREADS: &[usize] = &[1, 2, 4, 8];
/// Spec of the thread sweep.
pub const SWEEP_SPEC: &str = "ring:100000";

/// The process's peak resident set (`VmHWM`) in kB — 0 where
/// `/proc/self/status` is unavailable (non-Linux hosts).
#[must_use]
pub fn peak_rss_kb() -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    text.lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// One timed pipeline run on one implicit topology.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRecord {
    /// Canonical topology spec of the instance.
    pub spec: String,
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Engine worker threads (1 = sequential backend).
    pub threads: usize,
    /// Protocol rounds of the run (deterministic).
    pub rounds: u64,
    /// Protocol messages of the run (deterministic).
    pub messages: u64,
    /// Matching size (deterministic).
    pub matched: usize,
    /// Best-of-N wall clock, milliseconds.
    pub wall_ms: f64,
    /// Process peak RSS right after the run, kB. Cumulative across a
    /// collection (a high-water mark never falls), so within one
    /// artifact only the *largest* instance's figure is a tight bound;
    /// collections order small instances first to keep early figures
    /// meaningful.
    pub peak_rss_kb: u64,
}

impl ScaleRecord {
    /// Protocol rounds per wall-clock second.
    #[must_use]
    pub fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / (self.wall_ms / 1e3)
    }
}

/// Runs the pipeline once on the parsed spec (no transport — this is
/// the bare engine-scale figure) and returns the report.
fn run_spec(topo: &ImplicitTopology, threads: usize) -> RunReport {
    let backend = if threads > 1 { Backend::Sharded } else { Backend::Sequential };
    let sim = SimConfig::local().seed(SCALE_SEED).threads(threads).backend(backend);
    let cfg = RuntimeConfig::new().sim(sim);
    run_mm(&IsraeliItai, topo, &cfg).expect("fault-free scale run cannot fail")
}

/// Times `spec` at `threads` workers, best of `repeats`.
///
/// # Panics
/// Panics on an invalid spec or a failed run — both are bugs here.
#[must_use]
pub fn measure_spec(spec: &str, threads: usize, repeats: usize) -> ScaleRecord {
    assert!(repeats > 0, "need at least one timed repeat");
    let topo = ImplicitTopology::parse(spec).expect("scale specs are valid");
    let mut best = f64::INFINITY;
    let mut rep = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let r = run_spec(&topo, threads);
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
        rep = Some(r);
    }
    let rep = rep.expect("at least one repeat ran");
    ScaleRecord {
        spec: spec.to_string(),
        n: topo.node_count(),
        m: topo.edge_count(),
        threads,
        rounds: rep.phase1.rounds,
        messages: rep.phase1.messages,
        matched: rep.matching.size(),
        wall_ms: best * 1e3,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Whether the pipeline is bit-identical on `spec` and its materialized
/// CSR twin: same matching, same registers, same round and message
/// totals.
///
/// # Panics
/// Panics on an invalid spec or a failed run.
#[must_use]
pub fn twin_identical(spec: &str) -> bool {
    let topo = ImplicitTopology::parse(spec).expect("twin specs are valid");
    let csr = materialize(&topo).expect("implicit topologies always materialize");
    let a = run_spec(&topo, 1);
    let b = run_spec(&ImplicitTopology::parse(spec).expect("twin specs are valid"), 1);
    assert_eq!(a.registers, b.registers, "implicit runs must be deterministic");
    let sim = SimConfig::local().seed(SCALE_SEED);
    let c = run_mm(&IsraeliItai, &csr, &RuntimeConfig::new().sim(sim))
        .expect("fault-free twin run cannot fail");
    a.matching.to_edge_vec() == c.matching.to_edge_vec()
        && a.registers == c.registers
        && a.phase1.rounds == c.phase1.rounds
        && a.phase1.messages == c.phase1.messages
}

/// One committed collection of the E22 scale workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleBaseline {
    /// Workload identifier — must equal [`SCALE_WORKLOAD`].
    pub workload: String,
    /// Whether this collection was restricted to n = 10⁵ (smoke mode).
    pub ci_smoke: bool,
    /// Timed repeats per record (wall clocks are best-of-N).
    pub repeats: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_threads: usize,
    /// `;`-joined [`TWIN_SPECS`] the twin check covered.
    pub twin_specs: String,
    /// Whether every twin pair was bit-identical.
    pub twins_identical: bool,
    /// Scale records, smallest instance first.
    pub records: Vec<ScaleRecord>,
    /// Sharded-backend thread sweep on [`SWEEP_SPEC`].
    pub sweep: Vec<ScaleRecord>,
    /// Process peak RSS after the whole collection, kB.
    pub peak_rss_kb: u64,
    /// The smoke budget this artifact was collected under, kB.
    pub rss_budget_kb: u64,
}

impl ScaleBaseline {
    /// Measures a fresh collection on this host. Smoke mode keeps the
    /// sweep at n = 10⁵ so the whole collection stays under
    /// [`RSS_BUDGET_KB`] and a few seconds of wall clock.
    #[must_use]
    pub fn collect(ci_smoke: bool, repeats: usize) -> ScaleBaseline {
        let twins_identical = TWIN_SPECS.iter().all(|s| twin_identical(s));
        let sweep: Vec<ScaleRecord> =
            SWEEP_THREADS.iter().map(|&t| measure_spec(SWEEP_SPEC, t, repeats)).collect();
        let mut records: Vec<ScaleRecord> =
            SPECS_1E5.iter().map(|s| measure_spec(s, 1, repeats)).collect();
        if !ci_smoke {
            // Largest instances last: peak RSS is a process-wide
            // high-water mark, so this order keeps every earlier
            // record's figure a meaningful bound.
            records.extend(SPECS_1E6.iter().map(|s| measure_spec(s, 1, repeats)));
        }
        ScaleBaseline {
            workload: SCALE_WORKLOAD.to_string(),
            ci_smoke,
            repeats,
            host_threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            twin_specs: TWIN_SPECS.join(";"),
            twins_identical,
            records,
            sweep,
            peak_rss_kb: peak_rss_kb(),
            rss_budget_kb: RSS_BUDGET_KB,
        }
    }

    /// Serializes to the committed JSON format (hand-rolled; the
    /// workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let obj = |r: &ScaleRecord| {
            format!(
                "    {{\"spec\": \"{}\", \"n\": {}, \"m\": {}, \"threads\": {}, \
                 \"rounds\": {}, \"messages\": {}, \"matched\": {}, \"wall_ms\": {:.3}, \
                 \"peak_rss_kb\": {}}}",
                r.spec,
                r.n,
                r.m,
                r.threads,
                r.rounds,
                r.messages,
                r.matched,
                r.wall_ms,
                r.peak_rss_kb,
            )
        };
        let records: Vec<String> = self.records.iter().map(&obj).collect();
        let sweep: Vec<String> = self.sweep.iter().map(&obj).collect();
        format!(
            "{{\n  \"workload\": \"{}\",\n  \"ci_smoke\": {},\n  \"repeats\": {},\n  \
             \"host_threads\": {},\n  \"twin_specs\": \"{}\",\n  \"twins_identical\": {},\n  \
             \"peak_rss_kb\": {},\n  \"rss_budget_kb\": {},\n  \"records\": [\n{}\n  ],\n  \
             \"sweep\": [\n{}\n  ]\n}}\n",
            self.workload,
            self.ci_smoke,
            self.repeats,
            self.host_threads,
            self.twin_specs,
            self.twins_identical,
            self.peak_rss_kb,
            self.rss_budget_kb,
            records.join(",\n"),
            sweep.join(",\n"),
        )
    }

    /// Parses the committed JSON format.
    ///
    /// # Errors
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<ScaleBaseline, String> {
        let mut body = text.trim().to_string();
        let records = extract_array(&mut body, "records")?;
        let sweep = extract_array(&mut body, "sweep")?;
        let body = body
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or("baseline JSON must be a single object")?;
        let mut strings: Vec<(String, String)> = Vec::new();
        let mut fields: Vec<(String, String)> = Vec::new();
        for entry in body.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) =
                entry.split_once(':').ok_or_else(|| format!("malformed entry {entry:?}"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim().to_string();
            if value.starts_with('"') {
                strings.push((key, value.trim_matches('"').to_string()));
            } else {
                fields.push((key, value));
            }
        }
        let string = |name: &str| -> Result<String, String> {
            strings
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("missing field {name:?}"))
        };
        let num = |name: &str| -> Result<f64, String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .ok_or_else(|| format!("missing field {name:?}"))?
                .1
                .parse::<f64>()
                .map_err(|e| format!("field {name:?}: {e}"))
        };
        let flag = |name: &str| -> Result<bool, String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .ok_or_else(|| format!("missing field {name:?}"))?
                .1
                .parse::<bool>()
                .map_err(|e| format!("field {name:?}: {e}"))
        };
        Ok(ScaleBaseline {
            workload: string("workload")?,
            ci_smoke: flag("ci_smoke")?,
            repeats: num("repeats")? as usize,
            host_threads: num("host_threads")? as usize,
            twin_specs: string("twin_specs")?,
            twins_identical: flag("twins_identical")?,
            records,
            sweep,
            peak_rss_kb: num("peak_rss_kb")? as u64,
            rss_budget_kb: num("rss_budget_kb")? as u64,
        })
    }
}

/// Cuts the named `"key": [...]` array out of `body` (so the remainder
/// is a flat object) and parses its record objects.
fn extract_array(body: &mut String, key: &str) -> Result<Vec<ScaleRecord>, String> {
    let tag = format!("\"{key}\":");
    let at = body.find(&tag).ok_or_else(|| format!("missing array {key:?}"))?;
    let open = body[at..].find('[').ok_or_else(|| format!("array {key:?} has no '['"))? + at;
    let close = body[open..].find(']').ok_or_else(|| format!("array {key:?} has no ']'"))? + open;
    let inner = body[open + 1..close].to_string();
    // Drop the whole `"key": [...]` clause plus a trailing comma if one
    // follows; any comma the clause leaves dangling shows up as an
    // empty entry, which the flat-field loop skips.
    let mut end = close + 1;
    if body[end..].trim_start().starts_with(',') {
        end += body[end..].find(',').expect("just checked") + 1;
    }
    body.replace_range(at..end, "");
    inner
        .split('}')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_record(s.trim_start_matches(',').trim().trim_start_matches('{')))
        .collect()
}

/// Parses one record object's body (braces already stripped).
fn parse_record(body: &str) -> Result<ScaleRecord, String> {
    let mut spec = None;
    let mut fields: Vec<(String, String)> = Vec::new();
    for entry in body.split(',') {
        let (key, value) =
            entry.split_once(':').ok_or_else(|| format!("malformed record entry {entry:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim().to_string();
        if key == "spec" {
            spec = Some(value.trim_matches('"').to_string());
        } else {
            fields.push((key, value));
        }
    }
    let num = |name: &str| -> Result<f64, String> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .ok_or_else(|| format!("missing record field {name:?}"))?
            .1
            .parse::<f64>()
            .map_err(|e| format!("record field {name:?}: {e}"))
    };
    Ok(ScaleRecord {
        spec: spec.ok_or("missing record field \"spec\"")?,
        n: num("n")? as usize,
        m: num("m")? as usize,
        threads: num("threads")? as usize,
        rounds: num("rounds")? as u64,
        messages: num("messages")? as u64,
        matched: num("matched")? as usize,
        wall_ms: num("wall_ms")?,
        peak_rss_kb: num("peak_rss_kb")? as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScaleBaseline {
        let rec = |spec: &str, n: usize, threads: usize| ScaleRecord {
            spec: spec.to_string(),
            n,
            m: n,
            threads,
            rounds: 40,
            messages: 123_456,
            matched: n / 2 - 7,
            wall_ms: 210.125,
            peak_rss_kb: 59_000,
        };
        ScaleBaseline {
            workload: SCALE_WORKLOAD.to_string(),
            ci_smoke: false,
            repeats: 1,
            host_threads: 8,
            twin_specs: TWIN_SPECS.join(";"),
            twins_identical: true,
            records: vec![rec("ring:100000", 100_000, 1), rec("ring:1000000", 1_000_000, 1)],
            sweep: vec![rec("ring:100000", 100_000, 1), rec("ring:100000", 100_000, 4)],
            peak_rss_kb: 600_000,
            rss_budget_kb: RSS_BUDGET_KB,
        }
    }

    #[test]
    fn json_roundtrips() {
        let b = sample();
        let back = ScaleBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ScaleBaseline::from_json("not json").is_err());
        assert!(ScaleBaseline::from_json("{\"workload\": \"x\"}").is_err());
        assert!(ScaleBaseline::from_json("{\"workload\": \"x\", \"records\": [], \"sweep\": []}")
            .is_err());
    }

    #[test]
    fn twin_check_holds_on_a_small_ring() {
        // The full TWIN_SPECS set runs in bench-e22 and the CI smoke;
        // one small family keeps the unit test fast.
        assert!(twin_identical("ring:64"));
        assert!(twin_identical("gnp:48:0.1:3"));
    }

    #[test]
    fn measurement_is_deterministic_across_backends() {
        let seq = measure_spec("torus:6x6", 1, 1);
        let par = measure_spec("torus:6x6", 4, 1);
        assert_eq!(seq.rounds, par.rounds);
        assert_eq!(seq.messages, par.messages);
        assert_eq!(seq.matched, par.matched);
        assert_eq!((seq.n, seq.m), (36, 72));
    }
}
