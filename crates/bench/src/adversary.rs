//! Adversarial schedule search over churn + fault schedules.
//!
//! The maintenance runtime (`dam_core::maintain`) claims that its final
//! matching is valid and maximal on whatever graph survives an arbitrary
//! churn schedule. This module hunts for the schedule that hurts the
//! most: it samples random churn+fault schedules (seed-deterministic —
//! the same search seed always explores the same schedules), evaluates
//! each by the **matching ratio** (pipeline matching vs a fresh run on
//! the final topology), keeps the worst, and then **greedily shrinks**
//! it proptest-style — repeatedly dropping events, crashes and loss
//! while the schedule stays as bad — so the committed regression corpus
//! holds minimal reproducers, not noise.
//!
//! With [`SearchCfg::max_delay_bound`] set the search doubles as a
//! **timing adversary**: cases carry a [`DelayModel`] and run on the
//! asynchronous backend with every timeout derived from the declared
//! delay bound, hunting *false suspicions* — a silence-based failure
//! detector convicting a slow-but-correct node — alongside ratio
//! collapses.
//!
//! Worst cases are persisted in a hand-rolled line-based text format
//! ([`render_corpus`] / [`parse_corpus`]; the workspace has no serde) and
//! replayed by `crates/bench/tests/chaos_regression.rs` as a plain
//! `cargo test`. The `chaos` binary runs the search from the command
//! line (CI runs it on a cron schedule with fixed seeds).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dam_congest::{
    AdaptivePolicy, ChurnKind, ChurnPlan, DelayModel, FaultPlan, RecordingSink, SimConfig,
    SinkHandle, Squall, TransportCfg,
};
use dam_core::checkpoint::{inject, CheckpointCfg, CheckpointStore, Damage};
use dam_core::maintain::is_maximal_on_present;
use dam_core::runtime::{run_mm, IsraeliItai, RunReport, RuntimeConfig};
use dam_graph::{generators, materialize, Graph, ImplicitTopology, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One fully-specified chaos scenario: every seed is explicit, so
/// evaluation is bit-deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCase {
    /// Nodes of the `G(n, 8/n)` instance.
    pub n: usize,
    /// Canonical implicit-topology spec (`ring:N`, `torus:WxH`,
    /// `reg:N:D`, `gnp:N:P:SEED` — the same grammar `dam-cli run
    /// --graph` takes). `Some` pins the instance to that family
    /// (materialized for evaluation); `None` keeps the classic
    /// `G(n, 8/n)` draw from `graph_seed`.
    pub topology: Option<String>,
    /// Seed of the graph generator.
    pub graph_seed: u64,
    /// Seed of the pipeline run.
    pub run_seed: u64,
    /// Per-message loss probability during the run.
    pub loss: f64,
    /// Per-frame corruption probability during the run (keyed-RNG
    /// channel damage: bit flips, truncations, garbage, replays,
    /// forgeries — see `dam_congest::CorruptKind`).
    pub corrupt: f64,
    /// Adversarial timing model. Anything but [`DelayModel::Unit`]
    /// moves the case onto the asynchronous backend with every timeout
    /// derived from the declared delay bound
    /// (`RuntimeConfig::tuned_for_async`), so each timed case replays
    /// the tentpole claim: the hardened pipeline survives off the round
    /// barrier.
    pub delay: DelayModel,
    /// Crash schedule `(node, round)` — disjoint from churned nodes.
    pub crashes: Vec<(usize, usize)>,
    /// Nodes absent at round 0 (the pool that may `Join`).
    pub absent_nodes: Vec<usize>,
    /// Round-stamped topology events.
    pub events: Vec<(usize, ChurnKind)>,
    /// Crash-restart schedule: `Some(k)` kills the process after the
    /// `k`-th boundary snapshot commits (1 = after the `Main`
    /// boundary), tears the next commit mid-rename, and resumes from
    /// the surviving checkpoint directory — the whole run then replays
    /// through `dam_core::checkpoint` restore. `None` runs
    /// uninterrupted (and keeps pre-checkpoint corpus lines
    /// byte-stable).
    pub kill: Option<u64>,
}

impl ChaosCase {
    /// The instance graph.
    #[must_use]
    pub fn graph(&self) -> Graph {
        if let Some(spec) = &self.topology {
            let topo = ImplicitTopology::parse(spec).expect("corpus topology specs are validated");
            return materialize(&topo).expect("implicit topologies always materialize");
        }
        let mut rng = StdRng::seed_from_u64(self.graph_seed);
        generators::gnp(self.n, 8.0 / self.n as f64, &mut rng)
    }

    /// The churn plan of this case.
    #[must_use]
    pub fn churn_plan(&self) -> ChurnPlan {
        let mut plan = ChurnPlan::default().with_absent_nodes(self.absent_nodes.clone());
        for &(round, kind) in &self.events {
            plan = plan.with_event(round, kind);
        }
        plan
    }

    /// The fault plan of this case.
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan {
            crashes: self.crashes.clone(),
            loss: self.loss,
            corrupt: self.corrupt,
            ..FaultPlan::default()
        }
    }

    /// Whether every node is live and the channel honest throughout the
    /// run: no crashes, no churn, no loss, no corruption. In a quiet
    /// case *any* silence-based suspicion is by definition false — the
    /// peer was slow, never gone — which is exactly the signal the
    /// timing adversary hunts.
    #[must_use]
    pub fn quiet(&self) -> bool {
        self.crashes.is_empty()
            && self.absent_nodes.is_empty()
            && self.events.is_empty()
            && self.loss == 0.0
            && self.corrupt == 0.0
    }
}

/// What evaluating a [`ChaosCase`] measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosOutcome {
    /// Pipeline matching size on the final topology.
    pub size: usize,
    /// Fresh Israeli–Itai matching size on the same final topology.
    pub fresh: usize,
    /// `size / fresh` (1.0 when both are empty). Two maximal matchings
    /// of one graph are within a factor 2, so < 0.5 would itself be a
    /// bug; the search minimizes this within `[0.5, 1]`.
    pub ratio: f64,
    /// Whether the pipeline's matching was valid and maximal on the
    /// final topology — the invariant; `false` is a found bug.
    pub invariant_ok: bool,
    /// Silence-based peer-down declarations across all phases
    /// ([`dam_congest::RunStats::suspected`] summed over phase 1,
    /// repair and maintenance).
    pub suspected: u64,
    /// `suspected > 0` in a [`ChaosCase::quiet`] case: every peer was
    /// live and the channel honest, so the failure detector convicted a
    /// slow-but-correct node. A found bug, ranked like an invariant
    /// violation by [`search`].
    pub false_suspicion: bool,
}

/// Runs the churn pipeline of `case` (the unified runtime with the
/// maintenance layer on — bit-identical to the legacy
/// `churn_tolerant_mm`) and measures it. Deterministic: the same case
/// always yields the same outcome.
///
/// # Panics
/// Panics if the scenario itself is invalid (rejected plan) or the
/// simulation fails — a corpus case must replay cleanly.
#[must_use]
pub fn evaluate(case: &ChaosCase) -> ChaosOutcome {
    evaluate_with(case, false)
}

/// [`evaluate`] with an arm selector: `adaptive` swaps the static
/// transport for the closed-loop controller whose floor is exactly the
/// configuration the static arm would have run (the plain default, or
/// the delay-bound derivation on timed cases) — the chaos invariants
/// are then checked against self-tuned timers instead of derived ones.
///
/// # Panics
/// Panics if the scenario itself is invalid (rejected plan) or the
/// simulation fails — a corpus case must replay cleanly.
#[must_use]
pub fn evaluate_with(case: &ChaosCase, adaptive: bool) -> ChaosOutcome {
    let g = case.graph();
    let churn = case.churn_plan();
    let mut cfg = RuntimeConfig::new()
        .sim(SimConfig::local().seed(case.run_seed).max_rounds(500_000))
        .transport(TransportCfg::default())
        .faults(case.fault_plan())
        .churn(churn.clone())
        .maintain(true);
    if case.delay != DelayModel::Unit {
        cfg = cfg.delay_model(case.delay).tuned_for_async();
    }
    if adaptive {
        let floor = cfg.transport.take().unwrap_or_default();
        cfg = cfg.adaptive(AdaptivePolicy::for_floor(floor));
    }
    let report = match case.kill {
        Some(kill) => run_crash_restart(case, &g, &cfg, kill),
        None => match run_mm(&IsraeliItai, &g, &cfg) {
            Ok(r) => r,
            Err(e) => panic!("chaos case must run: {e:?}\n  case: {}", render_case(case)),
        },
    };

    let (mut node_present, edge_present) = churn.final_presence(&g);
    for &(v, _) in &case.crashes {
        node_present[v] = false;
    }
    let invariant_ok = report.matching.validate(&g).is_ok()
        && is_maximal_on_present(&g, &report.matching, &node_present, &edge_present);

    // Fresh baseline: plain Israeli–Itai on the final topology.
    let keep: Vec<bool> = g
        .edge_ids()
        .map(|e| {
            let (a, b) = g.endpoints(e);
            edge_present[e] && node_present[a] && node_present[b]
        })
        .collect();
    let sub = g.edge_subgraph(&keep);
    let fresh = dam_core::israeli_itai::israeli_itai(&sub, case.run_seed ^ 0xF5E5)
        .expect("fresh baseline")
        .matching
        .size();

    let size = report.matching.size();
    let ratio = if fresh == 0 { 1.0 } else { size as f64 / fresh as f64 };
    let suspected = report
        .phase1
        .suspected
        .saturating_add(report.repair.as_ref().map_or(0, |s| s.suspected))
        .saturating_add(report.maintain.as_ref().map_or(0, |s| s.suspected));
    let false_suspicion = suspected > 0 && case.quiet();
    ChaosOutcome { size, fresh, ratio, invariant_ok, suspected, false_suspicion }
}

/// The crash-restart arm of one case: run the pipeline with durable
/// checkpoints, then simulate a process kill after the `kill`-th
/// boundary commit — later generations never reached the disk, and the
/// next commit was torn mid-rename — and restore from the damaged
/// directory. The restore must succeed, must *report* the damage
/// (degraded, never silently clean), and the recovered report is what
/// the chaos invariants are then checked against.
///
/// # Panics
/// Panics if the checkpointing run, the injection, or the restore
/// fails, or if the restore claims a clean resume through torn state —
/// a corpus case must replay cleanly.
fn run_crash_restart(case: &ChaosCase, g: &Graph, cfg: &RuntimeConfig, kill: u64) -> RunReport {
    // Unique scratch directory per evaluation: searches and test
    // threads evaluate concurrently, and the outcome must not depend on
    // who else is running.
    static SCRATCH: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dam-chaos-ckpt-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let ck = cfg.clone().checkpoint(CheckpointCfg::new(&dir));
    if let Err(e) = run_mm(&IsraeliItai, g, &ck) {
        panic!("chaos case must run: {e:?}\n  case: {}", render_case(case));
    }
    let store = CheckpointStore::open(&dir);
    let mut gens = store.generations().expect("checkpoint directory must be readable");
    gens.sort_unstable();
    // The kill: boundaries after the k-th never committed.
    let keep = usize::try_from(kill).unwrap_or(usize::MAX).clamp(1, gens.len());
    for &stale in &gens[keep..] {
        let _ = std::fs::remove_file(dir.join(format!("ckpt-{stale:08}.snap")));
    }
    // ... and the commit in flight when the process died was torn.
    inject(&dir, Damage::TornRename).expect("inject the torn commit");

    let restored = run_mm(&IsraeliItai, g, &cfg.clone().restore(&dir));
    let _ = std::fs::remove_dir_all(&dir);
    let report = match restored {
        Ok(r) => r,
        Err(e) => {
            panic!("chaos case must restore: {e:?}\n  case: {}", render_case(case))
        }
    };
    let outcome = report.restore.unwrap_or_else(|| {
        panic!("restored run reported no restore outcome\n  case: {}", render_case(case))
    });
    assert!(
        outcome.degraded(),
        "torn checkpoint state resumed as clean ({outcome})\n  case: {}",
        render_case(case)
    );
    report
}

/// Search tuning.
#[derive(Debug, Clone)]
pub struct SearchCfg {
    /// Instance size.
    pub n: usize,
    /// Random schedules to sample.
    pub cases: usize,
    /// Last round an event may be scheduled at.
    pub horizon: usize,
    /// Expected events per round.
    pub rate: f64,
    /// Upper bound of the per-frame corruption probability sampled into
    /// schedules (`0` keeps the channel honest).
    pub max_corrupt: f64,
    /// Worst-case per-hop delay bound of the timing models sampled into
    /// schedules (`0` keeps every case on the synchronous engine — no
    /// timing adversary). With it on, half of the timed cases are
    /// [`ChaosCase::quiet`] so a false suspicion is unambiguous.
    pub max_delay_bound: u64,
    /// Master seed of the search (schedules and run seeds derive from
    /// it).
    pub seed: u64,
    /// Evaluate every schedule under the closed-loop adaptive transport
    /// instead of the static derivation (see [`evaluate_with`]).
    pub adaptive: bool,
    /// Arm the crash-restart adversary: every sampled schedule carries
    /// a kill-round ([`ChaosCase::kill`]), so each case runs through a
    /// checkpoint, a torn-commit process kill, and a restore.
    pub crash_restart: bool,
    /// Pin every sampled schedule to this implicit-topology spec
    /// ([`ChaosCase::topology`]) instead of drawing `G(n, 8/n)`
    /// instances; `n` is taken from the spec.
    pub topology: Option<String>,
}

impl Default for SearchCfg {
    fn default() -> SearchCfg {
        SearchCfg {
            n: 48,
            cases: 24,
            horizon: 60,
            rate: 0.2,
            max_corrupt: 0.05,
            max_delay_bound: 0,
            seed: 0,
            adaptive: false,
            crash_restart: false,
            topology: None,
        }
    }
}

/// Draws one random — but always *valid* — chaos scenario: event
/// generation tracks node/edge presence so deletes hit present objects,
/// joins come from the absent pool, and churned nodes stay disjoint
/// from the crash set.
#[must_use]
pub fn random_case(cfg: &SearchCfg, rng: &mut StdRng) -> ChaosCase {
    let graph_seed = rng.random_range(0..1_000_000);
    let run_seed = rng.random_range(0..1_000_000);
    let g = match &cfg.topology {
        Some(spec) => {
            let topo = ImplicitTopology::parse(spec).expect("search topology specs are validated");
            materialize(&topo).expect("implicit topologies always materialize")
        }
        None => {
            let mut grng = StdRng::seed_from_u64(graph_seed);
            generators::gnp(cfg.n, 8.0 / cfg.n as f64, &mut grng)
        }
    };
    let n = g.node_count();

    // ~5% of nodes start absent: the join pool.
    let mut absent_nodes: Vec<usize> = Vec::new();
    for v in 0..n {
        if rng.random_bool(0.05) {
            absent_nodes.push(v);
        }
    }
    let mut node_present: Vec<bool> = (0..n).map(|v| !absent_nodes.contains(&v)).collect();
    let mut edge_present = vec![true; g.edge_count()];
    // Nodes that already joined or left cannot do so again (plan rule).
    let mut joined = vec![false; n];
    let mut left = vec![false; n];
    let mut churned = vec![false; n];

    let mut events: Vec<(usize, ChurnKind)> = Vec::new();
    for round in 1..=cfg.horizon {
        if !rng.random_bool(cfg.rate) {
            continue;
        }
        let kind = match rng.random_range(0..4u32) {
            0 => {
                let live: Vec<usize> = (0..g.edge_count()).filter(|&e| edge_present[e]).collect();
                if live.is_empty() {
                    continue;
                }
                let e = live[rng.random_range(0..live.len())];
                edge_present[e] = false;
                ChurnKind::EdgeDown { edge: e }
            }
            1 => {
                let down: Vec<usize> = (0..g.edge_count()).filter(|&e| !edge_present[e]).collect();
                if down.is_empty() {
                    continue;
                }
                let e = down[rng.random_range(0..down.len())];
                edge_present[e] = true;
                ChurnKind::EdgeUp { edge: e }
            }
            2 => {
                let pool: Vec<usize> =
                    (0..n).filter(|&v| node_present[v] && !joined[v] && !left[v]).collect();
                if pool.is_empty() {
                    continue;
                }
                let v = pool[rng.random_range(0..pool.len())];
                node_present[v] = false;
                left[v] = true;
                churned[v] = true;
                ChurnKind::Leave { node: v }
            }
            _ => {
                let pool: Vec<usize> =
                    (0..n).filter(|&v| !node_present[v] && !joined[v] && !left[v]).collect();
                if pool.is_empty() {
                    continue;
                }
                let v = pool[rng.random_range(0..pool.len())];
                node_present[v] = true;
                joined[v] = true;
                churned[v] = true;
                ChurnKind::Join { node: v }
            }
        };
        events.push((round, kind));
    }
    for &v in &absent_nodes {
        churned[v] = true;
    }

    // A couple of crashes on untouched nodes.
    let mut crashes: Vec<(usize, usize)> = Vec::new();
    for _ in 0..2 {
        if !rng.random_bool(0.5) {
            continue;
        }
        let pool: Vec<usize> =
            (0..n).filter(|&v| !churned[v] && !crashes.iter().any(|&(c, _)| c == v)).collect();
        if pool.is_empty() {
            continue;
        }
        let v = pool[rng.random_range(0..pool.len())];
        crashes.push((v, 1 + rng.random_range(0..cfg.horizon.max(1))));
    }

    let loss = if rng.random_bool(0.5) { rng.random_range(0.0..0.1) } else { 0.0 };
    let corrupt = if cfg.max_corrupt > 0.0 && rng.random_bool(0.5) {
        rng.random_range(0.0..cfg.max_corrupt)
    } else {
        0.0
    };
    let mut case = ChaosCase {
        n,
        topology: cfg.topology.clone(),
        graph_seed,
        run_seed,
        loss,
        corrupt,
        delay: DelayModel::Unit,
        crashes,
        absent_nodes,
        events,
        kill: None,
    };
    if cfg.max_delay_bound > 0 {
        // Timing adversary: the delay draws come after every schedule
        // draw, so with the adversary off the stream (and therefore the
        // committed corpus) is unchanged.
        let b = cfg.max_delay_bound;
        case.delay = match rng.random_range(0..5u32) {
            0 => DelayModel::UniformRandom { max: 1 + rng.random_range(0..b) },
            1 => DelayModel::LinkSkew { spread: 1 + rng.random_range(0..b) },
            2 => DelayModel::Straggler {
                node: rng.random_range(0..n),
                slow: 1 + rng.random_range(0..b),
            },
            3 => DelayModel::StragglerRecovers {
                node: rng.random_range(0..n),
                slow: 1 + rng.random_range(0..b),
                until: 1 + rng.random_range(0..cfg.horizon as u64),
            },
            _ => DelayModel::Burst {
                period: 1 + rng.random_range(0..8u64),
                width: 1 + rng.random_range(0..3u64),
                extra: rng.random_range(0..b),
            },
        };
        if rng.random_bool(0.5) {
            // Half of the timed cases are quiet — every node live over
            // an honest lossless channel — so any suspicion the tuned
            // detector raises is a conviction of a slow-but-correct
            // node.
            case.loss = 0.0;
            case.corrupt = 0.0;
            case.crashes.clear();
            case.absent_nodes.clear();
            case.events.clear();
        }
    }
    if cfg.crash_restart {
        // The kill draw comes after every other draw, so with the
        // adversary off the stream (and the committed corpus) is
        // unchanged. The maintenance pipeline commits two boundaries
        // (Main, Maintained): kill after the first replays the tail,
        // kill after the second restores the finished state.
        case.kill = Some(1 + rng.random_range(0..2u64));
    }
    case
}

/// Samples `cfg.cases` random scenarios, returns the worst (lowest
/// ratio — an invariant violation or a false suspicion beats any
/// ratio) after greedy shrinking.
#[must_use]
pub fn search(cfg: &SearchCfg) -> (ChaosCase, ChaosOutcome) {
    let bug = |o: &ChaosOutcome| !o.invariant_ok || o.false_suspicion;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut worst: Option<(ChaosCase, ChaosOutcome)> = None;
    for _ in 0..cfg.cases {
        let case = random_case(cfg, &mut rng);
        let out = evaluate_with(&case, cfg.adaptive);
        let beats = match &worst {
            None => true,
            Some((_, best)) => {
                (bug(&out) && !bug(best)) || (bug(&out) == bug(best) && out.ratio < best.ratio)
            }
        };
        if beats {
            worst = Some((case, out));
        }
    }
    let (case, out) = worst.expect("cases > 0");
    let shrunk = shrink(&case, &out, cfg.adaptive);
    let shrunk_out = evaluate_with(&shrunk, cfg.adaptive);
    (shrunk, shrunk_out)
}

/// Greedy proptest-style shrink: repeatedly drop one event, crash or
/// the loss knob, keeping the removal whenever the schedule stays at
/// least as bad (ratio not above the original, invariant violation
/// preserved). Removals that break plan validity (e.g. an `EdgeUp`
/// whose `EdgeDown` was dropped) are skipped.
#[must_use]
pub fn shrink(case: &ChaosCase, baseline: &ChaosOutcome, adaptive: bool) -> ChaosCase {
    let evaluate = |c: &ChaosCase| evaluate_with(c, adaptive);
    let still_bad = |out: &ChaosOutcome| {
        if !baseline.invariant_ok {
            !out.invariant_ok
        } else if baseline.false_suspicion {
            out.false_suspicion
        } else {
            out.ratio <= baseline.ratio + 1e-9
        }
    };
    let valid = |c: &ChaosCase| {
        let g = c.graph();
        c.churn_plan().validate(&g).is_ok()
            && c.churn_plan().validate_against(&c.fault_plan()).is_ok()
    };
    let mut best = case.clone();
    loop {
        let mut improved = false;
        // Try dropping each event (last first, so dependent later
        // events keep their prerequisites as long as possible).
        for i in (0..best.events.len()).rev() {
            let mut cand = best.clone();
            cand.events.remove(i);
            if valid(&cand) && still_bad(&evaluate(&cand)) {
                best = cand;
                improved = true;
            }
        }
        for i in (0..best.crashes.len()).rev() {
            let mut cand = best.clone();
            cand.crashes.remove(i);
            if still_bad(&evaluate(&cand)) {
                best = cand;
                improved = true;
            }
        }
        if best.loss > 0.0 {
            let mut cand = best.clone();
            cand.loss = 0.0;
            if still_bad(&evaluate(&cand)) {
                best = cand;
                improved = true;
            }
        }
        if best.corrupt > 0.0 {
            let mut cand = best.clone();
            cand.corrupt = 0.0;
            if still_bad(&evaluate(&cand)) {
                best = cand;
                improved = true;
            }
        }
        for delay in shrink_delay(best.delay) {
            let mut cand = best.clone();
            cand.delay = delay;
            if still_bad(&evaluate(&cand)) {
                best = cand;
                improved = true;
                break;
            }
        }
        if best.kill.is_some() {
            // Drop the crash-restart leg: if the schedule is as bad
            // without the kill, the checkpoint round-trip was not the
            // cause and the reproducer should not carry it.
            let mut cand = best.clone();
            cand.kill = None;
            if still_bad(&evaluate(&cand)) {
                best = cand;
                improved = true;
            }
        }
        // Absent nodes whose Join was dropped can come back as present.
        for i in (0..best.absent_nodes.len()).rev() {
            let v = best.absent_nodes[i];
            if best.events.iter().any(|&(_, k)| k == (ChurnKind::Join { node: v })) {
                continue;
            }
            let mut cand = best.clone();
            cand.absent_nodes.remove(i);
            if valid(&cand) && still_bad(&evaluate(&cand)) {
                best = cand;
                improved = true;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Shrink candidates for a delay model: back to lockstep first, then
/// the dominant parameter halved.
fn shrink_delay(d: DelayModel) -> Vec<DelayModel> {
    let mut out = Vec::new();
    match d {
        DelayModel::Unit => {}
        DelayModel::UniformRandom { max } => {
            out.push(DelayModel::Unit);
            if max > 1 {
                out.push(DelayModel::UniformRandom { max: max / 2 });
            }
        }
        DelayModel::LinkSkew { spread } => {
            out.push(DelayModel::Unit);
            if spread > 1 {
                out.push(DelayModel::LinkSkew { spread: spread / 2 });
            }
        }
        DelayModel::Straggler { node, slow } => {
            out.push(DelayModel::Unit);
            if slow > 1 {
                out.push(DelayModel::Straggler { node, slow: slow / 2 });
            }
        }
        DelayModel::StragglerRecovers { node, slow, until } => {
            out.push(DelayModel::Unit);
            if slow > 1 {
                out.push(DelayModel::StragglerRecovers { node, slow: slow / 2, until });
            }
            if until > 1 {
                out.push(DelayModel::StragglerRecovers { node, slow, until: until / 2 });
            }
        }
        DelayModel::Burst { period, width, extra } => {
            out.push(DelayModel::Unit);
            if extra > 0 {
                out.push(DelayModel::Burst { period, width, extra: extra / 2 });
            }
        }
    }
    out
}

// --- adaptive-vs-static tournament --------------------------------------

/// A *drifting* fault schedule: conditions change mid-run, so any fixed
/// [`TransportCfg`] pays on one side of the drift — timers tuned for
/// the storm waste retransmissions in the quiet tail, timers tuned for
/// the tail convict honest peers during the storm. The closed-loop
/// controller should dominate every static arm on these.
#[derive(Debug, Clone)]
pub struct DriftSchedule {
    /// Schedule name (CSV key).
    pub name: &'static str,
    /// Nodes of the `G(n, 8/n)` instance.
    pub n: usize,
    /// Seed of the graph generator.
    pub graph_seed: u64,
    /// Seed of the pipeline run.
    pub run_seed: u64,
    /// The fault plan (typically squall-windowed).
    pub faults: FaultPlan,
    /// Timing model; anything but [`DelayModel::Unit`] moves the arm
    /// onto the asynchronous backend.
    pub delay: DelayModel,
    /// First round where the disturbance has passed — the tail-spend
    /// accounting window starts here.
    pub quiet_from: u64,
}

/// The committed tournament schedules: a loss squall that ends, a
/// straggler that recovers, and a corruption storm that ends.
#[must_use]
pub fn drift_schedules(n: usize) -> Vec<DriftSchedule> {
    vec![
        DriftSchedule {
            name: "burst-then-quiet",
            n,
            graph_seed: 0xB1A5,
            run_seed: 0x5EED,
            faults: FaultPlan::default().with_squall(Squall {
                from_round: 0,
                until_round: 24,
                loss: 0.35,
                corrupt: 0.0,
            }),
            delay: DelayModel::Unit,
            quiet_from: 25,
        },
        DriftSchedule {
            name: "straggler-recovers",
            n,
            graph_seed: 0x57A6,
            run_seed: 0x6EED,
            faults: FaultPlan::default(),
            delay: DelayModel::StragglerRecovers { node: 3, slow: 9, until: 30 },
            quiet_from: 30,
        },
        DriftSchedule {
            name: "corruption-storm",
            n,
            graph_seed: 0xC0BB,
            run_seed: 0x7EED,
            faults: FaultPlan::default().with_squall(Squall {
                from_round: 0,
                until_round: 20,
                loss: 0.0,
                corrupt: 0.3,
            }),
            delay: DelayModel::Unit,
            quiet_from: 21,
        },
    ]
}

/// What one tournament arm measured on one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmReport {
    /// Arm name (`adaptive` or `static-bN`).
    pub arm: String,
    /// Matching ratio vs a fresh Israeli–Itai run on the same graph.
    pub ratio: f64,
    /// Peers suspected dead across all pipeline phases.
    pub suspected: u64,
    /// Peers quarantined across all pipeline phases.
    pub quarantined: u64,
    /// Retransmissions across all pipeline phases.
    pub retransmissions: u64,
    /// Retransmissions sent at or after the schedule's `quiet_from`
    /// round (main run, from the telemetry stream) — the price of
    /// timers still tuned for a storm that has passed.
    pub tail_retx: u64,
    /// Engine rounds of the main run.
    pub rounds: u64,
}

/// Static arms of the tournament: the derivation ladder a lockstep
/// operator could have picked.
pub const TOURNAMENT_BOUNDS: [u64; 4] = [1, 2, 4, 8];

/// Runs one arm of the tournament: the self-healing pipeline (repair
/// on) under the schedule, with either a static transport or the
/// adaptive controller, a recording sink streaming the main run.
///
/// # Panics
/// Panics if the run fails — every tournament schedule must complete on
/// every arm.
#[must_use]
pub fn run_arm(
    schedule: &DriftSchedule,
    arm: &str,
    transport: Option<TransportCfg>,
    adaptive: Option<AdaptivePolicy>,
) -> ArmReport {
    let g = {
        let mut rng = StdRng::seed_from_u64(schedule.graph_seed);
        generators::gnp(schedule.n, 8.0 / schedule.n as f64, &mut rng)
    };
    let mut sim = SimConfig::local().seed(schedule.run_seed).max_rounds(500_000);
    if schedule.delay != DelayModel::Unit {
        sim = sim.backend(dam_congest::Backend::Async).delay(schedule.delay);
    }
    let sink = Arc::new(RecordingSink::new());
    let mut cfg = RuntimeConfig::new()
        .sim(sim)
        .faults(schedule.faults.clone())
        .repair(true)
        .stats_sink(SinkHandle::from(Arc::clone(&sink)));
    if let Some(p) = adaptive {
        cfg = cfg.adaptive(p);
    } else if let Some(t) = transport {
        cfg = cfg.transport(t);
    }
    let report = match run_mm(&IsraeliItai, &g, &cfg) {
        Ok(r) => r,
        Err(e) => panic!("tournament arm {arm} on {} must run: {e:?}", schedule.name),
    };
    report.matching.validate(&g).expect("tournament matching must be valid");

    let fresh = dam_core::israeli_itai::israeli_itai(&g, schedule.run_seed ^ 0xF5E5)
        .expect("fresh baseline")
        .matching
        .size();
    let size = report.matching.size();
    let ratio = if fresh == 0 { 1.0 } else { size as f64 / fresh as f64 };

    let phase_sum = |f: fn(&dam_congest::RunStats) -> u64| {
        f(&report.phase1)
            .saturating_add(report.repair.as_ref().map_or(0, f))
            .saturating_add(report.maintain.as_ref().map_or(0, f))
    };
    let tail_retx = sink
        .deltas()
        .iter()
        .filter(|s| s.round >= schedule.quiet_from)
        .map(|s| s.retransmissions)
        .sum();
    ArmReport {
        arm: arm.to_string(),
        ratio,
        suspected: phase_sum(|s| s.suspected),
        quarantined: phase_sum(|s| s.quarantined),
        retransmissions: phase_sum(|s| s.retransmissions),
        tail_retx,
        rounds: report.phase1.rounds,
    }
}

/// Runs the full tournament: on every schedule, the adaptive controller
/// (floor = delay-bound-1 derivation) against every static arm in
/// [`TOURNAMENT_BOUNDS`]. Returns `(schedule name, arms)` with the
/// adaptive arm first.
#[must_use]
pub fn run_tournament(schedules: &[DriftSchedule]) -> Vec<(String, Vec<ArmReport>)> {
    schedules
        .iter()
        .map(|s| {
            let mut arms =
                vec![run_arm(s, "adaptive", None, Some(AdaptivePolicy::for_delay_bound(1)))];
            for b in TOURNAMENT_BOUNDS {
                arms.push(run_arm(
                    s,
                    &format!("static-b{b}"),
                    Some(TransportCfg::for_delay_bound(b)),
                    None,
                ));
            }
            (s.name.to_string(), arms)
        })
        .collect()
}

// --- corpus text format -------------------------------------------------
//
// One case per line, whitespace-separated `key=value` tokens; lists are
// `;`-separated, the empty list is `-`. Lines starting with `#` and
// blank lines are ignored. Example:
//
//   case n=48 gseed=11 seed=7 loss=0.05 crashes=5@4;9@10 absent=3;17 \
//        events=2:edown:14;5:leave:8;9:join:3
//
// (No line continuations — the example is wrapped for readability only.)

fn render_kind(kind: ChurnKind) -> String {
    match kind {
        ChurnKind::EdgeUp { edge } => format!("eup:{edge}"),
        ChurnKind::EdgeDown { edge } => format!("edown:{edge}"),
        ChurnKind::Join { node } => format!("join:{node}"),
        ChurnKind::Leave { node } => format!("leave:{node}"),
    }
}

fn parse_kind(s: &str) -> Result<ChurnKind, String> {
    let (tag, arg) = s.split_once(':').ok_or_else(|| format!("bad event kind '{s}'"))?;
    let idx: usize = arg.parse().map_err(|_| format!("bad event index '{arg}'"))?;
    match tag {
        "eup" => Ok(ChurnKind::EdgeUp { edge: idx }),
        "edown" => Ok(ChurnKind::EdgeDown { edge: idx }),
        "join" => Ok(ChurnKind::Join { node: idx }),
        "leave" => Ok(ChurnKind::Leave { node: idx }),
        other => Err(format!("unknown event kind '{other}'")),
    }
}

/// Renders a delay model as the colon-spec the CLI's `--delay` flag
/// takes: `unit`, `uniform:M`, `skew:S`, `straggler:V:D`,
/// `recovers:V:D:U`, `burst:P:W:E`.
#[must_use]
pub fn render_delay(d: DelayModel) -> String {
    match d {
        DelayModel::Unit => "unit".to_string(),
        DelayModel::UniformRandom { max } => format!("uniform:{max}"),
        DelayModel::LinkSkew { spread } => format!("skew:{spread}"),
        DelayModel::Straggler { node, slow } => format!("straggler:{node}:{slow}"),
        DelayModel::StragglerRecovers { node, slow, until } => {
            format!("recovers:{node}:{slow}:{until}")
        }
        DelayModel::Burst { period, width, extra } => format!("burst:{period}:{width}:{extra}"),
    }
}

/// Parses a [`render_delay`] spec. One parser serves both the corpus
/// and the `dam-cli --delay` flag, so the two surfaces cannot drift.
///
/// # Errors
/// Describes the first malformed field.
pub fn parse_delay(s: &str) -> Result<DelayModel, String> {
    let mut parts = s.split(':');
    let kind = parts.next().unwrap_or_default();
    let mut num = |name: &str| -> Result<u64, String> {
        parts
            .next()
            .ok_or(format!("delay '{s}' is missing its {name}"))?
            .parse()
            .map_err(|_| format!("bad {name} in delay '{s}'"))
    };
    let model = match kind {
        "unit" => DelayModel::Unit,
        "uniform" => DelayModel::UniformRandom { max: num("max")? },
        "skew" => DelayModel::LinkSkew { spread: num("spread")? },
        "straggler" => {
            let node = usize::try_from(num("node")?).map_err(|_| format!("bad node in '{s}'"))?;
            DelayModel::Straggler { node, slow: num("slowdown")? }
        }
        "recovers" => {
            let node = usize::try_from(num("node")?).map_err(|_| format!("bad node in '{s}'"))?;
            DelayModel::StragglerRecovers { node, slow: num("slowdown")?, until: num("until")? }
        }
        "burst" => {
            DelayModel::Burst { period: num("period")?, width: num("width")?, extra: num("extra")? }
        }
        other => {
            return Err(format!(
                "unknown delay model '{other}' \
                 (unit|uniform:M|skew:S|straggler:V:D|recovers:V:D:U|burst:P:W:E)"
            ));
        }
    };
    if parts.next().is_some() {
        return Err(format!("trailing fields in delay '{s}'"));
    }
    Ok(model)
}

fn render_list<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
    if items.is_empty() {
        "-".to_string()
    } else {
        items.iter().map(f).collect::<Vec<_>>().join(";")
    }
}

fn parse_list<T, F: Fn(&str) -> Result<T, String>>(s: &str, f: F) -> Result<Vec<T>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(';').map(f).collect()
}

/// Renders one case as a single corpus line. The `corrupt=`, `delay=`,
/// `kill=` and `graph=` keys are only written when the channel actually
/// tampers / the schedule actually leaves lockstep / the process
/// actually dies / the instance is pinned to an implicit family (keeps
/// corpus lines from before those features byte-stable on a round
/// trip).
#[must_use]
pub fn render_case(case: &ChaosCase) -> String {
    let corrupt =
        if case.corrupt > 0.0 { format!(" corrupt={}", case.corrupt) } else { String::new() };
    let delay = if case.delay == DelayModel::Unit {
        String::new()
    } else {
        format!(" delay={}", render_delay(case.delay))
    };
    let kill = match case.kill {
        Some(k) => format!(" kill={k}"),
        None => String::new(),
    };
    let graph = match &case.topology {
        Some(spec) => format!(" graph={spec}"),
        None => String::new(),
    };
    format!(
        "case n={} gseed={} seed={} loss={}{corrupt}{delay}{kill}{graph} crashes={} absent={} events={}",
        case.n,
        case.graph_seed,
        case.run_seed,
        case.loss,
        render_list(&case.crashes, |&(v, r)| format!("{v}@{r}")),
        render_list(&case.absent_nodes, usize::to_string),
        render_list(&case.events, |&(r, k)| format!("{r}:{}", render_kind(k))),
    )
}

/// Parses one corpus line (must start with `case`).
///
/// # Errors
/// Returns a description of the first malformed token.
pub fn parse_case(line: &str) -> Result<ChaosCase, String> {
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("case") {
        return Err(format!("expected 'case ...', got '{line}'"));
    }
    let mut case = ChaosCase {
        n: 0,
        topology: None,
        graph_seed: 0,
        run_seed: 0,
        loss: 0.0,
        corrupt: 0.0,
        delay: DelayModel::Unit,
        crashes: Vec::new(),
        absent_nodes: Vec::new(),
        events: Vec::new(),
        kill: None,
    };
    for tok in tokens {
        let (key, value) = tok.split_once('=').ok_or_else(|| format!("bad token '{tok}'"))?;
        match key {
            "n" => case.n = value.parse().map_err(|_| format!("bad n '{value}'"))?,
            "gseed" => {
                case.graph_seed = value.parse().map_err(|_| format!("bad gseed '{value}'"))?;
            }
            "seed" => case.run_seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?,
            "loss" => case.loss = value.parse().map_err(|_| format!("bad loss '{value}'"))?,
            "corrupt" => {
                case.corrupt = value.parse().map_err(|_| format!("bad corrupt '{value}'"))?;
            }
            "delay" => case.delay = parse_delay(value)?,
            "graph" => {
                // Same grammar as `dam-cli run --graph`; validating at
                // parse time keeps `ChaosCase::graph` infallible.
                ImplicitTopology::parse(value)?;
                case.topology = Some(value.to_string());
            }
            "kill" => {
                let k: u64 = value.parse().map_err(|_| format!("bad kill '{value}'"))?;
                if k == 0 {
                    return Err("kill must be >= 1 (the first boundary)".to_string());
                }
                case.kill = Some(k);
            }
            "crashes" => {
                case.crashes = parse_list(value, |s| {
                    let (v, r) = s.split_once('@').ok_or_else(|| format!("bad crash '{s}'"))?;
                    Ok((
                        v.parse().map_err(|_| format!("bad crash node '{v}'"))?,
                        r.parse().map_err(|_| format!("bad crash round '{r}'"))?,
                    ))
                })?;
            }
            "absent" => {
                case.absent_nodes =
                    parse_list(value, |s| s.parse().map_err(|_| format!("bad absent node '{s}'")))?;
            }
            "events" => {
                case.events = parse_list(value, |s| {
                    let (r, k) = s.split_once(':').ok_or_else(|| format!("bad event '{s}'"))?;
                    Ok((r.parse().map_err(|_| format!("bad event round '{r}'"))?, parse_kind(k)?))
                })?;
            }
            other => return Err(format!("unknown key '{other}'")),
        }
    }
    if case.n == 0 {
        return Err("case is missing n".to_string());
    }
    if let Some(spec) = &case.topology {
        let nodes = ImplicitTopology::parse(spec)?.node_count();
        if nodes != case.n {
            return Err(format!("graph={spec} has {nodes} nodes but n={}", case.n));
        }
    }
    Ok(case)
}

/// Renders a whole corpus (header comment + one line per case).
#[must_use]
pub fn render_corpus(cases: &[ChaosCase]) -> String {
    let mut out = String::from(
        "# chaos regression corpus — worst churn+fault schedules found by\n\
         # `cargo run -p dam-bench --bin chaos`; replayed by\n\
         # `cargo test -p dam-bench --test chaos_regression`.\n",
    );
    for c in cases {
        out.push_str(&render_case(c));
        out.push('\n');
    }
    out
}

/// Parses a corpus file: `case` lines, `#` comments, blank lines.
///
/// # Errors
/// Reports the first malformed line with its number.
pub fn parse_corpus(text: &str) -> Result<Vec<ChaosCase>, String> {
    let mut cases = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        cases.push(parse_case(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_case() -> ChaosCase {
        ChaosCase {
            n: 48,
            topology: None,
            graph_seed: 11,
            run_seed: 7,
            loss: 0.05,
            corrupt: 0.02,
            delay: DelayModel::Unit,
            crashes: vec![(5, 4), (9, 10)],
            absent_nodes: vec![3],
            events: vec![
                (2, ChurnKind::EdgeDown { edge: 14 }),
                (5, ChurnKind::Leave { node: 8 }),
                (9, ChurnKind::Join { node: 3 }),
                (12, ChurnKind::EdgeUp { edge: 14 }),
            ],
            kill: None,
        }
    }

    #[test]
    fn corpus_roundtrips() {
        let cases = vec![
            sample_case(),
            ChaosCase {
                crashes: Vec::new(),
                absent_nodes: Vec::new(),
                events: Vec::new(),
                loss: 0.0,
                corrupt: 0.0,
                ..sample_case()
            },
        ];
        let text = render_corpus(&cases);
        let back = parse_corpus(&text).unwrap();
        assert_eq!(back, cases);
        // An honest channel renders without the corrupt key, so lines
        // committed before the corruption fault model stay parseable.
        assert!(!render_case(&cases[1]).contains("corrupt="));
        assert!(render_case(&cases[0]).contains("corrupt=0.02"));
    }

    #[test]
    fn delay_specs_roundtrip_and_lockstep_stays_implicit() {
        let models = [
            DelayModel::Unit,
            DelayModel::UniformRandom { max: 7 },
            DelayModel::LinkSkew { spread: 5 },
            DelayModel::Straggler { node: 3, slow: 9 },
            DelayModel::StragglerRecovers { node: 3, slow: 9, until: 30 },
            DelayModel::Burst { period: 4, width: 2, extra: 6 },
        ];
        for m in models {
            assert_eq!(parse_delay(&render_delay(m)).unwrap(), m);
        }
        let timed = ChaosCase { delay: DelayModel::LinkSkew { spread: 5 }, ..sample_case() };
        let line = render_case(&timed);
        assert!(line.contains("delay=skew:5"));
        assert_eq!(parse_case(&line).unwrap(), timed);
        // A lockstep case renders without the key, so corpus lines
        // committed before the asynchronous backend stay byte-stable.
        assert!(!render_case(&sample_case()).contains("delay="));
        assert!(parse_delay("warp:1").is_err());
        assert!(parse_delay("uniform").is_err());
        assert!(parse_delay("burst:1:2:3:4").is_err());
        assert!(parse_delay("recovers:3:9").is_err(), "recovers needs its until round");
    }

    #[test]
    fn tournament_arms_are_deterministic_and_comparable() {
        // A scaled-down schedule keeps the unit test fast; the full
        // n = 64 tournament is E19.
        let schedule = DriftSchedule {
            name: "mini-burst",
            n: 20,
            graph_seed: 5,
            run_seed: 5,
            faults: FaultPlan::default().with_squall(Squall {
                from_round: 0,
                until_round: 10,
                loss: 0.3,
                corrupt: 0.0,
            }),
            delay: DelayModel::Unit,
            quiet_from: 11,
        };
        let adaptive =
            run_arm(&schedule, "adaptive", None, Some(AdaptivePolicy::for_delay_bound(1)));
        assert_eq!(
            adaptive,
            run_arm(&schedule, "adaptive", None, Some(AdaptivePolicy::for_delay_bound(1))),
            "arms must be deterministic"
        );
        let fixed = run_arm(&schedule, "static-b1", Some(TransportCfg::for_delay_bound(1)), None);
        assert!(adaptive.ratio >= 0.5 && fixed.ratio >= 0.5);
        assert!(adaptive.rounds > 0 && fixed.rounds > 0);
        assert!(adaptive.tail_retx <= adaptive.retransmissions);
    }

    #[test]
    fn quiet_timing_cases_run_async_without_false_suspicion() {
        let case = ChaosCase {
            n: 24,
            topology: None,
            graph_seed: 5,
            run_seed: 5,
            loss: 0.0,
            corrupt: 0.0,
            delay: DelayModel::Straggler { node: 3, slow: 9 },
            crashes: Vec::new(),
            absent_nodes: Vec::new(),
            events: Vec::new(),
            kill: None,
        };
        assert!(case.quiet());
        let out = evaluate(&case);
        assert_eq!(out, evaluate(&case), "evaluation must be deterministic");
        assert!(out.invariant_ok);
        assert_eq!(out.suspected, 0, "tuned timeouts must clear a slow-but-correct node");
        assert!(!out.false_suspicion);
        assert!(out.ratio >= 0.9);
    }

    #[test]
    fn timing_adversary_draws_after_the_schedule_stream() {
        let base = SearchCfg { n: 24, cases: 2, horizon: 24, ..SearchCfg::default() };
        let timed = SearchCfg { max_delay_bound: 9, ..base.clone() };
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let plain = random_case(&base, &mut a);
        let spiced = random_case(&timed, &mut b);
        // With the adversary off nothing changes (the committed corpus
        // replays the pre-async stream)...
        assert_eq!(plain.delay, DelayModel::Unit);
        // ...and with it on, the schedule prefix of the draw is the
        // same — only the delay (and the quiet coin) comes on top.
        assert_eq!(plain.graph_seed, spiced.graph_seed);
        assert_eq!(plain.run_seed, spiced.run_seed);
        assert_ne!(spiced.delay, DelayModel::Unit);
        assert!(spiced.delay.bound() <= 9);
    }

    #[test]
    fn kill_rounds_roundtrip_and_uninterrupted_stays_implicit() {
        let killed = ChaosCase { kill: Some(1), ..sample_case() };
        let line = render_case(&killed);
        assert!(line.contains("kill=1"));
        assert_eq!(parse_case(&line).unwrap(), killed);
        // An uninterrupted case renders without the key, so corpus
        // lines committed before the checkpoint layer stay byte-stable.
        assert!(!render_case(&sample_case()).contains("kill="));
        assert!(parse_case("case n=4 kill=0").is_err(), "boundary 0 never commits");
        assert!(parse_case("case n=4 kill=soon").is_err());
    }

    #[test]
    fn crash_restart_cases_recover_and_stay_deterministic() {
        for kill in [1, 2] {
            let case = ChaosCase { kill: Some(kill), ..sample_case() };
            let out = evaluate(&case);
            assert_eq!(out, evaluate(&case), "kill={kill}: evaluation must be deterministic");
            assert!(out.invariant_ok, "kill={kill}: restored run broke the invariant: {out:?}");
            assert!(out.ratio >= 0.5, "kill={kill}: {out:?}");
        }
    }

    #[test]
    fn crash_restart_adversary_draws_after_the_schedule_stream() {
        let base = SearchCfg { n: 24, cases: 2, horizon: 24, ..SearchCfg::default() };
        let armed = SearchCfg { crash_restart: true, ..base.clone() };
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let plain = random_case(&base, &mut a);
        let killed = random_case(&armed, &mut b);
        assert_eq!(plain.kill, None);
        assert_eq!(plain.events, killed.events, "the schedule prefix must be unchanged");
        assert_eq!(plain.crashes, killed.crashes);
        let k = killed.kill.expect("armed searches always schedule a kill");
        assert!((1..=2).contains(&k));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_case("not a case").is_err());
        assert!(parse_case("case n=oops").is_err());
        assert!(parse_case("case n=4 events=1:warp:3").is_err());
        assert!(parse_corpus(
            "# fine\ncase n=4 gseed=1 seed=1 loss=0 crashes=- absent=- events=-\nbroken"
        )
        .is_err());
    }

    #[test]
    fn random_cases_are_valid_and_evaluation_is_deterministic() {
        let cfg = SearchCfg { n: 24, cases: 2, horizon: 24, ..SearchCfg::default() };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..4 {
            let case = random_case(&cfg, &mut rng);
            let g = case.graph();
            case.churn_plan().validate(&g).expect("generated plan must be valid");
            case.churn_plan().validate_against(&case.fault_plan()).expect("disjoint from crashes");
            let a = evaluate(&case);
            let b = evaluate(&case);
            assert_eq!(a, b, "evaluation must be deterministic");
            assert!(a.invariant_ok, "pipeline must keep the invariant");
            assert!(a.ratio >= 0.5, "two maximal matchings are within a factor 2");
        }
    }

    #[test]
    fn shrink_only_removes_and_stays_as_bad() {
        let cfg = SearchCfg { n: 24, cases: 4, horizon: 24, seed: 9, ..SearchCfg::default() };
        let (case, out) = search(&cfg);
        // The searched-and-shrunk case still evaluates to the reported
        // outcome (search returns post-shrink numbers).
        assert_eq!(evaluate(&case), out);
        assert!(out.invariant_ok);
    }
}
