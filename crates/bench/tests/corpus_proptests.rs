//! Property-based round-trip tests for the chaos corpus text format.
//!
//! The corpus (`tests/corpus/chaos.txt`) is the only durable artifact
//! of the chaos search, and two independent writers produce it (the
//! `chaos` binary and hand edits), so `render → parse` must be the
//! identity on every representable case — not just the ones the search
//! happens to emit. Generators here deliberately cover the corners the
//! corpus rarely holds: zero-probability knobs that elide their token,
//! every delay-model variant, empty and non-empty schedules.

use dam_bench::adversary::{
    parse_case, parse_corpus, parse_delay, render_case, render_corpus, render_delay, ChaosCase,
};
use dam_congest::{ChurnKind, DelayModel};
use proptest::prelude::*;
use proptest::{collection, Strategy};

/// Uniform over all six delay-model variants (the vendored proptest
/// stand-in has no `prop_oneof`, so a selector byte picks the arm).
fn arb_delay() -> impl Strategy<Value = DelayModel> {
    ((0u8..6, 0usize..64, 1u64..50), (0u64..200, 1u64..30, 1u64..30)).prop_map(
        |((pick, node, stretch), (until, period, width))| match pick {
            0 => DelayModel::Unit,
            1 => DelayModel::UniformRandom { max: stretch },
            2 => DelayModel::LinkSkew { spread: stretch },
            3 => DelayModel::Straggler { node, slow: stretch },
            4 => DelayModel::StragglerRecovers { node, slow: stretch, until },
            _ => DelayModel::Burst { period, width, extra: stretch },
        },
    )
}

/// Uniform over the four churn-event kinds.
fn arb_kind() -> impl Strategy<Value = ChurnKind> {
    (0u8..4, 0usize..64, 0usize..128).prop_map(|(pick, node, edge)| match pick {
        0 => ChurnKind::Leave { node },
        1 => ChurnKind::Join { node },
        2 => ChurnKind::EdgeDown { edge },
        _ => ChurnKind::EdgeUp { edge },
    })
}

/// A structurally arbitrary corpus case. (Not necessarily *runnable* —
/// the format must round-trip schedules the search would reject, e.g.
/// hand-written drafts.)
fn arb_case() -> impl Strategy<Value = ChaosCase> {
    (
        (1usize..200, any::<u64>(), any::<u64>(), 0.0f64..1.0, 0.0f64..1.0),
        (
            arb_delay(),
            // `0` stands for the uninterrupted case (the rendered key
            // only carries positive kill rounds).
            (0u64..8).prop_map(|k| (k > 0).then_some(k)),
            collection::vec((0usize..200, 0usize..100), 0..6),
            collection::vec(0usize..200, 0..6),
            collection::vec((0usize..100, arb_kind()), 0..8),
        ),
    )
        .prop_map(
            |(
                (n, graph_seed, run_seed, loss, corrupt),
                (delay, kill, crashes, absent_nodes, events),
            )| {
                ChaosCase {
                    n,
                    topology: None,
                    graph_seed,
                    run_seed,
                    loss,
                    corrupt,
                    delay,
                    crashes,
                    kill,
                    absent_nodes,
                    events,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn delay_specs_round_trip(delay in arb_delay()) {
        let rendered = render_delay(delay);
        let back = parse_delay(&rendered).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, delay, "spec {} reparsed as {:?}", rendered, back);
    }

    #[test]
    fn corpus_lines_round_trip(case in arb_case()) {
        let line = render_case(&case);
        let back = parse_case(&line).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, case, "line was {}", line);
    }

    #[test]
    fn whole_corpora_round_trip(cases in collection::vec(arb_case(), 0..5)) {
        let text = render_corpus(&cases);
        let back = parse_corpus(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, cases);
    }

    #[test]
    fn parse_never_panics_on_noise(bytes in collection::vec(any::<u8>(), 0..80)) {
        // Arbitrary garbage must come back as Err (or, for a blank
        // corpus, an empty list) — never a panic.
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_case(&line);
        let _ = parse_delay(&line);
        let _ = parse_corpus(&line);
    }

    #[test]
    fn a_parsed_line_renders_canonically(case in arb_case()) {
        // render∘parse∘render is a fixpoint: the canonical spelling of
        // a case survives a round trip unchanged, so corpus rewrites
        // (dedup, merge) never churn the committed file.
        let line = render_case(&case);
        let reparsed = parse_case(&line).map_err(TestCaseError::fail)?;
        prop_assert_eq!(render_case(&reparsed), line);
    }
}
