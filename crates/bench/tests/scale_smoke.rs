//! Scale-regression smoke against the committed `results/BENCH_e22.json`
//! (million-node implicit-topology baseline).
//!
//! Plain `cargo test` checks the committed artifact's *shape* and its
//! internal consistency (specs parse, node/edge counts match, twins
//! were bit-identical, the memory claim is recorded) but never wall
//! clock. With `CI_SMOKE=1` (CI's `scale-smoke` job, release build) a
//! fresh smoke collection re-runs the n = 10⁵ sweep and the twin
//! checks, asserts the peak-RSS budget, and pins the deterministic
//! counters (rounds, messages, matching size) against the committed
//! figures bit-exactly.

use std::fs;
use std::path::PathBuf;

use dam_bench::scale::{ScaleBaseline, RSS_BUDGET_KB, SCALE_WORKLOAD, SPECS_1E6};
use dam_graph::{ImplicitTopology, Topology};

fn committed() -> ScaleBaseline {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_e22.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    ScaleBaseline::from_json(&text).expect("committed scale baseline must parse")
}

/// Always runs: the committed artifact must parse, describe this
/// workload, and be internally consistent — every record's spec parses
/// and agrees with the recorded node/edge counts, every run made
/// progress, and the twin check held when the artifact was collected.
#[test]
fn committed_scale_baseline_is_well_formed() {
    let b = committed();
    assert_eq!(b.workload, SCALE_WORKLOAD);
    assert!(!b.ci_smoke, "the committed artifact must be a full (n = 1e6) collection");
    assert_eq!(b.rss_budget_kb, RSS_BUDGET_KB, "artifact and code disagree on the budget");
    assert!(b.twins_identical, "implicit topologies diverged from their CSR twins");
    assert!(!b.records.is_empty() && !b.sweep.is_empty());
    for r in b.records.iter().chain(&b.sweep) {
        let topo = ImplicitTopology::parse(&r.spec)
            .unwrap_or_else(|e| panic!("record spec {:?} must parse: {e}", r.spec));
        assert_eq!(topo.node_count(), r.n, "{}: node count drifted", r.spec);
        assert_eq!(topo.edge_count(), r.m, "{}: edge count drifted", r.spec);
        assert!(r.rounds > 0 && r.messages > 0 && r.matched > 0, "{}: no progress", r.spec);
        assert!(r.wall_ms > 0.0, "{}: timing must be positive", r.spec);
    }
}

/// Always runs: the headline claim — Israeli–Itai completed at
/// n = 10⁶ on every implicit family, inside container memory (under
/// 2 GB peak RSS for the whole collection).
#[test]
fn committed_baseline_covers_a_million_nodes_in_memory() {
    let b = committed();
    for spec in SPECS_1E6 {
        let r = b
            .records
            .iter()
            .find(|r| r.spec == *spec)
            .unwrap_or_else(|| panic!("committed artifact is missing the {spec} record"));
        assert_eq!(r.n, 1_000_000);
        assert!(r.matched > 400_000, "{spec}: a maximal matching on n = 1e6 is large");
    }
    assert!(b.peak_rss_kb > 0, "peak RSS must have been measured");
    assert!(
        b.peak_rss_kb < 2_000_000,
        "the full collection must fit container memory, peaked at {} kB",
        b.peak_rss_kb
    );
}

/// `CI_SMOKE=1` only: a fresh smoke collection stays under the RSS
/// budget, keeps the twins bit-identical, and reproduces the committed
/// deterministic counters of every n = 10⁵ record bit-exactly.
#[test]
fn smoke_collection_reproduces_committed_counters_under_budget() {
    if std::env::var_os("CI_SMOKE").is_none() {
        eprintln!("skipped: set CI_SMOKE=1 to enable the scale smoke collection");
        return;
    }
    let b = committed();
    let now = ScaleBaseline::collect(true, 1);
    assert!(now.twins_identical, "implicit topologies diverged from their CSR twins");
    assert!(
        now.peak_rss_kb <= now.rss_budget_kb,
        "smoke collection peaked at {} kB, budget {} kB",
        now.peak_rss_kb,
        now.rss_budget_kb
    );
    for r in &now.records {
        let committed_r = b
            .records
            .iter()
            .find(|c| c.spec == r.spec && c.threads == r.threads)
            .unwrap_or_else(|| panic!("committed artifact is missing the {} record", r.spec));
        assert_eq!(r.rounds, committed_r.rounds, "{}: round count drifted", r.spec);
        assert_eq!(r.messages, committed_r.messages, "{}: message count drifted", r.spec);
        assert_eq!(r.matched, committed_r.matched, "{}: matching size drifted", r.spec);
    }
}
