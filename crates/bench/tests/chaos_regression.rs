//! Replays the committed chaos corpus — the worst churn+fault schedules
//! the adversarial search (`dam_bench::adversary`, `chaos` binary) has
//! found so far — as a plain `cargo test`.
//!
//! Every corpus case must (a) run to completion, (b) keep the
//! maintenance invariant (valid + maximal matching on the final
//! topology), (c) stay within the factor-2 bound any maximal matching
//! satisfies, and (d) evaluate bit-identically on repetition. A case
//! that stops reproducing cleanly is a regression in the runtime, not
//! in the corpus.

use dam_bench::adversary::{evaluate, parse_corpus, ChaosCase};
use dam_congest::DelayModel;

const CORPUS: &str = include_str!("corpus/chaos.txt");

#[test]
fn corpus_parses() {
    let cases = parse_corpus(CORPUS).expect("committed corpus must parse");
    assert!(!cases.is_empty(), "corpus must not be empty");
}

#[test]
fn corpus_replays_cleanly() {
    for case in parse_corpus(CORPUS).expect("corpus parses") {
        let out = evaluate(&case);
        assert!(out.invariant_ok, "invariant violated replaying corpus case: {case:?} -> {out:?}");
        assert!(
            out.ratio >= 0.5,
            "two maximal matchings must be within a factor 2: {case:?} -> {out:?}"
        );
    }
}

#[test]
fn corpus_exercises_corruption() {
    // At least one committed schedule must tamper with frames in
    // transit, so the replay above keeps covering the corruption fault
    // model end to end (transport rejection + maintenance repair).
    let cases = parse_corpus(CORPUS).expect("corpus parses");
    assert!(cases.iter().any(|c| c.corrupt > 0.0), "corpus lost its corrupted-channel schedules");
}

#[test]
fn corpus_exercises_adversarial_timing() {
    // At least one committed schedule must leave lockstep, so the
    // replay above keeps covering the asynchronous backend (derived
    // timeouts, synchronizer markers, virtual-time delivery) end to
    // end.
    let cases = parse_corpus(CORPUS).expect("corpus parses");
    assert!(
        cases.iter().any(|c| c.delay != DelayModel::Unit),
        "corpus lost its timing-adversary schedules"
    );
}

#[test]
fn corpus_exercises_crash_restart() {
    // At least one committed schedule must carry a kill round, so the
    // replay above keeps covering the durability path end to end:
    // checkpoint, torn-commit process kill, degraded restore, and the
    // chaos invariants on the *recovered* matching. The first such
    // entry is the schedule that once slipped a crash-torn register
    // claim past a restore from a repair-less boundary.
    let cases = parse_corpus(CORPUS).expect("corpus parses");
    assert!(cases.iter().any(|c| c.kill.is_some()), "corpus lost its crash-restart schedules");
}

#[test]
fn quieted_timing_schedules_raise_no_false_suspicion() {
    // Strip every timed schedule down to pure timing — all nodes live
    // over an honest lossless channel, only the delay model left. With
    // the transport's timeouts derived from the declared delay bound
    // the failure detector must not convict a single slow-but-correct
    // node; one suspicion here is the false-positive bug the timing
    // adversary hunts.
    for case in parse_corpus(CORPUS).expect("corpus parses") {
        if case.delay == DelayModel::Unit {
            continue;
        }
        let quiet = ChaosCase {
            loss: 0.0,
            corrupt: 0.0,
            crashes: Vec::new(),
            absent_nodes: Vec::new(),
            events: Vec::new(),
            ..case
        };
        assert!(quiet.quiet());
        let out = evaluate(&quiet);
        assert!(out.invariant_ok, "invariant violated on quieted case: {quiet:?} -> {out:?}");
        assert_eq!(
            out.suspected, 0,
            "false suspicion of a slow-but-correct node: {quiet:?} -> {out:?}"
        );
        assert!(!out.false_suspicion);
    }
}

#[test]
fn corpus_evaluation_is_deterministic() {
    for case in parse_corpus(CORPUS).expect("corpus parses") {
        assert_eq!(evaluate(&case), evaluate(&case), "case must be bit-deterministic: {case:?}");
    }
}
