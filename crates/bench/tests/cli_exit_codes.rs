//! The exit-status contract of **every** `dam-cli` subcommand, pinned:
//!
//! `0` — success (certified / nothing detected); `1` — internal or
//! input error; `2` — usage error; `3` — corruption detected (and
//! repaired). Scripts branch on these codes, so any drift is an API
//! break.
//!
//! The second half is the config-drift guard's CLI leg: every knob of
//! [`dam_core::runtime::RuntimeConfig`] declares the flag that reaches
//! it (`RuntimeConfig::KNOBS`), and this suite asserts each of those
//! flags is really spelled out in the usage text — so a new runtime
//! knob cannot land without a CLI surface.

use std::path::PathBuf;
use std::process::{Command, Output};

use dam_core::checkpoint::{inject, Damage};
use dam_core::runtime::RuntimeConfig;

fn dam_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dam-cli")).args(args).output().expect("dam-cli runs")
}

fn graph_file() -> String {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("exit_codes_cli.txt");
    let gen = dam_cli(&["gen", "gnp", "24", "0.2", "--seed", "5"]);
    assert!(gen.status.success(), "gen must succeed");
    std::fs::write(&path, &gen.stdout).expect("write graph");
    path.to_string_lossy().into_owned()
}

fn code(args: &[&str]) -> Option<i32> {
    dam_cli(args).status.code()
}

#[test]
fn global_dispatch_follows_the_contract() {
    assert_eq!(code(&[]), Some(2), "no subcommand is a usage error");
    assert_eq!(code(&["frobnicate"]), Some(2), "an unknown subcommand is a usage error");
}

#[test]
fn match_follows_the_contract() {
    let g = graph_file();
    assert_eq!(code(&["match", &g]), Some(0), "a plain match succeeds");
    assert_eq!(code(&["match", &g, "ii", "--json"]), Some(0), "JSON output succeeds");
    assert_eq!(code(&["match"]), Some(2), "a missing graph is a usage error");
    assert_eq!(code(&["match", &g, "no-such-algo"]), Some(2), "an unknown algo is a usage error");
    assert_eq!(code(&["match", "/no/such/file.txt"]), Some(1), "an unreadable graph is an error");
}

#[test]
fn run_follows_the_contract() {
    let g = graph_file();
    assert_eq!(code(&["run", &g]), Some(0), "a bare runtime run succeeds");
    assert_eq!(
        code(&["run", &g, "--loss", "0.05", "--repair", "--maintain", "--json"]),
        Some(0),
        "composed layers without corruption succeed"
    );
    assert_eq!(
        code(&["run", &g, "--liars", "1,3", "--certify", "--repair"]),
        Some(3),
        "a detected-and-repaired run exits 3"
    );
    assert_eq!(
        code(&["run", &g, "--backend", "async", "--delay", "skew:4", "--patience", "8"]),
        Some(0),
        "the asynchronous backend under an adversarial delay model succeeds"
    );
    assert_eq!(
        code(&[
            "run",
            &g,
            "--backend",
            "async",
            "--delay",
            "straggler:3:9",
            "--loss",
            "0.05",
            "--repair"
        ]),
        Some(0),
        "async composes with the fault and repair layers"
    );
    assert_eq!(code(&["run"]), Some(2), "a missing graph is a usage error");
    assert_eq!(code(&["run", &g, "--backend", "warp"]), Some(2), "a bad backend is a usage error");
    assert_eq!(
        code(&["run", &g, "--delay", "bogus:1"]),
        Some(2),
        "a bad delay model is a usage error"
    );
    assert_eq!(
        code(&["run", &g, "--delay", "uniform"]),
        Some(2),
        "a delay model missing its parameter is a usage error"
    );
    assert_eq!(code(&["run", &g, "--loss", "oops"]), Some(2), "a bad probability is a usage error");
    assert_eq!(
        code(&["run", &g, "--churn", "warp:1@2"]),
        Some(2),
        "a bad churn kind is a usage error"
    );
    assert_eq!(code(&["run", "/no/such/file.txt"]), Some(1), "an unreadable graph is an error");
    assert_eq!(
        code(&["run", &g, "--liars", "1", "--certify"]),
        Some(1),
        "detection without a repair layer cannot re-certify: that is an error"
    );
}

/// The portfolio selector: every registered algorithm runs through the
/// same pipeline, a non-bipartite input to the bipartite driver is a
/// runtime error, and an unknown or malformed selector is a usage
/// error.
#[test]
fn run_algo_follows_the_contract() {
    let g = graph_file();
    assert_eq!(code(&["run", &g, "--algo", "ii"]), Some(0), "the default selector, spelled out");
    assert_eq!(code(&["run", &g, "--algo", "luby"]), Some(0), "the Luby driver runs");
    assert_eq!(code(&["run", &g, "--algo", "weighted"]), Some(0), "the weighted driver runs");
    assert_eq!(
        code(&["run", &g, "--algo", "luby", "--loss", "0.05", "--repair", "--maintain"]),
        Some(0),
        "a portfolio algorithm composes with the hardening layers"
    );
    assert_eq!(
        code(&["run", &g, "--algo", "bipartite:2"]),
        Some(1),
        "the bipartite driver on a non-bipartite graph is a runtime error"
    );
    assert_eq!(code(&["run", &g, "--algo", "warp"]), Some(2), "an unknown algo is a usage error");
    assert_eq!(
        code(&["run", &g, "--algo", "bipartite:zero"]),
        Some(2),
        "a malformed k is a usage error"
    );
    assert_eq!(code(&["run", &g, "--algo", "bipartite:1"]), Some(2), "k < 2 is a usage error");

    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("exit_codes_bipartite.txt");
    let gen = dam_cli(&["gen", "bipartite", "20", "0.3", "--seed", "5"]);
    assert!(gen.status.success(), "bipartite gen must succeed");
    std::fs::write(&path, &gen.stdout).expect("write bipartite graph");
    let b = path.to_string_lossy().into_owned();
    assert_eq!(
        code(&["run", &b, "--algo", "bipartite:2"]),
        Some(0),
        "the bipartite driver runs on a bipartite graph"
    );
    assert_eq!(
        code(&["run", &b, "--algo", "bipartite:3", "--certify", "--repair", "--liars", "1"]),
        Some(3),
        "the bipartite driver supports the certification round-trip"
    );
}

#[test]
fn adaptive_and_stats_out_follow_the_contract() {
    let g = graph_file();
    assert_eq!(
        code(&["run", &g, "--adaptive", "--loss", "0.1", "--repair"]),
        Some(0),
        "the adaptive transport composes with the fault and repair layers"
    );
    assert_eq!(
        code(&["run", &g, "--adaptive", "--no-transport"]),
        Some(2),
        "the controller without a transport layer to tune is a usage error"
    );

    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let csv = dir.join("exit_codes_stats.csv");
    let json = dir.join("exit_codes_stats.json");
    assert_eq!(
        code(&["run", &g, "--stats-out", &csv.to_string_lossy()]),
        Some(0),
        "a run exporting telemetry succeeds"
    );
    let body = std::fs::read_to_string(&csv).expect("stats CSV written");
    assert!(
        body.starts_with("run,round,messages,"),
        "the export is the telemetry CSV schema, got: {}",
        body.lines().next().unwrap_or_default()
    );
    assert!(body.lines().count() > 2, "one sample row per engine round");
    assert_eq!(
        code(&["run", &g, "--stats-out", &json.to_string_lossy()]),
        Some(0),
        "a .json extension exports JSON"
    );
    let body = std::fs::read_to_string(&json).expect("stats JSON written");
    assert!(body.trim_start().starts_with('['), "JSON export is an array of samples");
    assert_eq!(
        code(&["run", &g, "--stats-out", "/no/such/dir/stats.csv"]),
        Some(1),
        "an unwritable stats path is a runtime error, after the run"
    );
}

/// The checkpoint/restore leg of the exit contract: `0` a clean
/// resume, `3` damage detected but degraded-recovered, `1`
/// unrecoverable (nothing to restore, or a foreign snapshot), `2` a
/// checkpoint flag that cannot do anything.
#[test]
fn checkpoint_restore_follows_the_contract() {
    let g = graph_file();
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("exit_codes_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_string_lossy().into_owned();

    assert_eq!(
        code(&["run", &g, "--repair", "--maintain", "--checkpoint-out", &d]),
        Some(0),
        "a checkpointing run succeeds like a plain one"
    );
    assert_eq!(
        code(&["run", &g, "--repair", "--maintain", "--restore", &d]),
        Some(0),
        "a clean restore resumes and exits 0"
    );
    assert_eq!(
        code(&["run", &g, "--repair", "--maintain", "--restore", &d, "--seed", "999"]),
        Some(1),
        "a snapshot from a different seed is unrecoverable: exit 1"
    );

    inject(&dir, Damage::Truncate { keep: 9 }).expect("damage the newest snapshot");
    assert_eq!(
        code(&["run", &g, "--repair", "--maintain", "--restore", &d]),
        Some(3),
        "a torn newest snapshot degrades to an older generation: exit 3"
    );

    let empty = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("exit_codes_ckpt_empty");
    let _ = std::fs::remove_dir_all(&empty);
    std::fs::create_dir_all(&empty).expect("mk empty dir");
    assert_eq!(
        code(&["run", &g, "--restore", &empty.to_string_lossy()]),
        Some(1),
        "an empty checkpoint directory is unrecoverable: exit 1"
    );

    assert_eq!(
        code(&["run", &g, "--checkpoint-every", "5"]),
        Some(2),
        "--checkpoint-every without --checkpoint-out is a usage error"
    );
    assert_eq!(
        code(&["run", &g, "--checkpoint-out"]),
        Some(2),
        "--checkpoint-out without its directory is a usage error"
    );
}

#[test]
fn certify_follows_the_contract() {
    let g = graph_file();
    assert_eq!(code(&["certify", &g, "--seed", "7"]), Some(0), "an honest run certifies");
    assert_eq!(code(&["certify", &g, "--seed", "7", "--liars", "3"]), Some(3), "a lie exits 3");
    assert_eq!(code(&["certify"]), Some(2), "a missing graph is a usage error");
    assert_eq!(code(&["certify", &g, "--corrupt", "2.0"]), Some(2), "a bad rate is a usage error");
    assert_eq!(code(&["certify", "/no/such/file.txt"]), Some(1), "an unreadable graph errors");
}

#[test]
fn gen_follows_the_contract() {
    assert_eq!(code(&["gen", "gnp", "24", "0.2", "--seed", "5"]), Some(0), "gen succeeds");
    assert_eq!(code(&["gen"]), Some(2), "missing family/size is a usage error");
    assert_eq!(code(&["gen", "no-such-family", "24"]), Some(2), "unknown family is a usage error");
    assert_eq!(code(&["gen", "gnp", "many"]), Some(2), "a non-numeric size is a usage error");
}

#[test]
fn info_follows_the_contract() {
    let g = graph_file();
    assert_eq!(code(&["info", &g]), Some(0), "info succeeds");
    assert_eq!(code(&["info"]), Some(2), "a missing graph is a usage error");
    assert_eq!(code(&["info", "/no/such/file.txt"]), Some(1), "an unreadable graph is an error");
}

#[test]
fn dot_follows_the_contract() {
    let g = graph_file();
    assert_eq!(code(&["dot", &g]), Some(0), "dot succeeds");
    assert_eq!(code(&["dot", &g, "blossom"]), Some(0), "dot with a matching overlay succeeds");
    assert_eq!(code(&["dot"]), Some(2), "a missing graph is a usage error");
    assert_eq!(code(&["dot", &g, "no-such-algo"]), Some(2), "an unknown algo is a usage error");
    assert_eq!(code(&["dot", "/no/such/file.txt"]), Some(1), "an unreadable graph is an error");
}

/// The implicit-topology leg of the contract: `run --graph SPEC` runs
/// the pipeline with no graph file at all (the topology stays
/// implicit), a malformed or degenerate spec is a usage error, and
/// mixing both input forms is a usage error.
#[test]
fn graph_spec_follows_the_contract() {
    assert_eq!(code(&["run", "--graph", "ring:24"]), Some(0), "an implicit ring runs");
    assert_eq!(
        code(&["run", "--graph", "gnp:32:0.2:7", "--repair", "--maintain", "--json"]),
        Some(0),
        "implicit topologies compose with the hardening layers"
    );
    assert_eq!(
        code(&["run", "--graph", "torus:4x6", "--algo", "bipartite:2"]),
        Some(0),
        "an even-by-even torus is bipartite"
    );
    assert_eq!(
        code(&["run", "--graph", "ring:25", "--algo", "bipartite:2"]),
        Some(1),
        "an odd ring is not bipartite: that is a runtime error, not usage"
    );
    assert_eq!(code(&["run", "--graph"]), Some(2), "--graph without a spec is a usage error");
    assert_eq!(code(&["run", "--graph", "ring:2"]), Some(2), "a degenerate ring is a usage error");
    assert_eq!(
        code(&["run", "--graph", "mobius:9"]),
        Some(2),
        "an unknown family is a usage error"
    );
    assert_eq!(
        code(&["run", "--graph", "torus:4x"]),
        Some(2),
        "a malformed torus spec is a usage error"
    );
    assert_eq!(
        code(&["run", "--graph", "gnp:10:1.5:0"]),
        Some(2),
        "a G(n,p) probability outside [0, 1] is a usage error"
    );
    let g = graph_file();
    assert_eq!(
        code(&["run", &g, "--graph", "ring:24"]),
        Some(2),
        "a graph file and --graph together are a usage error"
    );

    // The chaos searcher shares the same spec grammar and the same
    // usage-error mapping.
    let chaos = Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(["--graph", "mobius:9"])
        .output()
        .expect("chaos runs");
    assert_eq!(chaos.status.code(), Some(2), "a bad chaos --graph spec is a usage error");
}

/// The CLI leg of the config-drift guard (the runtime leg — every
/// `RuntimeConfig` field has a `KNOBS` entry — lives in `dam-core`'s
/// unit tests): each declared flag must appear in the usage text, so
/// the advertised surface and the real one cannot drift apart.
#[test]
fn every_runtime_knob_is_spelled_out_in_usage() {
    let out = dam_cli(&[]);
    assert_eq!(out.status.code(), Some(2), "bare invocation prints usage and exits 2");
    let usage = String::from_utf8_lossy(&out.stderr);
    for (knob, flag) in RuntimeConfig::KNOBS {
        assert!(
            usage.contains(flag),
            "runtime knob `{knob}` is declared reachable via `{flag}`, \
             but that flag is missing from the usage text"
        );
    }
}
