//! Integration test for `dam-cli certify`: the exit-status contract is
//! part of the tool's API (scripts branch on it), so it is pinned here.
//!
//! `0` — certified, nothing detected; `3` — corruption detected (and
//! repaired to a re-certified matching); `1` — internal/input error;
//! `2` — usage error.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dam_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dam-cli")).args(args).output().expect("dam-cli runs")
}

/// A committed tiny instance so the test needs no generation step.
fn graph_file() -> String {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("certify_cli.txt");
    let gen = dam_cli(&["gen", "gnp", "24", "0.2", "--seed", "5"]);
    assert!(gen.status.success(), "gen must succeed");
    std::fs::write(&path, &gen.stdout).expect("write graph");
    path.to_string_lossy().into_owned()
}

#[test]
fn exit_codes_follow_the_contract() {
    let g = graph_file();

    let clean = dam_cli(&["certify", &g, "--seed", "7"]);
    assert_eq!(clean.status.code(), Some(0), "honest run must certify cleanly");

    let lied = dam_cli(&["certify", &g, "--seed", "7", "--liars", "3"]);
    assert_eq!(lied.status.code(), Some(3), "a lie must be detected (and exit 3)");

    let usage = dam_cli(&["certify", &g, "--corrupt", "1.5"]);
    assert_eq!(usage.status.code(), Some(2), "a bad probability is a usage error");

    let missing = dam_cli(&["certify"]);
    assert_eq!(missing.status.code(), Some(2), "a missing graph file is a usage error");

    let unreadable = dam_cli(&["certify", "/nonexistent/graph.txt"]);
    assert_eq!(unreadable.status.code(), Some(1), "an unreadable input is an internal error");
}

#[test]
fn json_report_carries_the_certificate_fields() {
    let g = graph_file();
    let out =
        dam_cli(&["certify", &g, "--seed", "7", "--corrupt", "0.05", "--liars", "2,9", "--json"]);
    assert_eq!(out.status.code(), Some(3));
    let text = String::from_utf8(out.stdout).expect("utf-8 json");
    for key in [
        r#""algorithm":"certified-ii""#,
        r#""detected":true"#,
        r#""certified":true"#,
        r#""detection_rounds":2"#,
        r#""repair_locality":"#,
        r#""flagged":["#,
        r#""excluded":["#,
    ] {
        assert!(text.contains(key), "json output must carry {key}: {text}");
    }
}
