//! Perf-regression smoke against the committed `results/BENCH_e12.json`,
//! `results/BENCH_e18.json` (async-overhead) and `results/BENCH_e19.json`
//! (adaptive-controller overhead) baselines.
//!
//! The timing assertion only runs when `CI_SMOKE=1` is set (CI's
//! `bench-smoke` job): shared runners and debug builds make wall-clock
//! flaky, so plain `cargo test` checks the committed file's *shape* and
//! the workload's determinism but never its speed.
//!
//! The regression bar is deliberately loose — current parallel
//! throughput must stay within 2x of the committed parallel figure.
//! Parallel is compared against committed-parallel (not serial) so the
//! check stays honest on single-core hosts, where a parallel engine
//! cannot win; `host_threads` in the file records what the baseline was
//! measured on.

use std::fs;
use std::path::PathBuf;

use dam_bench::baseline::{
    measure, measure_adaptive, measure_async, workload_graph, AdaptiveBaseline, AsyncBaseline,
    Baseline, ADAPTIVE_WORKLOAD, ASYNC_WORKLOAD, DEGREE, N, ROUNDS, WORKLOAD,
};

fn committed() -> Baseline {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_e12.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    Baseline::from_json(&text).expect("committed baseline must parse")
}

fn committed_async() -> AsyncBaseline {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_e18.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    AsyncBaseline::from_json(&text).expect("committed async baseline must parse")
}

fn committed_adaptive() -> AdaptiveBaseline {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_e19.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    AdaptiveBaseline::from_json(&text).expect("committed adaptive baseline must parse")
}

/// Always runs: the committed artifact must parse and describe exactly
/// the workload this suite measures.
#[test]
fn committed_baseline_is_well_formed() {
    let b = committed();
    assert_eq!(b.workload, WORKLOAD);
    assert_eq!(b.n, N);
    assert_eq!(b.rounds, ROUNDS);
    // n * degree sends per sending round (rounds 0..ROUNDS), all delivered.
    assert_eq!(b.messages, (N * DEGREE * ROUNDS) as u64);
    assert!(b.serial_ms > 0.0 && b.parallel_ms > 0.0, "timings must be positive");
    assert!(b.parallel_threads >= 2, "the parallel figure must actually be parallel");
    assert!(b.host_threads >= 1);
}

/// Always runs: the committed message count is reproduced bit-exactly
/// by both engines today (determinism, independent of wall clock).
#[test]
fn workload_message_count_is_reproduced() {
    let g = workload_graph();
    let (_, seq) = measure(&g, 1, 1);
    let b = committed();
    assert_eq!(seq, b.messages, "sequential engine diverged from the committed workload");
    let (_, par) = measure(&g, b.parallel_threads, 1);
    assert_eq!(par, b.messages, "parallel engine diverged from the committed workload");
}

/// Always runs: the committed async artifact must parse, describe this
/// workload, and agree with the synchronous baseline on the payload
/// count.
#[test]
fn committed_async_baseline_is_well_formed() {
    let b = committed_async();
    assert_eq!(b.workload, ASYNC_WORKLOAD);
    assert_eq!(b.n, N);
    assert_eq!(b.rounds, ROUNDS);
    assert_eq!(b.messages, (N * DEGREE * ROUNDS) as u64);
    assert!(b.markers > 0, "a fixed-round workload halts port by port, which costs markers");
    assert!(b.serial_ms > 0.0 && b.async_ms > 0.0, "timings must be positive");
    assert!(b.host_threads >= 1);
}

/// Always runs: today's asynchronous backend reproduces the committed
/// payload *and marker* counts bit-exactly — the control-plane overhead
/// is pinned, not merely bounded.
#[test]
fn async_workload_marker_count_is_reproduced() {
    let g = workload_graph();
    let b = committed_async();
    let (_, messages, markers) = measure_async(&g, 1);
    assert_eq!(messages, b.messages, "async backend diverged from the committed payload count");
    assert_eq!(markers, b.markers, "synchronizer marker overhead drifted from the baseline");
}

/// Always runs: the committed adaptive artifact must parse, describe
/// this workload, and show a controller that was never pathologically
/// expensive when the baseline was recorded.
#[test]
fn committed_adaptive_baseline_is_well_formed() {
    let b = committed_adaptive();
    assert_eq!(b.workload, ADAPTIVE_WORKLOAD);
    assert_eq!(b.n, N);
    assert_eq!(b.rounds, ROUNDS);
    assert_eq!(b.messages, (N * DEGREE * ROUNDS) as u64);
    assert!(b.static_ms > 0.0 && b.adaptive_ms > 0.0, "timings must be positive");
    assert!(b.overhead() < 2.0, "the committed controller overhead must be well under 2x");
    assert!(b.host_threads >= 1);
}

/// Always runs: a fault-free adaptive run reproduces the committed
/// payload count — the controller stays at its floor and adds zero
/// traffic (the stronger static==adaptive equality is asserted inside
/// `measure_adaptive` itself).
#[test]
fn adaptive_workload_message_count_is_reproduced() {
    let g = workload_graph();
    let b = committed_adaptive();
    let (_, _, messages) = measure_adaptive(&g, 1);
    assert_eq!(messages, b.messages, "adaptive transport diverged from the committed workload");
}

/// `CI_SMOKE=1` only: the controller's relative overhead (adaptive vs
/// static transport, same host, same run) within 2x of the committed
/// ratio. Comparing ratios rather than absolute throughput keeps the
/// gate honest on slow shared runners: it isolates what the epoch
/// bookkeeping costs, not what the machine costs.
#[test]
fn adaptive_overhead_within_2x_of_baseline() {
    if std::env::var_os("CI_SMOKE").is_none() {
        eprintln!("skipped: set CI_SMOKE=1 to enable the wall-clock regression check");
        return;
    }
    let b = committed_adaptive();
    let g = workload_graph();
    let (static_s, adaptive_s, messages) = measure_adaptive(&g, 3);
    assert_eq!(messages, b.messages);
    let now = adaptive_s / static_s;
    let bar = (b.overhead() * 2.0).max(2.0);
    assert!(
        now <= bar,
        "adaptive controller overhead regressed: {now:.2}x, committed {:.2}x (bar {bar:.2}x)",
        b.overhead(),
    );
}

/// `CI_SMOKE=1` only: async-backend throughput within 2x of the
/// committed async figure (compared against committed-async, not
/// serial, so the check gates the backend's own regressions rather
/// than the synchronizer's inherent price).
#[test]
fn async_throughput_within_2x_of_baseline() {
    if std::env::var_os("CI_SMOKE").is_none() {
        eprintln!("skipped: set CI_SMOKE=1 to enable the wall-clock regression check");
        return;
    }
    let b = committed_async();
    let g = workload_graph();
    let (secs, messages, _) = measure_async(&g, 3);
    assert_eq!(messages, b.messages);
    let now_mmsg_s = messages as f64 / secs / 1e6;
    let floor = b.async_mmsg_per_s() / 2.0;
    assert!(
        now_mmsg_s >= floor,
        "async backend regressed: {now_mmsg_s:.2} Mmsg/s, committed {:.2} (floor {floor:.2})",
        b.async_mmsg_per_s(),
    );
}

/// `CI_SMOKE=1` only: parallel throughput within 2x of the committed
/// parallel throughput.
#[test]
fn parallel_throughput_within_2x_of_baseline() {
    if std::env::var_os("CI_SMOKE").is_none() {
        eprintln!("skipped: set CI_SMOKE=1 to enable the wall-clock regression check");
        return;
    }
    let b = committed();
    let g = workload_graph();
    let (secs, messages) = measure(&g, b.parallel_threads, 3);
    assert_eq!(messages, b.messages);
    let now_mmsg_s = messages as f64 / secs / 1e6;
    let floor = b.parallel_mmsg_per_s() / 2.0;
    assert!(
        now_mmsg_s >= floor,
        "parallel engine regressed: {now_mmsg_s:.2} Mmsg/s, committed {:.2} (floor {floor:.2})",
        b.parallel_mmsg_per_s(),
    );
}
