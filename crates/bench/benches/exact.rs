//! Criterion micro-benchmarks for the exact reference algorithms.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dam_graph::weights::{randomize_weights, WeightDist};
use dam_graph::{blossom, generators, hopcroft_karp, hungarian, mwm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_oracles");
    for &n in &[64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(2);
        let bip = generators::bipartite_gnp(n / 2, n / 2, 8.0 / n as f64, &mut rng);
        let gen = generators::gnp(n, 8.0 / n as f64, &mut rng);
        let wgen = randomize_weights(&gen, WeightDist::Uniform { lo: 0.1, hi: 2.0 }, &mut rng);
        let wbip = randomize_weights(&bip, WeightDist::Uniform { lo: 0.1, hi: 2.0 }, &mut rng);

        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &bip, |b, g| {
            b.iter(|| black_box(hopcroft_karp::maximum_bipartite_matching_size(g)));
        });
        group.bench_with_input(BenchmarkId::new("blossom", n), &gen, |b, g| {
            b.iter(|| black_box(blossom::maximum_matching_size(g)));
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("mwm_exact", n), &wgen, |b, g| {
                b.iter(|| black_box(mwm::maximum_weight(g)));
            });
            group.bench_with_input(BenchmarkId::new("hungarian", n), &wbip, |b, g| {
                b.iter(|| black_box(hungarian::maximum_weight_bipartite(g)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
