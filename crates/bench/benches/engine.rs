//! Criterion micro-benchmarks for the CONGEST engine itself.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dam_congest::{Context, Network, Port, Protocol, SimConfig};
use dam_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A light gossip protocol: every node broadcasts a counter for a fixed
/// number of rounds — measures raw engine round/message throughput.
struct Gossip {
    rounds: usize,
    acc: u64,
}

impl Protocol for Gossip {
    type Msg = u64;
    type Output = u64;
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(ctx.id() as u64);
    }
    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
        for &(_, x) in inbox {
            self.acc = self.acc.wrapping_add(x);
        }
        if ctx.round() >= self.rounds {
            ctx.halt();
        } else {
            ctx.broadcast(self.acc);
        }
    }
    fn into_output(self) -> u64 {
        self.acc
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_gossip_20_rounds");
    for &n in &[256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_regular(n, 4, &mut rng);
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| {
                let mut net = Network::new(g, SimConfig::local().seed(7));
                let out = net.run(|_, _| Gossip { rounds: 20, acc: 0 }).unwrap();
                black_box(out.stats.messages)
            });
        });
        for &threads in &[2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel{threads}"), n),
                &g,
                |b, g| {
                    b.iter(|| {
                        let mut net = Network::new(g, SimConfig::local().seed(7));
                        let out = net
                            .run_parallel(|_, _| Gossip { rounds: 20, acc: 0 }, threads)
                            .unwrap();
                        black_box(out.stats.messages)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
