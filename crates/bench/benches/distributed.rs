//! Criterion micro-benchmarks for the distributed algorithms (simulation
//! wall-clock, not round counts — rounds are measured by E2/E4).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dam_core::auction::{auction_mwm, AuctionConfig};
use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
use dam_core::general::{general_mcm, GeneralMcmConfig};
use dam_core::hv::{hv_mwm, HvMwmConfig};
use dam_core::israeli_itai::israeli_itai;
use dam_core::trees::tree_mcm;
use dam_core::weighted::local_max::local_max_mwm;
use dam_core::weighted::{weighted_mwm, WeightedMwmConfig};
use dam_graph::generators;
use dam_graph::weights::{randomize_weights, WeightDist};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_algorithms");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let mut rng = StdRng::seed_from_u64(3);
        let bip = generators::bipartite_gnp(n / 2, n / 2, 8.0 / n as f64, &mut rng);
        let gen = generators::gnp(n, 6.0 / n as f64, &mut rng);
        let wgen = randomize_weights(&gen, WeightDist::Uniform { lo: 0.1, hi: 2.0 }, &mut rng);

        group.bench_with_input(BenchmarkId::new("israeli_itai", n), &gen, |b, g| {
            b.iter(|| black_box(israeli_itai(g, 1).unwrap().matching.size()));
        });
        group.bench_with_input(BenchmarkId::new("local_max_mwm", n), &wgen, |b, g| {
            b.iter(|| black_box(local_max_mwm(g, 1).unwrap().matching.size()));
        });
        group.bench_with_input(BenchmarkId::new("bipartite_mcm_k3", n), &bip, |b, g| {
            b.iter(|| {
                let cfg = BipartiteMcmConfig { k: 3, seed: 1, ..Default::default() };
                black_box(bipartite_mcm(g, &cfg).unwrap().matching.size())
            });
        });
        group.bench_with_input(BenchmarkId::new("general_mcm_k2", n), &gen, |b, g| {
            b.iter(|| {
                let cfg = GeneralMcmConfig { k: 2, seed: 1, ..Default::default() };
                black_box(general_mcm(g, &cfg).unwrap().matching.size())
            });
        });
        group.bench_with_input(BenchmarkId::new("weighted_mwm_eps0.1", n), &wgen, |b, g| {
            b.iter(|| {
                let cfg = WeightedMwmConfig { eps: 0.1, seed: 1, ..Default::default() };
                black_box(weighted_mwm(g, &cfg).unwrap().matching.size())
            });
        });
        let wbip = randomize_weights(&bip, WeightDist::Integer { max: 50 }, &mut rng);
        group.bench_with_input(BenchmarkId::new("auction_mwm", n), &wbip, |b, g| {
            b.iter(|| {
                let cfg = AuctionConfig { eps: 0.5, seed: 1, ..Default::default() };
                black_box(auction_mwm(g, &cfg).unwrap().matching.size())
            });
        });
        let tree = generators::random_tree(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("tree_mcm", n), &tree, |b, g| {
            b.iter(|| black_box(tree_mcm(g, 1).unwrap().matching.size()));
        });
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("hv_mwm_eps0.33", n), &wgen, |b, g| {
                b.iter(|| {
                    let cfg = HvMwmConfig { eps: 0.34, seed: 1, ..Default::default() };
                    black_box(hv_mwm(g, &cfg).unwrap().matching.size())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
