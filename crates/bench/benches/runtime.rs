//! Criterion micro-benchmarks for the runtime extensions: the resilient
//! transport under message faults, and the churn-maintenance loop —
//! complements `engine.rs` (raw engine) and `distributed.rs`
//! (algorithms).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dam_congest::{ChurnKind, FaultPlan, Network, Resilient, SimConfig, TransportCfg};
use dam_core::israeli_itai::IiNode;
use dam_core::maintain::{MaintainConfig, Maintainer};
use dam_core::runtime::{run_mm, IsraeliItai, RuntimeConfig};
use dam_graph::generators;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Israeli–Itai over the resilient transport while the engine drops,
/// duplicates and reorders frames: measures the retransmission
/// machinery, not the matching.
fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilient_transport_ii");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
        for &loss in &[0.0f64, 0.1] {
            let faults = FaultPlan { loss, dup: loss / 2.0, reorder: loss, ..FaultPlan::default() };
            let label = format!("n{n}_loss{loss}");
            group.bench_with_input(BenchmarkId::new("run_faulty", label), &g, |b, g| {
                b.iter(|| {
                    let mut net = Network::new(g, SimConfig::local().seed(5).max_rounds(100_000));
                    let out = net
                        .run_faulty(
                            |v, graph| {
                                Resilient::new(
                                    IiNode::new(graph.degree(v)),
                                    TransportCfg::default(),
                                )
                            },
                            &faults,
                        )
                        .unwrap();
                    black_box(out.stats.rounds)
                });
            });
        }
    }
    group.finish();
}

/// Maintenance batches: bootstrap a maintained matching, then apply a
/// stream of single-event batches — measures steady-state repair cost.
fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance_batches");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
        // Each random edge flaps down then back up — every event is
        // valid against the presence state it meets.
        let events: Vec<ChurnKind> = (0..8)
            .flat_map(|_| {
                let e = rng.random_range(0..g.edge_count());
                [ChurnKind::EdgeDown { edge: e }, ChurnKind::EdgeUp { edge: e }]
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("apply_16_events", n), &g, |b, g| {
            b.iter(|| {
                let mut mt = Maintainer::bootstrap(g, &MaintainConfig::default()).unwrap();
                for ev in &events {
                    mt.apply(std::slice::from_ref(ev)).unwrap();
                }
                black_box(mt.matching().size())
            });
        });
        group.bench_with_input(BenchmarkId::new("runtime_maintain_mm", n), &g, |b, g| {
            b.iter(|| {
                let faults =
                    FaultPlan { loss: 0.05, dup: 0.02, reorder: 0.05, ..FaultPlan::default() };
                let churn = dam_congest::ChurnPlan::default()
                    .with_event(2, ChurnKind::EdgeDown { edge: 0 })
                    .with_event(4, ChurnKind::EdgeUp { edge: 0 });
                let cfg = RuntimeConfig::new()
                    .sim(SimConfig::local().seed(0).max_rounds(500_000))
                    .transport(TransportCfg::default())
                    .faults(faults)
                    .churn(churn)
                    .maintain(true);
                let report = run_mm(&IsraeliItai, g, &cfg).unwrap();
                black_box(report.matching.size())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transport, bench_maintenance);
criterion_main!(benches);
