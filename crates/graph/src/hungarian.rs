//! Hungarian algorithm: exact maximum-weight matching in bipartite graphs,
//! `O(n³)`.
//!
//! Used as the weighted oracle on bipartite instances (and as an
//! independent cross-check of the general [`crate::mwm`] solver). Missing
//! edges are modelled as weight-0 padding, so the maximum-weight
//! *assignment* restricted to real edges is the maximum-weight matching
//! (all real weights are positive).

use crate::graph::{EdgeId, Graph, NodeId, Side};
use crate::matching::Matching;

/// Computes a maximum-weight matching of a bipartite graph.
///
/// Uses the recorded bipartition if present, otherwise computes one.
///
/// # Panics
/// Panics if the graph is not bipartite.
#[must_use]
pub fn maximum_weight_bipartite_matching(g: &Graph) -> Matching {
    let owned;
    let sides: &[Side] = match g.bipartition() {
        Some(s) => s,
        None => {
            let mut g2 = g.clone();
            owned =
                g2.compute_bipartition().expect("hungarian requires a bipartite graph").to_vec();
            &owned
        }
    };
    let xs: Vec<NodeId> = g.nodes().filter(|&v| sides[v] == Side::X).collect();
    let ys: Vec<NodeId> = g.nodes().filter(|&v| sides[v] == Side::Y).collect();
    // Rows must be the smaller side for the O(n²m) potential loop below.
    let (rows, cols, flipped) = if xs.len() <= ys.len() { (xs, ys, false) } else { (ys, xs, true) };
    let n = rows.len();
    let m = cols.len();
    if n == 0 {
        return Matching::new(g);
    }
    let col_index: std::collections::HashMap<NodeId, usize> =
        cols.iter().enumerate().map(|(j, &v)| (v, j + 1)).collect();

    // best_edge[i][j]: heaviest edge between rows[i-1] and cols[j-1]
    // (parallel edges collapse to their max).
    let mut weight = vec![vec![0.0f64; m + 1]; n + 1];
    let mut best_edge: Vec<Vec<Option<EdgeId>>> = vec![vec![None; m + 1]; n + 1];
    for (i, &r) in rows.iter().enumerate() {
        for (_, u, e) in g.incident(r) {
            let j = col_index[&u];
            if g.weight(e) > weight[i + 1][j] {
                weight[i + 1][j] = g.weight(e);
                best_edge[i + 1][j] = Some(e);
            }
        }
    }

    // Classic potentials formulation, minimizing cost = -weight.
    let cost = |i: usize, j: usize| -weight[i][j];
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost(i0, j) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut edges = Vec::new();
    for j in 1..=m {
        let i = p[j];
        if i != 0 {
            if let Some(e) = best_edge[i][j] {
                edges.push(e);
            }
        }
    }
    let _ = flipped; // orientation does not affect the edge set
    Matching::from_edges(g, edges).expect("assignment restricted to real edges is a matching")
}

/// The maximum bipartite matching weight (convenience wrapper).
#[must_use]
pub fn maximum_weight_bipartite(g: &Graph) -> f64 {
    let m = maximum_weight_bipartite_matching(g);
    m.weight(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::generators;
    use crate::weights::{randomize_weights, WeightDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn picks_heavy_assignment() {
        // X = {0,1}, Y = {2,3}; optimal takes 0-3 (5) and 1-2 (4) = 9
        // over the greedy-looking 0-2 (6) + 1-3 (1) = 7.
        let g = crate::Graph::builder(4)
            .weighted_edge(0, 2, 6.0)
            .weighted_edge(0, 3, 5.0)
            .weighted_edge(1, 2, 4.0)
            .weighted_edge(1, 3, 1.0)
            .bipartition(vec![Side::X, Side::X, Side::Y, Side::Y])
            .build()
            .unwrap();
        let m = maximum_weight_bipartite_matching(&g);
        assert!((m.weight(&g) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn may_leave_nodes_unmatched() {
        // Matching fewer edges can weigh more than a perfect matching
        // would force: here a single heavy edge beats two light ones.
        let g = crate::Graph::builder(4)
            .weighted_edge(0, 2, 10.0)
            .weighted_edge(0, 3, 0.1)
            .weighted_edge(1, 2, 0.1)
            .bipartition(vec![Side::X, Side::X, Side::Y, Side::Y])
            .build()
            .unwrap();
        let m = maximum_weight_bipartite_matching(&g);
        assert!((m.weight(&g) - 10.0).abs() < 1e-9);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn agrees_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..40 {
            let base = generators::bipartite_gnp(5, 6, 0.45, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.1, hi: 3.0 }, &mut rng);
            let m = maximum_weight_bipartite_matching(&g);
            m.validate(&g).unwrap();
            let opt = brute::maximum_weight(&g);
            assert!(
                (m.weight(&g) - opt).abs() < 1e-6,
                "hungarian {} vs brute {opt} on {g}",
                m.weight(&g)
            );
        }
    }

    #[test]
    fn unweighted_reduces_to_cardinality() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let g = generators::bipartite_gnp(6, 6, 0.4, &mut rng);
            let m = maximum_weight_bipartite_matching(&g);
            assert_eq!(m.size(), crate::hopcroft_karp::maximum_bipartite_matching_size(&g));
        }
    }

    #[test]
    fn handles_parallel_edges() {
        let g = crate::Graph::builder(2)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(0, 1, 3.0)
            .bipartition(vec![Side::X, Side::Y])
            .build()
            .unwrap();
        let m = maximum_weight_bipartite_matching(&g);
        assert_eq!(m.to_edge_vec(), vec![1]);
    }

    #[test]
    fn empty_side() {
        let g =
            crate::Graph::builder(3).bipartition(vec![Side::Y, Side::Y, Side::Y]).build().unwrap();
        assert_eq!(maximum_weight_bipartite_matching(&g).size(), 0);
    }
}
