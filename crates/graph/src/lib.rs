#![warn(missing_docs)]

//! Graph substrate for distributed approximate matching.
//!
//! This crate provides everything the distributed algorithms of
//! [`dam-core`](https://crates.io/crates/dam-core) need to talk about graphs:
//!
//! * [`Graph`] — a compact CSR graph (optionally weighted, optionally with a
//!   known bipartition) that doubles as the *network topology* for the
//!   CONGEST simulator;
//! * [`Matching`] — a validated matching with augmentation support;
//! * [`paths`] — augmenting-path machinery (Hopcroft–Karp lemmas 3.2/3.3 of
//!   the paper live here as checkable facts);
//! * [`conflict`] — the conflict graph `C_M(ℓ)` of Definition 3.1;
//! * [`generators`] — random, structured and adversarial graph families;
//! * exact reference algorithms used to *measure* approximation ratios:
//!   [`hopcroft_karp`] (bipartite MCM), [`blossom`] (general MCM),
//!   [`mwm`] (general maximum *weight* matching), [`brute`] (tiny graphs);
//! * sequential baselines: [`maximal`] (greedy, path-growing, local-max).
//!
//! # Example
//!
//! ```
//! use dam_graph::{Graph, Matching, hopcroft_karp};
//!
//! // A path on 4 vertices: 0 - 1 - 2 - 3.
//! let g = Graph::builder(4)
//!     .edge(0, 1)
//!     .edge(1, 2)
//!     .edge(2, 3)
//!     .build()
//!     .unwrap();
//! let m = hopcroft_karp::maximum_bipartite_matching(&g);
//! assert_eq!(m.size(), 2);
//! assert!(m.validate(&g).is_ok());
//! ```

pub mod analysis;
pub mod bitset;
pub mod blossom;
pub mod bmatching;
pub mod brute;
pub mod conflict;
pub mod cover;
pub mod error;
pub mod generators;
pub mod graph;
pub mod hopcroft_karp;
pub mod hungarian;
pub mod io;
pub mod karp_sipser;
pub mod line_graph;
pub mod matching;
pub mod maximal;
pub mod mwm;
pub mod paths;
pub mod pettie_sanders;
pub mod topology;
pub mod weights;

pub use bitset::BitSet;
pub use error::GraphError;
pub use graph::{EdgeId, Graph, GraphBuilder, NodeId, Side};
pub use matching::Matching;
pub use topology::{materialize, ImplicitTopology, Topology};
